// Offload study: the §6 analysis. Shows that a second memory tier lets a
// trillion-parameter model train on a small GPU count at high efficiency
// (the paper's "fine-tuning on small systems" finding), probes the offload
// bandwidth/capacity requirement with an infinite tier (Eq. 1), and then
// checks how close a practical 512 GiB @ 100 GB/s tier comes.
package main

import (
	"context"
	"fmt"
	"log"

	"calculon"
)

func main() {
	m := calculon.MustPreset("megatron-1T").WithBatch(256)
	const gpus = 128

	searchOpts := calculon.SearchOptions{
		Enum: calculon.EnumOptions{
			Features:      calculon.FeatureAll,
			PinBeneficial: true,
			MaxInterleave: 4,
		},
	}

	fmt.Printf("Megatron-1T (batch 256) on %d A100s\n\n", gpus)

	// 1. No offload tier: the model cannot fit at this scale.
	bare, err := calculon.SearchExecution(context.Background(), m, calculon.A100(gpus), searchOpts)
	if err != nil {
		log.Fatal(err)
	}
	if bare.Found() {
		fmt.Printf("without offload: best %.1f samples/s with %v\n",
			bare.Best.SampleRate, bare.Best.Strategy)
	} else {
		fmt.Printf("without offload: NO feasible configuration (%d tried)\n", bare.Evaluated)
	}

	// 2. Infinite offload tier: read off what the best strategy would
	//    consume (the §6 requirements probe).
	inf, err := calculon.SearchExecution(context.Background(), m, calculon.A100(gpus).WithMem2(calculon.InfiniteMem2()), searchOpts)
	if err != nil {
		log.Fatal(err)
	}
	if !inf.Found() {
		log.Fatal("infinite offload tier found nothing")
	}
	fmt.Printf("\ninfinite offload tier: best %.1f samples/s (MFU %.1f%%) with %v\n",
		inf.Best.SampleRate, 100*inf.Best.MFU, inf.Best.Strategy)
	fmt.Printf("  HBM used:          %v\n", inf.Best.Mem1.Total())
	fmt.Printf("  offload capacity:  %v\n", inf.Best.Mem2.Total())
	fmt.Printf("  offload bandwidth: %v required for seamless overlap (Eq. 1)\n",
		inf.Best.OffloadBWRequired)

	// 3. Practical tier: 512 GiB at 100 GB/s.
	ddr, err := calculon.SearchExecution(context.Background(), m, calculon.A100(gpus).WithMem2(calculon.DDR5(512*calculon.GiB)), searchOpts)
	if err != nil {
		log.Fatal(err)
	}
	if !ddr.Found() {
		log.Fatal("512 GiB tier found nothing")
	}
	fmt.Printf("\n512 GiB @ 100 GB/s tier: best %.1f samples/s (MFU %.1f%%) with %v\n",
		ddr.Best.SampleRate, 100*ddr.Best.MFU, ddr.Best.Strategy)
	fmt.Printf("  HBM used:         %v\n", ddr.Best.Mem1.Total())
	fmt.Printf("  offload capacity: %v\n", ddr.Best.Mem2.Total())
	fmt.Printf("  exposed offload:  %v of %v total transfer\n",
		ddr.Best.Time.OffloadExposed, ddr.Best.Time.OffloadTotal)
	if inf.Found() {
		fmt.Printf("  slowdown vs infinite tier: %.1f%%\n",
			100*(inf.Best.SampleRate/ddr.Best.SampleRate-1))
	}
}
