// Quickstart: estimate one training configuration — GPT-3 175B on 4,096
// A100 GPUs split (t,p,d) = (8,64,8), the setup of Fig. 3 of the paper —
// and print the full time and memory breakdown.
package main

import (
	"fmt"
	"log"

	"calculon"
)

func main() {
	m := calculon.MustPreset("gpt3-175B").WithBatch(2048)
	sys := calculon.A100(4096)
	strategy := calculon.Strategy{
		TP: 8, PP: 64, DP: 8,
		Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: calculon.RecomputeFull,
		TPRSAG:    true,
	}

	res, err := calculon.Run(m, sys, strategy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:       %v\n", m)
	fmt.Printf("system:      %d × A100-80GiB (NVLink 8, IB HDR)\n", sys.Procs)
	fmt.Printf("strategy:    %v\n", strategy)
	fmt.Printf("batch time:  %v (%.1f samples/s, MFU %.1f%%)\n\n",
		res.BatchTime, res.SampleRate, 100*res.MFU)

	fmt.Println("time breakdown:")
	fmt.Printf("  forward        %v\n", res.Time.FwdPass)
	fmt.Printf("  backward       %v\n", res.Time.BwdPass)
	fmt.Printf("  recompute      %v\n", res.Time.Recompute)
	fmt.Printf("  optimizer      %v\n", res.Time.OptimStep)
	fmt.Printf("  pipeline bubble %v\n", res.Time.PPBubble)
	fmt.Printf("  TP comm exposed %v (of %v)\n", res.Time.TPExposed, res.Time.TPComm)
	fmt.Printf("  PP comm exposed %v\n", res.Time.PPExposed)
	fmt.Printf("  DP comm exposed %v (of %v)\n\n", res.Time.DPExposed, res.Time.DPComm)

	fmt.Println("HBM per GPU:")
	fmt.Printf("  weights     %v\n", res.Mem1.Weights)
	fmt.Printf("  activations %v\n", res.Mem1.Activations)
	fmt.Printf("  grads       %v\n", res.Mem1.WeightGrads)
	fmt.Printf("  optimizer   %v\n", res.Mem1.Optimizer)
	fmt.Printf("  total       %v of %v\n", res.Mem1.Total(), sys.Mem1.Capacity)
}
