// Inference study: LLM serving estimates with the generation-aware model —
// prefill (compute-bound prompt pass) plus autoregressive decode
// (bandwidth-bound weight and KV-cache streaming). Sizes a GPT-3 175B
// deployment: minimum GPUs to hold weights and KV cache, the latency/
// throughput trade of tensor vs pipeline parallelism, and the batch-size
// crossover where decode stops being bandwidth-bound.
package main

import (
	"fmt"
	"log"

	"calculon"
)

func main() {
	m := calculon.MustPreset("gpt3-175B")
	w := calculon.ServingWorkload{PromptLen: 512, GenLen: 256, Batch: 8}

	fmt.Println("GPT-3 175B serving — prompt 512, generate 256, batch 8")
	fmt.Printf("%-18s %-14s %-14s %-14s %-12s %-12s\n",
		"config", "prefill", "per-token", "tokens/s", "weights/GPU", "KV/GPU")
	for _, cfg := range []struct{ t, p int }{
		{8, 1}, {8, 2}, {8, 4}, {4, 2}, {2, 4},
	} {
		st := calculon.Strategy{
			TP: cfg.t, PP: cfg.p, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeNone, TPRSAG: true,
		}
		sys := calculon.A100(cfg.t * cfg.p)
		res, err := calculon.EstimateInference(m, sys, st, w)
		if err != nil {
			fmt.Printf("%-18s %v\n", fmt.Sprintf("t=%d p=%d", cfg.t, cfg.p), err)
			continue
		}
		fmt.Printf("%-18s %-14v %-14v %-14.1f %-12v %-12v\n",
			fmt.Sprintf("t=%d p=%d (%d GPU)", cfg.t, cfg.p, cfg.t*cfg.p),
			res.PrefillTime, res.StepTime, res.TokensPerSec,
			res.WeightBytes, res.KVCacheBytes)
	}

	fmt.Println("\nbatch-size sweep on t=8 p=1 — decode leaves the bandwidth-bound regime:")
	fmt.Printf("%-8s %-14s %-14s %-18s\n", "batch", "per-token", "tokens/s", "bound by")
	for _, batch := range []int{1, 4, 16, 64, 256} {
		st := calculon.Strategy{
			TP: 8, PP: 1, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeNone, TPRSAG: true,
		}
		wb := w
		wb.Batch = batch
		res, err := calculon.EstimateInference(m, calculon.A100(8), st, wb)
		if err != nil {
			fmt.Printf("%-8d infeasible: %v\n", batch, err)
			continue
		}
		bound := "compute"
		if res.DecodeBandwidthBound {
			bound = "memory bandwidth"
		}
		fmt.Printf("%-8d %-14v %-14.1f %-18s\n", batch, res.StepTime, res.TokensPerSec, bound)
	}

	// One-GPU check: the weights alone exceed any single A100.
	st1 := calculon.Strategy{TP: 1, PP: 1, DP: 1, Microbatch: 1, Interleave: 1,
		OneFOneB: true, Recompute: calculon.RecomputeNone}
	if _, err := calculon.EstimateInference(m, calculon.A100(1), st1, w); err != nil {
		fmt.Printf("\nsingle A100: %v\n", err)
	} else {
		log.Fatal("a single A100 should not fit 175B fp16 weights")
	}
}
