// TCO study: the money view of §6. Prices the full Megatron-1T training run
// of the paper's introduction (450B tokens, §1: "84 days on 3,072 A100s …
// over six million dollars"), then quantifies what the offload-enabled
// execution strategy of Table 4 is worth in dollars and days — the paper's
// point that "even small efficiency gains can accumulate during long system
// use time".
package main

import (
	"context"
	"fmt"
	"log"

	"calculon"
)

func main() {
	const tokens = 450e9
	assume := calculon.DefaultTCOAssumptions()

	// The historical run: 3,072 A100s, conventional full-recompute split.
	m := calculon.MustPreset("megatron-1T").WithBatch(1536)
	baseline := calculon.Strategy{
		TP: 8, PP: 48, DP: 8, Microbatch: 1, Interleave: 2, OneFOneB: true,
		Recompute: calculon.RecomputeFull, TPRSAG: true,
	}
	baseRes, err := calculon.Run(m, calculon.A100(3072), baseline)
	if err != nil {
		log.Fatal(err)
	}
	baseCost, err := calculon.TrainingRunCost(baseRes, tokens, assume)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Megatron-1T, 450B tokens, 3,072 A100s")
	fmt.Printf("baseline (full recompute, t=8 p=48 d=8): MFU %.1f%%\n  %v\n",
		100*baseRes.MFU, baseCost)

	// The same hardware plus a 512 GiB offload tier, with the best strategy
	// the exhaustive search can find.
	sysOff := calculon.A100(3072).WithMem2(calculon.DDR5(512 * calculon.GiB))
	found, err := calculon.SearchExecution(context.Background(), m, sysOff, calculon.SearchOptions{
		Enum: calculon.EnumOptions{
			Features:      calculon.FeatureAll,
			PinBeneficial: true,
			MaxInterleave: 4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !found.Found() {
		log.Fatal("search found nothing")
	}
	offCost, err := calculon.TrainingRunCost(found.Best, tokens, assume)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch-found strategy with 512 GiB offload tier: MFU %.1f%%\n  %v\n  strategy: %v\n",
		100*found.Best.MFU, offCost, found.Best.Strategy)

	dollars := baseCost.Total - offCost.Total
	days := baseCost.Days - offCost.Days
	fmt.Printf("\nsavings from codesigned execution: $%.3g and %.1f days per run\n", dollars, days)
	fmt.Printf("(DDR tier capex for 3,072 GPUs at $10k each: $%.3g — ", 3072*10000.0)
	if dollars > 3072*10000.0 {
		fmt.Println("pays for itself within one pretraining run)")
	} else {
		fmt.Println("amortizes over multiple runs)")
	}
}
