// System cost study: the §7 budgeted system search (Table 3). Under a fixed
// budget, evaluates H100 designs that trade HBM3 capacity against a cheap
// DDR5 offload tier, and reports which design trains each LLM fastest and
// which gives the best performance per dollar.
package main

import (
	"context"
	"fmt"
	"log"

	"calculon"
)

func main() {
	// A reduced version of the paper's $125M study so the example finishes
	// in seconds: a $20M budget (several hundred GPUs per design) and the
	// GPT-3 175B model.
	models := []calculon.LLM{calculon.MustPreset("gpt3-175B").WithBatch(1024)}

	evals, err := calculon.SearchBudget(context.Background(), models, calculon.AllDesigns(), calculon.BudgetOptions{
		Budget:  20e6,
		Stride:  64,
		MinFrac: 0.75,
		Search: calculon.SearchOptions{
			Enum: calculon.EnumOptions{
				Features:      calculon.FeatureAll,
				PinBeneficial: true,
				MaxInterleave: 4,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GPT-3 175B under a $20M budget — 16 H100 designs (HBM3 × DDR5):")
	fmt.Printf("%-8s %-8s %-9s %-9s %-8s %-12s %-10s\n",
		"HBM3", "DDR5", "$/GPU", "max GPUs", "GPUs", "samples/s", "perf/$M")
	var bestPerf, bestValue *row
	for _, ev := range evals {
		mr := ev.PerModel[0]
		r := row{
			hbm: ev.Design.HBM.Capacity.String(), ddr: "-",
			price: ev.UnitPrice, maxGPUs: ev.MaxGPUs,
		}
		if ev.Design.DDR.Capacity > 0 {
			r.ddr = ev.Design.DDR.Capacity.String()
		}
		price := fmt.Sprintf("$%.1fk", r.price/1e3)
		if mr.Found {
			r.gpus, r.rate, r.value = mr.GPUs, mr.SampleRate, mr.PerfPerMDollar
			fmt.Printf("%-8s %-8s %-9s %-9d %-8d %-12.0f %-10.0f\n",
				r.hbm, r.ddr, price, r.maxGPUs, r.gpus, r.rate, r.value)
		} else {
			fmt.Printf("%-8s %-8s %-9s %-9d %-8s %-12s %-10s\n",
				r.hbm, r.ddr, price, r.maxGPUs, "—", "—", "—")
			continue
		}
		rc := r
		if bestPerf == nil || rc.rate > bestPerf.rate {
			bestPerf = &rc
		}
		if bestValue == nil || rc.value > bestValue.value {
			bestValue = &rc
		}
	}
	if bestPerf != nil {
		fmt.Printf("\nfastest design:      %s HBM3 + %s DDR5 (%.0f samples/s on %d GPUs)\n",
			bestPerf.hbm, bestPerf.ddr, bestPerf.rate, bestPerf.gpus)
	}
	if bestValue != nil {
		fmt.Printf("best perf per $M:    %s HBM3 + %s DDR5 (%.0f samples/s per $M)\n",
			bestValue.hbm, bestValue.ddr, bestValue.value)
	}
	fmt.Println("\n(the paper's $125M study is `calculon study table3 -full`)")
}

type row struct {
	hbm, ddr    string
	price       float64
	maxGPUs     int
	gpus        int
	rate, value float64
}
