// Parallelism study: the §4.1 trade-off analysis. Sweeps tensor/pipeline/
// data parallelism splits of Megatron-1T across 4,096 A100s, showing how
// over-emphasizing any one mode degrades performance, then asks the
// exhaustive search engine for the true optimum and compares it with the
// conventional heuristic split.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"calculon"
)

func main() {
	m := calculon.MustPreset("megatron-1T").WithBatch(4096)

	fmt.Println("Megatron-1T, batch 4096, on 4096 A100s — TP vs PP at DP=32")
	fmt.Println("(memory capacity unconstrained so every split is comparable)")
	fmt.Printf("%-14s %-12s %-10s %-12s %-12s %-10s\n",
		"split", "batch time", "bubble", "TP exposed", "DP exposed", "mem/GPU")
	for i := 0; i <= 5; i++ {
		t := 1 << i
		p := 128 / t
		sys := calculon.A100(4096).WithMem1Capacity(1024 * calculon.TiB).WithFastDomain(max(t, 8))
		st := calculon.Strategy{
			TP: t, PP: p, DP: 32, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeFull, TPRSAG: true, OptimSharding: true,
		}
		res, err := calculon.Run(m, sys, st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-12v %-10v %-12v %-12v %-10v\n",
			fmt.Sprintf("t=%d p=%d", t, p), res.BatchTime, res.Time.PPBubble,
			res.Time.TPExposed, res.Time.DPExposed, res.Mem1.Total())
	}

	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("exhaustive search over the full optimization space (80 GiB HBM):")
	res, err := calculon.SearchExecution(context.Background(), m, calculon.A100(4096), calculon.SearchOptions{
		Enum: calculon.EnumOptions{
			Features:      calculon.FeatureAll,
			PinBeneficial: true,
			MaxInterleave: 8,
		},
		TopK: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d strategies, %d feasible\n", res.Evaluated, res.Feasible)
	for i, r := range res.Top {
		fmt.Printf("#%d  %6.1f samples/s  MFU %5.2f%%  %v\n",
			i+1, r.SampleRate, 100*r.MFU, r.Strategy)
	}

	heuristic := calculon.Strategy{
		TP: 8, PP: 64, DP: 8, Microbatch: 1, Interleave: 2, OneFOneB: true,
		Recompute: calculon.RecomputeFull, TPRSAG: true, OptimSharding: true,
	}
	hres, err := calculon.Run(m, calculon.A100(4096), heuristic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconventional heuristic (t=8,p=64,d=8, full recompute): %.1f samples/s\n", hres.SampleRate)
	fmt.Printf("search-found optimum is %.2f× faster\n", res.Best.SampleRate/hres.SampleRate)
}
