package perf

import (
	"calculon/internal/execution"
	"calculon/internal/units"
)

// actPerMBPerBlock returns the stored-activation bytes one microbatch leaves
// behind in one block, under the strategy's recompute mode: everything, the
// non-attention-matrix tensors, or just the block's input.
func (e *eval) actPerMBPerBlock() units.Bytes {
	if e.st.Inference {
		return 0
	}
	switch e.st.Recompute {
	case execution.RecomputeFull:
		return e.boundaryBytes
	case execution.RecomputeAttn:
		return e.tot.ActBytes - e.tot.SqActBytes
	default:
		return e.tot.ActBytes
	}
}

// inflightMicrobatches returns how many microbatches' activations the
// busiest (first) pipeline stage holds simultaneously. Plain 1F1B holds p;
// the interleaved schedule holds p·(1 + (p−1)/(p·v)) — "an even larger
// activation space", §4.1 — and a GPipe-style schedule holds all n.
func (e *eval) inflightMicrobatches() float64 {
	if e.st.Inference {
		return 1
	}
	p, v, n := e.st.PP, e.st.Interleave, e.n
	if p == 1 {
		return 1
	}
	if !e.st.OneFOneB {
		return float64(n)
	}
	base := float64(p)
	if v > 1 {
		base = float64(p) * (1 + float64(p-1)/float64(p*v))
	}
	if float64(n) < base {
		return float64(n)
	}
	return base
}

// memory produces the per-processor consumption of both tiers (§2.4's
// memory reporting: weights, optimizer state, activations, gradients).
// Offloaded categories keep a Fig. 8 working set — compute, prefetch, and
// writeback buffers for one block — resident in the first tier and stash
// the remainder in the second.
//
// These rows must agree bit for bit with the pre-screen's analytic lower
// bound on every architecture, so the arithmetic is kept FMA-free (see
// docs/LINT.md).
//
//calculonvet:ordered
func (e *eval) memory() (mem1, mem2 MemBreakdown) {
	blockW := e.tot.WeightBytes
	weights := blockW.Times(float64(e.bp))
	mem1.Weights = weights
	if e.st.WeightOffload {
		resident := minBytes(weights, 3*blockW)
		mem1.Weights = resident
		mem2.Weights = weights - resident
	}

	if !e.st.Inference {
		// fp16 gradients are the same size as the fp16 weights. With a
		// sharded optimizer and overlapped DP communication they are
		// reduce-scattered per block as the backward drains, so only the
		// local shard plus a per-block working set persists (ZeRO). When
		// weights are offloaded the remainder streams to the second tier
		// right behind the backward pass.
		grads := weights
		if e.st.OptimSharding && e.st.DPOverlap {
			grads = minBytes(weights, units.Bytes(3*blockW)+weights.DivN(float64(e.st.DP)))
		}
		mem1.WeightGrads = grads
		if e.st.WeightOffload {
			resident := minBytes(grads, 3*blockW)
			mem1.WeightGrads = resident
			mem2.WeightGrads = grads - resident
		}
	}

	if !e.st.Inference {
		// Adam state: fp32 master weights + two fp32 moments = 12 bytes per
		// parameter = 6× the fp16 weight bytes, sharded across DP when
		// optimizer sharding is on.
		optim := 6 * weights
		if e.st.OptimSharding {
			optim = optim.DivN(float64(e.st.DP))
		}
		mem1.Optimizer = optim
		if e.st.OptimOffload {
			resident := minBytes(optim, 3*optim.DivN(float64(e.bp)))
			mem1.Optimizer = resident
			mem2.Optimizer = optim - resident
		}
	}

	actBlock := e.actPerMBPerBlock()
	acts := actBlock.Times(float64(e.bp) * e.inflightMicrobatches())
	mem1.Activations = acts
	if e.st.ActOffload {
		resident := minBytes(acts, 3*actBlock)
		mem1.Activations = resident
		mem2.Activations = acts - resident
	}

	// Working space for the gradient flowing through the current layer
	// (double-buffered largest tensor). Inference needs the same space for
	// the live activations themselves.
	work := 2 * e.tot.MaxOutputBytes
	if e.st.Inference {
		mem1.Activations += work
	} else {
		mem1.ActGrads = work
	}
	return mem1, mem2
}

func minBytes(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}
