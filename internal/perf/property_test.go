package perf

import (
	"testing"
	"testing/quick"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// randomStrategy derives a valid strategy from raw fuzz bytes for a
// 64-processor gpt3-13B setup (40 heads, 40 blocks, batch 64).
func randomStrategy(raw [8]uint8) execution.Strategy {
	tps := []int{1, 2, 4, 8}
	pps := []int{1, 2, 4, 8}
	tp := tps[int(raw[0])%len(tps)]
	pp := pps[int(raw[1])%len(pps)]
	dp := 64 / (tp * pp)
	perPipe := 64 / dp
	mbs := []int{1, 2, 4}
	mb := mbs[int(raw[2])%len(mbs)]
	if perPipe%mb != 0 {
		mb = 1
	}
	st := execution.Strategy{
		TP: tp, PP: pp, DP: dp, Microbatch: mb, Interleave: 1, OneFOneB: true,
		Recompute: []execution.RecomputeMode{
			execution.RecomputeNone, execution.RecomputeAttn, execution.RecomputeFull,
		}[int(raw[3])%3],
		TPOverlap: []execution.TPOverlapMode{
			execution.TPOverlapNone, execution.TPOverlapPipe, execution.TPOverlapRing,
		}[int(raw[4])%3],
		DPOverlap:     raw[5]&1 == 1,
		OptimSharding: raw[5]&2 == 2,
		FusedLayers:   raw[5]&4 == 4,
	}
	if raw[6]&1 == 1 {
		st.TPRSAG = true
		if raw[6]&2 == 2 {
			st.SeqParallel = true
			if raw[6]&4 == 4 {
				st.TPRedoForSP = true
			}
		}
	}
	if pp > 1 && raw[7]&1 == 1 {
		st.Interleave = 2
	}
	return st
}

func propertySystem() system.System {
	return system.A100(64).WithMem1Capacity(10 * units.TiB)
}

// TestPropertyBreakdownIdentities: for every valid strategy, the breakdown
// sums to the batch time, exposed communication never exceeds the total,
// sample rate is batch/time, and MFU lies in (0,1).
func TestPropertyBreakdownIdentities(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	sys := propertySystem()
	runner, err := NewRunner(m, sys)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [8]uint8) bool {
		st := randomStrategy(raw)
		res, err := runner.Run(st)
		if err != nil {
			return true // infeasible is fine; identities apply to results
		}
		sum := res.Time.FwdPass + res.Time.BwdPass + res.Time.Recompute +
			res.Time.OptimStep + res.Time.PPBubble + res.Time.TPExposed +
			res.Time.PPExposed + res.Time.DPExposed + res.Time.OffloadExposed
		if abs(float64(sum-res.BatchTime)) > 1e-9*float64(res.BatchTime) {
			return false
		}
		if res.Time.TPExposed > res.Time.TPComm+1e-12 ||
			res.Time.DPExposed > res.Time.DPComm+1e-12 ||
			res.Time.PPExposed > res.Time.PPComm+1e-12 {
			return false
		}
		if abs(res.SampleRate-64/float64(res.BatchTime)) > 1e-6*res.SampleRate {
			return false
		}
		return res.MFU > 0 && res.MFU < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFasterHardwareNeverHurts: scaling any single hardware
// resource up cannot increase batch time.
func TestPropertyFasterHardwareNeverHurts(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	base := propertySystem()

	boosts := []func(system.System) system.System{
		func(s system.System) system.System {
			s.Compute.MatrixPeak *= 2
			return s
		},
		func(s system.System) system.System {
			s.Compute.VectorPeak *= 2
			return s
		},
		func(s system.System) system.System {
			s.Mem1.Bandwidth *= 2
			return s
		},
		func(s system.System) system.System {
			nets := append([]system.Network(nil), s.Networks...)
			for i := range nets {
				nets[i].Bandwidth *= 2
			}
			s.Networks = nets
			return s
		},
		func(s system.System) system.System {
			nets := append([]system.Network(nil), s.Networks...)
			for i := range nets {
				nets[i].Latency = 0
			}
			s.Networks = nets
			return s
		},
	}
	f := func(raw [8]uint8, which uint8) bool {
		st := randomStrategy(raw)
		r1, err := Run(m, base, st)
		if err != nil {
			return true
		}
		boosted := boosts[int(which)%len(boosts)](base)
		r2, err := Run(m, boosted, st)
		if err != nil {
			return false // faster hardware must not become infeasible
		}
		return r2.BatchTime <= r1.BatchTime*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMemoryMonotoneInMicrobatch: activations never shrink when the
// microbatch grows (same split otherwise).
func TestPropertyMemoryMonotoneInMicrobatch(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	sys := propertySystem()
	f := func(raw [8]uint8) bool {
		st := randomStrategy(raw)
		st.Microbatch = 1
		r1, err := Run(m, sys, st)
		if err != nil {
			return true
		}
		st2 := st
		st2.Microbatch = 2
		if (64 / st.DP % 2) != 0 {
			return true
		}
		r2, err := Run(m, sys, st2)
		if err != nil {
			return true
		}
		return r2.Mem1.Activations >= r1.Mem1.Activations-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMoreCapacityNeverInfeasible: a strategy feasible at capacity
// C stays feasible (with identical results) at any capacity ≥ C.
func TestPropertyMoreCapacityNeverInfeasible(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	f := func(raw [8]uint8, extraGiB uint8) bool {
		st := randomStrategy(raw)
		small := system.A100(64)
		r1, err := Run(m, small, st)
		if err != nil {
			return true
		}
		big := small.WithMem1Capacity(small.Mem1.Capacity + units.Bytes(extraGiB)*units.GiB)
		r2, err := Run(m, big, st)
		if err != nil {
			return false
		}
		return r2.BatchTime == r1.BatchTime && r2.Mem1 == r1.Mem1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBiggerBatchAmortizes: doubling the global batch at a fixed
// split costs at most 2× the time (the bubble and optimizer amortize) and
// at least 1× (no free lunch).
func TestPropertyBiggerBatchAmortizes(t *testing.T) {
	sys := propertySystem()
	f := func(raw [8]uint8) bool {
		st := randomStrategy(raw)
		m1 := model.MustPreset("gpt3-13B").WithBatch(64)
		m2 := m1.WithBatch(128)
		r1, err := Run(m1, sys, st)
		if err != nil {
			return true
		}
		r2, err := Run(m2, sys, st)
		if err != nil {
			return true
		}
		return r2.BatchTime <= 2*r1.BatchTime*(1+1e-9) && r2.BatchTime >= r1.BatchTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
