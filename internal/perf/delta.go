package perf

import (
	"calculon/internal/execution"
)

// Term-group invalidation masks: for each group of evaluation terms, the set
// of Strategy fields whose change can perturb the group's outputs. A group
// is recomputed by RunDelta exactly when the field diff between the previous
// and current strategy intersects its mask; otherwise its outputs — pure
// functions of unchanged inputs — carry over bit-identically from the
// previous evaluation. Masks compose along the dataflow: a group that reads
// another group's outputs includes that group's mask (profileMask sits
// inside every consumer, tensorMask inside offloadMask). The
// delta-vs-scratch equivalence tests (and the no-delta arm of the search
// equivalence suite) pin that these masks are sufficient; being too wide
// only costs speed, never correctness.
const (
	// shapeMask covers the derived shape quantities n (microbatches per
	// pipeline pass: DP and Microbatch), bp (blocks per processor: PP), and
	// bc (blocks per chunk: PP and Interleave).
	shapeMask = execution.FieldPP | execution.FieldDP |
		execution.FieldMicrobatch | execution.FieldInterleave

	// profileMask covers the memoized per-block profile: exactly the
	// blockKey fields (tp, microbatch, recompute, seqParallel, tpRedo,
	// fused, inference). Every downstream group reads profile outputs, so
	// profileMask is included in all of them.
	profileMask = execution.FieldTP | execution.FieldMicrobatch |
		execution.FieldRecompute | execution.FieldSeqParallel |
		execution.FieldTPRedoForSP | execution.FieldFusedLayers |
		execution.FieldInference

	// tensorMask covers eval.tensorComm: TP collectives sized by
	// (TP, Microbatch), shaped by TPRSAG/TPRedoForSP/Recompute, overlapped
	// per TPOverlap against the profile's block times.
	tensorMask = profileMask | execution.FieldTPRSAG | execution.FieldTPOverlap

	// pipeMask covers eval.pipelineComm: boundary traffic per (PP,
	// Interleave, Inference), sharded per PPRSAG/SeqParallel/TP, sized by
	// the profile's boundary bytes.
	pipeMask = profileMask | execution.FieldPP | execution.FieldPPRSAG |
		execution.FieldInterleave

	// dataMask covers eval.dataComm: gradient synchronization over DP,
	// shaped by OptimSharding/DPOverlap, overlapped against the profile's
	// block times across the shape quantities.
	dataMask = profileMask | shapeMask | execution.FieldOptimSharding |
		execution.FieldDPOverlap | execution.FieldOneFOneB

	// optimMask covers eval.optimizer: the Adam step over the local
	// (possibly sharded, possibly offloaded) parameters.
	optimMask = profileMask | shapeMask | execution.FieldOptimSharding |
		execution.FieldOptimOffload

	// offloadMask covers eval.offload, which reads tensorComm's exposed
	// times as overlap windows in addition to the offload switches.
	offloadMask = tensorMask | shapeMask | execution.FieldWeightOffload |
		execution.FieldActOffload | execution.FieldOptimOffload |
		execution.FieldOptimSharding

	// memoryMask covers eval.memory: per-tier totals over weights,
	// gradients, optimizer state, and activations, including the in-flight
	// microbatch count (OneFOneB) and every offload/sharding residency rule.
	memoryMask = profileMask | shapeMask | execution.FieldOneFOneB |
		execution.FieldOptimSharding | execution.FieldDPOverlap |
		execution.FieldWeightOffload | execution.FieldActOffload |
		execution.FieldOptimOffload

	// screenMask covers the fields the phase-1 analytic pre-screen verdict
	// (and its error operands) can depend on; see
	// execution.PreScreen.Check and EnumOptions.boundLeaves.
	screenMask = execution.FieldTP | execution.FieldPP | execution.FieldDP |
		execution.FieldOptimSharding | execution.FieldDPOverlap |
		execution.FieldWeightOffload | execution.FieldActOffload |
		execution.FieldOptimOffload | execution.FieldInference

	allFields = ^execution.FieldMask(0)
)

// deltaState carries one evaluation chain's reusable terms between RunDelta
// calls: the last fully evaluated strategy, its eval state and memory
// breakdown, and the last pre-screened strategy with its verdict. It is NOT
// safe for concurrent use — each worker goroutine threads its own chain
// through the RunInfo it gets back — while the owning Runner stays shared.
type deltaState struct {
	r *Runner // owning runner; a chain never crosses runners

	valid bool
	prev  execution.Strategy // normalized, groups fully evaluated
	e     eval
	mem1  MemBreakdown
	mem2  MemBreakdown

	screenValid bool
	screenPrev  execution.Strategy
	screenErr   error

	// profCache is a chain-local mirror of the Runner's shared profile memo:
	// a plain map with a concrete key type, so repeat lookups on this chain
	// skip the sync.Map's interface boxing and hashing. An entry exists only
	// for keys this chain already fetched through r.profile — which inserted
	// them into the shared memo — so a local hit is, bit for bit, the cache
	// hit the scratch path would have reported. Never consulted under
	// DisableMemo (profiles must be recomputed, and CacheHits must stay 0).
	profCache map[blockKey]*blockProfile
}

// DisableDelta makes RunDelta fall back to the scratch path (RunDetailed)
// so every evaluation recomputes all terms. It exists as an escape hatch and
// as the reference arm of the equivalence tests; call it before the Runner
// is shared across goroutines.
func (r *Runner) DisableDelta() { r.noDelta = true }

// RunDelta evaluates one strategy incrementally against the previous
// evaluation of the same chain: it diffs st against the last strategy this
// chain fully evaluated and recomputes only the term groups the changed
// fields can perturb, carrying everything else forward unrecomputed. The
// chain is threaded through RunInfo — pass the RunInfo returned by the
// previous RunDelta call (or a zero RunInfo to start a chain). Results,
// feasibility verdicts, and RunInfo flags are bit-identical to RunDetailed;
// only the work differs. The fewer fields change between successive calls —
// e.g. along execution's Gray-code toggle order, where neighbors differ in
// one toggle — the more is reused.
//
// A chain must stay within one goroutine; the Runner itself remains safe
// for concurrent use by many chains.
func (r *Runner) RunDelta(prev RunInfo, st execution.Strategy) (Result, RunInfo, error) {
	var res Result
	info, err := r.RunDeltaInto(prev, st, &res)
	return res, info, err
}

// RunDeltaInto is RunDelta writing the result into *out instead of
// returning it, so tight search loops reuse one Result instead of copying
// ~400 bytes through every return frame. On success *out holds the result;
// on error (or on the DisableDelta fallback's error path) *out is zeroed,
// exactly the Result a scratch call would have returned.
func (r *Runner) RunDeltaInto(prev RunInfo, st execution.Strategy, out *Result) (RunInfo, error) {
	if r.noDelta {
		var info RunInfo
		var err error
		*out, info, err = r.RunDetailed(st)
		return info, err
	}
	d := prev.delta
	if d == nil || d.r != r {
		d = &deltaState{r: r}
	}
	info, err := r.runDelta(d, st, out)
	info.delta = d
	if c := r.counters; c != nil {
		c.evaluated.Add(1)
		if err != nil {
			c.infeasible.Add(1)
		}
		if info.PreScreened {
			c.prescreened.Add(1)
		}
		if info.CacheHit {
			c.cacheHits.Add(1)
		}
	}
	return info, err
}

// runDelta mirrors Runner.run stage by stage; every recomputed group calls
// the same method on the same inputs, and every skipped group's outputs are
// pure functions of inputs the field diff proves unchanged, so the two
// paths are bit-identical by construction (and by the equivalence tests).
// The result lands in *out, which is zeroed on every error path.
func (r *Runner) runDelta(d *deltaState, st execution.Strategy, out *Result) (RunInfo, error) {
	m, sys := r.m, r.sys
	st = st.Normalize()
	if err := st.Validate(m); err != nil {
		*out = Result{}
		return RunInfo{}, infeasible("%v", err)
	}
	if r.screen != nil && !r.noPreScreen {
		// The pre-screen verdict depends only on screenMask fields, so a
		// diff outside the mask reuses the previous verdict (same error
		// value, same nil). The screen chain is tracked separately from the
		// eval chain: screened-and-rejected strategies never reach the eval
		// stages, so d.prev would be the wrong diff base.
		var err error
		if d.screenValid && !execution.DiffMask(d.screenPrev, st).Has(screenMask) {
			err = d.screenErr
		} else {
			err = r.screen.Check(st)
		}
		d.screenValid, d.screenPrev, d.screenErr = true, st, err
		if err != nil {
			*out = Result{}
			return RunInfo{PreScreened: true}, infeasible("%v", err)
		}
	} else {
		if st.Procs() > sys.Procs {
			*out = Result{}
			return RunInfo{}, infeasible("strategy needs %d procs, system has %d", st.Procs(), sys.Procs)
		}
		if (st.WeightOffload || st.ActOffload || st.OptimOffload) && !sys.Mem2.Present() {
			*out = Result{}
			return RunInfo{}, infeasible("offloading requires a second memory tier")
		}
	}

	mask := allFields
	if d.valid {
		mask = execution.DiffMask(d.prev, st)
	} else {
		d.e.m, d.e.sys = m, sys
	}
	e := &d.e
	e.st = st

	var hit bool
	if !d.valid || r.noMemo || mask.Has(profileMask) {
		var prof *blockProfile
		if r.noMemo {
			prof, hit = r.profile(st)
		} else if p, ok := d.profCache[keyFor(st)]; ok {
			prof, hit = p, true
		} else {
			prof, hit = r.profile(st)
			if d.profCache == nil {
				d.profCache = make(map[blockKey]*blockProfile, 64)
			}
			d.profCache[keyFor(st)] = prof
		}
		e.tot = prof.tot
		e.boundaryBytes = prof.boundaryBytes
		e.blockFwd, e.blockBwd, e.blockRecompute = prof.fwd, prof.bwd, prof.recompute
		e.blockFwdSlack, e.blockBwdSlack, e.recompSlack = prof.fwdSlack, prof.bwdSlack, prof.rcSlack
	} else {
		// The memo necessarily holds this blockKey — the previous
		// evaluation put it there — so the scratch path would have hit.
		hit = true
	}
	info := RunInfo{CacheHit: hit}

	if mask.Has(shapeMask) {
		e.n = st.Microbatches(m)
		e.bp = st.BlocksPerProc(m)
		e.bc = st.BlocksPerChunk(m)
	}
	// Each group's outputs are zeroed before the recompute because the
	// methods accumulate (+=) or early-return leaving zeros (TP≤1, PP≤1,
	// no offload) — exactly the state a zero-initialized scratch eval has.
	if mask.Has(tensorMask) {
		e.tpFwdPerBlock, e.tpBwdPerBlock = 0, 0
		e.tpFwdExposedPerBlock, e.tpBwdExposedPerBlock = 0, 0
		e.fwdPenalty, e.bwdPenalty = 0, 0
		e.tensorComm()
	}
	if mask.Has(pipeMask) {
		e.ppPerMicrobatch, e.ppExposedPerMicrobatch = 0, 0
		e.pipelineComm()
	}
	if mask.Has(dataMask) {
		e.dpTotal, e.dpExposed, e.dpPenalty = 0, 0, 0
		e.dataComm()
	}
	if mask.Has(optimMask) {
		e.optimTime = 0
		e.optimizer()
	}
	if mask.Has(offloadMask) {
		e.offloadTotal, e.offloadExposed = 0, 0
		e.offloadBWRequired, e.offloadBWUsed = 0, 0
		e.offload()
	}
	if mask.Has(memoryMask) {
		d.mem1, d.mem2 = e.memory()
	}
	// The eval state is now fully that of st; later infeasibility (memory
	// overflow) does not invalidate it as a diff base.
	d.prev, d.valid = st, true

	mem1, mem2 := d.mem1, d.mem2
	if mem1.Total() > sys.Mem1.Capacity {
		*out = Result{}
		return info, infeasible("mem1 needs %v of %v", mem1.Total(), sys.Mem1.Capacity)
	}
	if mem2.Total() > sys.Mem2.Capacity {
		*out = Result{}
		return info, infeasible("mem2 needs %v of %v", mem2.Total(), sys.Mem2.Capacity)
	}

	t := e.assemble()
	batch := t.Total()
	*out = Result{
		Model:             m,
		System:            sys.Name,
		Strategy:          st,
		BatchTime:         batch,
		SampleRate:        batch.Rate(float64(m.Batch)),
		Time:              t,
		Mem1:              mem1,
		Mem2:              mem2,
		OffloadBWRequired: e.offloadBWRequired,
		OffloadBWUsed:     e.offloadBWUsed,
		ProcsUsed:         st.Procs(),
	}
	useful := r.usefulFLOPs(st)
	peak := sys.Compute.MatrixPeak.Times(float64(st.Procs()))
	out.MFU = useful.Ratio(peak.For(batch))
	return info, nil
}
