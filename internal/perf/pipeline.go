package perf

import (
	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/pipesim"
	"calculon/internal/system"
	"calculon/internal/units"
)

// PipelineParams derives the discrete pipeline-simulation parameters
// (internal/pipesim) for a configuration: the per-chunk forward/backward
// times priced by the analytical model, the boundary-hop cost, and the
// schedule shape. This is how the closed-form bubble model is
// cross-validated, and it lets users render Fig. 2-style timelines for
// their own configurations.
func PipelineParams(m model.LLM, sys system.System, st execution.Strategy) (pipesim.Params, error) {
	st = st.Normalize()
	if err := m.Validate(); err != nil {
		return pipesim.Params{}, err
	}
	if err := sys.Validate(); err != nil {
		return pipesim.Params{}, err
	}
	if err := st.Validate(m); err != nil {
		return pipesim.Params{}, infeasible("%v", err)
	}
	e := newEval(m, sys, st)
	e.tensorComm()
	e.pipelineComm()

	var hop units.Seconds
	if st.PP > 1 {
		hop = e.ppPerMicrobatch.DivN(float64(2 * st.Interleave))
	}
	sched := pipesim.GPipe
	if st.OneFOneB {
		sched = pipesim.OneFOneB
	}
	return pipesim.Params{
		Stages:       st.PP,
		Chunks:       st.Interleave,
		Microbatches: e.n,
		FwdChunk:     (e.blockFwd + e.fwdPenalty + e.tpFwdExposedPerBlock).Times(float64(e.bc)),
		BwdChunk:     (e.blockBwd + e.blockRecompute + e.bwdPenalty + e.tpBwdExposedPerBlock).Times(float64(e.bc)),
		Hop:          hop,
		Schedule:     sched,
	}, nil
}
