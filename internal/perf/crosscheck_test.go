package perf

import (
	"math"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/pipesim"
	"calculon/internal/system"
	"calculon/internal/units"
)

// TestBubbleMatchesDiscreteSimulation validates the analytical pipeline
// model the way the paper validates against Selene: the closed-form bubble
// term must agree with a discrete simulation of the actual (interleaved)
// 1F1B schedule built from the same per-chunk times.
func TestBubbleMatchesDiscreteSimulation(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(512)
	sys := system.A100(4096).WithMem1Capacity(10 * units.TiB)
	cases := []execution.Strategy{
		{TP: 8, PP: 8, DP: 8, Microbatch: 1, Interleave: 1, OneFOneB: true, Recompute: execution.RecomputeFull},
		{TP: 8, PP: 16, DP: 4, Microbatch: 1, Interleave: 1, OneFOneB: true, Recompute: execution.RecomputeFull},
		{TP: 8, PP: 16, DP: 4, Microbatch: 1, Interleave: 2, OneFOneB: true, Recompute: execution.RecomputeFull},
		{TP: 8, PP: 8, DP: 8, Microbatch: 2, Interleave: 3, OneFOneB: true, Recompute: execution.RecomputeAttn, TPRSAG: true, SeqParallel: true},
	}
	for _, st := range cases {
		st = st.Normalize()
		if err := st.Validate(m); err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		e := newEval(m, sys, st)
		e.tensorComm()
		e.pipelineComm()
		bd := e.assemble()

		hop := units.Seconds(0)
		if st.PP > 1 {
			hop = e.ppPerMicrobatch / units.Seconds(2*st.Interleave)
		}
		chunkFwd := units.Seconds(float64(e.bc)) * (e.blockFwd + e.fwdPenalty + e.tpFwdExposedPerBlock)
		chunkBwd := units.Seconds(float64(e.bc)) * (e.blockBwd + e.blockRecompute + e.bwdPenalty + e.tpBwdExposedPerBlock)

		simRes, err := pipesim.Simulate(pipesim.Params{
			Stages:       st.PP,
			Chunks:       st.Interleave,
			Microbatches: e.n,
			FwdChunk:     chunkFwd,
			BwdChunk:     chunkBwd,
			Hop:          hop,
			Schedule:     pipesim.OneFOneB,
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		analytical := float64(bd.PPBubble)
		simulated := float64(simRes.Bubble)
		if st.PP == 1 {
			if analytical != 0 {
				t.Errorf("%v: bubble must be zero without pipelining", st)
			}
			continue
		}
		rel := math.Abs(analytical-simulated) / simulated
		if rel > 0.25 {
			t.Errorf("%v: analytical bubble %.3fs vs simulated %.3fs (rel %.2f)",
				st, analytical, simulated, rel)
		}
	}
}

// TestInFlightMatchesDiscreteSimulation validates the activation-residency
// factor of the memory model against the simulator's peak in-flight count.
func TestInFlightMatchesDiscreteSimulation(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(512)
	sys := system.A100(4096).WithMem1Capacity(10 * units.TiB)
	cases := []execution.Strategy{
		{TP: 8, PP: 8, DP: 8, Microbatch: 1, Interleave: 1, OneFOneB: true, Recompute: execution.RecomputeFull},
		{TP: 8, PP: 16, DP: 4, Microbatch: 1, Interleave: 2, OneFOneB: true, Recompute: execution.RecomputeFull},
		{TP: 8, PP: 8, DP: 8, Microbatch: 1, Interleave: 4, OneFOneB: true, Recompute: execution.RecomputeFull},
	}
	for _, st := range cases {
		st = st.Normalize()
		e := newEval(m, sys, st)
		analytical := e.inflightMicrobatches()

		simRes, err := pipesim.Simulate(pipesim.Params{
			Stages:       st.PP,
			Chunks:       st.Interleave,
			Microbatches: e.n,
			FwdChunk:     e.blockFwd * units.Seconds(float64(e.bc)),
			BwdChunk:     (e.blockBwd + e.blockRecompute) * units.Seconds(float64(e.bc)),
			Schedule:     pipesim.OneFOneB,
		})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		simulated := float64(simRes.PeakInFlight) / float64(st.Interleave)
		rel := math.Abs(analytical-simulated) / simulated
		if rel > 0.35 {
			t.Errorf("%v: analytical in-flight %.2f vs simulated %.2f (rel %.2f)",
				st, analytical, simulated, rel)
		}
	}
}
