package perf

import (
	"calculon/internal/comm"
	"calculon/internal/execution"
	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// Run evaluates one (LLM, system, strategy) point and returns the complete
// performance estimate, or an ErrInfeasible-wrapped error when the
// configuration cannot run. A single call is allocation-light and takes on
// the order of microseconds, which is what makes exhaustive search
// practical (§5).
func Run(m model.LLM, sys system.System, st execution.Strategy) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	return (&Runner{m: m, sys: sys}).Run(st)
}

// Runner evaluates many strategies against one fixed, pre-validated
// (LLM, system) pair — the hot path of the exhaustive searches. EnableStats
// adds optional evaluated/infeasible counters (see RunnerStats).
type Runner struct {
	m        model.LLM
	sys      system.System
	counters *runnerCounters
}

// NewRunner validates the model and system once and returns an evaluator.
func NewRunner(m model.LLM, sys system.System) (*Runner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return &Runner{m: m, sys: sys}, nil
}

// Run evaluates one strategy; see the package-level Run.
func (r *Runner) Run(st execution.Strategy) (Result, error) {
	res, err := r.run(st)
	if c := r.counters; c != nil {
		c.evaluated.Add(1)
		if err != nil {
			c.infeasible.Add(1)
		}
	}
	return res, err
}

func (r *Runner) run(st execution.Strategy) (Result, error) {
	m, sys := r.m, r.sys
	st = st.Normalize()
	if err := st.Validate(m); err != nil {
		return Result{}, infeasible("%v", err)
	}
	if st.Procs() > sys.Procs {
		return Result{}, infeasible("strategy needs %d procs, system has %d", st.Procs(), sys.Procs)
	}
	if (st.WeightOffload || st.ActOffload || st.OptimOffload) && !sys.Mem2.Present() {
		return Result{}, infeasible("offloading requires a second memory tier")
	}

	e := newEval(m, sys, st)
	e.computeBlocks()
	e.tensorComm()
	e.pipelineComm()
	e.dataComm()
	e.optimizer()
	e.offload()

	mem1, mem2 := e.memory()
	if mem1.Total() > sys.Mem1.Capacity {
		return Result{}, infeasible("mem1 needs %v of %v", mem1.Total(), sys.Mem1.Capacity)
	}
	if mem2.Total() > sys.Mem2.Capacity {
		return Result{}, infeasible("mem2 needs %v of %v", mem2.Total(), sys.Mem2.Capacity)
	}

	t := e.assemble()
	batch := t.Total()
	res := Result{
		Model:             m,
		System:            sys.Name,
		Strategy:          st,
		BatchTime:         batch,
		SampleRate:        float64(m.Batch) / float64(batch),
		Time:              t,
		Mem1:              mem1,
		Mem2:              mem2,
		OffloadBWRequired: e.offloadBWRequired,
		OffloadBWUsed:     e.offloadBWUsed,
		ProcsUsed:         st.Procs(),
	}
	useful := units.FLOPs(float64(m.Batch)) * usefulFLOPsPerSample(m, st)
	peak := float64(st.Procs()) * float64(sys.Compute.MatrixPeak)
	res.MFU = float64(useful) / (float64(batch) * peak)
	return res, nil
}

// usefulFLOPsPerSample is the recompute-free model FLOP count per sample
// used for MFU (forward + backward for training, forward for inference).
func usefulFLOPsPerSample(m model.LLM, st execution.Strategy) units.FLOPs {
	fwd := units.FLOPs(float64(m.Seq)) * m.FwdFLOPsPerToken()
	if st.Inference {
		return fwd
	}
	return 3 * fwd
}

// eval carries the intermediate quantities of one evaluation.
type eval struct {
	m   model.LLM
	sys system.System
	st  execution.Strategy

	ls  []layers.Layer
	tot layers.Totals

	// Derived shape quantities.
	n  int // microbatches per pipeline pass
	bp int // blocks on the busiest processor
	bc int // blocks per interleave chunk

	// Per-microbatch, per-block compute times and HBM-idle slack.
	blockFwd, blockBwd, blockRecompute         units.Seconds
	blockFwdSlack, blockBwdSlack, recompSlack  units.Seconds
	fwdPenalty, bwdPenalty                     units.Seconds // overlap compute tax per block
	tpFwdPerBlock, tpBwdPerBlock               units.Seconds // total TP comm
	tpFwdExposedPerBlock, tpBwdExposedPerBlock units.Seconds
	ppPerMicrobatch, ppExposedPerMicrobatch    units.Seconds
	dpTotal, dpExposed, dpPenalty              units.Seconds
	optimTime                                  units.Seconds
	offloadTotal, offloadExposed               units.Seconds
	offloadBWRequired, offloadBWUsed           units.BytesPerSec
	boundaryBytes                              units.Bytes
}

func newEval(m model.LLM, sys system.System, st execution.Strategy) *eval {
	sh := layers.Shard{
		TP:          st.TP,
		SeqParallel: st.SeqParallel,
		TPRedo:      st.TPRedoForSP,
		Fused:       st.FusedLayers,
		Microbatch:  st.Microbatch,
		Inference:   st.Inference,
	}
	ls := layers.Block(m, sh)
	return &eval{
		m: m, sys: sys, st: st,
		ls:            ls,
		tot:           layers.Sum(ls),
		n:             st.Microbatches(m),
		bp:            st.BlocksPerProc(m),
		bc:            st.BlocksPerChunk(m),
		boundaryBytes: layers.BlockInputBytes(m, sh),
	}
}

// opTime applies the processing model of §2.2 to one operation: the time is
// the maximum of raw compute and raw memory access, each with size-based
// efficiency. slack is the HBM-idle portion usable for offload transfers.
func (e *eval) opTime(engine layers.Engine, flops units.FLOPs, traffic units.Bytes) (t, slack units.Seconds) {
	var rate units.FLOPsPerSec
	if engine == layers.Matrix {
		rate = e.sys.Compute.MatrixRate(flops)
	} else {
		rate = e.sys.Compute.VectorRate(flops)
	}
	ct := flops.Div(rate)
	mt := e.sys.Mem1.AccessTime(traffic)
	if ct >= mt {
		return ct, ct - mt
	}
	return mt, 0
}

// computeBlocks times one microbatch through one block: forward, backward,
// and the recompute portion selected by the strategy.
func (e *eval) computeBlocks() {
	for _, l := range e.ls {
		ft, fs := e.opTime(l.Engine, l.FLOPs, l.Traffic)
		e.blockFwd += ft
		e.blockFwdSlack += fs
		bt, bs := e.opTime(l.Engine, l.BwdFLOPs, l.BwdTraffic)
		e.blockBwd += bt
		e.blockBwdSlack += bs
		switch e.st.Recompute {
		case execution.RecomputeFull:
			e.blockRecompute += ft
			e.recompSlack += fs
		case execution.RecomputeAttn:
			if l.AttnGroup {
				e.blockRecompute += ft
				e.recompSlack += fs
			}
		}
	}
}

// tensorComm prices the per-block tensor-parallel collectives and applies
// the selected overlap mode. Hidden communication taxes the concurrent
// compute by the network's processor-usage fraction (§2.2).
func (e *eval) tensorComm() {
	t := e.st.TP
	if t <= 1 {
		return
	}
	net := e.sys.NetworkFor(t)
	full := units.Bytes(float64(e.st.Microbatch)*float64(e.m.Seq)*float64(e.m.Hidden)) * 2

	var fwd, bwd units.Seconds
	if e.st.TPRSAG {
		rs := comm.Time(net, comm.ReduceScatter, t, full)
		ag := comm.Time(net, comm.AllGather, t, full)
		fwd = 2 * (rs + ag)
		bwd = 2 * (rs + ag)
		if e.st.TPRedoForSP {
			// Backward re-gathers the sharded GEMM inputs it did not store.
			bwd += 2 * ag
		}
	} else {
		ar := comm.Time(net, comm.AllReduce, t, full)
		fwd = 2 * ar
		bwd = 2 * ar
	}
	if e.st.Recompute == execution.RecomputeFull {
		// Re-running the whole block forward re-runs its collectives too.
		bwd += fwd
	}
	e.tpFwdPerBlock, e.tpBwdPerBlock = fwd, bwd

	hide := e.st.TPOverlap.HiddenFraction()
	// Overlap can only hide communication behind the block's compute time.
	hiddenFwd := minSec(units.Seconds(hide)*fwd, e.blockFwd)
	hiddenBwd := minSec(units.Seconds(hide)*bwd, e.blockBwd+e.blockRecompute)
	e.tpFwdExposedPerBlock = fwd - hiddenFwd
	e.tpBwdExposedPerBlock = bwd - hiddenBwd
	tax := units.Seconds(net.ProcUse / (1 - net.ProcUse))
	e.fwdPenalty += hiddenFwd * tax
	e.bwdPenalty += hiddenBwd * tax
}

// pipelineComm prices the point-to-point boundary traffic of pipeline
// parallelism. With PP RS+AG (or sequence parallelism, whose boundary is
// already sharded) the transfer shrinks by t, at the cost of an all-gather
// on the fast network to reassemble the tensor.
func (e *eval) pipelineComm() {
	p := e.st.PP
	if p <= 1 {
		return
	}
	net := e.sys.NetworkFor(e.st.TP * p)
	bytes := e.boundaryBytes
	var reassemble units.Seconds
	if e.st.PPRSAG && !e.st.SeqParallel && e.st.TP > 1 {
		bytes /= units.Bytes(e.st.TP)
		tpNet := e.sys.NetworkFor(e.st.TP)
		reassemble = comm.Time(tpNet, comm.AllGather, e.st.TP, e.boundaryBytes)
	}
	hop := comm.Time(net, comm.P2P, 2, bytes) + reassemble
	// Each microbatch crosses v chunk boundaries forward and v backward.
	perMB := units.Seconds(2*e.st.Interleave) * hop
	if e.st.Inference {
		perMB = units.Seconds(e.st.Interleave) * hop
	}
	e.ppPerMicrobatch = perMB
	e.ppExposedPerMicrobatch = perMB
}

// dataComm prices the per-batch gradient synchronization of data
// parallelism, including optional overlap with the backward drain (Fig. 2b)
// and the rule that sharded optimizers forbid overlap during their step.
func (e *eval) dataComm() {
	d := e.st.DP
	if d <= 1 || e.st.Inference {
		return
	}
	net := e.sys.NetworkFor(e.st.TP * e.st.PP * d)
	grads := e.tot.WeightBytes * units.Bytes(e.bp)

	var overlappable, gather units.Seconds
	if e.st.OptimSharding {
		// Reduce-scatter during backward; the all-gather of updated
		// parameters runs after the (sharded) optimizer step — never during
		// it (§2.4) — but may prefetch against the next batch's forward.
		overlappable = comm.Time(net, comm.ReduceScatter, d, grads)
		gather = comm.Time(net, comm.AllGather, d, grads)
	} else {
		overlappable = comm.Time(net, comm.AllReduce, d, grads)
	}
	e.dpTotal = overlappable + gather

	hidden := units.Seconds(0)
	tax := units.Seconds(net.ProcUse / (1 - net.ProcUse))
	if e.st.DPOverlap && e.bp > 1 {
		// Per-block gradients become final as the last microbatch's
		// backward drains through this processor's blocks; the drain window
		// is the backward (plus recompute) of the remaining blocks.
		window := units.Seconds(float64(e.bp-1)) * (e.blockBwd + e.blockRecompute)
		frac := units.Seconds(float64(e.bp-1) / float64(e.bp))
		hidden = minSec(overlappable*frac, window)
		if gather > 0 {
			// The updated-parameter all-gather streams per block ahead of
			// the next forward pass (ZeRO-style prefetch), bounded by the
			// forward time of the blocks not yet reached.
			fwdWindow := units.Seconds(float64(e.n)*float64(e.bp-1)) * e.blockFwd
			hidden += minSec(gather*frac, fwdWindow)
		}
		e.dpPenalty = hidden * tax
	}
	e.dpExposed = e.dpTotal - hidden
}

// optimizer prices the Adam step: element-wise vector math over the local
// (possibly sharded) parameters, streaming optimizer state from the tier
// that holds it.
func (e *eval) optimizer() {
	if e.st.Inference {
		return
	}
	params := e.tot.Params() * float64(e.bp)
	if e.st.OptimSharding {
		params /= float64(e.st.DP)
	}
	flops := units.FLOPs(10 * params)
	ct := flops.Div(e.sys.Compute.VectorRate(flops))
	// Read grad (2B) + state (12B), write state (12B) + weights (2B).
	traffic := units.Bytes(28 * params)
	mt := e.sys.Mem1.AccessTime(traffic)
	if e.st.OptimOffload {
		// State was prefetched during the backward pass (Fig. 8); the
		// updated state and weights stream back over the second tier,
		// pacing the step when that link is slower.
		writeback := units.Bytes(14 * params)
		mt = maxSec(mt, writeback.Div(e.sys.Mem2.EffectiveBandwidth(writeback)))
	}
	e.optimTime = maxSec(ct, mt)
}

// assemble composes the per-batch breakdown from the per-block quantities.
func (e *eval) assemble() TimeBreakdown {
	var t TimeBreakdown
	nb := units.Seconds(float64(e.n) * float64(e.bp))
	t.FwdPass = nb*e.blockFwd + units.Seconds(float64(e.n)*float64(e.bp))*e.fwdPenalty
	t.Recompute = nb * e.blockRecompute
	if !e.st.Inference {
		t.BwdPass = nb*e.blockBwd + units.Seconds(float64(e.n)*float64(e.bp))*e.bwdPenalty + e.dpPenalty
	}
	t.TPComm = nb * (e.tpFwdPerBlock + e.tpBwdPerBlock)
	t.TPExposed = nb * (e.tpFwdExposedPerBlock + e.tpBwdExposedPerBlock)
	t.PPComm = units.Seconds(float64(e.n)) * e.ppPerMicrobatch
	t.PPExposed = units.Seconds(float64(e.n)) * e.ppExposedPerMicrobatch
	t.DPComm = e.dpTotal
	t.DPExposed = e.dpExposed
	t.OptimStep = e.optimTime
	t.OffloadTotal = e.offloadTotal
	t.OffloadExposed = e.offloadExposed

	if p := e.st.PP; p > 1 {
		// Interleaved 1F1B bubble: (p−1) chunk slots at the head and tail of
		// the pipeline (Fig. 2); a chunk is bc blocks plus its boundary hop.
		hop := e.ppPerMicrobatch / units.Seconds(2*e.st.Interleave)
		chunkFwd := units.Seconds(float64(e.bc))*(e.blockFwd+e.fwdPenalty+e.tpFwdExposedPerBlock) + hop
		chunkBwd := units.Seconds(float64(e.bc))*(e.blockBwd+e.blockRecompute+e.bwdPenalty+e.tpBwdExposedPerBlock) + hop
		if e.st.Inference {
			chunkBwd = 0
		}
		t.PPBubble = units.Seconds(float64(p-1)) * (chunkFwd + chunkBwd)
	}
	return t
}

func minSec(a, b units.Seconds) units.Seconds {
	if a < b {
		return a
	}
	return b
}

func maxSec(a, b units.Seconds) units.Seconds {
	if a > b {
		return a
	}
	return b
}
