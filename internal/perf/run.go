package perf

import (
	"fmt"
	"reflect"
	"sync"

	"calculon/internal/comm"
	"calculon/internal/execution"
	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// Run evaluates one (LLM, system, strategy) point and returns the complete
// performance estimate, or an ErrInfeasible-wrapped error when the
// configuration cannot run. A single call is allocation-light and takes on
// the order of microseconds, which is what makes exhaustive search
// practical (§5).
func Run(m model.LLM, sys system.System, st execution.Strategy) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	return newRunner(m, sys).Run(st)
}

// Runner evaluates many strategies against one fixed, pre-validated
// (LLM, system) pair — the hot path of the exhaustive searches. EnableStats
// adds optional evaluated/infeasible counters (see RunnerStats).
//
// Evaluation is two-phase. Phase 1 is an analytic pre-screen
// (execution.PreScreen): processor-count and closed-form memory lower
// bounds reject infeasible strategies before any layer-level state is
// built. Phase 2 memoizes the per-block profile — layer times, traffic
// totals, boundary bytes — which is invariant across every strategy sharing
// a blockKey, so the search re-derives only the pipeline/DP-dependent terms
// per strategy. Both phases are exact: results and feasibility verdicts are
// bit-identical to the direct path (the equivalence property tests in
// internal/search pin this), only faster. A Runner is safe for concurrent
// use by any number of goroutines.
type Runner struct {
	m        model.LLM
	sys      system.System
	counters *runnerCounters

	screen      *execution.PreScreen
	noPreScreen bool
	noMemo      bool
	noDelta     bool
	memo        *sync.Map // blockKey -> *blockProfile; shareable via RunnerGroup
	graphs      *sync.Map // graphKey -> *pricedGraph; shareable via RunnerGroup

	// Whole-batch useful FLOPs for MFU, precomputed per pass mode — a pure
	// function of the model, so hoisting it out of the per-strategy path
	// changes no bits.
	usefulTrain, usefulInfer units.FLOPs
}

// NewRunner validates the model and system once and returns an evaluator.
func NewRunner(m model.LLM, sys system.System) (*Runner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return newRunner(m, sys), nil
}

func newRunner(m model.LLM, sys system.System) *Runner {
	return &Runner{
		m:      m,
		sys:    sys,
		memo:   &sync.Map{},
		graphs: &sync.Map{},
		screen: execution.NewPreScreen(m, execution.Limits{
			Procs: sys.Procs,
			Mem1:  sys.Mem1.Capacity,
			Mem2:  sys.Mem2.Capacity,
		}),
		usefulTrain: usefulFLOPsPerSample(m, execution.Strategy{}).Times(float64(m.Batch)),
		usefulInfer: usefulFLOPsPerSample(m, execution.Strategy{Inference: true}).Times(float64(m.Batch)),
	}
}

// usefulFLOPs returns the precomputed whole-batch useful FLOP count for the
// strategy's pass mode.
func (r *Runner) usefulFLOPs(st execution.Strategy) units.FLOPs {
	if st.Inference {
		return r.usefulInfer
	}
	return r.usefulTrain
}

// RunnerGroup builds Runners for system-size variants of one base system
// that share a single block-profile memo. The memo key
// (tp, microbatch, recompute, seqParallel, tpRedo, fused, inference) and the
// profile computation read nothing size-dependent — only the model, the
// compute engines, and the first memory tier — so a profile memoized while
// searching one processor count is bit-identical at every other, and a §5.2
// sweep warms the cache once instead of once per size.
// TestBlockProfileProcsIndependent guards the key-relevance invariant.
type RunnerGroup struct {
	m      model.LLM
	base   system.System
	memo   *sync.Map
	graphs *sync.Map
}

// NewRunnerGroup validates the model and base system once and returns a
// factory for memo-sharing Runners.
func NewRunnerGroup(m model.LLM, base system.System) (*RunnerGroup, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &RunnerGroup{m: m, base: base, memo: &sync.Map{}, graphs: &sync.Map{}}, nil
}

// RunnerFor returns a Runner for the group's model on sys, serving block
// profiles from the group's shared memo. It refuses systems that disagree
// with the base on any memo-relevant input (compute engines or first memory
// tier) — sharing across those would serve profiles computed under different
// hardware. Everything else (processor count, capacities elsewhere,
// networks, the second tier) may vary freely.
func (g *RunnerGroup) RunnerFor(sys system.System) (*Runner, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(sys.Compute, g.base.Compute) {
		return nil, fmt.Errorf("perf: runner group: compute differs from the base system")
	}
	if !reflect.DeepEqual(sys.Mem1.Bandwidth, g.base.Mem1.Bandwidth) ||
		!reflect.DeepEqual(sys.Mem1.Efficiency, g.base.Mem1.Efficiency) {
		return nil, fmt.Errorf("perf: runner group: first-tier timing differs from the base system")
	}
	r := newRunner(g.m, sys)
	r.memo = g.memo
	r.graphs = g.graphs
	return r, nil
}

// DisablePreScreen turns off the phase-1 analytic filter so every strategy
// takes the full evaluation path. It exists as an escape hatch and as the
// reference arm of the equivalence tests; call it before the Runner is
// shared across goroutines.
func (r *Runner) DisablePreScreen() { r.noPreScreen = true }

// DisableMemo turns off the phase-2 block-profile cache so every evaluation
// recomputes its layer times from scratch. It exists as an escape hatch and
// as the reference arm of the equivalence tests; call it before the Runner
// is shared across goroutines.
func (r *Runner) DisableMemo() { r.noMemo = true }

// RunInfo reports which fast paths one evaluation took.
type RunInfo struct {
	// PreScreened is true when the phase-1 analytic filter rejected the
	// strategy before any layer-level evaluation was built. Pre-screened
	// strategies still count as evaluated and infeasible.
	PreScreened bool
	// CacheHit is true when the per-block profile was served from the memo
	// rather than recomputed.
	CacheHit bool

	// delta carries the evaluation chain RunDelta threads from call to
	// call; nil on the scratch path. Opaque to callers: pass the RunInfo
	// back to the next RunDelta unmodified.
	delta *deltaState
}

// Run evaluates one strategy; see the package-level Run.
func (r *Runner) Run(st execution.Strategy) (Result, error) {
	res, _, err := r.RunDetailed(st)
	return res, err
}

// RunDetailed is Run plus a RunInfo describing which fast paths the
// evaluation took, letting callers that share one Runner across workers
// attribute pre-screen rejections and cache hits without touching shared
// counters.
func (r *Runner) RunDetailed(st execution.Strategy) (Result, RunInfo, error) {
	res, info, err := r.run(st)
	if c := r.counters; c != nil {
		c.evaluated.Add(1)
		if err != nil {
			c.infeasible.Add(1)
		}
		if info.PreScreened {
			c.prescreened.Add(1)
		}
		if info.CacheHit {
			c.cacheHits.Add(1)
		}
	}
	return res, info, err
}

func (r *Runner) run(st execution.Strategy) (Result, RunInfo, error) {
	m, sys := r.m, r.sys
	st = st.Normalize()
	if err := st.Validate(m); err != nil {
		return Result{}, RunInfo{}, infeasible("%v", err)
	}
	if r.screen != nil && !r.noPreScreen {
		if err := r.screen.Check(st); err != nil {
			return Result{}, RunInfo{PreScreened: true}, infeasible("%v", err)
		}
	} else {
		if st.Procs() > sys.Procs {
			return Result{}, RunInfo{}, infeasible("strategy needs %d procs, system has %d", st.Procs(), sys.Procs)
		}
		if (st.WeightOffload || st.ActOffload || st.OptimOffload) && !sys.Mem2.Present() {
			return Result{}, RunInfo{}, infeasible("offloading requires a second memory tier")
		}
	}

	prof, hit := r.profile(st)
	info := RunInfo{CacheHit: hit}
	var e eval
	e.init(m, sys, st, prof)
	e.tensorComm()
	e.pipelineComm()
	e.dataComm()
	e.optimizer()
	e.offload()

	mem1, mem2 := e.memory()
	if mem1.Total() > sys.Mem1.Capacity {
		return Result{}, info, infeasible("mem1 needs %v of %v", mem1.Total(), sys.Mem1.Capacity)
	}
	if mem2.Total() > sys.Mem2.Capacity {
		return Result{}, info, infeasible("mem2 needs %v of %v", mem2.Total(), sys.Mem2.Capacity)
	}

	t := e.assemble()
	batch := t.Total()
	res := Result{
		Model:             m,
		System:            sys.Name,
		Strategy:          st,
		BatchTime:         batch,
		SampleRate:        batch.Rate(float64(m.Batch)),
		Time:              t,
		Mem1:              mem1,
		Mem2:              mem2,
		OffloadBWRequired: e.offloadBWRequired,
		OffloadBWUsed:     e.offloadBWUsed,
		ProcsUsed:         st.Procs(),
	}
	useful := r.usefulFLOPs(st)
	peak := sys.Compute.MatrixPeak.Times(float64(st.Procs()))
	res.MFU = useful.Ratio(peak.For(batch))
	return res, info, nil
}

// usefulFLOPsPerSample is the recompute-free model FLOP count per sample
// used for MFU (forward + backward for training, forward for inference).
func usefulFLOPsPerSample(m model.LLM, st execution.Strategy) units.FLOPs {
	fwd := m.FwdFLOPsPerToken().Times(float64(m.Seq))
	if st.Inference {
		return fwd
	}
	return 3 * fwd
}

// blockKey is the complete set of strategy inputs the per-block profile
// depends on: exactly the layers.Shard fields plus the recompute mode.
// Pipeline shape (PP, DP, Interleave, schedule) and the overlap/offload/
// sharding toggles do not reach the block layer graph or its timing, so
// strategies differing only in those share one profile.
type blockKey struct {
	tp          int
	microbatch  int
	recompute   execution.RecomputeMode
	seqParallel bool
	tpRedo      bool
	fused       bool
	inference   bool
}

func keyFor(st execution.Strategy) blockKey {
	return blockKey{
		tp:          st.TP,
		microbatch:  st.Microbatch,
		recompute:   st.Recompute,
		seqParallel: st.SeqParallel,
		tpRedo:      st.TPRedoForSP,
		fused:       st.FusedLayers,
		inference:   st.Inference,
	}
}

// blockProfile is the memoized phase-2 sub-result: everything derived from
// the transformer-block layer graph for one blockKey — aggregate totals,
// boundary bytes, and the per-microbatch forward/backward/recompute times
// with their HBM-idle slack. It is a pure function of (model, system, key),
// so concurrent duplicate computation is benign: every copy is bit-equal.
type blockProfile struct {
	tot           layers.Totals
	boundaryBytes units.Bytes

	fwd, bwd, recompute         units.Seconds
	fwdSlack, bwdSlack, rcSlack units.Seconds
}

func shardFor(st execution.Strategy) layers.Shard {
	return layers.Shard{
		TP:          st.TP,
		SeqParallel: st.SeqParallel,
		TPRedo:      st.TPRedoForSP,
		Fused:       st.FusedLayers,
		Microbatch:  st.Microbatch,
		Inference:   st.Inference,
	}
}

// graphKey is blockKey minus the recompute mode: exactly the layers.Shard
// fields. The layer graph and its per-layer op pricing never read the
// recompute mode — it only selects which already-priced forward terms are
// replayed — so the three recompute variants of one shard share a single
// priced graph.
type graphKey struct {
	tp          int
	microbatch  int
	seqParallel bool
	tpRedo      bool
	fused       bool
	inference   bool
}

// pricedGraph is the expensive, recompute-independent part of a block
// profile: the layer graph built and every op priced through the §2.2
// processing model (the log-shaped efficiency curves live here), with the
// forward sums pre-accumulated both over all layers and over the attention
// group. Deriving a blockProfile from it is a constant-time copy, so pricing
// happens once per shard instead of once per (shard, recompute) pair.
type pricedGraph struct {
	tot           layers.Totals
	boundaryBytes units.Bytes

	fwd, bwd           units.Seconds
	fwdSlack, bwdSlack units.Seconds
	attnFwd, attnSlack units.Seconds
}

// priceGraph builds the block layer graph for the strategy's shard and times
// one microbatch through it. The per-field accumulation visits layers in
// graph order, matching the historical single-pass loop term for term, so
// every derived blockProfile is bit-identical to what that loop produced.
func priceGraph(m model.LLM, sys system.System, st execution.Strategy) pricedGraph {
	sh := shardFor(st)
	ls := layers.Block(m, sh)
	g := pricedGraph{
		tot:           layers.Sum(ls),
		boundaryBytes: layers.BlockInputBytes(m, sh),
	}
	for i := range ls {
		l := &ls[i]
		ft, fs := opTime(sys, l.Engine, l.FLOPs, l.Traffic)
		g.fwd += ft
		g.fwdSlack += fs
		bt, bs := opTime(sys, l.Engine, l.BwdFLOPs, l.BwdTraffic)
		g.bwd += bt
		g.bwdSlack += bs
		if l.AttnGroup {
			g.attnFwd += ft
			g.attnSlack += fs
		}
	}
	return g
}

// profileFrom selects the recompute portion out of a priced graph: full
// recompute replays the whole forward pass, attention-only recompute replays
// the attention group, and no recompute replays nothing.
func profileFrom(g *pricedGraph, mode execution.RecomputeMode) blockProfile {
	p := blockProfile{
		tot:           g.tot,
		boundaryBytes: g.boundaryBytes,
		fwd:           g.fwd,
		bwd:           g.bwd,
		fwdSlack:      g.fwdSlack,
		bwdSlack:      g.bwdSlack,
	}
	switch mode {
	case execution.RecomputeFull:
		p.recompute, p.rcSlack = g.fwd, g.fwdSlack
	case execution.RecomputeAttn:
		p.recompute, p.rcSlack = g.attnFwd, g.attnSlack
	}
	return p
}

// computeProfile builds the block layer graph and times one microbatch
// through it: forward, backward, and the recompute portion selected by the
// strategy.
func computeProfile(m model.LLM, sys system.System, st execution.Strategy) blockProfile {
	g := priceGraph(m, sys, st)
	return profileFrom(&g, st.Recompute)
}

// graph returns the priced layer graph for the strategy's shard, from the
// graph memo when possible.
func (r *Runner) graph(st execution.Strategy) *pricedGraph {
	k := graphKey{
		tp:          st.TP,
		microbatch:  st.Microbatch,
		seqParallel: st.SeqParallel,
		tpRedo:      st.TPRedoForSP,
		fused:       st.FusedLayers,
		inference:   st.Inference,
	}
	if v, ok := r.graphs.Load(k); ok {
		return v.(*pricedGraph)
	}
	g := priceGraph(r.m, r.sys, st)
	v, _ := r.graphs.LoadOrStore(k, &g)
	return v.(*pricedGraph)
}

// profile returns the block profile for the strategy, from the memo when
// possible, and reports whether it was a cache hit. A blockKey miss that
// hits the graph memo still reports a miss — the hit flag tracks the
// profile memo, whose semantics the stats and search counters pin — but
// skips the graph build and op pricing, which is where nearly all of the
// profile cost lives.
//
// The hit flag must be deterministic across worker counts and scheduling
// (the search counters it feeds are pinned bit-identical by equivalence
// tests), so each distinct key reports exactly one miss: when two workers
// race to first-compute a key, LoadOrStore publishes one profile and the
// loser reports a hit — the same totals a serial run would count.
func (r *Runner) profile(st execution.Strategy) (*blockProfile, bool) {
	if r.noMemo {
		p := computeProfile(r.m, r.sys, st)
		return &p, false
	}
	k := keyFor(st)
	if v, ok := r.memo.Load(k); ok {
		return v.(*blockProfile), true
	}
	p := profileFrom(r.graph(st), st.Recompute)
	v, loaded := r.memo.LoadOrStore(k, &p)
	return v.(*blockProfile), loaded
}

// eval carries the intermediate quantities of one evaluation. It is a plain
// value initialized from a blockProfile — the hot path keeps it on the
// stack.
type eval struct {
	m   model.LLM
	sys system.System
	st  execution.Strategy

	tot layers.Totals

	// Derived shape quantities.
	n  int // microbatches per pipeline pass
	bp int // blocks on the busiest processor
	bc int // blocks per interleave chunk

	// Per-microbatch, per-block compute times and HBM-idle slack.
	blockFwd, blockBwd, blockRecompute         units.Seconds
	blockFwdSlack, blockBwdSlack, recompSlack  units.Seconds
	fwdPenalty, bwdPenalty                     units.Seconds // overlap compute tax per block
	tpFwdPerBlock, tpBwdPerBlock               units.Seconds // total TP comm
	tpFwdExposedPerBlock, tpBwdExposedPerBlock units.Seconds
	ppPerMicrobatch, ppExposedPerMicrobatch    units.Seconds
	dpTotal, dpExposed, dpPenalty              units.Seconds
	optimTime                                  units.Seconds
	offloadTotal, offloadExposed               units.Seconds
	offloadBWRequired, offloadBWUsed           units.BytesPerSec
	boundaryBytes                              units.Bytes
}

// init populates the evaluation state from a (possibly memoized) block
// profile and the strategy's pipeline shape.
func (e *eval) init(m model.LLM, sys system.System, st execution.Strategy, prof *blockProfile) {
	*e = eval{
		m: m, sys: sys, st: st,
		tot:            prof.tot,
		n:              st.Microbatches(m),
		bp:             st.BlocksPerProc(m),
		bc:             st.BlocksPerChunk(m),
		boundaryBytes:  prof.boundaryBytes,
		blockFwd:       prof.fwd,
		blockBwd:       prof.bwd,
		blockRecompute: prof.recompute,
		blockFwdSlack:  prof.fwdSlack,
		blockBwdSlack:  prof.bwdSlack,
		recompSlack:    prof.rcSlack,
	}
}

// newEval builds a ready-to-use evaluation for the cold paths (layer
// profiling, pipeline cross-validation, tests); block times are already
// computed.
func newEval(m model.LLM, sys system.System, st execution.Strategy) *eval {
	prof := computeProfile(m, sys, st)
	e := &eval{}
	e.init(m, sys, st, &prof)
	return e
}

// opTime applies the processing model of §2.2 to one operation: the time is
// the maximum of raw compute and raw memory access, each with size-based
// efficiency. slack is the HBM-idle portion usable for offload transfers.
func opTime(sys system.System, engine layers.Engine, flops units.FLOPs, traffic units.Bytes) (t, slack units.Seconds) {
	var rate units.FLOPsPerSec
	if engine == layers.Matrix {
		rate = sys.Compute.MatrixRate(flops)
	} else {
		rate = sys.Compute.VectorRate(flops)
	}
	ct := flops.Div(rate)
	mt := sys.Mem1.AccessTime(traffic)
	if ct >= mt {
		return ct, ct - mt
	}
	return mt, 0
}

// tensorComm prices the per-block tensor-parallel collectives and applies
// the selected overlap mode. Hidden communication taxes the concurrent
// compute by the network's processor-usage fraction (§2.2).
func (e *eval) tensorComm() {
	t := e.st.TP
	if t <= 1 {
		return
	}
	net := e.sys.NetworkPtrFor(t)
	full := units.Bytes(float64(e.st.Microbatch)*float64(e.m.Seq)*float64(e.m.Hidden)) * 2

	var fwd, bwd units.Seconds
	if e.st.TPRSAG {
		rs := comm.Time(net, comm.ReduceScatter, t, full)
		ag := comm.Time(net, comm.AllGather, t, full)
		fwd = 2 * (rs + ag)
		bwd = 2 * (rs + ag)
		if e.st.TPRedoForSP {
			// Backward re-gathers the sharded GEMM inputs it did not store.
			bwd += 2 * ag
		}
	} else {
		ar := comm.Time(net, comm.AllReduce, t, full)
		fwd = 2 * ar
		bwd = 2 * ar
	}
	if e.st.Recompute == execution.RecomputeFull {
		// Re-running the whole block forward re-runs its collectives too.
		bwd += fwd
	}
	e.tpFwdPerBlock, e.tpBwdPerBlock = fwd, bwd

	hide := e.st.TPOverlap.HiddenFraction()
	// Overlap can only hide communication behind the block's compute time.
	hiddenFwd := minSec(fwd.Times(hide), e.blockFwd)
	hiddenBwd := minSec(bwd.Times(hide), e.blockBwd+e.blockRecompute)
	e.tpFwdExposedPerBlock = fwd - hiddenFwd
	e.tpBwdExposedPerBlock = bwd - hiddenBwd
	tax := net.ProcUse / (1 - net.ProcUse)
	e.fwdPenalty += hiddenFwd.Times(tax)
	e.bwdPenalty += hiddenBwd.Times(tax)
}

// pipelineComm prices the point-to-point boundary traffic of pipeline
// parallelism. With PP RS+AG (or sequence parallelism, whose boundary is
// already sharded) the transfer shrinks by t, at the cost of an all-gather
// on the fast network to reassemble the tensor.
func (e *eval) pipelineComm() {
	p := e.st.PP
	if p <= 1 {
		return
	}
	net := e.sys.NetworkPtrFor(e.st.TP * p)
	bytes := e.boundaryBytes
	var reassemble units.Seconds
	if e.st.PPRSAG && !e.st.SeqParallel && e.st.TP > 1 {
		bytes = bytes.DivN(float64(e.st.TP))
		tpNet := e.sys.NetworkPtrFor(e.st.TP)
		reassemble = comm.Time(tpNet, comm.AllGather, e.st.TP, e.boundaryBytes)
	}
	hop := comm.Time(net, comm.P2P, 2, bytes) + reassemble
	// Each microbatch crosses v chunk boundaries forward and v backward.
	perMB := hop.Times(float64(2 * e.st.Interleave))
	if e.st.Inference {
		perMB = hop.Times(float64(e.st.Interleave))
	}
	e.ppPerMicrobatch = perMB
	e.ppExposedPerMicrobatch = perMB
}

// dataComm prices the per-batch gradient synchronization of data
// parallelism, including optional overlap with the backward drain (Fig. 2b)
// and the rule that sharded optimizers forbid overlap during their step.
func (e *eval) dataComm() {
	d := e.st.DP
	if d <= 1 || e.st.Inference {
		return
	}
	net := e.sys.NetworkPtrFor(e.st.TP * e.st.PP * d)
	grads := e.tot.WeightBytes.Times(float64(e.bp))

	var overlappable, gather units.Seconds
	if e.st.OptimSharding {
		// Reduce-scatter during backward; the all-gather of updated
		// parameters runs after the (sharded) optimizer step — never during
		// it (§2.4) — but may prefetch against the next batch's forward.
		overlappable = comm.Time(net, comm.ReduceScatter, d, grads)
		gather = comm.Time(net, comm.AllGather, d, grads)
	} else {
		overlappable = comm.Time(net, comm.AllReduce, d, grads)
	}
	e.dpTotal = overlappable + gather

	hidden := units.Seconds(0)
	tax := net.ProcUse / (1 - net.ProcUse)
	if e.st.DPOverlap && e.bp > 1 {
		// Per-block gradients become final as the last microbatch's
		// backward drains through this processor's blocks; the drain window
		// is the backward (plus recompute) of the remaining blocks.
		window := (e.blockBwd + e.blockRecompute).Times(float64(e.bp - 1))
		frac := float64(e.bp-1) / float64(e.bp)
		hidden = minSec(overlappable.Times(frac), window)
		if gather > 0 {
			// The updated-parameter all-gather streams per block ahead of
			// the next forward pass (ZeRO-style prefetch), bounded by the
			// forward time of the blocks not yet reached.
			fwdWindow := e.blockFwd.Times(float64(e.n) * float64(e.bp-1))
			hidden += minSec(gather.Times(frac), fwdWindow)
		}
		e.dpPenalty = hidden.Times(tax)
	}
	e.dpExposed = e.dpTotal - hidden
}

// optimizer prices the Adam step: element-wise vector math over the local
// (possibly sharded) parameters, streaming optimizer state from the tier
// that holds it.
func (e *eval) optimizer() {
	if e.st.Inference {
		return
	}
	params := e.tot.Params() * float64(e.bp)
	if e.st.OptimSharding {
		params /= float64(e.st.DP)
	}
	flops := units.FLOPs(10 * params)
	ct := flops.Div(e.sys.Compute.VectorRate(flops))
	// Read grad (2B) + state (12B), write state (12B) + weights (2B).
	traffic := units.Bytes(28 * params)
	mt := e.sys.Mem1.AccessTime(traffic)
	if e.st.OptimOffload {
		// State was prefetched during the backward pass (Fig. 8); the
		// updated state and weights stream back over the second tier,
		// pacing the step when that link is slower.
		writeback := units.Bytes(14 * params)
		mt = maxSec(mt, writeback.Div(e.sys.Mem2.EffectiveBandwidth(writeback)))
	}
	e.optimTime = maxSec(ct, mt)
}

// assemble composes the per-batch breakdown from the per-block quantities.
func (e *eval) assemble() TimeBreakdown {
	var t TimeBreakdown
	nb := float64(e.n) * float64(e.bp)
	t.FwdPass = e.blockFwd.Times(nb) + e.fwdPenalty.Times(nb)
	t.Recompute = e.blockRecompute.Times(nb)
	if !e.st.Inference {
		t.BwdPass = e.blockBwd.Times(nb) + e.bwdPenalty.Times(nb) + e.dpPenalty
	}
	t.TPComm = (e.tpFwdPerBlock + e.tpBwdPerBlock).Times(nb)
	t.TPExposed = (e.tpFwdExposedPerBlock + e.tpBwdExposedPerBlock).Times(nb)
	t.PPComm = e.ppPerMicrobatch.Times(float64(e.n))
	t.PPExposed = e.ppExposedPerMicrobatch.Times(float64(e.n))
	t.DPComm = e.dpTotal
	t.DPExposed = e.dpExposed
	t.OptimStep = e.optimTime
	t.OffloadTotal = e.offloadTotal
	t.OffloadExposed = e.offloadExposed

	if p := e.st.PP; p > 1 {
		// Interleaved 1F1B bubble: (p−1) chunk slots at the head and tail of
		// the pipeline (Fig. 2); a chunk is bc blocks plus its boundary hop.
		hop := e.ppPerMicrobatch.DivN(float64(2 * e.st.Interleave))
		chunkFwd := (e.blockFwd + e.fwdPenalty + e.tpFwdExposedPerBlock).Times(float64(e.bc)) + hop
		chunkBwd := (e.blockBwd + e.blockRecompute + e.bwdPenalty + e.tpBwdExposedPerBlock).Times(float64(e.bc)) + hop
		if e.st.Inference {
			chunkBwd = 0
		}
		t.PPBubble = (chunkFwd + chunkBwd).Times(float64(p - 1))
	}
	return t
}

func minSec(a, b units.Seconds) units.Seconds {
	if a < b {
		return a
	}
	return b
}

func maxSec(a, b units.Seconds) units.Seconds {
	if a > b {
		return a
	}
	return b
}
