package perf

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// deltaSequences builds strategy sequences that exercise the delta path:
// the real enumeration order (Gray-adjacent toggles inside each triple, so
// most steps reuse most groups) and random jumps (every mask bit flips).
func deltaSequences(t *testing.T, rng *rand.Rand, m model.LLM, opts execution.EnumOptions) [][]execution.Strategy {
	t.Helper()
	var enum []execution.Strategy
	opts.Enumerate(m, func(s execution.Strategy) bool {
		enum = append(enum, s)
		return true
	})
	if len(enum) == 0 {
		t.Fatal("enumeration is empty")
	}
	jumps := make([]execution.Strategy, 0, 300)
	for i := 0; i < 300; i++ {
		jumps = append(jumps, enum[rng.Intn(len(enum))])
	}
	if len(enum) > 2000 {
		enum = enum[:2000]
	}
	return [][]execution.Strategy{enum, jumps}
}

// runScratch evaluates the sequence on the scratch path.
func runScratch(t *testing.T, r *Runner, seq []execution.Strategy) ([]Result, []RunInfo, []error) {
	t.Helper()
	res := make([]Result, len(seq))
	infos := make([]RunInfo, len(seq))
	errs := make([]error, len(seq))
	for i, st := range seq {
		res[i], infos[i], errs[i] = r.RunDetailed(st)
	}
	return res, infos, errs
}

// runDeltaChain evaluates the sequence on the delta path, threading one
// chain through the RunInfos.
func runDeltaChain(t *testing.T, r *Runner, seq []execution.Strategy) ([]Result, []RunInfo, []error) {
	t.Helper()
	res := make([]Result, len(seq))
	infos := make([]RunInfo, len(seq))
	errs := make([]error, len(seq))
	var prev RunInfo
	for i, st := range seq {
		res[i], prev, errs[i] = r.RunDelta(prev, st)
		infos[i] = prev
	}
	return res, infos, errs
}

// TestDeltaEqualsScratch is the randomized delta-vs-scratch equivalence
// property: over real enumeration orders and random jump sequences, for
// systems with and without a second memory tier, RunDelta must reproduce
// RunDetailed bit for bit — Result values, feasibility verdicts, error
// messages, and the PreScreened/CacheHit flags the search counters sum.
// Each path gets its own fresh Runner so memo warm-up behaves exactly as it
// would in a pure scratch or pure delta search.
func TestDeltaEqualsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name string
		m    model.LLM
		sys  system.System
		opts execution.EnumOptions
	}{
		{
			name: "seqpar",
			m:    model.MustPreset("gpt3-13B").WithBatch(32),
			sys:  system.A100(32),
			opts: execution.EnumOptions{Procs: 32, Features: execution.FeatureSeqPar, MaxInterleave: 2},
		},
		{
			name: "all-mem2",
			m:    model.MustPreset("gpt3-13B").WithBatch(16),
			sys:  system.A100(16).WithMem2(system.DDR5(512 * units.GiB)),
			opts: execution.EnumOptions{Procs: 16, Features: execution.FeatureAll, HasMem2: true, MaxTP: 8, MaxInterleave: 2},
		},
		{
			name: "tight-mem1",
			m:    model.MustPreset("gpt3-175B").WithBatch(8),
			sys:  system.A100(8),
			opts: execution.EnumOptions{Procs: 8, Features: execution.FeatureAll, MaxInterleave: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for si, seq := range deltaSequences(t, rng, tc.m, tc.opts) {
				scratchR, err := NewRunner(tc.m, tc.sys)
				if err != nil {
					t.Fatal(err)
				}
				deltaR, err := NewRunner(tc.m, tc.sys)
				if err != nil {
					t.Fatal(err)
				}
				sRes, sInfo, sErr := runScratch(t, scratchR, seq)
				dRes, dInfo, dErr := runDeltaChain(t, deltaR, seq)
				compareRuns(t, si, seq, sRes, sInfo, sErr, dRes, dInfo, dErr)
			}
		})
	}
}

// TestDeltaEqualsScratchNoMemoNoScreen re-runs the property with the other
// escape hatches engaged, covering the counter invariants those modes pin
// (CacheHits must stay 0 with the memo off; PreScreened must stay 0 with
// the screen off).
func TestDeltaEqualsScratchNoMemoNoScreen(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := model.MustPreset("gpt3-13B").WithBatch(16)
	sys := system.A100(16).WithMem2(system.DDR5(512 * units.GiB))
	opts := execution.EnumOptions{Procs: 16, Features: execution.FeatureAll, HasMem2: true, MaxTP: 8, MaxInterleave: 2}
	for _, mode := range []string{"no-memo", "no-prescreen"} {
		t.Run(mode, func(t *testing.T) {
			for si, seq := range deltaSequences(t, rng, m, opts) {
				if len(seq) > 600 {
					seq = seq[:600] // the no-memo arm recomputes profiles; keep it quick
				}
				scratchR, _ := NewRunner(m, sys)
				deltaR, _ := NewRunner(m, sys)
				switch mode {
				case "no-memo":
					scratchR.DisableMemo()
					deltaR.DisableMemo()
				case "no-prescreen":
					scratchR.DisablePreScreen()
					deltaR.DisablePreScreen()
				}
				sRes, sInfo, sErr := runScratch(t, scratchR, seq)
				dRes, dInfo, dErr := runDeltaChain(t, deltaR, seq)
				compareRuns(t, si, seq, sRes, sInfo, sErr, dRes, dInfo, dErr)
				for i, info := range dInfo {
					if mode == "no-memo" && info.CacheHit {
						t.Fatalf("step %d: cache hit with memo disabled", i)
					}
					if mode == "no-prescreen" && info.PreScreened {
						t.Fatalf("step %d: prescreen verdict with screen disabled", i)
					}
				}
			}
		})
	}
}

func compareRuns(t *testing.T, si int, seq []execution.Strategy,
	sRes []Result, sInfo []RunInfo, sErr []error,
	dRes []Result, dInfo []RunInfo, dErr []error) {
	t.Helper()
	for i := range seq {
		if (sErr[i] == nil) != (dErr[i] == nil) {
			t.Fatalf("seq %d step %d %+v: scratch err %v, delta err %v", si, i, seq[i], sErr[i], dErr[i])
		}
		if sErr[i] != nil {
			if !errors.Is(dErr[i], ErrInfeasible) {
				t.Fatalf("seq %d step %d: delta error not ErrInfeasible: %v", si, i, dErr[i])
			}
			if sErr[i].Error() != dErr[i].Error() {
				t.Fatalf("seq %d step %d: error text differs:\nscratch %q\ndelta   %q", si, i, sErr[i], dErr[i])
			}
		}
		if sInfo[i].PreScreened != dInfo[i].PreScreened || sInfo[i].CacheHit != dInfo[i].CacheHit {
			t.Fatalf("seq %d step %d %+v: info differs: scratch %+v delta %+v",
				si, i, seq[i], sInfo[i], dInfo[i])
		}
		if !reflect.DeepEqual(sRes[i], dRes[i]) {
			t.Fatalf("seq %d step %d %+v: results differ:\nscratch %+v\ndelta   %+v",
				si, i, seq[i], sRes[i], dRes[i])
		}
	}
}

// TestRunDeltaForeignChain checks that a RunInfo from one Runner's chain
// fed into another Runner starts a fresh chain instead of reusing foreign
// state.
func TestRunDeltaForeignChain(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	a, _ := NewRunner(m, system.A100(32))
	b, _ := NewRunner(m, system.A100(32).WithMem1Capacity(10*units.TiB))
	st := execution.Strategy{TP: 4, PP: 2, DP: 4, Microbatch: 1, Interleave: 1}
	_, info, err := a.RunDelta(RunInfo{}, st)
	if err != nil {
		t.Fatal(err)
	}
	st2 := st
	st2.Recompute = execution.RecomputeFull
	got, _, err := b.RunDelta(info, st2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := b.RunDetailed(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("foreign chain result differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunDeltaDisabled checks the escape hatch: with DisableDelta the call
// takes the scratch path and threads no chain.
func TestRunDeltaDisabled(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	r, _ := NewRunner(m, system.A100(32))
	r.DisableDelta()
	st := execution.Strategy{TP: 4, PP: 2, DP: 4, Microbatch: 1, Interleave: 1}
	_, info, err := r.RunDelta(RunInfo{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if info.delta != nil {
		t.Fatal("DisableDelta still threaded a delta chain")
	}
}
