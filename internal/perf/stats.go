package perf

import "sync/atomic"

// RunnerStats is a snapshot of a Runner's evaluation counters: how many
// strategies it has been asked to price, and how many of those were
// infeasible (memory overflow, structural violations, missing offload
// tier). Feasible() derives the rest. The counters are the per-runner
// building block of the search observability layer — callers driving a
// Runner directly (outside search.Execution) get the same evaluated/
// feasible accounting the search engines report.
type RunnerStats struct {
	Evaluated  int64
	Infeasible int64
}

// Feasible is the number of evaluations that produced a runnable estimate.
func (s RunnerStats) Feasible() int64 { return s.Evaluated - s.Infeasible }

// runnerCounters holds the atomic counters behind RunnerStats. They live
// behind a nil-able pointer so the default hot path — millions of Run calls
// per second across a worker pool sharing one Runner — pays only a
// predictable nil check, not contended atomic adds on a shared cache line.
type runnerCounters struct {
	evaluated  atomic.Int64
	infeasible atomic.Int64
}

// EnableStats turns on evaluation counting for this Runner. It must be
// called before the Runner is shared across goroutines; counting itself is
// then safe from any number of workers.
func (r *Runner) EnableStats() {
	if r.counters == nil {
		r.counters = &runnerCounters{}
	}
}

// Stats snapshots the counters; zero values when EnableStats was not called.
func (r *Runner) Stats() RunnerStats {
	if r.counters == nil {
		return RunnerStats{}
	}
	return RunnerStats{
		Evaluated:  r.counters.evaluated.Load(),
		Infeasible: r.counters.infeasible.Load(),
	}
}
