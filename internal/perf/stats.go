package perf

import "sync/atomic"

// RunnerStats is a snapshot of a Runner's evaluation counters: how many
// strategies it has been asked to price, how many of those were infeasible
// (memory overflow, structural violations, missing offload tier), and how
// the two-phase fast paths contributed — PreScreened counts evaluations the
// phase-1 analytic filter rejected before any layer-level work, CacheHits
// counts evaluations whose block profile was served from the phase-2 memo.
// Feasible() derives the rest. The counters are the per-runner building
// block of the search observability layer — callers driving a Runner
// directly (outside search.Execution) get the same evaluated/feasible
// accounting the search engines report.
type RunnerStats struct {
	Evaluated  int64
	Infeasible int64
	// PreScreened is the subset of Infeasible rejected by the analytic
	// pre-screen (always <= Infeasible; the verdicts are identical either
	// way, the pre-screen is just cheaper).
	PreScreened int64
	// CacheHits is the subset of Evaluated that reused a memoized block
	// profile instead of rebuilding the layer graph.
	CacheHits int64
}

// Feasible is the number of evaluations that produced a runnable estimate.
func (s RunnerStats) Feasible() int64 { return s.Evaluated - s.Infeasible }

// runnerCounters holds the atomic counters behind RunnerStats. They live
// behind a nil-able pointer so the default hot path — millions of Run calls
// per second across a worker pool sharing one Runner — pays only a
// predictable nil check, not contended atomic adds on a shared cache line.
// Access is atomic-only, enforced by calculonvet's atomiccounter analyzer.
//
//calculonvet:counter
type runnerCounters struct {
	evaluated   atomic.Int64
	infeasible  atomic.Int64
	prescreened atomic.Int64
	cacheHits   atomic.Int64
}

// EnableStats turns on evaluation counting for this Runner. It must be
// called before the Runner is shared across goroutines; counting itself is
// then safe from any number of workers.
func (r *Runner) EnableStats() {
	if r.counters == nil {
		r.counters = &runnerCounters{}
	}
}

// Stats snapshots the counters; zero values when EnableStats was not called.
func (r *Runner) Stats() RunnerStats {
	if r.counters == nil {
		return RunnerStats{}
	}
	return RunnerStats{
		Evaluated:   r.counters.evaluated.Load(),
		Infeasible:  r.counters.infeasible.Load(),
		PreScreened: r.counters.prescreened.Load(),
		CacheHits:   r.counters.cacheHits.Load(),
	}
}
