package perf

import (
	"errors"
	"math"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

func megatron(tp, pp, dp, mb int, rc execution.RecomputeMode) execution.Strategy {
	return execution.Strategy{
		TP: tp, PP: pp, DP: dp, Microbatch: mb, Interleave: 1, OneFOneB: true,
		Recompute: rc,
	}
}

func mustRun(t *testing.T, m model.LLM, sys system.System, st execution.Strategy) Result {
	t.Helper()
	r, err := Run(m, sys, st)
	if err != nil {
		t.Fatalf("Run(%v): %v", st, err)
	}
	return r
}

// TestValidationTable2 reproduces the paper's Table 2: predictions against
// the measured Selene batch times for the four Megatron models under full
// recomputation and under sequence parallelism + selective recomputation.
// The paper's own tool averaged 3.65% error with a max of 8.87%; we accept
// each point within 12% and the average within 6%.
func TestValidationTable2(t *testing.T) {
	cases := []struct {
		preset   string
		gpus, pp int
		full     float64
		seqSel   float64
	}{
		{"megatron-22B", 8, 1, 1.42, 1.10},
		{"gpt3-175B", 64, 8, 18.13, 13.75},
		{"turing-530B", 280, 35, 49.05, 37.83},
		{"megatron-1T", 512, 64, 94.42, 71.49},
	}
	var sumAbs float64
	var count int
	for _, c := range cases {
		m := model.MustPreset(c.preset)
		sys := system.A100(c.gpus)
		full := megatron(8, c.pp, 1, 1, execution.RecomputeFull)
		r := mustRun(t, m, sys, full)
		d := (float64(r.BatchTime) - c.full) / c.full
		if math.Abs(d) > 0.12 {
			t.Errorf("%s full: predicted %.2fs vs Selene %.2fs (%.1f%%)", c.preset, float64(r.BatchTime), c.full, 100*d)
		}
		sumAbs += math.Abs(d)
		count++

		sel := megatron(8, c.pp, 1, 1, execution.RecomputeAttn)
		sel.TPRSAG, sel.SeqParallel = true, true
		r = mustRun(t, m, sys, sel)
		d = (float64(r.BatchTime) - c.seqSel) / c.seqSel
		if math.Abs(d) > 0.12 {
			t.Errorf("%s seq+sel: predicted %.2fs vs Selene %.2fs (%.1f%%)", c.preset, float64(r.BatchTime), c.seqSel, 100*d)
		}
		sumAbs += math.Abs(d)
		count++
	}
	if avg := sumAbs / float64(count); avg > 0.06 {
		t.Errorf("average validation error %.1f%% exceeds 6%%", 100*avg)
	}
}

// TestTable4OffloadAnchor pins the paper's headline discovery: the
// (t,p,d)=(8,1,512) offload strategy reaches ≈76.71% MFU while keeping HBM
// usage under 20 GiB (§8, Table 4).
func TestTable4OffloadAnchor(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(3072)
	sys := system.A100(4096).WithMem2(system.DDR5(512 * units.GiB))
	st := execution.Strategy{
		TP: 8, PP: 1, DP: 512, Microbatch: 6, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeAttn, TPRSAG: true, SeqParallel: true,
		TPOverlap: execution.TPOverlapRing, DPOverlap: true,
		OptimSharding: true, FusedLayers: true,
		WeightOffload: true, ActOffload: true, OptimOffload: true,
	}
	r := mustRun(t, m, sys, st)
	if r.MFU < 0.70 || r.MFU > 0.85 {
		t.Errorf("offload strategy MFU = %.1f%%, want ≈76.71%%", 100*r.MFU)
	}
	if r.Mem1.Total() > 20*units.GiB {
		t.Errorf("offload strategy HBM = %v, paper keeps it under 20 GiB", r.Mem1.Total())
	}
	if r.Mem2.Total() > sys.Mem2.Capacity {
		t.Errorf("mem2 overflow: %v", r.Mem2.Total())
	}
}

// TestStrategyLadderMonotone reproduces the ordering of Table 4: full
// recompute < seq-par + selective < offload strategy, in MFU.
func TestStrategyLadderMonotone(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(3072)
	sys := system.A100(4096)

	base := megatron(8, 64, 8, 1, execution.RecomputeFull)
	base.Interleave, base.TPRSAG = 2, true
	r1 := mustRun(t, m, sys, base)

	sp := megatron(8, 64, 8, 1, execution.RecomputeAttn)
	sp.Interleave, sp.TPRSAG, sp.SeqParallel, sp.TPRedoForSP = 2, true, true, true
	r2 := mustRun(t, m, sys, sp)

	sysOff := sys.WithMem2(system.DDR5(512 * units.GiB))
	off := execution.Strategy{
		TP: 8, PP: 1, DP: 512, Microbatch: 6, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeAttn, TPRSAG: true, SeqParallel: true,
		TPOverlap: execution.TPOverlapRing, DPOverlap: true,
		OptimSharding: true, FusedLayers: true,
		WeightOffload: true, ActOffload: true, OptimOffload: true,
	}
	r3 := mustRun(t, m, sysOff, off)

	if !(r1.MFU < r2.MFU && r2.MFU < r3.MFU) {
		t.Errorf("MFU ladder not monotone: %.3f, %.3f, %.3f", r1.MFU, r2.MFU, r3.MFU)
	}
}

func TestInfeasibleWhenMemoryOverflows(t *testing.T) {
	// Megatron-1T on a single A100: nothing fits.
	m := model.MustPreset("megatron-1T").WithBatch(4)
	_, err := Run(m, system.A100(1), execution.Strategy{TP: 1, PP: 1, DP: 1, Microbatch: 1, Interleave: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestInfeasibleWhenTooFewProcs(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	_, err := Run(m, system.A100(4), megatron(8, 1, 1, 1, execution.RecomputeFull))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible for 8 procs on 4-proc system, got %v", err)
	}
}

func TestOffloadRequiresMem2(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	st := megatron(8, 8, 1, 1, execution.RecomputeFull)
	st.WeightOffload = true
	_, err := Run(m, system.A100(64), st)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible without mem2, got %v", err)
	}
}

func TestBreakdownSumsToBatchTime(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(2048)
	sys := system.A100(4096)
	st := megatron(8, 64, 8, 1, execution.RecomputeFull)
	st.TPRSAG = true
	r := mustRun(t, m, sys, st)
	sum := r.Time.FwdPass + r.Time.BwdPass + r.Time.Recompute + r.Time.OptimStep +
		r.Time.PPBubble + r.Time.TPExposed + r.Time.PPExposed + r.Time.DPExposed +
		r.Time.OffloadExposed
	if math.Abs(float64(sum-r.BatchTime))/float64(r.BatchTime) > 1e-9 {
		t.Errorf("breakdown sum %v != batch time %v", sum, r.BatchTime)
	}
	if r.SampleRate <= 0 || r.MFU <= 0 || r.MFU >= 1 {
		t.Errorf("implausible rate/MFU: %v %v", r.SampleRate, r.MFU)
	}
}

// TestRecomputeTradeoff: full recomputation must cost time and save memory
// relative to no recomputation (Table 1's Recompute row).
func TestRecomputeTradeoff(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	sys := system.A100(64).WithMem1Capacity(10 * units.TiB) // lift capacity to compare
	none := mustRun(t, m, sys, megatron(8, 8, 1, 1, execution.RecomputeNone))
	attn := mustRun(t, m, sys, megatron(8, 8, 1, 1, execution.RecomputeAttn))
	full := mustRun(t, m, sys, megatron(8, 8, 1, 1, execution.RecomputeFull))
	if !(none.BatchTime < attn.BatchTime && attn.BatchTime < full.BatchTime) {
		t.Errorf("recompute time ordering violated: %v %v %v", none.BatchTime, attn.BatchTime, full.BatchTime)
	}
	if !(none.Mem1.Activations > attn.Mem1.Activations && attn.Mem1.Activations > full.Mem1.Activations) {
		t.Errorf("recompute memory ordering violated: %v %v %v",
			none.Mem1.Activations, attn.Mem1.Activations, full.Mem1.Activations)
	}
	if full.Time.Recompute <= 0 || none.Time.Recompute != 0 {
		t.Errorf("recompute time accounting wrong: %v %v", full.Time.Recompute, none.Time.Recompute)
	}
}

// TestParallelismMemoryEffects verifies Fig. 4's memory observations: TP
// cuts weights and activations, PP cuts only weights, DP with optimizer
// sharding cuts optimizer state.
func TestParallelismMemoryEffects(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)
	sys := system.A100(4096).WithMem1Capacity(10 * units.TiB).WithFastDomain(32)

	tp2 := mustRun(t, m, sys, megatron(2, 32, 64, 1, execution.RecomputeNone))
	tp8 := mustRun(t, m, sys, megatron(8, 32, 16, 1, execution.RecomputeNone))
	if !(tp8.Mem1.Weights < tp2.Mem1.Weights) {
		t.Error("TP must cut weight memory")
	}
	if !(tp8.Mem1.Activations < tp2.Mem1.Activations) {
		t.Error("TP must cut activation memory")
	}

	pp8 := mustRun(t, m, sys, megatron(8, 8, 64, 1, execution.RecomputeFull))
	pp32 := mustRun(t, m, sys, megatron(8, 32, 16, 1, execution.RecomputeFull))
	if !(pp32.Mem1.Weights < pp8.Mem1.Weights) {
		t.Error("PP must cut weight memory")
	}

	noShard := megatron(8, 32, 16, 1, execution.RecomputeFull)
	shard := noShard
	shard.OptimSharding = true
	rn := mustRun(t, m, sys, noShard)
	rs := mustRun(t, m, sys, shard)
	if !(rs.Mem1.Optimizer < rn.Mem1.Optimizer/8) {
		t.Errorf("optimizer sharding must cut optimizer state ≈16×: %v vs %v",
			rs.Mem1.Optimizer, rn.Mem1.Optimizer)
	}
}

// TestOverEmphasisDegradesTime spot-checks Fig. 4's headline: pushing any
// single parallelism mode to its extreme is worse than a balanced split.
func TestOverEmphasisDegradesTime(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)
	sys := system.A100(4096).WithMem1Capacity(10 * units.TiB).WithFastDomain(32)
	balanced := mustRun(t, m, sys, megatron(8, 16, 32, 1, execution.RecomputeFull))
	extremeTP := mustRun(t, m, sys, megatron(32, 4, 32, 1, execution.RecomputeFull))
	extremePP := mustRun(t, m, sys, megatron(1, 128, 32, 1, execution.RecomputeFull))
	if !(balanced.BatchTime < extremeTP.BatchTime) {
		t.Errorf("extreme TP should lose to balanced: %v vs %v", extremeTP.BatchTime, balanced.BatchTime)
	}
	if !(balanced.BatchTime < extremePP.BatchTime) {
		t.Errorf("extreme PP should lose to balanced: %v vs %v", extremePP.BatchTime, balanced.BatchTime)
	}
	if extremeTP.Time.TPExposed <= balanced.Time.TPExposed {
		t.Error("extreme TP must expose more TP communication")
	}
	if extremePP.Time.PPBubble <= balanced.Time.PPBubble {
		t.Error("extreme PP must grow the pipeline bubble")
	}
}

func TestInterleavingShrinksBubbleGrowsMemory(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(512)
	sys := system.A100(512).WithMem1Capacity(10 * units.TiB)
	v1 := mustRun(t, m, sys, megatron(8, 64, 1, 1, execution.RecomputeFull))
	v2s := megatron(8, 64, 1, 1, execution.RecomputeFull)
	v2s.Interleave = 2
	v2 := mustRun(t, m, sys, v2s)
	if !(v2.Time.PPBubble < v1.Time.PPBubble) {
		t.Errorf("interleaving must shrink the bubble: %v vs %v", v2.Time.PPBubble, v1.Time.PPBubble)
	}
	if !(v2.Mem1.Activations > v1.Mem1.Activations) {
		t.Errorf("interleaving must grow activation memory: %v vs %v", v2.Mem1.Activations, v1.Mem1.Activations)
	}
}

func TestDPOverlapHidesCommunication(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)
	sys := system.A100(4096).WithMem1Capacity(10 * units.TiB)
	base := megatron(8, 8, 64, 4, execution.RecomputeFull)
	over := base
	over.DPOverlap = true
	r1 := mustRun(t, m, sys, base)
	r2 := mustRun(t, m, sys, over)
	if !(r2.Time.DPExposed < r1.Time.DPExposed) {
		t.Errorf("DP overlap must reduce exposed DP comm: %v vs %v", r2.Time.DPExposed, r1.Time.DPExposed)
	}
	if r1.Time.DPExposed != r1.Time.DPComm {
		t.Error("without overlap all DP comm is exposed")
	}
}

func TestTPOverlapHidesCommunication(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	sys := system.A100(64)
	base := megatron(8, 8, 1, 1, execution.RecomputeFull)
	ring := base
	ring.TPOverlap = execution.TPOverlapRing
	r1 := mustRun(t, m, sys, base)
	r2 := mustRun(t, m, sys, ring)
	if !(r2.Time.TPExposed < r1.Time.TPExposed) {
		t.Errorf("ring overlap must reduce exposed TP comm: %v vs %v", r2.Time.TPExposed, r1.Time.TPExposed)
	}
	// The hidden communication taxes compute (NCCL cores, §2.2).
	if !(r2.Time.FwdPass > r1.Time.FwdPass) {
		t.Errorf("hidden TP comm must slow concurrent compute: %v vs %v", r2.Time.FwdPass, r1.Time.FwdPass)
	}
}

func TestSeqParallelSavesMemory(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	sys := system.A100(64).WithMem1Capacity(10 * units.TiB)
	base := megatron(8, 8, 1, 1, execution.RecomputeNone)
	base.TPRSAG = true
	sp := base
	sp.SeqParallel = true
	sp.TPRedoForSP = true
	r1 := mustRun(t, m, sys, base)
	r2 := mustRun(t, m, sys, sp)
	if !(r2.Mem1.Activations < r1.Mem1.Activations) {
		t.Errorf("sequence parallelism must cut activation memory: %v vs %v",
			r2.Mem1.Activations, r1.Mem1.Activations)
	}
}

func TestWeightOffloadMovesWeights(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(64)
	sys := system.A100(64).WithMem1Capacity(units.TiB).WithMem2(system.DDR5(2 * units.TiB))
	base := megatron(8, 8, 1, 1, execution.RecomputeFull)
	off := base
	off.WeightOffload = true
	r1 := mustRun(t, m, sys, base)
	r2 := mustRun(t, m, sys, off)
	if !(r2.Mem1.Weights < r1.Mem1.Weights) {
		t.Error("weight offload must shrink resident weights")
	}
	if r2.Mem2.Weights == 0 {
		t.Error("weight offload must stash weights in mem2")
	}
	if r2.Time.OffloadTotal <= 0 {
		t.Error("weight offload must move bytes over the offload link")
	}
	if r1.Time.OffloadTotal != 0 {
		t.Error("no offload traffic without offload flags")
	}
}

func TestOffloadBandwidthRequirementEq1(t *testing.T) {
	// With infinite second-tier bandwidth nothing is exposed and the
	// required bandwidth (Eq. 1) is reported; throttling it below the
	// requirement exposes transfer time.
	m := model.MustPreset("megatron-1T").WithBatch(64)
	inf := system.A100(64).WithMem1Capacity(units.TiB).WithMem2(system.InfiniteMem2())
	st := megatron(8, 8, 1, 1, execution.RecomputeFull)
	st.WeightOffload, st.ActOffload = true, true
	r := mustRun(t, m, inf, st)
	if r.Time.OffloadExposed != 0 {
		t.Errorf("infinite offload bandwidth must expose nothing, got %v", r.Time.OffloadExposed)
	}
	if r.OffloadBWRequired <= 0 {
		t.Error("required offload bandwidth must be reported")
	}

	slow := system.A100(64).WithMem1Capacity(units.TiB).WithMem2(system.Memory{Capacity: units.UnboundedBytes, Bandwidth: 1e9})
	r2 := mustRun(t, m, slow, st)
	if r2.Time.OffloadExposed <= 0 {
		t.Error("1 GB/s offload tier must expose transfer time")
	}
	if !(r2.BatchTime > r.BatchTime) {
		t.Error("slower offload tier must slow the batch")
	}
}

func TestOptimizerShardingSpeedsStep(t *testing.T) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)
	sys := system.A100(4096).WithMem1Capacity(10 * units.TiB)
	base := megatron(8, 8, 64, 1, execution.RecomputeFull)
	shard := base
	shard.OptimSharding = true
	r1 := mustRun(t, m, sys, base)
	r2 := mustRun(t, m, sys, shard)
	if !(r2.Time.OptimStep < r1.Time.OptimStep) {
		t.Errorf("sharded optimizer step must be faster: %v vs %v", r2.Time.OptimStep, r1.Time.OptimStep)
	}
}

func TestInferenceMode(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	sys := system.A100(64).WithMem1Capacity(units.TiB)
	st := execution.Strategy{TP: 8, PP: 8, DP: 1, Microbatch: 1, Interleave: 1,
		OneFOneB: true, Recompute: execution.RecomputeNone, Inference: true}
	r := mustRun(t, m, sys, st)
	if r.Time.BwdPass != 0 || r.Time.OptimStep != 0 || r.Time.DPComm != 0 {
		t.Errorf("inference must have no backward/optimizer/DP time: %+v", r.Time)
	}
	if r.Mem1.Optimizer != 0 || r.Mem1.WeightGrads != 0 {
		t.Errorf("inference must hold no optimizer state or gradients: %+v", r.Mem1)
	}
	train := st
	train.Inference = false
	r2 := mustRun(t, m, sys, train)
	if !(r.BatchTime < r2.BatchTime/2) {
		t.Errorf("inference must be much faster than training: %v vs %v", r.BatchTime, r2.BatchTime)
	}
}

func TestFusedLayersHelp(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	sys := system.A100(64).WithMem1Capacity(units.TiB)
	base := megatron(8, 8, 1, 1, execution.RecomputeNone)
	fused := base
	fused.FusedLayers = true
	r1 := mustRun(t, m, sys, base)
	r2 := mustRun(t, m, sys, fused)
	if !(r2.BatchTime < r1.BatchTime) {
		t.Errorf("fusion must speed up the batch: %v vs %v", r2.BatchTime, r1.BatchTime)
	}
	if !(r2.Mem1.Activations < r1.Mem1.Activations) {
		t.Error("fusion must cut activation memory")
	}
}

func TestResultStringMentionsModel(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	r := mustRun(t, m, system.A100(64), megatron(8, 8, 1, 1, execution.RecomputeFull))
	if got := r.String(); len(got) == 0 {
		t.Fatal("empty result string")
	}
}

func TestBadInputsRejected(t *testing.T) {
	good := model.MustPreset("gpt3-175B")
	if _, err := Run(model.LLM{}, system.A100(8), megatron(1, 1, 1, 1, execution.RecomputeNone)); err == nil {
		t.Error("invalid model must be rejected")
	}
	if _, err := Run(good, system.System{}, megatron(1, 1, 1, 1, execution.RecomputeNone)); err == nil {
		t.Error("invalid system must be rejected")
	}
}

func TestLayerTimesProfile(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(8)
	sys := system.A100(8)
	st := megatron(8, 1, 1, 1, execution.RecomputeNone)
	rows, err := LayerTimes(m, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("want 13 layers, got %d", len(rows))
	}
	for _, r := range rows {
		if r.FwdTime <= 0 || r.BwdTime <= 0 {
			t.Errorf("%s: non-positive times", r.Name)
		}
		if r.FwdBound != "compute" && r.FwdBound != "memory" {
			t.Errorf("%s: bad bound %q", r.Name, r.FwdBound)
		}
	}
	// GEMMs dominate a block's forward time.
	var gemm, vec float64
	for _, r := range rows {
		if r.Engine == layers.Matrix {
			gemm += float64(r.FwdTime)
		} else {
			vec += float64(r.FwdTime)
		}
	}
	if gemm < 2*vec {
		t.Errorf("GEMMs should dominate: %.3g vs %.3g", gemm, vec)
	}
	if _, err := LayerTimes(m, sys, megatron(1000, 1, 1, 1, execution.RecomputeNone)); err == nil {
		t.Error("invalid strategy must error")
	}
}

func TestPipelineParamsShape(t *testing.T) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	sys := system.A100(64)
	st := megatron(8, 8, 1, 1, execution.RecomputeFull)
	st.Interleave = 2
	p, err := PipelineParams(m, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages != 8 || p.Chunks != 2 || p.Microbatches != 64 {
		t.Fatalf("params %+v", p)
	}
	if p.FwdChunk <= 0 || p.BwdChunk <= p.FwdChunk {
		t.Fatalf("chunk times implausible: %+v", p)
	}
	if _, err := PipelineParams(m, sys, megatron(1000, 1, 1, 1, execution.RecomputeFull)); err == nil {
		t.Error("invalid strategy must error")
	}
}
