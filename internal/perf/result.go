// Package perf is the core of the Calculon reproduction: the analytical
// performance model of §2.4. Given the three specifications — LLM, system,
// and execution strategy — it produces a complete estimate of batch time
// with a breakdown (forward, backward, recompute, optimizer, pipeline
// bubble, exposed TP/PP/DP communication, exposed offload transfers), a
// memory breakdown per tier (weights, weight gradients, activations,
// activation gradients, optimizer state), sample rate, model-FLOP
// utilization, and the offload bandwidth/capacity requirements of §6.
package perf

import (
	"errors"
	"fmt"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/units"
)

// ErrInfeasible tags configurations that cannot run — insufficient memory,
// missing offload tier, too few processors, or structural rule violations.
// Search engines count these rather than failing.
var ErrInfeasible = errors.New("infeasible configuration")

// infeasible builds an ErrInfeasible-wrapped error without formatting the
// message: search paths reject millions of configurations and read none of
// the messages, so the fmt work (and the log10-based unit rendering it
// triggers) is deferred until someone calls Error().
func infeasible(format string, args ...any) error {
	return &infeasibleError{format: format, args: args}
}

type infeasibleError struct {
	format string
	args   []any
}

func (e *infeasibleError) Error() string {
	return fmt.Sprintf("%v: "+e.format, append([]any{ErrInfeasible}, e.args...)...)
}

func (e *infeasibleError) Unwrap() error { return ErrInfeasible }

// TimeBreakdown reports where the batch time went (all values are per batch
// on the critical path; the Exposed entries are the blocking portions of the
// corresponding communication totals).
type TimeBreakdown struct {
	FwdPass   units.Seconds `json:"fw_pass"`
	BwdPass   units.Seconds `json:"bw_pass"`
	Recompute units.Seconds `json:"fw_recompute"`
	OptimStep units.Seconds `json:"optim_step"`
	PPBubble  units.Seconds `json:"pp_bubble"`

	TPComm units.Seconds `json:"tp_comm"`
	PPComm units.Seconds `json:"pp_comm"`
	DPComm units.Seconds `json:"dp_comm"`

	TPExposed units.Seconds `json:"tp_exposed"`
	PPExposed units.Seconds `json:"pp_exposed"`
	DPExposed units.Seconds `json:"dp_exposed"`

	OffloadTotal   units.Seconds `json:"offload_total"`
	OffloadExposed units.Seconds `json:"offload_exposed"`
}

// Total is the batch time: every compute phase plus exposed communication
// and exposed offload transfers.
func (t TimeBreakdown) Total() units.Seconds {
	return t.FwdPass + t.BwdPass + t.Recompute + t.OptimStep + t.PPBubble +
		t.TPExposed + t.PPExposed + t.DPExposed + t.OffloadExposed
}

// MemBreakdown reports the bytes used in one memory tier by category,
// matching the paper's Fig. 3/4 stacks.
type MemBreakdown struct {
	Weights     units.Bytes `json:"weights"`
	WeightGrads units.Bytes `json:"weight_grads"`
	Activations units.Bytes `json:"activations"`
	ActGrads    units.Bytes `json:"act_grads"`
	Optimizer   units.Bytes `json:"optimizer"`
}

// Total is the tier's total consumption.
func (m MemBreakdown) Total() units.Bytes {
	return m.Weights + m.WeightGrads + m.Activations + m.ActGrads + m.Optimizer
}

// Result is the complete output of one model evaluation.
type Result struct {
	Model    model.LLM          `json:"model"`
	System   string             `json:"system"`
	Strategy execution.Strategy `json:"strategy"`

	// BatchTime is the end-to-end time of one training batch (or one
	// forward pass over the batch for inference strategies).
	BatchTime units.Seconds `json:"batch_time"`
	// SampleRate is samples processed per second.
	SampleRate float64 `json:"sample_rate"`
	// MFU is model-FLOP utilization: useful model FLOPs (no recompute)
	// divided by peak matrix FLOPs of the processors used.
	MFU float64 `json:"mfu"`

	Time TimeBreakdown `json:"time"`
	// Mem1 and Mem2 are the per-processor consumption of each tier.
	Mem1 MemBreakdown `json:"mem1"`
	Mem2 MemBreakdown `json:"mem2"`

	// OffloadBWRequired is Eq. 1's seamless-offload bandwidth: the second-
	// level memory bandwidth at which no offload time would be exposed.
	OffloadBWRequired units.BytesPerSec `json:"offload_bw_required"`
	// OffloadBWUsed is the bandwidth actually sustained on the tier.
	OffloadBWUsed units.BytesPerSec `json:"offload_bw_used"`

	// ProcsUsed is t·p·d.
	ProcsUsed int `json:"procs_used"`
}

func (r Result) String() string {
	return fmt.Sprintf("%s on %s %v: batch=%v rate=%.1f/s MFU=%.1f%% mem1=%v mem2=%v",
		r.Model.Name, r.System, r.Strategy, r.BatchTime, r.SampleRate, 100*r.MFU,
		r.Mem1.Total(), r.Mem2.Total())
}
