package perf

import (
	"calculon/internal/units"
)

// offload prices the Fig. 8 tensor-offloading engine: while a block
// computes, the previous block's results are written back to second-level
// memory and the next block's operands are prefetched, double-buffered so
// that only ~3 block slots stay resident. Transfers are driven by a
// DMA/TMA-like engine (no processor compute, §6) but are throttled to the
// HBM-idle portion of the compute window (§2.4): time the first-level
// memory is busy cannot also stream offload traffic.
//
// Eq. 1 of the paper gives the seamless-offload requirement
// Bandwidth ≥ Size_tensor / T_compute; the peak of that requirement across
// the forward, backward, and optimizer phases is reported as
// OffloadBWRequired, which the §6 infinite-memory probe reads off.
func (e *eval) offload() {
	w, a, o := e.st.WeightOffload, e.st.ActOffload, e.st.OptimOffload
	if !w && !a && !o {
		return
	}

	blockW := e.tot.WeightBytes
	actBlock := e.actPerMBPerBlock()

	// Bytes crossing the offload link per block visit.
	var fwdBytes, bwdBytes units.Bytes
	if w {
		fwdBytes += blockW     // prefetch weights for the next block
		bwdBytes += 2 * blockW // prefetch weights, stream gradients out
	}
	if a {
		fwdBytes += actBlock // stash this microbatch's activations
		bwdBytes += actBlock // prefetch them for the backward pass
	}
	if o && !e.st.Inference {
		// Optimizer state is prefetched per block during the backward pass
		// (§6: "prefetching activations, weights, and optimizer during the
		// backward pass") — only on the last microbatch's visit, so the
		// per-visit share divides by n.
		params := e.tot.Params()
		if e.st.OptimSharding {
			params /= float64(e.st.DP)
		}
		bwdBytes += units.Bytes(24 * params).DivN(float64(e.n))
	}

	// Overlap windows per block visit: compute slack where HBM is idle plus
	// exposed network time, during which offload streaming is allowed.
	fwdWindow := e.blockFwdSlack + e.tpFwdExposedPerBlock
	bwdWindow := e.blockBwdSlack + e.recompSlack + e.tpBwdExposedPerBlock
	// Eq. 1 windows use the full phase times.
	fwdFull := e.blockFwd + e.tpFwdExposedPerBlock
	bwdFull := e.blockBwd + e.blockRecompute + e.tpBwdExposedPerBlock

	bw2f := e.sys.Mem2.EffectiveBandwidth(fwdBytes)
	bw2b := e.sys.Mem2.EffectiveBandwidth(bwdBytes)
	xferF := fwdBytes.Div(bw2f)
	xferB := bwdBytes.Div(bw2b)

	visits := float64(e.n) * float64(e.bp)
	e.offloadTotal = (xferF + xferB).Times(visits)
	e.offloadExposed = (maxSec(0, xferF-fwdWindow) + maxSec(0, xferB-bwdWindow)).Times(visits)

	req := maxBPS(fwdBytes.Per(fwdFull), bwdBytes.Per(bwdFull))
	if o && !e.st.Inference {
		// The updated state and weights stream back during the step itself;
		// that write-back time is priced inside optimTime (the step is the
		// max of compute and streaming), counted here in the total.
		params := e.tot.Params() * float64(e.bp)
		if e.st.OptimSharding {
			params /= float64(e.st.DP)
		}
		state := units.Bytes(14 * params)
		e.offloadTotal += state.Div(e.sys.Mem2.EffectiveBandwidth(state))
	}
	e.offloadBWRequired = req
	if e.sys.Mem2.Bandwidth.IsUnbounded() {
		e.offloadBWUsed = req
	} else {
		e.offloadBWUsed = minBPS(req, e.sys.Mem2.EffectiveBandwidth(maxBytes(fwdBytes, bwdBytes)))
	}
}

func maxBPS(a, b units.BytesPerSec) units.BytesPerSec {
	if a > b {
		return a
	}
	return b
}

func minBPS(a, b units.BytesPerSec) units.BytesPerSec {
	if a < b {
		return a
	}
	return b
}

func maxBytes(a, b units.Bytes) units.Bytes {
	if a > b {
		return a
	}
	return b
}
