package perf

import (
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// TestPreScreenSoundAndExact locks in the two contracts of the phase-1
// filter against the full evaluation, strategy by strategy over a real
// enumeration:
//
//   - soundness: whenever the pre-screen rejects, the full evaluation (run
//     with the pre-screen disabled) also rejects — the filter never costs a
//     feasible configuration;
//   - verdict identity: the two-phase Runner and a direct Runner agree on
//     feasibility for every strategy, and feasible results carry identical
//     numbers.
func TestPreScreenSoundAndExact(t *testing.T) {
	cases := []struct {
		m   model.LLM
		sys system.System
	}{
		// Tight tier 1: the memory lower bound does the rejecting.
		{model.MustPreset("gpt3-13B").WithBatch(16), system.A100(16)},
		// Second tier present: offload strategies enter and the mem2 bound
		// and offload-tier checks are live.
		{model.MustPreset("megatron-22B").WithBatch(8),
			system.A100(8).WithMem2(system.DDR5(256 * units.GiB))},
		// Roomy system: almost everything passes the screen; exactness of
		// the feasible path dominates.
		{model.MustPreset("gpt2-1.5B").WithBatch(16),
			system.A100(16).WithMem1Capacity(1 * units.TiB)},
	}
	for _, tc := range cases {
		fast, err := NewRunner(tc.m, tc.sys)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := NewRunner(tc.m, tc.sys)
		if err != nil {
			t.Fatal(err)
		}
		direct.DisablePreScreen()
		direct.DisableMemo()

		screen := execution.NewPreScreen(tc.m, execution.Limits{
			Procs: tc.sys.Procs,
			Mem1:  tc.sys.Mem1.Capacity,
			Mem2:  tc.sys.Mem2.Capacity,
		})

		enum := execution.EnumOptions{
			Procs:         tc.sys.Procs,
			Features:      execution.FeatureAll,
			HasMem2:       tc.sys.Mem2.Present(),
			MaxInterleave: 2,
		}
		checked, screened := 0, 0
		enum.Enumerate(tc.m, func(st execution.Strategy) bool {
			checked++
			fastRes, info, fastErr := fast.RunDetailed(st)
			directRes, _, directErr := direct.RunDetailed(st)
			if (fastErr == nil) != (directErr == nil) {
				t.Fatalf("%s on %s, %v: two-phase err=%v, direct err=%v",
					tc.m.Name, tc.sys.Name, st, fastErr, directErr)
			}
			if fastErr == nil && fastRes != directRes {
				t.Fatalf("%s on %s, %v: feasible results diverge:\n%+v\n%+v",
					tc.m.Name, tc.sys.Name, st, fastRes, directRes)
			}
			if info.PreScreened {
				screened++
				if directErr == nil {
					t.Fatalf("%s on %s, %v: pre-screen rejected a feasible strategy",
						tc.m.Name, tc.sys.Name, st)
				}
			}
			// The standalone screen must agree with the Runner's own use of it.
			norm := st.Normalize()
			if norm.Validate(tc.m) == nil && (screen.Check(norm) != nil) != info.PreScreened {
				t.Fatalf("%s on %s, %v: standalone Check disagrees with RunInfo.PreScreened",
					tc.m.Name, tc.sys.Name, st)
			}
			return true
		})
		if checked == 0 {
			t.Fatalf("%s on %s: enumeration produced no strategies", tc.m.Name, tc.sys.Name)
		}
		t.Logf("%s on %s: %d strategies, %d pre-screened", tc.m.Name, tc.sys.Name, checked, screened)
	}
}

// TestRunnerMemoKeyCoversBlockInputs guards the memo key against drift: two
// strategies that differ in any field the block profile reads must never
// share a cache entry. It runs every pairwise variant of the key fields
// through one memoized Runner and a fresh cold Runner and demands identical
// results.
func TestRunnerMemoKeyCoversBlockInputs(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(16)
	sys := system.A100(16).WithMem1Capacity(1 * units.TiB)
	base := execution.Strategy{TP: 4, PP: 2, DP: 2, Microbatch: 1, Interleave: 1, OneFOneB: true}
	variants := []execution.Strategy{base}
	for _, f := range []func(*execution.Strategy){
		func(s *execution.Strategy) { s.TP = 8; s.DP = 1 },
		func(s *execution.Strategy) { s.Microbatch = 2 },
		func(s *execution.Strategy) { s.Recompute = execution.RecomputeFull },
		func(s *execution.Strategy) {
			s.Recompute = execution.RecomputeAttn
			s.TPRSAG = true
			s.SeqParallel = true
		},
		func(s *execution.Strategy) {
			s.TPRSAG = true
			s.SeqParallel = true
			s.TPRedoForSP = true
		},
		func(s *execution.Strategy) { s.FusedLayers = true },
	} {
		v := base
		f(&v)
		variants = append(variants, v)
	}

	shared, err := NewRunner(m, sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range variants {
		// Each variant twice through the shared runner: the second hit comes
		// from the memo and must not leak another variant's profile.
		first, _, err1 := shared.RunDetailed(st)
		second, info, err2 := shared.RunDetailed(st)
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: %v / %v", st, err1, err2)
		}
		if !info.CacheHit {
			t.Errorf("%v: second evaluation missed the memo", st)
		}
		if first != second {
			t.Errorf("%v: memoized result differs from first evaluation", st)
		}
		cold, err := NewRunner(m, sys)
		if err != nil {
			t.Fatal(err)
		}
		cold.DisableMemo()
		ref, refErr := cold.Run(st)
		if refErr != nil {
			t.Fatalf("%v: %v", st, refErr)
		}
		if second != ref {
			t.Errorf("%v: memoized result diverges from cold evaluation", st)
		}
	}
}
