package perf

import (
	"sync"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

func TestRunnerStatsDisabledByDefault(t *testing.T) {
	r, err := NewRunner(model.MustPreset("gpt3-13B").WithBatch(8), system.A100(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(execution.Strategy{TP: 8, PP: 1, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true, Recompute: execution.RecomputeFull, OptimSharding: false}); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s != (RunnerStats{}) {
		t.Fatalf("stats without EnableStats = %+v, want zero", s)
	}
}

func TestRunnerStatsCountsAcrossWorkers(t *testing.T) {
	r, err := NewRunner(model.MustPreset("gpt3-13B").WithBatch(8), system.A100(8))
	if err != nil {
		t.Fatal(err)
	}
	r.EnableStats()
	feasible := execution.Strategy{TP: 8, PP: 1, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true, Recompute: execution.RecomputeFull, OptimSharding: false}
	infeasible := feasible
	infeasible.WeightOffload = true // no second tier on a bare A100 system

	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Run(feasible)
				r.Run(infeasible)
			}
		}()
	}
	wg.Wait()

	s := r.Stats()
	if s.Evaluated != 2*workers*perWorker {
		t.Fatalf("evaluated %d, want %d", s.Evaluated, 2*workers*perWorker)
	}
	if s.Infeasible != workers*perWorker {
		t.Fatalf("infeasible %d, want %d", s.Infeasible, workers*perWorker)
	}
	if s.Feasible() != workers*perWorker {
		t.Fatalf("feasible %d, want %d", s.Feasible(), workers*perWorker)
	}
}
