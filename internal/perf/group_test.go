package perf

import (
	"reflect"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

// TestBlockProfileProcsIndependent is the invariant behind RunnerGroup's
// cross-size memo sharing: the per-block profile reads nothing that depends
// on the processor count, so profiles computed at one system size are
// bit-identical at every other. If a size-dependent input ever leaks into
// computeProfile, sharing the memo across a §5.2 sweep would silently serve
// wrong timings — this test catches that before the equivalence suite does.
func TestBlockProfileProcsIndependent(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	o := execution.EnumOptions{Procs: 16, Features: execution.FeatureSeqPar, MaxInterleave: 2}
	var sts []execution.Strategy
	o.Enumerate(m, func(s execution.Strategy) bool {
		sts = append(sts, s)
		return len(sts) < 64
	})
	if len(sts) == 0 {
		t.Fatal("no strategies enumerated")
	}
	sizes := []int{8, 64, 1024}
	for _, st := range sts {
		ref := computeProfile(m, system.A100(sizes[0]), st)
		for _, n := range sizes[1:] {
			got := computeProfile(m, system.A100(n), st)
			if got != ref {
				t.Fatalf("profile for %v differs between %d and %d procs:\n%+v\nvs\n%+v",
					st, sizes[0], n, ref, got)
			}
		}
	}
}

// TestRunnerGroupSharesMemo checks the RunnerGroup contract end to end:
// results served through a group Runner are bit-identical to a standalone
// Runner's, and a profile memoized at one size is a cache hit at the next.
func TestRunnerGroupSharesMemo(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	base := system.A100(16)
	group, err := NewRunnerGroup(m, base)
	if err != nil {
		t.Fatal(err)
	}

	// Sample strategies from across the whole space, not just the first
	// subtrees — the low-TP ones all die in the pre-screen and would never
	// touch the memo.
	o := execution.EnumOptions{Procs: 16, Features: execution.FeatureSeqPar, MaxInterleave: 2}
	var all []execution.Strategy
	o.Enumerate(m, func(s execution.Strategy) bool {
		all = append(all, s)
		return true
	})
	stride := len(all)/48 + 1
	var sts []execution.Strategy
	for i := 0; i < len(all); i += stride {
		sts = append(sts, all[i])
	}

	var feasible *execution.Strategy
	for _, procs := range []int{16, 32} {
		sys := base.WithProcs(procs)
		shared, err := group.RunnerFor(sys)
		if err != nil {
			t.Fatalf("RunnerFor(%d procs): %v", procs, err)
		}
		fresh, err := NewRunner(m, sys)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range sts {
			got, gotErr := shared.Run(st)
			want, wantErr := fresh.Run(st)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("procs %d, %v: feasibility diverges: shared %v vs fresh %v",
					procs, st, gotErr, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("procs %d, %v: result diverges through the shared memo", procs, st)
			}
			if gotErr == nil && feasible == nil {
				s := st
				feasible = &s
			}
		}
	}
	if feasible == nil {
		t.Fatal("no feasible strategy in the sample — the cache-hit probe below would be vacuous")
	}

	// After the first sizes warmed the memo, the very first evaluation of an
	// already-seen strategy at a new size must hit the cache.
	probe, err := group.RunnerFor(base.WithProcs(64))
	if err != nil {
		t.Fatal(err)
	}
	probe.EnableStats()
	if _, err := probe.Run(*feasible); err != nil {
		t.Fatalf("strategy feasible at 16 procs infeasible at 64: %v", err)
	}
	if s := probe.Stats(); s.CacheHits != 1 {
		t.Errorf("first evaluation at a new size missed the shared memo: %+v", s)
	}
}

// TestRunnerGroupRefusesForeignHardware pins the guard: a group must not hand
// out Runners for systems whose memo-relevant hardware (compute engines,
// first-tier timing) differs from the base, since the shared profiles were
// computed under the base's timing.
func TestRunnerGroupRefusesForeignHardware(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	base := system.A100(16)
	group, err := NewRunnerGroup(m, base)
	if err != nil {
		t.Fatal(err)
	}

	otherCompute := base
	otherCompute.Compute.MatrixPeak *= 2
	if _, err := group.RunnerFor(otherCompute); err == nil {
		t.Error("RunnerFor accepted a system with different compute engines")
	}

	otherMem := base
	otherMem.Mem1.Bandwidth *= 2
	if _, err := group.RunnerFor(otherMem); err == nil {
		t.Error("RunnerFor accepted a system with different first-tier bandwidth")
	}

	// Size-dependent knobs may vary freely: processor count, first-tier
	// capacity, and the second tier.
	for _, ok := range []system.System{
		base.WithProcs(4096),
		base.WithMem1Capacity(base.Mem1.Capacity / 2),
	} {
		if _, err := group.RunnerFor(ok); err != nil {
			t.Errorf("RunnerFor refused a memo-compatible system: %v", err)
		}
	}
}
