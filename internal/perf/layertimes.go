package perf

import (
	"calculon/internal/execution"
	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// LayerTiming is one row of a per-layer cost profile: how the processing
// model priced a single layer of the transformer block for one microbatch.
type LayerTiming struct {
	Name   string
	Engine layers.Engine

	FwdFLOPs   units.FLOPs
	FwdTraffic units.Bytes
	FwdTime    units.Seconds
	// FwdBound reports what limited the forward op: "compute" or "memory".
	FwdBound string

	BwdTime units.Seconds

	WeightBytes units.Bytes
	ActBytes    units.Bytes
}

// LayerTimes profiles one transformer block under the configuration,
// layer by layer — the observability view behind `calculon run -layers`.
func LayerTimes(m model.LLM, sys system.System, st execution.Strategy) ([]LayerTiming, error) {
	st = st.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := st.Validate(m); err != nil {
		return nil, infeasible("%v", err)
	}
	ls := layers.Block(m, shardFor(st))
	out := make([]LayerTiming, 0, len(ls))
	for _, l := range ls {
		ft, slack := opTime(sys, l.Engine, l.FLOPs, l.Traffic)
		bt, _ := opTime(sys, l.Engine, l.BwdFLOPs, l.BwdTraffic)
		bound := "memory"
		if slack > 0 || l.Traffic == 0 {
			bound = "compute"
		}
		out = append(out, LayerTiming{
			Name:        l.Name,
			Engine:      l.Engine,
			FwdFLOPs:    l.FLOPs,
			FwdTraffic:  l.Traffic,
			FwdTime:     ft,
			FwdBound:    bound,
			BwdTime:     bt,
			WeightBytes: l.WeightBytes,
			ActBytes:    l.ActBytes,
		})
	}
	return out, nil
}
