package perf

import (
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

// BenchmarkRun measures the cost of one analytical evaluation — the paper
// quotes "much less than 1 ms per configuration"; this implementation
// targets single-digit microseconds.
func BenchmarkRun(b *testing.B) {
	m := model.MustPreset("gpt3-175B").WithBatch(2048)
	sys := system.A100(4096)
	st := execution.Strategy{TP: 8, PP: 64, DP: 4, Microbatch: 1, Interleave: 2,
		OneFOneB: true, Recompute: execution.RecomputeFull, TPRSAG: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, sys, st); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStrategy is the shared configuration of the cold/memoized pair below;
// the two benchmarks differ only in whether the block-profile memo is live,
// so their delta is the phase-2 win and their allocs/op difference is the
// layer-graph construction the memo avoids.
func benchStrategy() (model.LLM, system.System, execution.Strategy) {
	return model.MustPreset("gpt3-175B").WithBatch(2048),
		system.A100(4096),
		execution.Strategy{TP: 8, PP: 64, DP: 4, Microbatch: 1, Interleave: 2,
			OneFOneB: true, Recompute: execution.RecomputeFull, TPRSAG: true}
}

// BenchmarkRunnerCold evaluates with the memo disabled: every iteration
// rebuilds the block layer graph and re-times all layers — the phase-2
// worst case, and the regression guard for the direct path.
func BenchmarkRunnerCold(b *testing.B) {
	m, sys, st := benchStrategy()
	r, err := NewRunner(m, sys)
	if err != nil {
		b.Fatal(err)
	}
	r.DisableMemo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerMemoized evaluates the same strategy through a warm
// Runner: after the first iteration the block profile comes from the memo,
// so the steady state is the per-strategy pipeline/DP math alone. Tracked
// by BENCH_BASELINE.json for both time and allocs/op.
func BenchmarkRunnerMemoized(b *testing.B) {
	m, sys, st := benchStrategy()
	r, err := NewRunner(m, sys)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Run(st); err != nil { // warm the memo outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(st); err != nil {
			b.Fatal(err)
		}
	}
}
