package perf

import (
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

// BenchmarkRun measures the cost of one analytical evaluation — the paper
// quotes "much less than 1 ms per configuration"; this implementation
// targets single-digit microseconds.
func BenchmarkRun(b *testing.B) {
	m := model.MustPreset("gpt3-175B").WithBatch(2048)
	sys := system.A100(4096)
	st := execution.Strategy{TP: 8, PP: 64, DP: 4, Microbatch: 1, Interleave: 2,
		OneFOneB: true, Recompute: execution.RecomputeFull, TPRSAG: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, sys, st); err != nil {
			b.Fatal(err)
		}
	}
}
