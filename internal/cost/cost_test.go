package cost

import (
	"context"
	"math"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/units"
)

// TestUnitPricesMatchTable3 pins the per-GPU prices of the paper's "Price"
// column for all 16 designs.
func TestUnitPricesMatchTable3(t *testing.T) {
	want := map[string]float64{
		"20GiB+0":       22_250,
		"40GiB+0":       25_000,
		"80GiB+0":       30_000,
		"120GiB+0":      40_000,
		"20GiB+256GiB":  24_750,
		"40GiB+256GiB":  27_500,
		"80GiB+256GiB":  32_500,
		"120GiB+256GiB": 42_500,
		"20GiB+512GiB":  32_250,
		"40GiB+512GiB":  35_000,
		"80GiB+512GiB":  40_000,
		"120GiB+512GiB": 50_000,
		"20GiB+1TiB":    42_250,
		"40GiB+1TiB":    45_000,
		"80GiB+1TiB":    50_000,
		"120GiB+1TiB":   60_000,
	}
	if len(AllDesigns()) != 16 {
		t.Fatalf("want 16 designs, got %d", len(AllDesigns()))
	}
	for _, d := range AllDesigns() {
		key := d.HBM.Capacity.String() + "+" + ddrKey(d)
		if got := d.UnitPrice(); got != want[key] {
			t.Errorf("%s price = %.0f, want %.0f", key, got, want[key])
		}
	}
}

func ddrKey(d Design) string {
	if d.DDR.Capacity == 0 {
		return "0"
	}
	return d.DDR.Capacity.String()
}

// TestMaxGPUsMatchTable3 pins the "Max GPUs" column of Table 3.
func TestMaxGPUsMatchTable3(t *testing.T) {
	cases := []struct {
		hbm, ddr units.Bytes
		want     int
	}{
		{20 * units.GiB, 0, 5616},
		{40 * units.GiB, 0, 5000},
		{80 * units.GiB, 0, 4160},
		{120 * units.GiB, 0, 3120},
		{20 * units.GiB, 256 * units.GiB, 5048},
		{40 * units.GiB, 256 * units.GiB, 4544},
		{80 * units.GiB, 256 * units.GiB, 3840},
		{120 * units.GiB, 256 * units.GiB, 2936},
		{20 * units.GiB, 512 * units.GiB, 3872},
		{40 * units.GiB, 512 * units.GiB, 3568},
		{80 * units.GiB, 512 * units.GiB, 3120},
		{120 * units.GiB, 512 * units.GiB, 2496},
		{20 * units.GiB, 1 * units.TiB, 2952},
		{40 * units.GiB, 1 * units.TiB, 2776},
		{80 * units.GiB, 1 * units.TiB, 2496},
		{120 * units.GiB, 1 * units.TiB, 2080},
	}
	for _, c := range cases {
		d := design(c.hbm, c.ddr)
		if got := d.MaxGPUs(125e6); got != c.want {
			t.Errorf("%v: MaxGPUs = %d, want %d", d, got, c.want)
		}
	}
}

func design(hbm, ddr units.Bytes) Design {
	var d Design
	for _, h := range HBMOptions {
		if h.Capacity == hbm {
			d.HBM = h
		}
	}
	for _, o := range DDROptions {
		if o.Capacity == ddr {
			d.DDR = o
		}
	}
	return d
}

func TestDesignSystemCarriesMemories(t *testing.T) {
	d := design(40*units.GiB, 256*units.GiB)
	s := d.System(64)
	if s.Mem1.Capacity != 40*units.GiB {
		t.Errorf("mem1 = %v", s.Mem1.Capacity)
	}
	if !s.Mem2.Present() || s.Mem2.Capacity != 256*units.GiB {
		t.Errorf("mem2 = %+v", s.Mem2)
	}
	bare := design(40*units.GiB, 0).System(64)
	if bare.Mem2.Present() {
		t.Error("no-DDR design must have no mem2")
	}
}

func TestDesignString(t *testing.T) {
	if got := design(40*units.GiB, 0).String(); got != "40GiB HBM3" {
		t.Errorf("String = %q", got)
	}
	if got := design(40*units.GiB, 512*units.GiB).String(); got != "40GiB HBM3 + 512GiB DDR5" {
		t.Errorf("String = %q", got)
	}
}

// TestBudgetSearchSmall runs a miniature §7 sweep (small budget and model)
// and checks structural invariants: bigger budgets never hurt, offload
// designs can run models that bare designs cannot.
func TestBudgetSearchSmall(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	designs := []Design{
		design(80*units.GiB, 0),
		design(40*units.GiB, 256*units.GiB),
	}
	opts := SweepOptions{
		Budget:  2e6, // ~60-70 GPUs
		Stride:  16,
		MinFrac: 0.7,
		Search: search.Options{
			Enum: execution.EnumOptions{Features: execution.FeatureSeqPar, MaxInterleave: 2},
		},
	}
	evals, err := BudgetSearch(context.Background(), []model.LLM{m}, designs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 2 {
		t.Fatalf("got %d evaluations", len(evals))
	}
	for _, ev := range evals {
		if len(ev.PerModel) != 1 {
			t.Fatalf("per-model size %d", len(ev.PerModel))
		}
		mr := ev.PerModel[0]
		if !mr.Found {
			t.Fatalf("%v found nothing", ev.Design)
		}
		if mr.GPUs > ev.MaxGPUs || mr.GPUs%8 != 0 {
			t.Errorf("%v picked %d GPUs (cap %d)", ev.Design, mr.GPUs, ev.MaxGPUs)
		}
		wantPPM := mr.SampleRate / (float64(mr.GPUs) * ev.UnitPrice / 1e6)
		if math.Abs(mr.PerfPerMDollar-wantPPM)/wantPPM > 1e-9 {
			t.Errorf("perf/$M inconsistent: %f vs %f", mr.PerfPerMDollar, wantPPM)
		}
	}
	ev, mr, ok := BestByPerf(evals, m.Name)
	if !ok {
		t.Fatal("BestByPerf found nothing")
	}
	for _, e := range evals {
		if e.PerModel[0].SampleRate > mr.SampleRate {
			t.Errorf("BestByPerf missed better design %v", e.Design)
		}
	}
	_ = ev
}

func TestBestByPerfEmpty(t *testing.T) {
	if _, _, ok := BestByPerf(nil, "x"); ok {
		t.Error("empty evals must report not found")
	}
}

func TestSweepOptionsDefaults(t *testing.T) {
	o := SweepOptions{}.normalize()
	if o.Budget != 125e6 || o.Stride != 8 || o.MinFrac != 0.5 {
		t.Errorf("defaults = %+v", o)
	}
}
