// Package cost implements the optimal-system search of §7: choosing, under
// a fixed budget, the H100-based system design (HBM3 capacity tier ×
// secondary-DDR5 tier) that maximizes training performance or performance
// per dollar. Prices follow the paper's theoretical component pricing:
// a $20k H100 without memory, HBM3 tiers at $2,250/$5,000/$10,000/$20,000
// for 20/40/80/120 GiB (all at 3 TB/s), and DDR5 tiers at $2.5k/$10k/$20k
// for 256 GiB/512 GiB/1 TiB (all at 100 GB/s per direction).
package cost

import (
	"context"
	"fmt"

	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/units"
)

// MemOption is one purchasable memory tier.
type MemOption struct {
	Capacity units.Bytes
	Price    float64
}

// BaseGPUPrice is the cost of an H100 with no HBM, including all required
// infrastructure (§7).
const BaseGPUPrice = 20_000

// HBMOptions are the paper's four HBM3 capacity tiers.
var HBMOptions = []MemOption{
	{20 * units.GiB, 2_250},
	{40 * units.GiB, 5_000},
	{80 * units.GiB, 10_000},
	{120 * units.GiB, 20_000},
}

// DDROptions are the paper's secondary-memory tiers, including "none".
var DDROptions = []MemOption{
	{0, 0},
	{256 * units.GiB, 2_500},
	{512 * units.GiB, 10_000},
	{1 * units.TiB, 20_000},
}

// Design is one point of the 16-design grid of Table 3.
type Design struct {
	HBM MemOption
	DDR MemOption
}

// AllDesigns returns the full HBM × DDR permutation (16 designs).
func AllDesigns() []Design {
	var out []Design
	for _, d := range DDROptions {
		for _, h := range HBMOptions {
			out = append(out, Design{HBM: h, DDR: d})
		}
	}
	return out
}

// UnitPrice is the per-GPU price of the design.
func (d Design) UnitPrice() float64 { return BaseGPUPrice + d.HBM.Price + d.DDR.Price }

// MaxGPUs is the largest multiple of 8 GPUs affordable under the budget.
func (d Design) MaxGPUs(budget float64) int {
	n := int(budget / d.UnitPrice())
	return n - n%8
}

// System instantiates the design at the given processor count.
func (d Design) System(procs int) system.System {
	return system.H100(procs, d.HBM.Capacity, d.DDR.Capacity)
}

func (d Design) String() string {
	if d.DDR.Capacity == 0 {
		return fmt.Sprintf("%v HBM3", d.HBM.Capacity)
	}
	return fmt.Sprintf("%v HBM3 + %v DDR5", d.HBM.Capacity, d.DDR.Capacity)
}

// ModelResult is one LLM's outcome on one design (a cell group of Table 3).
type ModelResult struct {
	Model string
	// GPUs is the system size whose best execution maximizes sample rate.
	GPUs int
	// SampleRate is the best samples/second found.
	SampleRate float64
	// PerfPerMDollar is SampleRate per million dollars of system cost
	// (Table 3's "Perf/$M", priced at the GPUs actually used).
	PerfPerMDollar float64
	// Best is the winning configuration.
	Best perf.Result
	// Found is false when no size under the cap can run the model.
	Found bool
}

// Evaluation is one design row of Table 3.
type Evaluation struct {
	Design    Design
	UnitPrice float64
	MaxGPUs   int
	PerModel  []ModelResult
}

// SweepOptions bounds the per-design system-size sweep.
type SweepOptions struct {
	// Budget is the total system budget (the paper uses $125M).
	Budget float64
	// Stride is the spacing of candidate system sizes (multiples of 8; the
	// paper sweeps exhaustively, which Stride=8 reproduces; larger strides
	// trade fidelity for speed).
	Stride int
	// MinFrac skips sizes below this fraction of the design's cap; the
	// optimum always sits near the cap, so 0.5 is a safe default.
	MinFrac float64
	// Search carries the execution-search bounds.
	Search search.Options
}

func (o SweepOptions) normalize() SweepOptions {
	if o.Budget == 0 {
		o.Budget = 125e6
	}
	if o.Stride <= 0 {
		o.Stride = 8
	}
	if o.MinFrac <= 0 || o.MinFrac >= 1 {
		o.MinFrac = 0.5
	}
	return o
}

// BudgetSearch evaluates every design for every model: for each design it
// sweeps affordable system sizes, runs the full execution search at each,
// and keeps the size with the best sample rate (§7: "we sweep across the
// system size space exhaustively finding the absolute best execution
// strategy").
func BudgetSearch(ctx context.Context, models []model.LLM, designs []Design, opts SweepOptions) ([]Evaluation, error) {
	opts = opts.normalize()
	if ctx == nil {
		ctx = context.Background()
	}
	var out []Evaluation
	for _, d := range designs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		ev := Evaluation{Design: d, UnitPrice: d.UnitPrice(), MaxGPUs: d.MaxGPUs(opts.Budget)}
		for _, m := range models {
			mr, err := bestForDesign(ctx, m, d, ev.MaxGPUs, opts)
			if err != nil {
				return nil, fmt.Errorf("design %v model %s: %w", d, m.Name, err)
			}
			ev.PerModel = append(ev.PerModel, mr)
		}
		out = append(out, ev)
	}
	return out, nil
}

func bestForDesign(ctx context.Context, m model.LLM, d Design, maxGPUs int, opts SweepOptions) (ModelResult, error) {
	mr := ModelResult{Model: m.Name}
	min := int(float64(maxGPUs) * opts.MinFrac)
	var sizes []int
	for n := maxGPUs; n >= min && n >= opts.Stride; n -= opts.Stride {
		sizes = append(sizes, n)
	}
	pts, err := search.SystemSize(ctx, m, func(n int) system.System { return d.System(n) }, sizes, opts.Search)
	if err != nil {
		return mr, err
	}
	for _, p := range pts {
		if !p.Found {
			continue
		}
		if !mr.Found || p.Best.SampleRate > mr.SampleRate ||
			(p.Best.SampleRate == mr.SampleRate && p.Procs < mr.GPUs) {
			mr.Found = true
			mr.GPUs = p.Procs
			mr.SampleRate = p.Best.SampleRate
			mr.Best = p.Best
		}
	}
	if mr.Found {
		cost := float64(mr.GPUs) * d.UnitPrice()
		mr.PerfPerMDollar = mr.SampleRate / (cost / 1e6)
	}
	return mr, nil
}

// BestByPerf returns the evaluation whose named model achieves the highest
// sample rate, mirroring Table 3's highlighted row.
func BestByPerf(evals []Evaluation, modelName string) (Evaluation, ModelResult, bool) {
	var bestEv Evaluation
	var bestMr ModelResult
	found := false
	for _, ev := range evals {
		for _, mr := range ev.PerModel {
			if mr.Model != modelName || !mr.Found {
				continue
			}
			if !found || mr.SampleRate > bestMr.SampleRate {
				bestEv, bestMr, found = ev, mr, true
			}
		}
	}
	return bestEv, bestMr, found
}
