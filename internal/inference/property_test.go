package inference

import (
	"math"
	"testing"

	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// TestStepTimeMonotoneInContext: a longer context means a larger KV cache to
// stream (and more attention FLOPs), so the decode step can only slow down.
func TestStepTimeMonotoneInContext(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	sys := system.A100(8)
	prev := units.Seconds(0)
	for _, prompt := range []int{128, 512, 2048, 8192} {
		res := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: prompt, GenLen: 256, Batch: 8})
		if res.StepTime < prev {
			t.Errorf("step time shrank when the prompt grew to %d: %v < %v", prompt, res.StepTime, prev)
		}
		prev = res.StepTime
	}
}

// TestStepTimeMonotoneInBatch: more in-flight sequences mean more KV bytes
// and more GEMV work per step; the step can only slow down (throughput still
// improves — that is TestBatchingAmortizesWeightStreaming).
func TestStepTimeMonotoneInBatch(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	sys := system.A100(8)
	prev := units.Seconds(0)
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		res := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 512, GenLen: 128, Batch: batch})
		if res.StepTime < prev {
			t.Errorf("step time shrank when the batch grew to %d: %v < %v", batch, res.StepTime, prev)
		}
		prev = res.StepTime
	}
}

// TestKVCacheScaling pins the KV cache's two scaling laws: linear in the
// batch (each sequence owns its cache) and inverse in TP (heads shard the
// cache exactly).
func TestKVCacheScaling(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	sys := system.A100(8)
	w := Workload{PromptLen: 1024, GenLen: 256, Batch: 4}

	base := estimate(t, m, sys, serving(8, 1), w)
	w2 := w
	w2.Batch = 8
	doubled := estimate(t, m, sys, serving(8, 1), w2)
	if doubled.KVCacheBytes != 2*base.KVCacheBytes {
		t.Errorf("KV cache not linear in batch: %v at batch 8 vs %v at batch 4",
			doubled.KVCacheBytes, base.KVCacheBytes)
	}

	halfTP := estimate(t, m, sys, serving(4, 1), w)
	if halfTP.KVCacheBytes != 2*base.KVCacheBytes {
		t.Errorf("KV cache not inverse in TP: %v at tp=4 vs %v at tp=8",
			halfTP.KVCacheBytes, base.KVCacheBytes)
	}
}

// TestBandwidthBoundCrossover predicts the bandwidth→compute crossover
// batch in closed form and checks the verdict flips there. On a
// flat-efficiency system with tp=pp=1 (no communication, no efficiency
// curvature), per block and per step:
//
//	computeT = b·F₁/R        F₁ = 2·params + 4·ctx·h FLOPs per sequence
//	memT     = (W + K·b)/BW  K  = 4·ctx·h bytes of KV per sequence
//
// so decode is bandwidth-bound iff b < b* = W / (F₁·BW/R − K).
func TestBandwidthBoundCrossover(t *testing.T) {
	m := model.LLM{Name: "tiny", Hidden: 1024, AttnHeads: 16, Seq: 2048, Blocks: 4, Batch: 1}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	const (
		rate = units.FLOPsPerSec(1e12)
		bw   = units.BytesPerSec(2e11)
	)
	sys := system.System{
		Name:     "flat",
		Procs:    1,
		Compute:  system.Compute{MatrixPeak: rate, VectorPeak: rate},
		Mem1:     system.Memory{Capacity: 64 * units.GiB, Bandwidth: bw},
		Networks: []system.Network{{Name: "net", Bandwidth: 100e9, Latency: 1e-6}},
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}

	w := Workload{PromptLen: 768, GenLen: 256, Batch: 1}
	ctx := w.PromptLen + w.GenLen
	sh := layers.Shard{TP: 1, Microbatch: 1, Inference: true}
	tot := layers.Sum(layers.Block(m, sh))
	f1 := 2*tot.Params() + 4*float64(ctx)*float64(m.Hidden)
	k := 4 * float64(ctx) * float64(m.Hidden)
	weights := float64(tot.WeightBytes)
	denom := f1*float64(bw)/float64(rate) - k
	if denom <= 0 {
		t.Fatalf("no crossover exists: denom %g", denom)
	}
	bStar := weights / denom
	if bStar < 2 {
		t.Fatalf("crossover batch %g too small to test both sides", bStar)
	}

	below := int(math.Floor(bStar * 0.9))
	if below < 1 {
		below = 1
	}
	above := int(math.Ceil(bStar*1.1)) + 1
	w.Batch = below
	if res := estimate(t, m, sys, serving(1, 1), w); !res.DecodeBandwidthBound {
		t.Errorf("batch %d below the predicted crossover %.2f should be bandwidth-bound", below, bStar)
	}
	w.Batch = above
	if res := estimate(t, m, sys, serving(1, 1), w); res.DecodeBandwidthBound {
		t.Errorf("batch %d above the predicted crossover %.2f should be compute-bound", above, bStar)
	}
}

// TestServingGoldenDigits pins a gpt3-175B / a100-80g serving point to nine
// digits. Any change to the decode-step model, the collective costs (these
// digits price the TP all-reduce pair through internal/comm), or the KV
// accounting moves these numbers and must be deliberate.
func TestServingGoldenDigits(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	sys := system.A100(8)
	res := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 512, GenLen: 256, Batch: 8})

	golden := []struct {
		name string
		got  float64
		want float64
	}{
		{"PrefillTime", float64(res.PrefillTime), 1.410020984868477},
		{"StepTime", float64(res.StepTime), 0.028797109648695651},
		{"TotalTime", float64(res.TotalTime), 8.7820810549345634},
		{"TokensPerSec", res.TokensPerSec, 277.80565819258726},
		{"KVCacheBytes", float64(res.KVCacheBytes), 3623878656},
		{"WeightBytes", float64(res.WeightBytes), 43502764032},
		{"Mem1Used", float64(res.Mem1Used), 47327969280},
	}
	for _, g := range golden {
		if rel := math.Abs(g.got-g.want) / math.Abs(g.want); rel > 1e-9 {
			t.Errorf("%s: got %.17g, want %.17g (rel %.2e)", g.name, g.got, g.want, rel)
		}
	}
	if !res.DecodeBandwidthBound {
		t.Error("batch-8 decode on an A100 must be bandwidth-bound")
	}
}
