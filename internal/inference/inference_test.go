package inference

import (
	"errors"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
	"calculon/internal/units"
)

func serving(tp, pp int) execution.Strategy {
	return execution.Strategy{
		TP: tp, PP: pp, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeNone, TPRSAG: true,
	}
}

func estimate(t *testing.T, m model.LLM, sys system.System, st execution.Strategy, w Workload) Result {
	t.Helper()
	r, err := Estimate(m, sys, st, w)
	if err != nil {
		t.Fatalf("Estimate(%v, %+v): %v", st, w, err)
	}
	return r
}

func TestBasicServingEstimate(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	sys := system.A100(8)
	r := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 512, GenLen: 128, Batch: 4})
	if r.PrefillTime <= 0 || r.StepTime <= 0 || r.TokensPerSec <= 0 {
		t.Fatalf("implausible estimate: %+v", r)
	}
	if r.TotalTime < r.PrefillTime {
		t.Fatal("total must include prefill")
	}
	if r.Mem1Used > sys.Mem1.Capacity {
		t.Fatal("reported usage exceeds capacity without error")
	}
}

// TestDecodeIsBandwidthBoundAtSmallBatch pins the defining property of
// autoregressive decoding: at batch 1 the step streams all weights and is
// bandwidth-bound; at large batch the GEMMs become compute-bound.
func TestDecodeIsBandwidthBoundAtSmallBatch(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	sys := system.A100(8).WithMem1Capacity(units.TiB)
	small := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 128, GenLen: 32, Batch: 1})
	if !small.DecodeBandwidthBound {
		t.Error("batch-1 decode must be bandwidth-bound")
	}
	big := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 128, GenLen: 32, Batch: 512})
	if big.DecodeBandwidthBound {
		t.Error("batch-512 decode should be compute-bound")
	}
	// Lower bound: a bandwidth-bound step cannot beat weights/bandwidth.
	minStep := small.WeightBytes.Div(sys.Mem1.Bandwidth)
	if small.StepTime < minStep {
		t.Errorf("step %v beats the weight-streaming bound %v", small.StepTime, minStep)
	}
}

// TestBatchingAmortizesWeightStreaming: throughput grows strongly with
// batch in the bandwidth-bound regime while per-token latency barely moves.
func TestBatchingAmortizesWeightStreaming(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	sys := system.A100(8).WithMem1Capacity(units.TiB)
	b1 := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 128, GenLen: 32, Batch: 1})
	b16 := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 128, GenLen: 32, Batch: 16})
	if !(b16.TokensPerSec > 8*b1.TokensPerSec) {
		t.Errorf("batching 16× should lift throughput ≫8×: %f vs %f", b16.TokensPerSec, b1.TokensPerSec)
	}
	if b16.StepTime > 2*b1.StepTime {
		t.Errorf("latency should barely grow while bandwidth-bound: %v vs %v", b16.StepTime, b1.StepTime)
	}
}

func TestTPReducesLatency(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	sys := system.A100(8).WithMem1Capacity(units.TiB)
	t1 := estimate(t, m, sys, serving(1, 1), Workload{PromptLen: 128, GenLen: 32, Batch: 1})
	t8 := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 128, GenLen: 32, Batch: 1})
	if !(t8.StepTime < t1.StepTime) {
		t.Errorf("TP must reduce decode latency: %v vs %v", t8.StepTime, t1.StepTime)
	}
	if !(t8.WeightBytes < t1.WeightBytes) {
		t.Error("TP must shard weights")
	}
}

func TestPipelineTradesLatencyForMemory(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	sys := system.A100(32).WithMem1Capacity(units.TiB)
	p1 := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 128, GenLen: 32, Batch: 8})
	p4 := estimate(t, m, sys, serving(8, 4), Workload{PromptLen: 128, GenLen: 32, Batch: 8})
	if !(p4.WeightBytes < p1.WeightBytes) {
		t.Error("PP must cut per-GPU weights")
	}
	if !(p4.TokensPerSec > p1.TokensPerSec) {
		t.Error("PP should raise steady-state throughput (stages work concurrently)")
	}
	if !(p4.StepTime > p1.StepTime/4) {
		// sanity only: latency does not shrink with p the way throughput does
		t.Error("unexpected step latency")
	}
}

// TestKVCacheAccounting: the cache is 2·ctx·h·2B per block per sequence,
// sharded by TP — and it can dominate memory at long context.
func TestKVCacheAccounting(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	sys := system.A100(8).WithMem1Capacity(units.TiB)
	w := Workload{PromptLen: 1024, GenLen: 1024, Batch: 16}
	r := estimate(t, m, sys, serving(8, 1), w)
	ctx := w.PromptLen + w.GenLen
	want := units.Bytes(2*ctx*m.Hidden*2) / 8 * units.Bytes(w.Batch) * units.Bytes(m.Blocks)
	if r.KVCacheBytes != want {
		t.Errorf("KV cache = %v, want %v", r.KVCacheBytes, want)
	}
	short := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 128, GenLen: 64, Batch: 16})
	if !(r.KVCacheBytes > 5*short.KVCacheBytes) {
		t.Error("KV cache must grow with context")
	}
}

func TestKVCacheOverflowIsInfeasible(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	sys := system.A100(8) // 80 GiB
	// 512 concurrent 2k-context sequences: KV cache alone ≫ 80 GiB.
	_, err := Estimate(m, sys, serving(8, 1), Workload{PromptLen: 1024, GenLen: 1024, Batch: 512})
	if !errors.Is(err, perf.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPrefillScalesWithPrompt(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	sys := system.A100(8).WithMem1Capacity(units.TiB)
	short := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 256, GenLen: 1, Batch: 4})
	long := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 2048, GenLen: 1, Batch: 4})
	if !(long.PrefillTime > 4*short.PrefillTime) {
		t.Errorf("8× prompt should cost ≫4× prefill: %v vs %v", long.PrefillTime, short.PrefillTime)
	}
}

func TestWorkloadValidate(t *testing.T) {
	bad := []Workload{
		{PromptLen: 0, GenLen: 1, Batch: 1},
		{PromptLen: 1, GenLen: -1, Batch: 1},
		{PromptLen: 1, GenLen: 1, Batch: 0},
	}
	for i, w := range bad {
		if _, err := Estimate(model.MustPreset("gpt3-13B"), system.A100(8), serving(8, 1), w); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestZeroGenLenIsPrefillOnly(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	sys := system.A100(8).WithMem1Capacity(units.TiB)
	r := estimate(t, m, sys, serving(8, 1), Workload{PromptLen: 512, GenLen: 0, Batch: 2})
	if r.TotalTime != r.PrefillTime {
		t.Errorf("gen-0 total %v should equal prefill %v", r.TotalTime, r.PrefillTime)
	}
}

// TestKVOffloadEnablesLongContext: a batch whose KV cache overflows HBM
// becomes servable with the cache in the second tier, at a latency cost.
func TestKVOffloadEnablesLongContext(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	bare := system.A100(8)
	w := Workload{PromptLen: 1024, GenLen: 1024, Batch: 512}
	if _, err := Estimate(m, bare, serving(8, 1), w); !errors.Is(err, perf.ErrInfeasible) {
		t.Fatalf("want infeasible without offload, got %v", err)
	}
	tiered := bare.WithMem2(system.DDR5(8 * units.TiB))
	w.KVOffload = true
	r, err := Estimate(m, tiered, serving(8, 1), w)
	if err != nil {
		t.Fatalf("KV offload should make the workload servable: %v", err)
	}
	if r.Mem1Used > bare.Mem1.Capacity {
		t.Errorf("HBM use %v must fit with the cache offloaded", r.Mem1Used)
	}
	// The latency cost: the same (smaller, HBM-feasible) workload runs
	// slower with the cache behind the 100 GB/s link.
	small := Workload{PromptLen: 1024, GenLen: 1024, Batch: 8}
	inHBM, err := Estimate(m, tiered, serving(8, 1), small)
	if err != nil {
		t.Fatal(err)
	}
	smallOff := small
	smallOff.KVOffload = true
	offloaded, err := Estimate(m, tiered, serving(8, 1), smallOff)
	if err != nil {
		t.Fatal(err)
	}
	if !(offloaded.StepTime > inHBM.StepTime) {
		t.Errorf("offloaded KV must cost step latency: %v vs %v", offloaded.StepTime, inHBM.StepTime)
	}
}

func TestKVOffloadRequiresMem2(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	w := Workload{PromptLen: 128, GenLen: 8, Batch: 1, KVOffload: true}
	if _, err := Estimate(m, system.A100(8), serving(8, 1), w); !errors.Is(err, perf.ErrInfeasible) {
		t.Fatalf("want infeasible, got %v", err)
	}
}

func TestKVOffloadCapacityChecked(t *testing.T) {
	m := model.MustPreset("gpt3-175B")
	tiny := system.A100(8).WithMem2(system.Memory{Capacity: units.GiB, Bandwidth: 100e9})
	w := Workload{PromptLen: 1024, GenLen: 1024, Batch: 64, KVOffload: true}
	if _, err := Estimate(m, tiny, serving(8, 1), w); !errors.Is(err, perf.ErrInfeasible) {
		t.Fatalf("want infeasible for 1 GiB tier, got %v", err)
	}
}
