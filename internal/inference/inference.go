// Package inference extends the performance model to LLM serving, the
// second use the paper names ("training and inference of LLMs", §1;
// inference-oriented optimizations are folded into the execution space in
// §2.3). Generation has two phases with very different characters:
//
//   - prefill — one full forward pass over the prompt, GEMM-dominated and
//     priced by the same block graph the training model uses;
//   - decode — one token at a time, where every step must stream the full
//     weight set and the growing key/value cache through memory, making it
//     bandwidth-bound at small batch sizes.
//
// The model accounts KV-cache capacity (the dominant memory consumer of
// long-context serving), tensor/pipeline sharding of both phases, and the
// batch-size crossover from bandwidth-bound to compute-bound decode.
package inference

import (
	"fmt"

	"calculon/internal/comm"
	"calculon/internal/execution"
	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
	"calculon/internal/units"
)

// Workload describes a serving request mix.
type Workload struct {
	// PromptLen is the prompt length in tokens (prefill phase).
	PromptLen int
	// GenLen is the number of generated tokens per sequence (decode phase).
	GenLen int
	// Batch is the number of sequences decoded concurrently.
	Batch int
	// KVOffload stashes the key/value cache in the system's second memory
	// tier (§6's offload memory applied to serving): decode then streams
	// the cache over the offload link instead of holding it in HBM, trading
	// step latency for the ability to serve far longer contexts and bigger
	// batches.
	KVOffload bool
}

// Validate checks the workload.
func (w Workload) Validate() error {
	switch {
	case w.PromptLen < 1:
		return fmt.Errorf("inference: prompt length must be ≥1, got %d", w.PromptLen)
	case w.GenLen < 0:
		return fmt.Errorf("inference: generation length must be ≥0, got %d", w.GenLen)
	case w.Batch < 1:
		return fmt.Errorf("inference: batch must be ≥1, got %d", w.Batch)
	}
	return nil
}

// Result is a serving estimate.
type Result struct {
	// PrefillTime is the time to first token (one prompt forward pass
	// through the pipeline).
	PrefillTime units.Seconds
	// StepTime is the steady-state per-token decode latency.
	StepTime units.Seconds
	// TotalTime is prefill plus GenLen decode steps.
	TotalTime units.Seconds
	// TokensPerSec is generated-token throughput across the batch.
	TokensPerSec float64
	// KVCacheBytes is the per-processor key/value cache at full context.
	KVCacheBytes units.Bytes
	// WeightBytes is the per-processor weight residency.
	WeightBytes units.Bytes
	// Mem1Used is the total first-tier usage (weights + KV + working set).
	Mem1Used units.Bytes
	// DecodeBandwidthBound reports whether the decode step is limited by
	// memory bandwidth rather than compute.
	DecodeBandwidthBound bool
}

// Estimate prices the workload on the system under the strategy. Only the
// parallelism degrees, microbatching, and fused-layer switches of the
// strategy apply; training-only techniques must be off (the strategy is
// validated with Inference forced on).
//
// The memory rows must round identically to the serving pre-screen's
// analytic bound on every architecture, so the arithmetic is kept FMA-free
// (see docs/LINT.md).
//
//calculonvet:ordered
func Estimate(m model.LLM, sys system.System, st execution.Strategy, w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	st = st.Normalize()
	st.Inference = true
	st.Recompute = execution.RecomputeNone

	// Prefill: a forward pass over the prompt, reusing the training model's
	// forward path with seq = PromptLen.
	pm := m
	pm.Seq = w.PromptLen
	pm.Batch = w.Batch * st.DP // perf treats Batch globally across DP
	if st.Microbatch > w.Batch {
		st.Microbatch = w.Batch
	}
	pr, err := perf.Run(pm, sys, st)
	if err != nil {
		return Result{}, err
	}

	var res Result
	res.PrefillTime = pr.BatchTime

	// Decode step: GEMMs become skinny matrix-vector products over the
	// batch; attention reads the whole KV cache. Everything is sharded by
	// TP; the pipeline processes the step stage by stage.
	sh := layers.Shard{TP: st.TP, Microbatch: 1, Inference: true, Fused: st.FusedLayers}
	tot := layers.Sum(layers.Block(m, sh))
	blocksPerProc := st.BlocksPerProc(m)
	ctx := w.PromptLen + w.GenLen
	b := float64(w.Batch)

	// Per block per decode step: 2 FLOPs per parameter per sequence in the
	// dense GEMVs, plus the attention reads of the KV cache (QKᵀ and AV,
	// 2·ctx·(h/t) MACs each per sequence).
	blockParams := tot.Params()
	blockDense := units.FLOPs(2 * blockParams * b)
	blockAttn := units.FLOPs(4 * b * float64(ctx) * float64(m.Hidden) / float64(st.TP))
	blockFLOPs := blockDense + blockAttn
	procFLOPs := blockFLOPs.Times(float64(blocksPerProc))
	// The per-op size keys the efficiency curve: decode GEMVs are small and
	// run far from peak, which is exactly why decode is bandwidth-bound.
	rate := sys.Compute.MatrixRate(blockFLOPs)
	computeT := procFLOPs.Div(rate)

	kvPerBlock := units.Bytes(2*ctx*m.Hidden*2) / units.Bytes(st.TP) * units.Bytes(w.Batch)
	weights := tot.WeightBytes
	// Per decode step each block streams its weights once and the KV cache
	// of every sequence. With KV offload the cache crosses the second
	// tier's link instead of HBM (new keys/values still write through HBM,
	// a negligible 2·h bytes per token).
	if w.KVOffload && !sys.Mem2.Present() {
		return Result{}, fmt.Errorf("%w: KV offload requires a second memory tier", perf.ErrInfeasible)
	}
	memT := sys.Mem1.AccessTime((weights + kvPerBlock).Times(float64(blocksPerProc)))
	if w.KVOffload {
		kvAll := kvPerBlock.Times(float64(blocksPerProc))
		memT = sys.Mem1.AccessTime(weights.Times(float64(blocksPerProc))) +
			kvAll.Div(sys.Mem2.EffectiveBandwidth(kvAll))
	}

	step := computeT
	res.DecodeBandwidthBound = memT > computeT
	if res.DecodeBandwidthBound {
		step = memT
	}

	// TP communication per decode step: two collectives per block over the
	// batch's hidden vectors — all-reduce normally, or reduce-scatter +
	// all-gather when the strategy shards the boundary (TPRSAG), priced by
	// the shared collective model in internal/comm.
	if st.TP > 1 {
		net := sys.NetworkPtrFor(st.TP)
		vec := units.Bytes(w.Batch*m.Hidden) * 2
		var commOne units.Seconds
		if st.TPRSAG {
			commOne = comm.Time(net, comm.ReduceScatter, st.TP, vec) +
				comm.Time(net, comm.AllGather, st.TP, vec)
		} else {
			commOne = comm.Time(net, comm.AllReduce, st.TP, vec)
		}
		step += commOne.Times(float64(2 * blocksPerProc))
	}
	// A token's latency crosses every pipeline stage plus the boundary
	// hops; steady-state throughput is set by one stage's step time because
	// different sequences of the batch keep the other stages busy
	// (autoregressive decoding cannot pipeline a single sequence).
	stepLatency := step.Times(float64(st.PP)) + p2pLat(sys, st, m, w)
	res.StepTime = stepLatency
	if st.PP > 1 {
		res.TokensPerSec = step.Rate(b * float64(st.DP))
	} else {
		res.TokensPerSec = stepLatency.Rate(b * float64(st.DP))
	}
	res.TotalTime = res.PrefillTime + res.StepTime.Times(float64(w.GenLen))

	res.KVCacheBytes = kvPerBlock.Times(float64(blocksPerProc))
	res.WeightBytes = weights.Times(float64(blocksPerProc))
	res.Mem1Used = res.KVCacheBytes + res.WeightBytes + tot.MaxOutputBytes.Times(2)
	if w.KVOffload {
		// The cache lives in the second tier; HBM keeps a block-sized
		// streaming buffer.
		res.Mem1Used = res.WeightBytes + kvPerBlock.Times(3) + tot.MaxOutputBytes.Times(2)
		if res.KVCacheBytes > sys.Mem2.Capacity {
			return Result{}, fmt.Errorf("%w: KV cache %v exceeds offload tier %v",
				perf.ErrInfeasible, res.KVCacheBytes, sys.Mem2.Capacity)
		}
	}
	if res.Mem1Used > sys.Mem1.Capacity {
		return Result{}, fmt.Errorf("%w: inference needs %v of %v (KV cache %v)",
			perf.ErrInfeasible, res.Mem1Used, sys.Mem1.Capacity, res.KVCacheBytes)
	}
	return res, nil
}

// p2pLat prices the pipeline-boundary hops of one token's latency path:
// PP−1 point-to-point sends of the batch's hidden vectors.
func p2pLat(sys system.System, st execution.Strategy, m model.LLM, w Workload) units.Seconds {
	if st.PP <= 1 {
		return 0
	}
	net := sys.NetworkPtrFor(st.TP * st.PP)
	vec := units.Bytes(w.Batch*m.Hidden) * 2
	return comm.Time(net, comm.P2P, 2, vec).Times(float64(st.PP - 1))
}
