package experiments

import (
	"context"
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/units"
)

// Fig3Breakdown reproduces Fig. 3: GPT-3 175B on 4,096 A100s with
// (t,p,d) = (8,64,8), reporting the full time and HBM breakdown. The paper
// reports a 16.7 s batch with ~20% of the time in recomputation and
// optimizer state at 29% of the 17.4 GiB used.
func Fig3Breakdown() (perf.Result, error) {
	m := model.MustPreset("gpt3-175B").WithBatch(2048)
	sys := system.A100(4096)
	st := execution.Strategy{
		TP: 8, PP: 64, DP: 8, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeFull, TPRSAG: true,
	}
	return perf.Run(m, sys, st)
}

// StrategyRow is one row of Table 4: a named execution strategy with its
// performance and the Fig. 12 breakdown.
type StrategyRow struct {
	Name   string
	Result perf.Result
	// FromSearch marks rows discovered by the optimal-execution search
	// rather than fixed literature configurations.
	FromSearch bool
}

// Table4Strategies reproduces Table 4 / Fig. 12: the progression from the
// literature's full-recompute baseline through sequence parallelism to the
// combinations Calculon discovered (search-optimal software set, then
// search-optimal with offload memory). Megatron-1T on 4,096 A100s with a
// global batch of 3,072 (the batch that makes the paper's
// (t,p,d,m) = (8,1,512,6) offload row well-formed).
func Table4Strategies(ctx context.Context, scale Scale) ([]StrategyRow, error) {
	m := model.MustPreset("megatron-1T").WithBatch(3072)
	sys := system.A100(4096)
	sysOff := sys.WithMem2(system.DDR5(512 * units.GiB))
	var rows []StrategyRow

	// Row 1 — SOTA full recompute [29]: (8,64,8), m=1, interleave 2.
	base := execution.Strategy{
		TP: 8, PP: 64, DP: 8, Microbatch: 1, Interleave: 2, OneFOneB: true,
		Recompute: execution.RecomputeFull, TPRSAG: true, PPRSAG: true,
	}
	r, err := perf.Run(m, sys, base)
	if err != nil {
		return nil, fmt.Errorf("table4 recompute: %w", err)
	}
	rows = append(rows, StrategyRow{Name: "SOTA full recompute", Result: r})

	// Row 2 — SOTA sequence parallelism + selective recompute [20].
	sp := base
	sp.Recompute = execution.RecomputeAttn
	sp.SeqParallel, sp.TPRedoForSP = true, true
	r, err = perf.Run(m, sys, sp)
	if err != nil {
		return nil, fmt.Errorf("table4 seqpar: %w", err)
	}
	rows = append(rows, StrategyRow{Name: "SOTA seq parallelism", Result: r})

	// Row 3 — Calculon SW optimizations: the best software-only strategy
	// found by exhaustive search over the full Table 1 space.
	maxIl := 4
	if scale == ScaleFull {
		maxIl = 0
	}
	swOpts := sweepOptions(execution.FeatureAll, maxIl)
	sw, err := search.Execution(ctx, m, sys, swOpts)
	if err != nil {
		return nil, fmt.Errorf("table4 sw search: %w", err)
	}
	if !sw.Found() {
		return nil, fmt.Errorf("table4 sw search found nothing")
	}
	rows = append(rows, StrategyRow{Name: "Calculon SW optim", Result: sw.Best, FromSearch: true})

	// Row 4 — Calculon SW optimizations + offload memory.
	off, err := search.Execution(ctx, m, sysOff, swOpts)
	if err != nil {
		return nil, fmt.Errorf("table4 offload search: %w", err)
	}
	if !off.Found() {
		return nil, fmt.Errorf("table4 offload search found nothing")
	}
	rows = append(rows, StrategyRow{Name: "Calculon SW + offload", Result: off.Best, FromSearch: true})
	return rows, nil
}

// RenderTable4 writes the strategy-comparison table and the Fig. 12
// breakdown bars.
func RenderTable4(w io.Writer, rows []StrategyRow) {
	table := [][]string{{"strategy", "(t,p,d)", "m", "v", "batch time", "MFU", "HBM"}}
	for _, r := range rows {
		st := r.Result.Strategy
		table = append(table, []string{
			r.Name,
			fmt.Sprintf("(%d,%d,%d)", st.TP, st.PP, st.DP),
			fmt.Sprintf("%d", st.Microbatch),
			fmt.Sprintf("%d", st.Interleave),
			r.Result.BatchTime.String(),
			fmt.Sprintf("%.2f%%", 100*r.Result.MFU),
			r.Result.Mem1.Total().String(),
		})
	}
	report.Table(w, table)
	fmt.Fprintln(w)
	for _, r := range rows {
		report.StackedBar(w, r.Name+" batch time", "s", report.TimeSegments(r.Result), 40)
	}
}
