// Package experiments reproduces every table and figure of the paper's
// evaluation: Table 2 (validation), Table 3 (budgeted system search),
// Table 4 / Fig. 12 (strategy comparison), Fig. 3 (single-run breakdown),
// Fig. 4 (parallelization analysis), Fig. 5 (optimization grids), Fig. 6
// (search-space statistics), Figs. 7/10/11 (scaling with and without
// offload), and Fig. 9 (offload requirements). Each experiment is a plain
// function shared by the CLI (`calculon study …`) and the benchmark
// harness in the repository root.
package experiments

import (
	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
)

// Scale selects the experiment fidelity: ScaleFull reproduces the paper's
// exact sweep sizes (minutes of CPU time for the largest studies);
// ScaleSmall runs a reduced but shape-preserving version suitable for tests
// and benchmarks.
type Scale int

const (
	// ScaleSmall runs reduced sweeps (seconds).
	ScaleSmall Scale = iota
	// ScaleFull runs the paper-sized sweeps (minutes).
	ScaleFull
)

// studyModels returns the three LLMs of the §5–§7 studies with the global
// batch used throughout (4,096 samples, §4.1).
func studyModels() []model.LLM {
	return []model.LLM{
		model.MustPreset("gpt3-175B").WithBatch(4096),
		model.MustPreset("turing-530B").WithBatch(4096),
		model.MustPreset("megatron-1T").WithBatch(4096),
	}
}

// sweepOptions is the shared search configuration of the big sweeps: the
// full non-monotone trade-off space with the always-beneficial toggles
// pinned (see execution.EnumOptions.PinBeneficial). Worker budgeting,
// lattice subtree pruning, and — for the system-size sweeps — the
// cross-size shared profile memo all come from the search defaults; the
// experiments never pin worker counts themselves.
func sweepOptions(features execution.FeatureSet, maxInterleave int) search.Options {
	return search.Options{
		Enum: execution.EnumOptions{
			Features:      features,
			MaxInterleave: maxInterleave,
			PinBeneficial: true,
		},
	}
}

// a100At is the Fig. 7 system constructor: Selene-like A100 machines.
func a100At(n int) system.System { return system.A100(n) }

// a100OffloadAt adds the §6 offload tier: 512 GiB DDR at 100 GB/s.
func a100OffloadAt(n int) system.System {
	return system.A100(n).WithMem2(system.DDR5(512 * gib))
}

const gib = 1 << 30
