package experiments

import (
	"context"
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/units"
)

// Fig9Cell is one (t,p) entry of the §6 offload study: the best
// configuration's sample rate, HBM usage, and offload-tier requirements.
type Fig9Cell struct {
	T, P      int
	Found     bool
	Rate      float64
	HBM       units.Bytes
	OffloadBW units.BytesPerSec
	OffloadGB units.Bytes
}

// Fig9Grid is one panel pair of Fig. 9 ((a,b) or (c,d)).
type Fig9Grid struct {
	Title  string
	Ts, Ps []int
	Cells  map[[2]int]Fig9Cell
}

// Fig9Offload reproduces the §6 tensor-offloading study: Megatron-1T on
// 4,096 H100-80GiB GPUs with a second memory tier. With infinite=true the
// tier has unbounded capacity and bandwidth and the model reports what the
// best configurations would consume (panels a/b); otherwise the tier is the
// practical 512 GiB at 100 GB/s (panels c/d).
func Fig9Offload(ctx context.Context, infinite bool, scale Scale) (Fig9Grid, error) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)
	tier := system.DDR5(512 * units.GiB)
	title := "Fig. 9(c,d) — 512 GiB @ 100 GB/s offload memory"
	if infinite {
		tier = system.InfiniteMem2()
		title = "Fig. 9(a,b) — infinite offload memory"
	}
	grid := Fig9Grid{
		Title: title,
		Ts:    []int{1, 2, 4, 8, 16, 32},
		Ps:    []int{1, 2, 4, 8, 16, 32},
		Cells: map[[2]int]Fig9Cell{},
	}
	if scale == ScaleSmall {
		grid.Ts = []int{1, 8, 32}
		grid.Ps = []int{1, 8, 32}
	}
	for _, t := range grid.Ts {
		for _, p := range grid.Ps {
			d := 4096 / (t * p)
			sys := system.H100(4096, 80*units.GiB, 0).WithMem2(tier).WithFastDomain(maxOf(t, 8))
			opts := sweepOptions(execution.FeatureAll, 8)
			opts.Enum.Procs = 4096
			opts.Enum.FixedTP, opts.Enum.FixedPP, opts.Enum.FixedDP = t, p, d
			res, err := search.Execution(ctx, m, sys, opts)
			if err != nil {
				return grid, fmt.Errorf("fig9 t=%d p=%d: %w", t, p, err)
			}
			cell := Fig9Cell{T: t, P: p}
			if res.Found() {
				cell.Found = true
				cell.Rate = res.Best.SampleRate
				cell.HBM = res.Best.Mem1.Total()
				cell.OffloadBW = res.Best.OffloadBWUsed
				cell.OffloadGB = res.Best.Mem2.Total()
			}
			grid.Cells[[2]int{t, p}] = cell
		}
	}
	return grid, nil
}

// RenderFig9 writes both grids of a panel pair: sample rate over HBM usage
// (a/c) and offload bandwidth over offload capacity (b/d).
func RenderFig9(w io.Writer, g Fig9Grid) {
	report.Grid(w, g.Title+": sample rate over HBM use", g.Ts, g.Ps, func(t, p int) report.GridCell {
		c := g.Cells[[2]int{t, p}]
		if !c.Found {
			return report.GridCell{}
		}
		return report.GridCell{
			Top:    fmt.Sprintf("%.0f", c.Rate),
			Bottom: c.HBM.String(),
			OK:     true,
		}
	})
	report.Grid(w, g.Title+": offload bandwidth over capacity", g.Ts, g.Ps, func(t, p int) report.GridCell {
		c := g.Cells[[2]int{t, p}]
		if !c.Found {
			return report.GridCell{}
		}
		return report.GridCell{
			Top:    c.OffloadBW.String(),
			Bottom: c.OffloadGB.SI(),
			OK:     true,
		}
	})
}
