package experiments

import (
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/pipesim"
	"calculon/internal/system"
)

// Fig2Schedule reproduces Fig. 2: the interleaved 1F1B pipeline schedule,
// rendered as a per-stage timeline from the discrete simulator using chunk
// times derived from the real performance model (GPT-3 175B, t=8, p=4,
// interleave 2, six microbatches — the shape of the paper's figure).
func Fig2Schedule(w io.Writer) error {
	m := model.MustPreset("gpt3-175B").WithBatch(48)
	sys := system.A100(64)
	st := execution.Strategy{
		TP: 8, PP: 4, DP: 2, Microbatch: 4, Interleave: 2, OneFOneB: true,
		Recompute: execution.RecomputeNone, TPRSAG: true,
	}
	params, err := perf.PipelineParams(m, sys, st)
	if err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	fmt.Fprintln(w, "Fig. 2 — interleaved 1F1B schedule (GPT-3 175B, t=8, p=4, v=2, n=6)")
	if err := pipesim.RenderTimeline(w, params, 150); err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	fmt.Fprintln(w, "\nfor contrast, the same pipeline without interleaving (v=1):")
	flat := params
	flat.Chunks = 1
	flat.FwdChunk *= 2
	flat.BwdChunk *= 2
	if err := pipesim.RenderTimeline(w, flat, 150); err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	fmt.Fprintln(w, "\nand the GPipe-style schedule (all forwards, then all backwards):")
	gp := flat
	gp.Schedule = pipesim.GPipe
	if err := pipesim.RenderTimeline(w, gp, 150); err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	return nil
}
