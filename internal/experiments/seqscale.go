package experiments

import (
	"context"
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
)

// SeqScalePoint is one sequence length of the long-context extension study.
type SeqScalePoint struct {
	Seq   int
	Found bool
	Best  perf.Result
	// AttnShare is the fraction of a block's matrix FLOPs in the s²
	// attention terms: s/(6h+s) — the quantity that reshapes the optimal
	// execution as context grows.
	AttnShare float64
	// TokensPerSec normalizes throughput across sequence lengths.
	TokensPerSec float64
}

// SeqScale is an extension beyond the paper's evaluation (its §8 invites
// "future exploration"): long-context training. It sweeps the sequence
// length at a constant token budget per batch on a fixed 512-GPU A100
// system, running the full execution search at each length. As s grows the
// 5·a·s²·b activation term and the s² attention FLOPs dominate, pushing the
// optimum toward selective recomputation and more tensor parallelism — the
// codesign question the paper's methodology is built to answer.
func SeqScale(ctx context.Context, scale Scale) ([]SeqScalePoint, error) {
	seqs := []int{2048, 8192, 32768}
	if scale == ScaleFull {
		seqs = []int{2048, 4096, 8192, 16384, 32768, 65536}
	}
	const tokensPerBatch = 2048 * 2048
	base := model.MustPreset("gpt3-175B")
	sys := system.A100(512)
	var out []SeqScalePoint
	for _, s := range seqs {
		m := base
		m.Seq = s
		m.Batch = tokensPerBatch / s
		if m.Batch < 1 {
			m.Batch = 1
		}
		m.Name = fmt.Sprintf("gpt3-175B-s%d", s)
		res, err := search.Execution(ctx, m, sys, sweepOptions(execution.FeatureAll, 4))
		if err != nil {
			return nil, fmt.Errorf("seqscale s=%d: %w", s, err)
		}
		p := SeqScalePoint{
			Seq:       s,
			AttnShare: float64(s) / float64(6*m.Hidden+s),
		}
		if res.Found() {
			p.Found = true
			p.Best = res.Best
			p.TokensPerSec = res.Best.SampleRate * float64(s)
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderSeqScale writes the long-context table.
func RenderSeqScale(w io.Writer, pts []SeqScalePoint) {
	fmt.Fprintln(w, "Extension — long-context training (GPT-3 175B shape, 512 A100s, constant tokens/batch)")
	rows := [][]string{{"seq", "batch", "attn FLOP share", "best strategy", "recompute", "MFU", "tokens/s"}}
	for _, p := range pts {
		if !p.Found {
			rows = append(rows, []string{fmt.Sprintf("%d", p.Seq), "—", pct1(p.AttnShare), "does not run", "", "", ""})
			continue
		}
		st := p.Best.Strategy
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Seq),
			fmt.Sprintf("%d", p.Best.Model.Batch),
			pct1(p.AttnShare),
			fmt.Sprintf("(t=%d,p=%d,d=%d,m=%d)", st.TP, st.PP, st.DP, st.Microbatch),
			string(st.Recompute),
			pct1(p.Best.MFU),
			fmt.Sprintf("%.0f", p.TokensPerSec),
		})
	}
	report.Table(w, rows)
}

func pct1(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
