package experiments

import (
	"context"
	"fmt"
	"io"

	"calculon/internal/cost"
	"calculon/internal/execution"
	"calculon/internal/report"
)

// Table3Budget reproduces the §7 price-aware system search: all sixteen
// HBM3 × DDR5 design permutations under a $125M budget, each swept across
// affordable system sizes with a full execution search, for the three study
// LLMs. ScaleSmall sweeps a coarse size grid near each design's cap;
// ScaleFull uses the paper's stride of 8.
func Table3Budget(ctx context.Context, scale Scale) ([]cost.Evaluation, error) {
	opts := cost.SweepOptions{
		Budget:  125e6,
		Stride:  512,
		MinFrac: 0.75,
		Search:  sweepOptions(execution.FeatureAll, 4),
	}
	if scale == ScaleFull {
		opts.Stride = 8
		opts.MinFrac = 0.5
		opts.Search = sweepOptions(execution.FeatureAll, 8)
	}
	return cost.BudgetSearch(ctx, studyModels(), cost.AllDesigns(), opts)
}

// RenderTable3 writes the price/performance table in the paper's layout:
// one row per design, with GPUs used, sample rate, and perf/$M per model.
func RenderTable3(w io.Writer, evals []cost.Evaluation) {
	rows := [][]string{{"HBM3", "DDR5", "price", "max GPUs",
		"175B GPUs", "perf", "perf/$M",
		"530B GPUs", "perf", "perf/$M",
		"1T GPUs", "perf", "perf/$M"}}
	for _, ev := range evals {
		row := []string{
			ev.Design.HBM.Capacity.String(),
			ddrLabel(ev),
			fmt.Sprintf("$%.1fk", ev.UnitPrice/1e3),
			fmt.Sprintf("%d", ev.MaxGPUs),
		}
		for _, mr := range ev.PerModel {
			if !mr.Found {
				row = append(row, "—", "—", "—")
				continue
			}
			row = append(row,
				fmt.Sprintf("%d", mr.GPUs),
				fmt.Sprintf("%.0f", mr.SampleRate),
				fmt.Sprintf("%.0f", mr.PerfPerMDollar),
			)
		}
		rows = append(rows, row)
	}
	report.Table(w, rows)
	if ev, mr, ok := cost.BestByPerf(evals, "megatron-1T"); ok {
		fmt.Fprintf(w, "\nbest 1T design: %v — %.0f samples/s on %d GPUs (%.0f perf/$M)\n",
			ev.Design, mr.SampleRate, mr.GPUs, mr.PerfPerMDollar)
	}
}

func ddrLabel(ev cost.Evaluation) string {
	if ev.Design.DDR.Capacity == 0 {
		return "0"
	}
	return ev.Design.DDR.Capacity.String()
}

// bestFor is a test/render helper around cost.BestByPerf.
func bestFor(evals []cost.Evaluation, name string) (cost.Evaluation, cost.ModelResult, bool) {
	return cost.BestByPerf(evals, name)
}
