package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calculon/internal/report"
)

// golden compares rendered output against a checked-in file; regenerate
// with `go run ./cmd/calculon study <id> > internal/experiments/testdata/<id>.golden`
// after an intentional model change.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s: %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s output changed; if intentional, regenerate the golden file.\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

// TestTable2Golden pins the exact validation table — the repository's
// primary regression guard: any change to the performance model that moves
// a prediction shows up here first.
func TestTable2Golden(t *testing.T) {
	rows, err := Table2Validation()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	RenderTable2(&b, rows)
	golden(t, "table2", b.String())
}

// TestFig3Golden pins the Fig. 3 breakdown rendering.
func TestFig3Golden(t *testing.T) {
	res, err := Fig3Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	report.Breakdown(&b, res)
	golden(t, "fig3", b.String())
}
