package experiments

import (
	"fmt"
	"io"
	"math"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/system"
)

// ValidationRow is one cell group of Table 2: a model × recompute-mode pair
// compared against the published Selene measurement.
type ValidationRow struct {
	Model     string
	Mode      string // "full" or "seq+sel"
	GPUs      int
	Selene    float64 // measured batch seconds (published in the paper)
	Predicted float64 // this model's estimate
	DeltaPct  float64
}

// seleneMeasurements are the measured batch times of the paper's Table 2
// (A100-based Selene, Megatron 22B/175B/530B/1T), used here exactly as the
// paper uses them: as the reference this tool validates against.
var seleneMeasurements = []struct {
	preset   string
	gpus, pp int
	full     float64
	seqSel   float64
}{
	{"megatron-22B", 8, 1, 1.42, 1.10},
	{"gpt3-175B", 64, 8, 18.13, 13.75},
	{"turing-530B", 280, 35, 49.05, 37.83},
	{"megatron-1T", 512, 64, 94.42, 71.49},
}

// Table2Validation reproduces Table 2: model predictions versus the
// published Selene measurements for full recomputation and for sequence
// parallelism with selective recomputation.
func Table2Validation() ([]ValidationRow, error) {
	var rows []ValidationRow
	for _, c := range seleneMeasurements {
		m := model.MustPreset(c.preset)
		sys := system.A100(c.gpus)

		full := execution.Strategy{
			TP: 8, PP: c.pp, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: execution.RecomputeFull,
		}
		r, err := perf.Run(m, sys, full)
		if err != nil {
			return nil, fmt.Errorf("table2 %s full: %w", c.preset, err)
		}
		rows = append(rows, validationRow(c.preset, "full", c.gpus, c.full, r))

		sel := full
		sel.Recompute = execution.RecomputeAttn
		sel.TPRSAG, sel.SeqParallel = true, true
		r, err = perf.Run(m, sys, sel)
		if err != nil {
			return nil, fmt.Errorf("table2 %s seq+sel: %w", c.preset, err)
		}
		rows = append(rows, validationRow(c.preset, "seq+sel", c.gpus, c.seqSel, r))
	}
	return rows, nil
}

func validationRow(name, mode string, gpus int, selene float64, r perf.Result) ValidationRow {
	pred := float64(r.BatchTime)
	return ValidationRow{
		Model: name, Mode: mode, GPUs: gpus,
		Selene: selene, Predicted: pred,
		DeltaPct: 100 * (pred - selene) / selene,
	}
}

// ValidationStats summarizes the error of the validation rows (the paper
// reports 3.65% average and 8.87% maximum for its own tool).
func ValidationStats(rows []ValidationRow) (avgAbsPct, maxAbsPct float64) {
	for _, r := range rows {
		a := math.Abs(r.DeltaPct)
		avgAbsPct += a
		if a > maxAbsPct {
			maxAbsPct = a
		}
	}
	if len(rows) > 0 {
		avgAbsPct /= float64(len(rows))
	}
	return avgAbsPct, maxAbsPct
}

// RenderTable2 writes the validation table.
func RenderTable2(w io.Writer, rows []ValidationRow) {
	table := [][]string{{"model", "mode", "GPUs", "Selene (s)", "predicted (s)", "delta"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Model, r.Mode, fmt.Sprintf("%d", r.GPUs),
			fmt.Sprintf("%.2f", r.Selene), fmt.Sprintf("%.2f", r.Predicted),
			fmt.Sprintf("%+.2f%%", r.DeltaPct),
		})
	}
	report.Table(w, table)
	avg, max := ValidationStats(rows)
	fmt.Fprintf(w, "average |error| %.2f%%, max |error| %.2f%% (paper's own tool: 3.65%% / 8.87%%)\n", avg, max)
}
