package experiments

import (
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/system"
	"calculon/internal/units"
)

// AblationRow quantifies one Table 1 optimization: the change in batch
// time, first-tier memory, and exposed network time when the technique is
// applied to the reference configuration.
type AblationRow struct {
	Name         string
	TimeDeltaPct float64 // negative = faster
	MemDeltaPct  float64 // negative = less memory
	NetDeltaPct  float64 // negative = less exposed network time
}

// Table1Ablation quantifies every optimization family of Table 1 on a
// reference point: Megatron-1T, batch 4,096, on 4,096 A100s at
// (t,p,d) = (8,16,32) with unconstrained memory (so that memory-hungry
// settings remain comparable). Each row flips or increases exactly one
// technique relative to the reference.
func Table1Ablation() ([]AblationRow, error) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)
	sys := system.A100(4096).WithMem1Capacity(units.UnboundedBytes).
		WithMem2(system.Memory{Capacity: units.UnboundedBytes, Bandwidth: 100e9})

	base := execution.Strategy{
		TP: 8, PP: 16, DP: 32, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeNone,
	}
	ref, err := perf.Run(m, sys, base)
	if err != nil {
		return nil, fmt.Errorf("table1 reference: %w", err)
	}

	mods := []struct {
		name string
		mut  func(execution.Strategy) execution.Strategy
	}{
		{"Data parallelism 32→64 (PP 16→8)", func(s execution.Strategy) execution.Strategy {
			s.DP, s.PP = 64, 8
			return s
		}},
		{"DP overlap", func(s execution.Strategy) execution.Strategy { s.DPOverlap = true; return s }},
		{"Optimizer sharding", func(s execution.Strategy) execution.Strategy { s.OptimSharding = true; return s }},
		{"Recompute full", func(s execution.Strategy) execution.Strategy { s.Recompute = execution.RecomputeFull; return s }},
		{"Recompute attn", func(s execution.Strategy) execution.Strategy { s.Recompute = execution.RecomputeAttn; return s }},
		{"Fused layers", func(s execution.Strategy) execution.Strategy { s.FusedLayers = true; return s }},
		{"Microbatch 1→4", func(s execution.Strategy) execution.Strategy { s.Microbatch = 4; return s }},
		{"Pipeline parallelism 16→32 (DP 32→16)", func(s execution.Strategy) execution.Strategy {
			s.PP, s.DP = 32, 16
			return s
		}},
		{"GPipe schedule (1F1B off)", func(s execution.Strategy) execution.Strategy { s.OneFOneB = false; return s }},
		{"PP interleaving 1→4", func(s execution.Strategy) execution.Strategy { s.Interleave = 4; return s }},
		{"PP RS+AG", func(s execution.Strategy) execution.Strategy { s.TPRSAG, s.PPRSAG = true, true; return s }},
		{"Tensor parallelism 8→16 (DP 32→16)", func(s execution.Strategy) execution.Strategy {
			s.TP, s.DP = 16, 16
			return s
		}},
		{"TP RS+AG instead of AR", func(s execution.Strategy) execution.Strategy { s.TPRSAG = true; return s }},
		{"Sequence parallelism", func(s execution.Strategy) execution.Strategy {
			s.TPRSAG, s.SeqParallel = true, true
			return s
		}},
		{"TP redo for SP", func(s execution.Strategy) execution.Strategy {
			s.TPRSAG, s.SeqParallel, s.TPRedoForSP = true, true, true
			return s
		}},
		{"TP overlap (ring)", func(s execution.Strategy) execution.Strategy { s.TPOverlap = execution.TPOverlapRing; return s }},
		{"Weight offload", func(s execution.Strategy) execution.Strategy { s.WeightOffload = true; return s }},
		{"Activation offload", func(s execution.Strategy) execution.Strategy { s.ActOffload = true; return s }},
		{"Optimizer offload", func(s execution.Strategy) execution.Strategy { s.OptimOffload = true; return s }},
	}

	var rows []AblationRow
	for _, mod := range mods {
		r, err := perf.Run(m, sys, mod.mut(base))
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", mod.name, err)
		}
		rows = append(rows, AblationRow{
			Name:         mod.name,
			TimeDeltaPct: pct(float64(r.BatchTime), float64(ref.BatchTime)),
			MemDeltaPct:  pct(float64(r.Mem1.Total()), float64(ref.Mem1.Total())),
			NetDeltaPct:  pct(netExposed(r), netExposed(ref)),
		})
	}
	return rows, nil
}

func netExposed(r perf.Result) float64 {
	return float64(r.Time.TPExposed + r.Time.PPExposed + r.Time.DPExposed)
}

func pct(v, ref float64) float64 {
	if ref == 0 {
		if v == 0 {
			return 0
		}
		return 100
	}
	return 100 * (v - ref) / ref
}

// RenderTable1 writes the ablation rows as a table of percentage deltas.
func RenderTable1(w io.Writer, rows []AblationRow) {
	table := [][]string{{"optimization", "Δ batch time", "Δ mem1", "Δ exposed net"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Name,
			fmt.Sprintf("%+.1f%%", r.TimeDeltaPct),
			fmt.Sprintf("%+.1f%%", r.MemDeltaPct),
			fmt.Sprintf("%+.1f%%", r.NetDeltaPct),
		})
	}
	report.Table(w, table)
}
