package experiments

import (
	"context"
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
)

// Fig6Stats carries the search-space statistics of §5.1 / Fig. 6.
type Fig6Stats struct {
	Procs     int
	Evaluated int
	Feasible  int
	Best      perf.Result
	// Histogram bins all feasible sample rates (Fig. 6a, 10 bins).
	Histogram search.Histogram
	// TopCDF is the empirical CDF of the 100 best sample rates (Fig. 6b).
	TopCDF []search.CDFPoint
	// Within10Pct counts configurations within 10% of the best — the
	// paper's "needles in a haystack" metric (30 of 1,974,902).
	Within10Pct int
	// Within5PctOfTop counts top-100 members within 5% of the best
	// ("only about ten attain performance within 5%").
	Within5PctOfTop int
}

// Fig6SearchSpace reproduces Fig. 6: enumerate the full (unpinned)
// execution-strategy space for GPT-3 175B, collect every feasible sample
// rate, and report the distribution. ScaleFull uses the paper's 4,096-GPU
// system; ScaleSmall a 512-GPU one.
func Fig6SearchSpace(ctx context.Context, scale Scale) (Fig6Stats, error) {
	// The batch scales with the system so the small study preserves the
	// full study's microbatch-count and bubble trade-offs.
	procs := 512
	if scale == ScaleFull {
		procs = 4096
	}
	m := model.MustPreset("gpt3-175B").WithBatch(procs)
	sys := system.A100(procs)
	res, err := search.Execution(ctx, m, sys, search.Options{
		Enum: execution.EnumOptions{
			Procs:    procs,
			Features: execution.FeatureAll,
			// The full combinatorial space: nothing pinned.
		},
		TopK:         100,
		CollectRates: true,
	})
	if err != nil {
		return Fig6Stats{}, err
	}
	stats := Fig6Stats{
		Procs:     procs,
		Evaluated: res.Evaluated,
		Feasible:  res.Feasible,
		Best:      res.Best,
		Histogram: search.NewHistogram(res.Rates, 10),
	}
	var topRates []float64
	for _, r := range res.Top {
		topRates = append(topRates, r.SampleRate)
	}
	stats.TopCDF = search.CDF(topRates)
	stats.Within10Pct = search.WithinFraction(res.Rates, 0.10)
	stats.Within5PctOfTop = search.WithinFraction(topRates, 0.05)
	return stats, nil
}

// RenderFig6 writes the histogram, CDF summary and haystack metrics.
func RenderFig6(w io.Writer, s Fig6Stats) {
	fmt.Fprintf(w, "GPT-3 175B on %d GPUs: %d strategies evaluated, %d feasible (%.1f%%)\n",
		s.Procs, s.Evaluated, s.Feasible, 100*float64(s.Feasible)/float64(maxOf(s.Evaluated, 1)))
	report.HistogramChart(w, "Fig. 6a — sample-rate distribution of feasible strategies",
		s.Histogram.Min, s.Histogram.Max, s.Histogram.Counts, 40)
	fmt.Fprintf(w, "best strategy: %v at %.1f samples/s\n", s.Best.Strategy, s.Best.SampleRate)
	fmt.Fprintf(w, "within 10%% of best: %d of %d (%.4f%%)\n",
		s.Within10Pct, s.Feasible, 100*float64(s.Within10Pct)/float64(maxOf(s.Feasible, 1)))
	fmt.Fprintf(w, "top-100 within 5%% of best: %d\n", s.Within5PctOfTop)
	if n := len(s.TopCDF); n > 0 {
		fmt.Fprintf(w, "Fig. 6b — top-100 CDF: min %.1f, median %.1f, max %.1f samples/s\n",
			s.TopCDF[0].Value, s.TopCDF[n/2].Value, s.TopCDF[n-1].Value)
	}
}
