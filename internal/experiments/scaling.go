package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
)

// ScalingCurve is one model's line of Fig. 7 or Fig. 10: the best
// achievable sample rate at every system size, normalized against perfect
// scaling.
type ScalingCurve struct {
	Model  string
	Points []search.ScalingPoint
	// Relative[i] is Points[i]'s efficiency against perfect scaling from
	// the best observed per-GPU rate; -1 marks sizes where the model does
	// not run at all (the zero-performance dots of Fig. 7).
	Relative []float64
}

// ScalingStudy reproduces Fig. 7 (offload=false) or Fig. 10 (offload=true):
// for each of the three study LLMs, search the full execution space at
// every system size and report the scaling envelope with its efficiency
// cliffs. ScaleFull sweeps multiples of 8 up to 8,192 GPUs as in the paper;
// ScaleSmall sweeps multiples of 312 (= 8·3·13, deliberately awkward to
// factor so the cliffs of "sizes that do not divide evenly" show up even in
// the reduced study) up to 4,096, plus the well-factoring 4,096 itself.
// Each per-model sweep shares one block-profile memo across all sizes and
// prunes pre-screen-dead (tp,pp,dp) subtrees whole (docs/MODEL.md §13),
// which is what makes the below-cliff sizes — where nothing fits — nearly
// free instead of the dominant cost.
func ScalingStudy(ctx context.Context, offload bool, scale Scale) ([]ScalingCurve, error) {
	sizes := append(search.Sizes(312, 4095), 4096)
	maxInterleave := 4
	if scale == ScaleFull {
		sizes = search.Sizes(8, 8192)
		maxInterleave = 8
	}
	sysAt := a100At
	if offload {
		sysAt = a100OffloadAt
	}
	var curves []ScalingCurve
	for _, m := range studyModels() {
		pts, err := search.SystemSize(ctx, m, func(n int) system.System { return sysAt(n) },
			sizes, sweepOptions(execution.FeatureAll, maxInterleave))
		if err != nil {
			return nil, fmt.Errorf("scaling %s: %w", m.Name, err)
		}
		curves = append(curves, newCurve(m, pts))
	}
	return curves, nil
}

func newCurve(m model.LLM, pts []search.ScalingPoint) ScalingCurve {
	c := ScalingCurve{Model: m.Name, Points: pts, Relative: make([]float64, len(pts))}
	// Perfect scaling is anchored at the best per-GPU rate observed across
	// the sweep, matching the figure's normalization.
	bestPerGPU := 0.0
	for _, p := range pts {
		if p.Found {
			if r := p.Best.SampleRate / float64(p.Procs); r > bestPerGPU {
				bestPerGPU = r
			}
		}
	}
	for i, p := range pts {
		if !p.Found || bestPerGPU == 0 {
			c.Relative[i] = -1
			continue
		}
		c.Relative[i] = p.Best.SampleRate / (bestPerGPU * float64(p.Procs))
	}
	return c
}

// CliffDepth returns the largest ratio between a point's efficiency and the
// best efficiency among smaller-or-equal sizes — the paper's "performance
// variability exceeding 6×" metric reads off such drops.
func (c ScalingCurve) CliffDepth() float64 {
	worst := 1.0
	bestSoFar := 0.0
	for _, r := range c.Relative {
		if r < 0 {
			continue
		}
		if r > bestSoFar {
			bestSoFar = r
		}
		if bestSoFar > 0 && r > 0 {
			if ratio := bestSoFar / r; ratio > worst {
				worst = ratio
			}
		}
	}
	return worst
}

// SpeedupCurve is one model's line of Fig. 11: the relative improvement
// from adding offload memory at each system size.
type SpeedupCurve struct {
	Model string
	Sizes []int
	// SpeedupPct[i] is 100·(rate_off/rate_base − 1); +Inf where the model
	// only runs with offloading (the paper's "infinite speedup").
	SpeedupPct []float64
}

// OffloadSpeedup reproduces Fig. 11 by combining the Fig. 7 and Fig. 10
// sweeps. The two input slices must come from ScalingStudy(false, ·) and
// ScalingStudy(true, ·) at the same scale.
func OffloadSpeedup(base, off []ScalingCurve) ([]SpeedupCurve, error) {
	if len(base) != len(off) {
		return nil, fmt.Errorf("experiments: mismatched curve sets (%d vs %d)", len(base), len(off))
	}
	var out []SpeedupCurve
	for i := range base {
		b, o := base[i], off[i]
		if b.Model != o.Model || len(b.Points) != len(o.Points) {
			return nil, fmt.Errorf("experiments: curve %d mismatch", i)
		}
		sc := SpeedupCurve{Model: b.Model}
		for j := range b.Points {
			if b.Points[j].Procs != o.Points[j].Procs {
				return nil, fmt.Errorf("experiments: size mismatch at %d", j)
			}
			sc.Sizes = append(sc.Sizes, b.Points[j].Procs)
			switch {
			case !o.Points[j].Found:
				sc.SpeedupPct = append(sc.SpeedupPct, 0)
			case !b.Points[j].Found:
				sc.SpeedupPct = append(sc.SpeedupPct, math.Inf(1))
			default:
				sp := 100 * (o.Points[j].Best.SampleRate/b.Points[j].Best.SampleRate - 1)
				sc.SpeedupPct = append(sc.SpeedupPct, sp)
			}
		}
		out = append(out, sc)
	}
	return out, nil
}

// RenderScaling writes the Fig. 7/10-style relative-scaling charts.
func RenderScaling(w io.Writer, title string, curves []ScalingCurve) {
	fmt.Fprintln(w, title)
	for _, c := range curves {
		pts := make([]report.ScalingPointView, len(c.Points))
		for i, p := range c.Points {
			pts[i] = report.ScalingPointView{X: p.Procs, Y: c.Relative[i]}
		}
		report.Scaling(w, c.Model, pts, 40)
		fmt.Fprintf(w, "  worst efficiency cliff: %.2f×\n\n", c.CliffDepth())
	}
}

// RenderSpeedup writes the Fig. 11 speedup table.
func RenderSpeedup(w io.Writer, curves []SpeedupCurve) {
	for _, c := range curves {
		fmt.Fprintf(w, "%s — offload speedup by system size\n", c.Model)
		rows := [][]string{{"GPUs", "speedup"}}
		for i, n := range c.Sizes {
			v := c.SpeedupPct[i]
			cell := fmt.Sprintf("%+.1f%%", v)
			if math.IsInf(v, 1) {
				cell = "inf (only runs with offload)"
			}
			rows = append(rows, []string{fmt.Sprintf("%d", n), cell})
		}
		report.Table(w, rows)
		fmt.Fprintln(w)
	}
}
