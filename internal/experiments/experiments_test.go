package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestTable2ValidationAccuracy(t *testing.T) {
	rows, err := Table2Validation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("want 8 validation rows, got %d", len(rows))
	}
	avg, max := ValidationStats(rows)
	if avg > 6 {
		t.Errorf("average validation error %.2f%% (paper's tool: 3.65%%)", avg)
	}
	if max > 12 {
		t.Errorf("max validation error %.2f%% (paper's tool: 8.87%%)", max)
	}
	var b strings.Builder
	RenderTable2(&b, rows)
	if !strings.Contains(b.String(), "megatron-1T") || !strings.Contains(b.String(), "average |error|") {
		t.Errorf("render output incomplete:\n%s", b.String())
	}
}

func TestFig3BreakdownShape(t *testing.T) {
	r, err := Fig3Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 3 anchors: recompute ≈ 20% of batch time, HBM usage
	// well under the 80 GiB capacity with optimizer state a large share.
	recompFrac := float64(r.Time.Recompute) / float64(r.BatchTime)
	if recompFrac < 0.10 || recompFrac > 0.30 {
		t.Errorf("recompute fraction %.2f, paper shows ≈0.20", recompFrac)
	}
	optFrac := float64(r.Mem1.Optimizer) / float64(r.Mem1.Total())
	if optFrac < 0.15 || optFrac > 0.55 {
		t.Errorf("optimizer memory share %.2f, paper shows ≈0.29", optFrac)
	}
	if gib := float64(r.Mem1.Total()) / float64(1<<30); gib < 8 || gib > 30 {
		t.Errorf("HBM usage %.1f GiB, paper shows 17.4 GiB", gib)
	}
}

func TestTable4StrategyLadder(t *testing.T) {
	rows, err := Table4Strategies(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 strategy rows, got %d", len(rows))
	}
	// Table 4's MFU ladder: 36.67% → 49.61% → 70.96% → 76.71%. We require
	// the same strict ordering and a final MFU in the paper's range.
	for i := 1; i < len(rows); i++ {
		if rows[i].Result.MFU <= rows[i-1].Result.MFU {
			t.Errorf("MFU ladder broken at %s: %.3f after %.3f",
				rows[i].Name, rows[i].Result.MFU, rows[i-1].Result.MFU)
		}
	}
	final := rows[3].Result
	if final.MFU < 0.65 || final.MFU > 0.85 {
		t.Errorf("offload MFU %.1f%%, paper reports 76.71%%", 100*final.MFU)
	}
	// §8: "the majority of configurations, including the most performant
	// ones, do not utilize more than 20 GB of fast HBM" with offloading.
	if final.Mem1.Total() > 25*(1<<30) {
		t.Errorf("offload strategy HBM %v, paper keeps it ≈20 GB", final.Mem1.Total())
	}
	var b strings.Builder
	RenderTable4(&b, rows)
	if !strings.Contains(b.String(), "Calculon SW + offload") {
		t.Errorf("render incomplete:\n%s", b.String())
	}
}

func TestFig4ParallelismShape(t *testing.T) {
	sweeps, err := Fig4Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 3 {
		t.Fatalf("want 3 sweeps, got %d", len(sweeps))
	}
	// §4.1 observation 1: over-emphasizing any one mode degrades time —
	// the middle of each sweep beats both extremes.
	for _, sw := range sweeps {
		first := sw.Cells[0].Result.BatchTime
		last := sw.Cells[len(sw.Cells)-1].Result.BatchTime
		bestMid := first
		for _, c := range sw.Cells[1 : len(sw.Cells)-1] {
			if c.Result.BatchTime < bestMid {
				bestMid = c.Result.BatchTime
			}
		}
		if !(bestMid < first && bestMid < last) {
			t.Errorf("%s: interior best %v should beat extremes %v / %v",
				sw.Title, bestMid, first, last)
		}
	}
	// §4.1 observation 2, TP vs DP sweep (PP fixed): increasing t cuts
	// weights while DP cannot (in TP-vs-PP the product t·p is constant, so
	// the per-processor weight share stays flat).
	td := sweeps[2]
	if !(td.Cells[len(td.Cells)-1].Result.Mem1.Weights < td.Cells[0].Result.Mem1.Weights) {
		t.Error("TP-vs-DP sweep should cut weight memory as t grows")
	}
	var b strings.Builder
	RenderFig4(&b, sweeps)
	if !strings.Contains(b.String(), "TP vs PP") {
		t.Error("render incomplete")
	}
}

func TestFig5GridsImprove(t *testing.T) {
	baseline, err := Fig5Optimizations(context.Background(), Fig5Baseline, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Fig5Optimizations(context.Background(), Fig5All, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	feasB, feasA := 0, 0
	bestB, bestA := math.Inf(1), math.Inf(1)
	for k, c := range baseline.Cells {
		if c.Found {
			feasB++
			if c.BatchSec < bestB {
				bestB = c.BatchSec
			}
		}
		ca := all.Cells[k]
		if ca.Found {
			feasA++
			if ca.BatchSec < bestA {
				bestA = ca.BatchSec
			}
			if c.Found && ca.BatchSec > c.BatchSec*1.001 {
				t.Errorf("cell %v: all-optimizations (%.1f) slower than baseline (%.1f)",
					k, ca.BatchSec, c.BatchSec)
			}
		}
	}
	// Fig. 5(a)→(c): more techniques mean more feasible mappings and a
	// faster best configuration.
	if feasA < feasB {
		t.Errorf("all-optimizations feasible cells %d < baseline %d", feasA, feasB)
	}
	if !(bestA < bestB) {
		t.Errorf("all-optimizations best %.1f should beat baseline %.1f", bestA, bestB)
	}
	var b strings.Builder
	RenderFig5(&b, baseline)
	if !strings.Contains(b.String(), "t=1") {
		t.Error("render incomplete")
	}
}

func TestFig5MoreMemoryHelps(t *testing.T) {
	g80, err := Fig5Optimizations(context.Background(), Fig5All, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	g160, err := Fig5Optimizations(context.Background(), Fig5All160, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	feas80, feas160 := 0, 0
	for k := range g80.Cells {
		if g80.Cells[k].Found {
			feas80++
		}
		if g160.Cells[k].Found {
			feas160++
		}
		if g80.Cells[k].Found && !g160.Cells[k].Found {
			t.Errorf("cell %v feasible at 80 GiB but not 160 GiB", k)
		}
	}
	if feas160 < feas80 {
		t.Errorf("160 GiB feasible cells %d < 80 GiB %d", feas160, feas80)
	}
}

func TestFig6NeedlesInHaystack(t *testing.T) {
	s, err := Fig6SearchSpace(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if s.Feasible == 0 || s.Feasible > s.Evaluated {
		t.Fatalf("counts: %d of %d", s.Feasible, s.Evaluated)
	}
	// A large share of the space must be infeasible (paper: ~82%).
	if frac := float64(s.Feasible) / float64(s.Evaluated); frac > 0.6 {
		t.Errorf("feasible fraction %.2f too high; the space should be mostly infeasible", frac)
	}
	// Good configurations are needles in a haystack: well under 1% within
	// 10% of the best.
	if frac := float64(s.Within10Pct) / float64(s.Feasible); frac > 0.01 {
		t.Errorf("%.4f%% of configs within 10%% of best; paper reports <0.002%%", 100*frac)
	}
	if s.Histogram.Total() != s.Feasible {
		t.Errorf("histogram total %d != feasible %d", s.Histogram.Total(), s.Feasible)
	}
	if len(s.TopCDF) == 0 || len(s.TopCDF) > 100 {
		t.Errorf("top CDF size %d", len(s.TopCDF))
	}
	var b strings.Builder
	RenderFig6(&b, s)
	if !strings.Contains(b.String(), "within 10%") {
		t.Error("render incomplete")
	}
}

func TestScalingStudyAndSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	base, err := ScalingStudy(context.Background(), false, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	off, err := ScalingStudy(context.Background(), true, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 3 || len(off) != 3 {
		t.Fatalf("curves: %d / %d", len(base), len(off))
	}
	for i := range base {
		for j, p := range base[i].Points {
			if p.Found && off[i].Points[j].Found {
				// Offloading never hurts: the offload search space is a
				// strict superset.
				if off[i].Points[j].Best.SampleRate < p.Best.SampleRate*0.999 {
					t.Errorf("%s at %d GPUs: offload %f slower than base %f",
						base[i].Model, p.Procs, off[i].Points[j].Best.SampleRate, p.Best.SampleRate)
				}
			}
			if p.Found && base[i].Relative[j] > 1.0001 {
				t.Errorf("relative efficiency above 1: %f", base[i].Relative[j])
			}
		}
		if d := base[i].CliffDepth(); d < 1 {
			t.Errorf("cliff depth below 1: %f", d)
		}
	}
	sp, err := OffloadSpeedup(base, off)
	if err != nil {
		t.Fatal(err)
	}
	anyPositive := false
	for _, c := range sp {
		for _, v := range c.SpeedupPct {
			if v > 1 || math.IsInf(v, 1) {
				anyPositive = true
			}
			if v < -1 {
				t.Errorf("%s: offload slowdown %.1f%%", c.Model, v)
			}
		}
	}
	if !anyPositive {
		t.Error("offloading should help somewhere (paper: 10–20% for the large models)")
	}
	var b strings.Builder
	RenderScaling(&b, "Fig. 7", base)
	RenderSpeedup(&b, sp)
	if !strings.Contains(b.String(), "megatron-1T") {
		t.Error("render incomplete")
	}
}

func TestOffloadSpeedupMismatch(t *testing.T) {
	if _, err := OffloadSpeedup(make([]ScalingCurve, 1), make([]ScalingCurve, 2)); err == nil {
		t.Error("mismatched curve sets must error")
	}
}

func TestFig9OffloadRequirements(t *testing.T) {
	inf, err := Fig9Offload(context.Background(), true, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := Fig9Offload(context.Background(), false, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	foundAny := false
	for k, ci := range inf.Cells {
		if !ci.Found {
			continue
		}
		foundAny = true
		cf := fin.Cells[k]
		if cf.Found {
			// §6: restricting the offload tier to 512 GiB @ 100 GB/s keeps
			// performance within a modest factor for most splits, and the
			// finite tier can never beat the infinite one.
			if cf.Rate > ci.Rate*1.001 {
				t.Errorf("cell %v: finite tier faster than infinite (%.1f vs %.1f)", k, cf.Rate, ci.Rate)
			}
			if cf.OffloadGB > 512*(1<<30) {
				t.Errorf("cell %v: offload capacity %v exceeds the 512 GiB tier", k, cf.OffloadGB)
			}
		}
	}
	if !foundAny {
		t.Fatal("no feasible cells in the infinite-offload grid")
	}
	var b strings.Builder
	RenderFig9(&b, inf)
	if !strings.Contains(b.String(), "sample rate") {
		t.Error("render incomplete")
	}
}

func TestTable1AblationDirections(t *testing.T) {
	rows, err := Table1Ablation()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Table 1's arrow directions, spot-checked.
	check := func(name string, f func(AblationRow) bool, why string) {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing ablation row %q", name)
		}
		if !f(r) {
			t.Errorf("%s: %s (got Δt=%.1f%% Δmem=%.1f%% Δnet=%.1f%%)",
				name, why, r.TimeDeltaPct, r.MemDeltaPct, r.NetDeltaPct)
		}
	}
	check("Recompute full", func(r AblationRow) bool { return r.TimeDeltaPct > 0 && r.MemDeltaPct < 0 },
		"full recompute trades time for memory")
	check("Fused layers", func(r AblationRow) bool { return r.TimeDeltaPct < 0 && r.MemDeltaPct < 0 },
		"fusion improves both time and memory")
	check("Optimizer sharding", func(r AblationRow) bool { return r.MemDeltaPct < 0 },
		"sharding cuts optimizer memory")
	check("Sequence parallelism", func(r AblationRow) bool { return r.MemDeltaPct < 0 },
		"sequence parallelism cuts memory")
	check("TP overlap (ring)", func(r AblationRow) bool { return r.NetDeltaPct < 0 },
		"overlap hides network time")
	check("DP overlap", func(r AblationRow) bool { return r.NetDeltaPct <= 0 },
		"overlap hides network time")
	check("Weight offload", func(r AblationRow) bool { return r.MemDeltaPct < 0 },
		"offload cuts first-tier memory")
	check("Microbatch 1→4", func(r AblationRow) bool { return r.MemDeltaPct > 0 },
		"bigger microbatches cost activation memory")
	check("GPipe schedule (1F1B off)", func(r AblationRow) bool { return r.MemDeltaPct > 0 },
		"dropping 1F1B costs memory")
	var b strings.Builder
	RenderTable1(&b, rows)
	if !strings.Contains(b.String(), "optimization") {
		t.Error("render incomplete")
	}
}

func TestTable3BudgetSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("budget sweep is slow")
	}
	evals, err := Table3Budget(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 16 {
		t.Fatalf("want 16 designs, got %d", len(evals))
	}
	// §7's headline: neither the cheapest nor the most expensive design
	// wins; some secondary-memory design is the top 1T performer.
	_, best, ok := bestFor(evals, "megatron-1T")
	if !ok {
		t.Fatal("no design can train 1T")
	}
	if best.SampleRate <= 0 {
		t.Fatal("no performance recorded")
	}
	var b strings.Builder
	RenderTable3(&b, evals)
	out := b.String()
	if !strings.Contains(out, "best 1T design") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFig2ScheduleRenders(t *testing.T) {
	var b strings.Builder
	if err := Fig2Schedule(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"interleaved 1F1B", "stage  0", "stage  3", "gpipe"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig2 output missing %q", frag)
		}
	}
}

// TestSeqScaleExtension checks the long-context study's physics: the
// attention share grows with sequence length, throughput in tokens/s falls,
// and the optimum never abandons recomputation at very long context.
func TestSeqScaleExtension(t *testing.T) {
	pts, err := SeqScale(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AttnShare <= pts[i-1].AttnShare {
			t.Error("attention share must grow with sequence length")
		}
		if pts[i].Found && pts[i-1].Found && pts[i].TokensPerSec >= pts[i-1].TokensPerSec {
			t.Error("token throughput must fall as the s² terms grow")
		}
	}
	last := pts[len(pts)-1]
	if !last.Found {
		t.Fatal("32k context should still run at batch 128 on 512 GPUs")
	}
	if last.Best.Strategy.Recompute == "none" {
		t.Error("very long context should need recomputation")
	}
	var b strings.Builder
	RenderSeqScale(&b, pts)
	if !strings.Contains(b.String(), "32768") {
		t.Error("render incomplete")
	}
}
