package experiments

import (
	"context"
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/units"
)

// Fig4Cell is one bar of a Fig. 4 sweep: a (t,p,d) split with its time and
// memory breakdown.
type Fig4Cell struct {
	Label  string
	Result perf.Result
}

// Fig4Sweep is one of the three panels of Fig. 4.
type Fig4Sweep struct {
	Title string
	Cells []Fig4Cell
}

// Fig4Parallelism reproduces §4.1 / Fig. 4: Megatron-1T, global batch
// 4,096, on 4,096 A100s whose NVLink domain is stretched to the TP degree,
// with optimizer sharding and the 1F1B schedule. Memory capacity is left
// unconstrained so that the memory requirement of every split can be
// reported, exactly as the figure plots requirements beyond 80 GiB.
func Fig4Parallelism() ([]Fig4Sweep, error) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)

	run := func(t, p, d int) (perf.Result, error) {
		sys := system.A100(4096).
			WithMem1Capacity(units.UnboundedBytes).
			WithFastDomain(maxOf(t, 8))
		st := execution.Strategy{
			TP: t, PP: p, DP: d, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: execution.RecomputeFull, TPRSAG: true, OptimSharding: true,
		}
		return perf.Run(m, sys, st)
	}

	sweep := func(title string, mk func(i int) (t, p, d int, label string), n int) (Fig4Sweep, error) {
		sw := Fig4Sweep{Title: title}
		for i := 0; i < n; i++ {
			t, p, d, label := mk(i)
			r, err := run(t, p, d)
			if err != nil {
				return sw, fmt.Errorf("%s %s: %w", title, label, err)
			}
			sw.Cells = append(sw.Cells, Fig4Cell{Label: label, Result: r})
		}
		return sw, nil
	}

	var out []Fig4Sweep
	tpVsPP, err := sweep("TP vs PP (DP=32) — Megatron-1T batch time & memory", func(i int) (int, int, int, string) {
		t := 1 << i
		p := 128 / t
		return t, p, 32, fmt.Sprintf("t=%d,p=%d", t, p)
	}, 6)
	if err != nil {
		return nil, err
	}
	out = append(out, tpVsPP)

	ppVsDP, err := sweep("PP vs DP (TP=8) — Megatron-1T batch time & memory", func(i int) (int, int, int, string) {
		p := 1 << i
		d := 512 / p
		return 8, p, d, fmt.Sprintf("p=%d,d=%d", p, d)
	}, 8)
	if err != nil {
		return nil, err
	}
	out = append(out, ppVsDP)

	tpVsDP, err := sweep("TP vs DP (PP=32) — Megatron-1T batch time & memory", func(i int) (int, int, int, string) {
		t := 1 << i
		d := 128 / t
		return t, 32, d, fmt.Sprintf("t=%d,d=%d", t, d)
	}, 6)
	if err != nil {
		return nil, err
	}
	out = append(out, tpVsDP)
	return out, nil
}

// RenderFig4 writes the three sweeps as stacked time and memory bars.
func RenderFig4(w io.Writer, sweeps []Fig4Sweep) {
	for _, sw := range sweeps {
		fmt.Fprintln(w, sw.Title)
		for _, c := range sw.Cells {
			report.StackedBar(w, "  "+c.Label+" time", "s", report.TimeSegments(c.Result), 30)
		}
		for _, c := range sw.Cells {
			report.StackedBar(w, "  "+c.Label+" memory", "GB", report.MemSegments(c.Result.Mem1), 30)
		}
		fmt.Fprintln(w)
	}
}

// Fig5Variant names one panel of Fig. 5.
type Fig5Variant string

const (
	// Fig5Baseline is panel (a): the original Megatron optimization set on
	// 80 GiB HBM.
	Fig5Baseline Fig5Variant = "baseline-80g"
	// Fig5SeqPar is panel (b): plus partial recompute and sequence
	// parallelism.
	Fig5SeqPar Fig5Variant = "seqpar-80g"
	// Fig5All is panel (c): every compatible Table 1 technique.
	Fig5All Fig5Variant = "all-80g"
	// Fig5All160 is panel (d): every technique with 160 GiB HBM.
	Fig5All160 Fig5Variant = "all-160g"
)

// Fig5Variants lists the four panels in paper order.
func Fig5Variants() []Fig5Variant {
	return []Fig5Variant{Fig5Baseline, Fig5SeqPar, Fig5All, Fig5All160}
}

// Fig5Cell is one (t,p) entry: the best batch time over the panel's
// optimization space and the memory that configuration needs.
type Fig5Cell struct {
	T, P     int
	Found    bool
	BatchSec float64
	Mem      units.Bytes
}

// Fig5Grid is one panel of Fig. 5.
type Fig5Grid struct {
	Variant Fig5Variant
	Ts, Ps  []int
	Cells   map[[2]int]Fig5Cell
}

// Fig5Optimizations reproduces one panel of Fig. 5: for every (t,p) with
// t·p·d = 4,096 it searches the panel's optimization family for the best
// feasible configuration under the panel's memory capacity.
func Fig5Optimizations(ctx context.Context, variant Fig5Variant, scale Scale) (Fig5Grid, error) {
	m := model.MustPreset("megatron-1T").WithBatch(4096)
	features := execution.FeatureBaseline
	capacity := 80 * units.GiB
	switch variant {
	case Fig5SeqPar:
		features = execution.FeatureSeqPar
	case Fig5All:
		features = execution.FeatureAll
	case Fig5All160:
		features = execution.FeatureAll
		capacity = 160 * units.GiB
	}
	grid := Fig5Grid{
		Variant: variant,
		Ts:      []int{1, 2, 4, 8, 16, 32},
		Ps:      []int{1, 2, 4, 8, 16, 32, 64},
		Cells:   map[[2]int]Fig5Cell{},
	}
	if scale == ScaleSmall {
		grid.Ts = []int{1, 4, 16, 32}
		grid.Ps = []int{1, 4, 16, 64}
	}
	for _, t := range grid.Ts {
		for _, p := range grid.Ps {
			d := 4096 / (t * p)
			sys := system.A100(4096).WithMem1Capacity(capacity).WithFastDomain(maxOf(t, 8))
			opts := sweepOptions(features, 8)
			opts.Enum.Procs = 4096
			opts.Enum.FixedTP, opts.Enum.FixedPP, opts.Enum.FixedDP = t, p, d
			res, err := search.Execution(ctx, m, sys, opts)
			if err != nil {
				return grid, fmt.Errorf("fig5 %s t=%d p=%d: %w", variant, t, p, err)
			}
			cell := Fig5Cell{T: t, P: p}
			if res.Found() {
				cell.Found = true
				cell.BatchSec = float64(res.Best.BatchTime)
				cell.Mem = res.Best.Mem1.Total()
			}
			grid.Cells[[2]int{t, p}] = cell
		}
	}
	return grid, nil
}

// RenderFig5 writes a panel as the paper's t×p grid (best time over
// required memory, dashes for infeasible splits).
func RenderFig5(w io.Writer, g Fig5Grid) {
	report.Grid(w, fmt.Sprintf("Fig. 5 (%s): best batch time (s) over required memory", g.Variant),
		g.Ts, g.Ps, func(t, p int) report.GridCell {
			c := g.Cells[[2]int{t, p}]
			if !c.Found {
				return report.GridCell{}
			}
			return report.GridCell{
				Top:    fmt.Sprintf("%.1f", c.BatchSec),
				Bottom: c.Mem.String(),
				OK:     true,
			}
		})
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
