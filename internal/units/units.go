// Package units provides the scalar quantity types used throughout the
// Calculon performance model: bytes, floating-point operation counts,
// durations, bandwidths and rates. Keeping these as distinct named types
// catches unit mix-ups at compile time while remaining plain float64s at
// runtime, so the analytical model stays allocation-free and fast.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bytes is a data size in bytes. Negative values are invalid everywhere
// except as intermediate subtraction results that callers must clamp.
type Bytes float64

// FLOPs counts floating-point operations (not a rate).
type FLOPs float64

// Seconds is a duration. The model computes with float64 seconds rather than
// time.Duration because sub-nanosecond precision matters when composing
// per-layer times across thousands of blocks.
type Seconds float64

// BytesPerSec is a bandwidth.
type BytesPerSec float64

// FLOPsPerSec is a computational throughput.
type FLOPsPerSec float64

// Common scale factors. IEC (binary) prefixes are used for capacities,
// SI (decimal) for bandwidths and FLOP rates, matching the paper's usage
// (e.g. "80 GiB HBM" but "100 GB/s offload", "312 TFLOP/s").
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12

	KiloFLOP FLOPs = 1e3
	MegaFLOP FLOPs = 1e6
	GigaFLOP FLOPs = 1e9
	TeraFLOP FLOPs = 1e12
	PetaFLOP FLOPs = 1e15
	ExaFLOP  FLOPs = 1e18
)

// Infinite capacity / bandwidth sentinels used by the offload analysis when
// probing resource requirements (§6: "offloading memory of infinite capacity
// and infinite bandwidth").
const (
	UnboundedBytes       Bytes       = Bytes(math.MaxFloat64)
	UnboundedBytesPerSec BytesPerSec = BytesPerSec(math.MaxFloat64)
)

// IsUnbounded reports whether b is the infinite-capacity sentinel.
func (b Bytes) IsUnbounded() bool { return b >= UnboundedBytes/2 }

// IsUnbounded reports whether bw is the infinite-bandwidth sentinel.
func (bw BytesPerSec) IsUnbounded() bool { return bw >= UnboundedBytesPerSec/2 }

// Div returns the time to move b bytes at bandwidth bw. A zero bandwidth
// yields +Inf (the configuration is infeasible, never a crash); an unbounded
// bandwidth yields zero.
func (b Bytes) Div(bw BytesPerSec) Seconds {
	if bw.IsUnbounded() {
		return 0
	}
	if bw <= 0 {
		if b <= 0 {
			return 0
		}
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(bw))
}

// Div returns the time to execute f operations at rate r, with the same
// zero/unbounded conventions as Bytes.Div.
func (f FLOPs) Div(r FLOPsPerSec) Seconds {
	if r <= 0 {
		if f <= 0 {
			return 0
		}
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(f) / float64(r))
}

// Per returns the bandwidth that moves b bytes in t seconds.
func (b Bytes) Per(t Seconds) BytesPerSec {
	if t <= 0 {
		return UnboundedBytesPerSec
	}
	return BytesPerSec(float64(b) / float64(t))
}

// --- dimension-preserving arithmetic helpers -----------------------------
//
// These helpers are the sanctioned way to combine quantities with
// dimensionless factors and with each other; calculonvet's dimcheck
// analyzer rejects the raw-cast spellings (`bytes / Bytes(n)`,
// `Seconds(n) * t`) that they replace. Every helper is a single plain
// float64 operation — bit-identical to the expression it stands in for —
// and, unlike Div/Per above, carries no zero/unbounded feasibility
// conventions. NaN and Inf propagate exactly as IEEE 754 dictates.

// Times returns b scaled by a dimensionless factor.
func (b Bytes) Times(n float64) Bytes { return Bytes(float64(b) * n) }

// Times returns f scaled by a dimensionless factor.
func (f FLOPs) Times(n float64) FLOPs { return FLOPs(float64(f) * n) }

// Times returns t scaled by a dimensionless factor.
func (t Seconds) Times(n float64) Seconds { return Seconds(float64(t) * n) }

// Times returns bw scaled by a dimensionless factor.
func (bw BytesPerSec) Times(n float64) BytesPerSec { return BytesPerSec(float64(bw) * n) }

// Times returns r scaled by a dimensionless factor.
func (r FLOPsPerSec) Times(n float64) FLOPsPerSec { return FLOPsPerSec(float64(r) * n) }

// DivN divides b by a dimensionless count.
func (b Bytes) DivN(n float64) Bytes { return Bytes(float64(b) / n) }

// DivN divides f by a dimensionless count.
func (f FLOPs) DivN(n float64) FLOPs { return FLOPs(float64(f) / n) }

// DivN divides t by a dimensionless count.
func (t Seconds) DivN(n float64) Seconds { return Seconds(float64(t) / n) }

// Over returns the raw transfer time b/bw. Unlike Div it applies no
// zero/unbounded conventions: a zero bandwidth yields IEEE ±Inf or NaN.
func (b Bytes) Over(bw BytesPerSec) Seconds { return Seconds(float64(b) / float64(bw)) }

// At returns the raw execution time f/r. Unlike Div it applies no
// zero/unbounded conventions: a zero rate yields IEEE ±Inf or NaN.
func (f FLOPs) At(r FLOPsPerSec) Seconds { return Seconds(float64(f) / float64(r)) }

// For returns the work done in t at rate r.
func (r FLOPsPerSec) For(t Seconds) FLOPs { return FLOPs(float64(r) * float64(t)) }

// Ratio returns the dimensionless quotient b/c of like quantities.
func (b Bytes) Ratio(c Bytes) float64 { return float64(b) / float64(c) }

// Ratio returns the dimensionless quotient f/g of like quantities.
func (f FLOPs) Ratio(g FLOPs) float64 { return float64(f) / float64(g) }

// Ratio returns the dimensionless quotient t/u of like quantities.
func (t Seconds) Ratio(u Seconds) float64 { return float64(t) / float64(u) }

// Rate returns n events per t: the per-second rate n/t.
func (t Seconds) Rate(n float64) float64 { return n / float64(t) }

// AtRate returns the dimensionless count accumulated over t at perSec
// events per second: perSec * t.
func (t Seconds) AtRate(perSec float64) float64 { return perSec * float64(t) }

func formatScaled(v float64, unit string, steps []struct {
	f float64
	p string
}) string {
	if math.IsInf(v, 1) {
		return "inf" + unit
	}
	a := math.Abs(v)
	for _, s := range steps {
		if a >= s.f {
			return trimFloat(v/s.f) + s.p + unit
		}
	}
	return trimFloat(v) + unit
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

var iecSteps = []struct {
	f float64
	p string
}{
	{float64(TiB), "Ti"}, {float64(GiB), "Gi"}, {float64(MiB), "Mi"}, {float64(KiB), "Ki"},
}

var siSteps = []struct {
	f float64
	p string
}{
	{1e18, "E"}, {1e15, "P"}, {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "K"},
}

// String renders the size with binary prefixes, e.g. "17.4GiB".
func (b Bytes) String() string {
	if b.IsUnbounded() {
		return "infB"
	}
	return formatScaled(float64(b), "B", iecSteps)
}

// SI renders the size with decimal prefixes, e.g. "4TB", matching the
// paper's offload-capacity annotations.
func (b Bytes) SI() string {
	if b.IsUnbounded() {
		return "infB"
	}
	return formatScaled(float64(b), "B", siSteps)
}

// String renders the count with decimal prefixes, e.g. "1.23PFLOP".
func (f FLOPs) String() string { return formatScaled(float64(f), "FLOP", siSteps) }

// String renders a bandwidth with decimal prefixes, e.g. "300GB/s".
func (bw BytesPerSec) String() string {
	if bw.IsUnbounded() {
		return "infB/s"
	}
	return formatScaled(float64(bw), "B/s", siSteps)
}

// String renders a throughput with decimal prefixes, e.g. "312TFLOP/s".
func (r FLOPsPerSec) String() string { return formatScaled(float64(r), "FLOP/s", siSteps) }

// String renders a duration with adaptive precision, e.g. "16.7s", "1.2ms".
func (t Seconds) String() string {
	v := float64(t)
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v == 0:
		return "0s"
	case math.Abs(v) >= 1:
		return trimFloat(v) + "s"
	case math.Abs(v) >= 1e-3:
		return trimFloat(v*1e3) + "ms"
	case math.Abs(v) >= 1e-6:
		return trimFloat(v*1e6) + "us"
	default:
		return trimFloat(v*1e9) + "ns"
	}
}

// ParseBytes parses strings like "80GiB", "512 GiB", "100GB", "2T", "123".
// A bare suffix letter (K/M/G/T) is decimal; an "i" makes it binary.
func ParseBytes(s string) (Bytes, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	if strings.EqualFold(s, "inf") || strings.EqualFold(s, "infinite") {
		return UnboundedBytes, nil
	}
	i := 0
	for i < len(s) && (s[i] == '.' || s[i] == '-' || s[i] == '+' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	num, suffix := s[:i], strings.TrimSpace(s[i:])
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad byte size %q: %w", s, err)
	}
	suffix = strings.TrimSuffix(suffix, "B")
	suffix = strings.TrimSuffix(suffix, "b")
	var mult Bytes
	switch strings.ToUpper(suffix) {
	case "":
		mult = 1
	case "K":
		mult = KB
	case "M":
		mult = MB
	case "G":
		mult = GB
	case "T":
		mult = TB
	case "KI":
		mult = KiB
	case "MI":
		mult = MiB
	case "GI":
		mult = GiB
	case "TI":
		mult = TiB
	default:
		return 0, fmt.Errorf("units: bad byte suffix %q in %q", suffix, s)
	}
	return Bytes(v) * mult, nil
}
