package units

import (
	"math"
	"testing"
	"testing/quick"
)

// bits compares two float64 values bit for bit, so the properties hold for
// NaN payloads, signed zeros, and infinities — the helpers must be the raw
// float64 spelling exactly, not merely approximately.
func bits(x float64) uint64 { return math.Float64bits(x) }

// quickCfg widens the generator beyond testing/quick's default unit-interval
// floats: magnitudes across the exponent range plus the IEEE-754 specials.
var quickCfg = &quick.Config{MaxCount: 2000}

// specials are the edge values every bit-identity property is additionally
// pinned on, beyond the randomized sweep.
var specials = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, -0.1,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(),
	1e300, -1e300, 1e-300, 3.5e9, 312e12,
}

// forPairs runs f over the special-value cross product and reports the
// first violation.
func forPairs(t *testing.T, name string, f func(a, b float64) bool) {
	t.Helper()
	for _, a := range specials {
		for _, b := range specials {
			if !f(a, b) {
				t.Errorf("%s: bit mismatch for a=%v b=%v", name, a, b)
			}
		}
	}
}

// TestTimesBitIdentity proves x.Times(n) is exactly float64(x)*n on every
// unit type, for random values and the IEEE-754 specials.
func TestTimesBitIdentity(t *testing.T) {
	prop := func(x, n float64) bool {
		return bits(float64(Bytes(x).Times(n))) == bits(x*n) &&
			bits(float64(FLOPs(x).Times(n))) == bits(x*n) &&
			bits(float64(Seconds(x).Times(n))) == bits(x*n) &&
			bits(float64(BytesPerSec(x).Times(n))) == bits(x*n) &&
			bits(float64(FLOPsPerSec(x).Times(n))) == bits(x*n)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
	forPairs(t, "Times", prop)
}

// TestDivNBitIdentity proves x.DivN(n) is exactly float64(x)/n.
func TestDivNBitIdentity(t *testing.T) {
	prop := func(x, n float64) bool {
		return bits(float64(Bytes(x).DivN(n))) == bits(x/n) &&
			bits(float64(FLOPs(x).DivN(n))) == bits(x/n) &&
			bits(float64(Seconds(x).DivN(n))) == bits(x/n)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
	forPairs(t, "DivN", prop)
}

// TestQuotientHelpersBitIdentity proves the dimension-changing quotients —
// Over (B/(B/s)=s), At (flop/(flop/s)=s), and Ratio (dimensionless) — are
// exactly the raw float64 division.
func TestQuotientHelpersBitIdentity(t *testing.T) {
	prop := func(a, b float64) bool {
		return bits(float64(Bytes(a).Over(BytesPerSec(b)))) == bits(a/b) &&
			bits(float64(FLOPs(a).At(FLOPsPerSec(b)))) == bits(a/b) &&
			bits(Bytes(a).Ratio(Bytes(b))) == bits(a/b) &&
			bits(FLOPs(a).Ratio(FLOPs(b))) == bits(a/b) &&
			bits(Seconds(a).Ratio(Seconds(b))) == bits(a/b)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
	forPairs(t, "Over/At/Ratio", prop)
}

// TestRateBitIdentity proves the rate helpers: t.Rate(n) is exactly
// n/float64(t), t.AtRate(r) is exactly r*float64(t), and r.For(t) is
// exactly float64(r)*float64(t).
func TestRateBitIdentity(t *testing.T) {
	prop := func(a, b float64) bool {
		return bits(Seconds(a).Rate(b)) == bits(b/a) &&
			bits(Seconds(a).AtRate(b)) == bits(b*a) &&
			bits(float64(FLOPsPerSec(a).For(Seconds(b)))) == bits(a*b)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
	forPairs(t, "Rate/AtRate/For", prop)
}

// TestHelperRoundTrips proves the algebraic inverses round-trip bit for bit
// wherever raw float64 arithmetic does: Times then DivN by a power of two
// is exact, and a quotient times its divisor reproduces raw float64
// round-trip bits.
func TestHelperRoundTrips(t *testing.T) {
	times := func(x float64) bool {
		got := bits(float64(Bytes(x).Times(4).DivN(4)))
		if math.IsNaN(x) || math.IsInf(x*4, 0) {
			// NaN payloads and overflow can't round-trip; the helpers must
			// still match the raw spelling exactly.
			return got == bits(x*4/4)
		}
		return got == bits(x)
	}
	if err := quick.Check(times, quickCfg); err != nil {
		t.Errorf("Times/DivN pow2 round-trip: %v", err)
	}
	quot := func(a, b float64) bool {
		// Over followed by scaling back must equal the raw spelling, even
		// when the round trip itself is inexact.
		roundTrip := Seconds(float64(Bytes(a).Over(BytesPerSec(b)))).AtRate(b)
		return bits(roundTrip) == bits(a/b*b)
	}
	if err := quick.Check(quot, quickCfg); err != nil {
		t.Errorf("Over/AtRate round-trip: %v", err)
	}
	forPairs(t, "Over/AtRate round-trip", quot)
}
