package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1KiB"},
		{80 * GiB, "80GiB"},
		{Bytes(17.4 * float64(GiB)), "17.4GiB"},
		{4 * TiB, "4TiB"},
		{UnboundedBytes, "infB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestBytesSI(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{100 * GB, "100GB"},
		{2 * TB, "2TB"},
		{455 * GB, "455GB"},
		{999, "999B"},
	}
	for _, c := range cases {
		if got := c.in.SI(); got != c.want {
			t.Errorf("Bytes(%v).SI() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0, "0s"},
		{16.7, "16.7s"},
		{0.0012, "1.2ms"},
		{2.5e-6, "2.5us"},
		{3e-10, "0.3ns"},
		{Seconds(math.Inf(1)), "inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestFLOPsAndRateString(t *testing.T) {
	if got := (312 * TeraFLOP).String(); got != "312TFLOP" {
		t.Errorf("FLOPs = %q", got)
	}
	if got := FLOPsPerSec(312e12).String(); got != "312TFLOP/s" {
		t.Errorf("FLOPsPerSec = %q", got)
	}
	if got := BytesPerSec(300e9).String(); got != "300GB/s" {
		t.Errorf("BytesPerSec = %q", got)
	}
}

func TestDivZeroAndUnbounded(t *testing.T) {
	if got := Bytes(100).Div(0); !math.IsInf(float64(got), 1) {
		t.Errorf("div by zero bandwidth should be +Inf, got %v", got)
	}
	if got := Bytes(0).Div(0); got != 0 {
		t.Errorf("0 bytes over 0 bandwidth should be 0, got %v", got)
	}
	if got := Bytes(100 * GiB).Div(UnboundedBytesPerSec); got != 0 {
		t.Errorf("unbounded bandwidth should give 0 time, got %v", got)
	}
	if got := FLOPs(5).Div(0); !math.IsInf(float64(got), 1) {
		t.Errorf("flops div by zero rate should be +Inf, got %v", got)
	}
	if got := FLOPs(0).Div(0); got != 0 {
		t.Errorf("0 flops over 0 rate should be 0, got %v", got)
	}
}

func TestDivRoundTripProperty(t *testing.T) {
	// Property: for positive sizes and bandwidths, size/(size/time) == bw.
	f := func(rawSize, rawBW uint32) bool {
		size := Bytes(float64(rawSize%1e6) + 1)
		bw := BytesPerSec(float64(rawBW%1e6) + 1)
		tm := size.Div(bw)
		back := size.Per(tm)
		return math.Abs(float64(back-bw))/float64(bw) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"80GiB", 80 * GiB},
		{"512 GiB", 512 * GiB},
		{"100GB", 100 * GB},
		{"1T", 1 * TB},
		{"256Gi", 256 * GiB},
		{"123", 123},
		{"2.5MiB", Bytes(2.5 * float64(MiB))},
		{"inf", UnboundedBytes},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "GiB", "12XB", "--3G"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) should fail", in)
		}
	}
}

func TestParseBytesRoundTripProperty(t *testing.T) {
	// Property: String() output parses back to (nearly) the same value.
	f := func(raw uint64) bool {
		b := Bytes(raw % (1 << 45))
		got, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		if b == 0 {
			return got == 0
		}
		return math.Abs(float64(got-b))/math.Max(float64(b), 1) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnboundedPredicates(t *testing.T) {
	if !UnboundedBytes.IsUnbounded() {
		t.Error("UnboundedBytes must report unbounded")
	}
	if (80 * GiB).IsUnbounded() {
		t.Error("80GiB must not report unbounded")
	}
	if !UnboundedBytesPerSec.IsUnbounded() {
		t.Error("UnboundedBytesPerSec must report unbounded")
	}
	if BytesPerSec(100e9).IsUnbounded() {
		t.Error("100GB/s must not report unbounded")
	}
}
