package resultstore

import (
	"encoding/json"
	"testing"

	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/search"
	"calculon/internal/system"
)

// FuzzResultStoreDecode hammers the store's untrusted surface: decodeRow is
// what Open feeds every line of a file that may have been truncated, hand-
// edited, or written by a different binary. The property is the usual one
// for loaders here: arbitrary bytes must produce a row or an error, never a
// panic — and an accepted row must satisfy the envelope invariants and
// survive a re-encode round-trip (what Append would later write).
func FuzzResultStoreDecode(f *testing.F) {
	// Seed with a committed row carrying a populated verdict (fabricated, not
	// searched — fuzz worker processes re-run this setup, so it must be
	// cheap). The equivalence tests cover real search results.
	m := model.MustPreset("gpt3-13B").WithBatch(8)
	sys := system.A100(8)
	best := perf.Result{Model: m, System: sys.Name, BatchTime: 12.375, SampleRate: 0.646, MFU: 0.41, ProcsUsed: 8}
	row := NewRow("0123abcd", m, sys, searchResultForSeed(best))
	valid, err := json.Marshal(row)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// …and the failure shapes the loader distinguishes: truncation, wrong
	// versions, missing key, plain garbage.
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"schema":1,"space_version":1,"key":"k","verdict":{"evaluated":3}}`))
	f.Add([]byte(`{"schema":99,"space_version":1,"key":"k","verdict":{}}`))
	f.Add([]byte(`{"schema":1,"space_version":1,"verdict":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("not json"))
	f.Add([]byte(`{"schema":1,"space_version":1,"key":"k","verdict":{"best":{"sample_rate":1e309}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := decodeRow(data)
		if err != nil {
			return
		}
		if row.Schema != SchemaVersion {
			t.Fatalf("decodeRow accepted schema version %d", row.Schema)
		}
		if row.Key == "" {
			t.Fatal("decodeRow accepted a keyless row")
		}
		enc, err := json.Marshal(row)
		if err != nil {
			t.Fatalf("accepted row does not re-encode: %v", err)
		}
		again, err := decodeRow(enc)
		if err != nil {
			t.Fatalf("re-encoded row does not re-decode: %v\nrow: %s", err, enc)
		}
		if again.Key != row.Key || again.Space != row.Space {
			t.Fatalf("row identity changed across a round-trip: %+v vs %+v", again, row)
		}
	})
}

// searchResultForSeed shapes a plausible finished-search result around best.
func searchResultForSeed(best perf.Result) (res search.Result) {
	res.Best = best
	res.Top = []perf.Result{best, best}
	res.Pareto = []perf.Result{best}
	res.Evaluated = 4096
	res.Feasible = 512
	res.PreScreened = 3000
	res.CacheHits = 100
	return res
}
