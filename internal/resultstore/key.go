package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
)

// keyPayload is the exact set of inputs that can reach a search's result —
// nothing more. Scheduling knobs (Workers, Progress, callbacks) are proven
// result-independent by the search equivalence tests and are deliberately
// absent: a sweep sharded across machines with different worker counts must
// hit the rows a single machine wrote. The Disable* evaluation switches
// leave Best/Top/Pareto untouched but change the diagnostic counters, so
// they are part of the identity — a cached verdict always reproduces the
// counters the same search would have reported live. DisableDelta is the
// exception and is deliberately absent: the delta path reproduces results
// AND counters bit-identically (the no-delta equivalence arm pins this), so
// both spellings are the same search. Shard coordinates never reach the key
// either — sharded runs bypass the store; only whole merged searches have a
// store identity.
//
// The payload is serialized with encoding/json, which emits struct fields
// in declaration order and sorts map keys, so the encoding — and therefore
// the hash — is deterministic and independent of both the field order of
// the JSON files the inputs were loaded from (they are resolved into
// structs before hashing) and of Go's randomized map iteration. The golden
// tests pin the hashes of the shipped configs so an accidental change to
// this struct, to the input types, or to the encoding fails CI.
type keyPayload struct {
	Space  int                   `json:"space_version"`
	Model  model.LLM             `json:"model"`
	System system.System         `json:"system"`
	Enum   execution.EnumOptions `json:"enum"`
	TopK   int                   `json:"top_k"`
	Pareto bool                  `json:"pareto"`

	DisablePreScreen    bool `json:"disable_pre_screen"`
	DisableMemo         bool `json:"disable_memo"`
	DisableSubtreePrune bool `json:"disable_subtree_prune"`
}

// Key computes the canonical content hash identifying one search: a SHA-256
// over the deterministic encoding of (strategy-space version, model config,
// system config, enumeration options, result-affecting search options),
// rendered as lowercase hex. Callers must pass the options as the search
// engine normalizes them (Enum.Procs defaulted, Features defaulted,
// HasMem2 derived) so every spelling of the same search maps to one key;
// search.Execution consults its Cache only after that normalization.
func Key(m model.LLM, sys system.System, opts search.Options) (string, error) {
	payload := keyPayload{
		Space:               StrategySpaceVersion,
		Model:               m,
		System:              sys,
		Enum:                opts.Enum,
		TopK:                opts.TopK,
		Pareto:              opts.Pareto,
		DisablePreScreen:    opts.DisablePreScreen,
		DisableMemo:         opts.DisableMemo,
		DisableSubtreePrune: opts.DisableSubtreePrune,
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("resultstore: key encoding: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
