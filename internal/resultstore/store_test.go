package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"calculon/internal/perf"
)

// testRow fabricates a committed row with a distinguishable verdict. The
// verdicts only need to round-trip and compare; the equivalence tests in
// this package cover real search results.
func testRow(key string, evaluated int) Row {
	return Row{
		Schema: SchemaVersion,
		Space:  StrategySpaceVersion,
		Key:    key,
		Model:  "test-model",
		System: "test-system",
		Procs:  8,
		Verdict: Verdict{
			Evaluated: evaluated,
			Feasible:  evaluated / 2,
			Best:      perf.Result{SampleRate: float64(evaluated) * 1.5, ProcsUsed: 8},
		},
	}
}

// TestStoreRoundTrip is the basic persistence property: rows appended in one
// process generation are served, verbatim, after a reopen.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{testRow("k1", 100), testRow("k2", 200), testRow("k3", 300)}
	for _, r := range rows {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The index serves appended rows before any flush.
	if v, ok := st.lookup("k2"); !ok || v.Evaluated != 200 {
		t.Fatalf("pre-flush lookup k2 = (%+v, %v), want evaluated 200", v, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.Rows != 3 || stats.Loaded != 3 || stats.Stale != 0 || stats.RecoveredBytes != 0 {
		t.Fatalf("reopen stats = %+v, want 3 clean rows", stats)
	}
	for _, r := range rows {
		v, ok := st2.lookup(r.Key)
		if !ok {
			t.Fatalf("row %s lost across reopen", r.Key)
		}
		if !reflect.DeepEqual(v, r.Verdict) {
			t.Fatalf("row %s verdict changed across reopen:\ngot  %+v\nwant %+v", r.Key, v, r.Verdict)
		}
	}
	if s := st2.Stats(); s.Hits != 3 || s.Misses != 0 {
		t.Fatalf("counter stats = %+v, want 3 hits, 0 misses", s)
	}
}

// TestStoreDuplicateKeysLastWriteWins pins the dedup rule on both serving
// paths: the live index and the load-time replay both keep the latest row
// for a key, matching append order.
func TestStoreDuplicateKeysLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testRow("dup", 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testRow("dup", 2)); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.lookup("dup"); !ok || v.Evaluated != 2 {
		t.Fatalf("live lookup = (%+v, %v), want the second write", v, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := st2.Stats(); s.Rows != 1 || s.Loaded != 2 {
		t.Fatalf("reopen stats = %+v, want 2 loaded deduped to 1 row", s)
	}
	if v, ok := st2.lookup("dup"); !ok || v.Evaluated != 2 {
		t.Fatalf("replayed lookup = (%+v, %v), want the second write", v, ok)
	}
}

// TestStoreBatching pins the commit policy: appends buffer until the batch
// fills, a full batch flushes (write + fsync), and Flush/Close force the
// tail out.
func TestStoreBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SetBatchSize(3)
	for i, key := range []string{"a", "b"} {
		if err := st.Append(testRow(key, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if n := fileLines(t, path); n != 0 {
		t.Fatalf("%d lines on disk before the batch filled, want 0", n)
	}
	if s := st.Stats(); s.Flushes != 0 || s.Appends != 2 {
		t.Fatalf("stats before batch fills = %+v", s)
	}
	if err := st.Append(testRow("c", 3)); err != nil {
		t.Fatal(err)
	}
	if n := fileLines(t, path); n != 3 {
		t.Fatalf("%d lines on disk after the batch filled, want 3", n)
	}
	if s := st.Stats(); s.Flushes != 1 {
		t.Fatalf("flushes = %d after one full batch, want 1", s.Flushes)
	}
	if err := st.Append(testRow("d", 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := fileLines(t, path); n != 4 {
		t.Fatalf("%d lines on disk after Flush, want 4", n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed stores refuse further work.
	if err := st.Append(testRow("e", 5)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := st.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
}

// TestStoreCrashTruncation simulates the crash the batched-fsync design
// permits: the final line of the final write is cut short. Every committed
// row must survive the reopen, the fragment must be dropped, and the file
// must be usable for appends again.
func TestStoreCrashTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeRows(t, path, []Row{testRow("k1", 1), testRow("k2", 2), testRow("k3", 3)})

	// Cut the file mid-way through the final row (newline included).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	cut := len(data) - len(lines[len(lines)-1])/2
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}

	st, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after simulated crash: %v", err)
	}
	stats := st.Stats()
	if stats.Rows != 2 || stats.RecoveredBytes == 0 {
		t.Fatalf("post-crash stats = %+v, want 2 surviving rows and recovered bytes", stats)
	}
	if _, ok := st.lookup("k3"); ok {
		t.Fatal("truncated row k3 served after recovery")
	}
	// The store stays writable after recovery and the re-appended row lands
	// on a clean line boundary.
	if err := st.Append(testRow("k3", 33)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := st2.Stats(); s.Rows != 3 || s.RecoveredBytes != 0 {
		t.Fatalf("stats after recovery + append + reopen = %+v, want 3 clean rows", s)
	}
	if v, ok := st2.lookup("k3"); !ok || v.Evaluated != 33 {
		t.Fatalf("re-appended k3 = (%+v, %v)", v, ok)
	}
}

// TestStoreCrashSalvage covers the gentler crash shape: the final row is
// complete but lost its newline (the write stopped between the payload and
// the terminator). The row must be salvaged, not dropped.
func TestStoreCrashSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeRows(t, path, []Row{testRow("k1", 1), testRow("k2", 2)})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(len(data)-1)); err != nil { // drop only the final '\n'
		t.Fatal(err)
	}

	st, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after lost newline: %v", err)
	}
	if s := st.Stats(); s.Rows != 2 || s.RecoveredBytes != 0 {
		t.Fatalf("salvage stats = %+v, want both rows and no dropped bytes", s)
	}
	if _, ok := st.lookup("k2"); !ok {
		t.Fatal("salvageable row k2 was dropped")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The salvage rewrote the terminator: a further reopen sees a clean file.
	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := st2.Stats(); s.Rows != 2 || s.RecoveredBytes != 0 {
		t.Fatalf("stats after salvage + reopen = %+v", s)
	}
}

// TestStoreUnknownSchemaRejected pins the loud-failure contract: a
// newline-terminated row with an unknown schema version is indistinguishable
// from corruption or a downgrade, so Open must refuse the whole file rather
// than guess.
func TestStoreUnknownSchemaRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	row := testRow("k1", 1)
	row.Schema = SchemaVersion + 1
	writeRawRows(t, path, row)
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("Open with unknown schema = %v, want loud schema-version error", err)
	}
}

// TestStoreCorruptRowRejected: a committed (newline-terminated) row that
// does not parse is corruption, not a crash artifact, and fails Open.
func TestStoreCorruptRowRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	if err := os.WriteFile(path, []byte("{\"not\":\"a row\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "corrupt row") {
		t.Fatalf("Open with corrupt committed row = %v, want corrupt-row error", err)
	}
	if err := os.WriteFile(path, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-JSON committed line")
	}
}

// TestStoreStaleSpaceVersionSkipped: bumping StrategySpaceVersion is the
// cache-invalidation mechanism — rows from an older space load as stale,
// are never served, and do not fail the file.
func TestStoreStaleSpaceVersionSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	old := testRow("old", 1)
	old.Space = StrategySpaceVersion + 1 // not this binary's strategy space
	writeRawRows(t, path, old, testRow("current", 2))

	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Rows != 1 || stats.Loaded != 2 || stats.Stale != 1 {
		t.Fatalf("stats = %+v, want 1 current row and 1 stale", stats)
	}
	if _, ok := st.lookup("old"); ok {
		t.Fatal("stale-space row served")
	}
	if _, ok := st.lookup("current"); !ok {
		t.Fatal("current-space row lost")
	}
}

// TestStoreRefusesKeylessRow: a row without a key could never be served and
// would silently rot in the file, so Append refuses it.
func TestStoreRefusesKeylessRow(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(testRow("", 1)); err == nil {
		t.Fatal("Append accepted a keyless row")
	}
}

// writeRows commits rows through the real store (flush + close), producing
// a file exactly as a clean shutdown leaves it.
func writeRows(t *testing.T, path string, rows []Row) {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// writeRawRows writes rows straight to disk, bypassing the store's own
// envelope checks — for crafting files the store itself would refuse to
// produce (unknown versions, stale spaces).
func writeRawRows(t *testing.T, path string, rows ...Row) {
	t.Helper()
	var b []byte
	for _, r := range rows {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b = append(append(b, line...), '\n')
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// fileLines counts the newline-terminated lines currently on disk.
func fileLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}
