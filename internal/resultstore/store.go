package resultstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// DefaultBatchSize is the number of appended rows buffered before an
// automatic flush. Batching amortizes the write+fsync cost across a sweep's
// many per-size verdicts; Flush/Close force the tail out.
const DefaultBatchSize = 64

// ErrClosed reports an operation on a store after Close.
var ErrClosed = errors.New("resultstore: store is closed")

// counters is the store's observability surface. Fields are bumped by
// searches on many goroutines while /metrics reads concurrently, so access
// is sync/atomic only — the same contract calculonvet's atomiccounter
// analyzer enforces on search.Progress.
//
//calculonvet:counter
type counters struct {
	hits    atomic.Int64
	misses  atomic.Int64
	appends atomic.Int64
	flushes atomic.Int64
}

// Stats is one observation of a store's activity.
type Stats struct {
	// Rows is the number of distinct keys currently indexed, summed across
	// the training and serving indices.
	Rows int
	// Loaded counts the rows read back at Open (before dedup); Stale the
	// subset skipped for carrying an outdated strategy-space version;
	// RecoveredBytes the truncated final-line bytes dropped at Open.
	Loaded         int
	Stale          int
	RecoveredBytes int
	// Hits/Misses count lookups; Appends committed rows; Flushes batch
	// writes (each followed by one fsync).
	Hits    int64
	Misses  int64
	Appends int64
	Flushes int64
}

// Store is an append-only JSONL file of search verdicts with an in-memory
// dedup index. One process owns a store file at a time (the daemon shares a
// single Store across all jobs); methods are safe for concurrent use.
type Store struct {
	ctr counters

	mu      sync.Mutex
	f       *os.File
	path    string
	index   map[string]Verdict
	serving map[string]ServingVerdict
	pending []Row
	batch   int
	closed  bool
	// load-time observations, fixed after Open.
	loaded         int
	stale          int
	recoveredBytes int
}

// Open reads an existing store (creating an empty one if absent), rebuilds
// the dedup index, and leaves the file positioned for appends.
//
// Recovery semantics, in order of severity:
//   - A final line without a terminating newline is a crash artifact: the
//     flush that wrote it never completed. If the fragment still parses as a
//     complete row it is preserved (rewritten with its newline and synced);
//     otherwise it is dropped and the file truncated back to the last
//     committed row. Either way every committed row survives.
//   - A newline-terminated row that fails to decode, carries an unknown
//     schema version, or has an empty key is corruption, not a crash shape —
//     committed rows are written and fsynced whole — so Open fails loudly
//     rather than serving a file it cannot vouch for.
//   - A row with an outdated strategy-space version is stale, not corrupt:
//     it is counted and skipped, which is how a version bump invalidates
//     every previously cached verdict.
//
// Duplicate keys resolve last-write-wins, matching append order.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		f:       f,
		path:    path,
		index:   make(map[string]Verdict),
		serving: make(map[string]ServingVerdict),
		batch:   DefaultBatchSize,
	}
	if err := s.load(); err != nil {
		// Close cannot mask the load error: the file was only read.
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

// load replays the JSONL file into the index and settles the write offset,
// applying the recovery semantics documented on Open.
func (s *Store) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("resultstore: %s: %w", s.path, err)
	}
	off := 0
	var tail []byte // unterminated final-line fragment, if any
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			tail = data[off:]
			break
		}
		line := data[off : off+nl]
		if len(bytes.TrimSpace(line)) != 0 {
			row, err := decodeRow(line)
			if err != nil {
				return fmt.Errorf("resultstore: %s: corrupt row at byte %d: %w", s.path, off, err)
			}
			s.loaded++
			if row.stale() {
				s.stale++
			} else {
				s.indexRow(row)
			}
		}
		off += nl + 1
	}
	if tail == nil {
		return nil
	}
	// Crash recovery: drop the uncommitted fragment, then salvage it if it
	// happens to be a complete row that only lost its newline.
	if err := s.f.Truncate(int64(off)); err != nil {
		return fmt.Errorf("resultstore: %s: truncating partial row: %w", s.path, err)
	}
	if _, err := s.f.Seek(int64(off), io.SeekStart); err != nil {
		return fmt.Errorf("resultstore: %s: %w", s.path, err)
	}
	row, err := decodeRow(tail)
	if err != nil || row.stale() {
		s.recoveredBytes = len(tail)
		return nil
	}
	if _, err := s.f.Write(append(append([]byte(nil), tail...), '\n')); err != nil {
		return fmt.Errorf("resultstore: %s: rewriting salvaged row: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("resultstore: %s: %w", s.path, err)
	}
	s.loaded++
	s.indexRow(row)
	return nil
}

// indexRow files the row's verdict under the index of its kind. Caller
// holds mu (or is single-threaded load) and has already screened staleness;
// decodeRow/Append guarantee a serving row carries its payload.
func (s *Store) indexRow(row Row) {
	if row.Kind == KindServing {
		s.serving[row.Key] = *row.Serving
	} else {
		s.index[row.Key] = row.Verdict
	}
}

// decodeRow parses one JSONL line into a Row, enforcing the envelope
// invariants (known schema version, non-empty key). It is the surface
// FuzzResultStoreDecode hammers: arbitrary bytes must error, never panic.
func decodeRow(line []byte) (Row, error) {
	var row Row
	if err := json.Unmarshal(line, &row); err != nil {
		return row, err
	}
	if row.Schema != SchemaVersion {
		return row, fmt.Errorf("unknown schema version %d (want %d)", row.Schema, SchemaVersion)
	}
	if row.Key == "" {
		return row, fmt.Errorf("row has no key")
	}
	if row.Kind == KindServing && row.Serving == nil {
		return row, fmt.Errorf("serving row has no serving verdict")
	}
	return row, nil
}

// Path returns the backing file's path.
func (s *Store) Path() string { return s.path }

// SetBatchSize adjusts how many appended rows buffer before an automatic
// flush; n < 1 flushes every append. Intended for configuration right after
// Open, but safe at any point.
func (s *Store) SetBatchSize(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batch = n
}

// lookup returns the training verdict stored under key, if any.
func (s *Store) lookup(key string) (Verdict, bool) {
	s.mu.Lock()
	v, ok := s.index[key]
	s.mu.Unlock()
	if ok {
		s.ctr.hits.Add(1)
	} else {
		s.ctr.misses.Add(1)
	}
	return v, ok
}

// lookupServing returns the serving verdict stored under key, if any. Hits
// and misses land in the same counters as training lookups — the stats
// surface observes store traffic, not per-kind traffic.
func (s *Store) lookupServing(key string) (ServingVerdict, bool) {
	s.mu.Lock()
	v, ok := s.serving[key]
	s.mu.Unlock()
	if ok {
		s.ctr.hits.Add(1)
	} else {
		s.ctr.misses.Add(1)
	}
	return v, ok
}

// Append records a row: the index serves it immediately (last write wins)
// and the row joins the pending batch, flushed to disk once the batch fills.
// Call Flush or Close to force the tail out; rows are only crash-durable
// after their batch has flushed (each flush ends in fsync).
func (s *Store) Append(row Row) error {
	if row.Key == "" {
		return fmt.Errorf("resultstore: refusing to append row with no key")
	}
	if row.Kind == KindServing && row.Serving == nil {
		return fmt.Errorf("resultstore: refusing to append serving row without a serving verdict")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.indexRow(row)
	s.pending = append(s.pending, row)
	s.ctr.appends.Add(1)
	if len(s.pending) >= s.batch {
		return s.flushLocked()
	}
	return nil
}

// Flush commits the pending batch: one buffered write of whole JSONL lines,
// then fsync, so a crash can truncate at most the final line of the final
// write — exactly the shape Open recovers from.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// flushLocked writes and syncs the pending rows. Caller holds mu.
func (s *Store) flushLocked() error {
	if len(s.pending) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for _, row := range s.pending {
		data, err := json.Marshal(row)
		if err != nil {
			return fmt.Errorf("resultstore: encoding row %s: %w", row.Key, err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("resultstore: %s: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("resultstore: %s: %w", s.path, err)
	}
	s.pending = s.pending[:0]
	s.ctr.flushes.Add(1)
	return nil
}

// Close flushes the pending batch and releases the file. The store is
// unusable afterwards; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	flushErr := s.flushLocked()
	s.closed = true
	if err := s.f.Close(); err != nil && flushErr == nil {
		flushErr = fmt.Errorf("resultstore: %s: %w", s.path, err)
	}
	return flushErr
}

// Stats snapshots the store's activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	rows, loaded, stale, recovered := len(s.index)+len(s.serving), s.loaded, s.stale, s.recoveredBytes
	s.mu.Unlock()
	return Stats{
		Rows:           rows,
		Loaded:         loaded,
		Stale:          stale,
		RecoveredBytes: recovered,
		Hits:           s.ctr.hits.Load(),
		Misses:         s.ctr.misses.Load(),
		Appends:        s.ctr.appends.Load(),
		Flushes:        s.ctr.flushes.Load(),
	}
}
