package resultstore

import (
	"encoding/json"
	"fmt"
	"testing"

	"calculon/internal/config"
	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/units"
)

// normalizedOpts builds search options exactly as search.Execution
// normalizes them before consulting the cache: Procs defaulted from the
// system, Features defaulted, HasMem2 derived. The key contract only holds
// for normalized options, so every test goes through this.
func normalizedOpts(sys system.System) search.Options {
	return search.Options{
		Enum: execution.EnumOptions{
			Procs:    sys.Procs,
			Features: execution.FeatureAll,
			HasMem2:  sys.Mem2.Present(),
		},
		TopK: 1,
	}
}

// TestKeyStableAcrossFieldOrder: the canonical hash must not depend on the
// field order of the JSON files the inputs were loaded from. Two spellings
// of the same model with fields in opposite orders must map to one key.
func TestKeyStableAcrossFieldOrder(t *testing.T) {
	spellings := []string{
		`{"name":"tiny","hidden":1024,"attn_heads":16,"seq":2048,"blocks":24,"batch":512,"vocab":51200}`,
		`{"vocab":51200,"batch":512,"blocks":24,"seq":2048,"attn_heads":16,"hidden":1024,"name":"tiny"}`,
		"{\n  \"batch\": 512,\n  \"name\": \"tiny\",\n  \"seq\": 2048,\n  \"blocks\": 24,\n  \"vocab\": 51200,\n  \"hidden\": 1024,\n  \"attn_heads\": 16\n}",
	}
	sys := system.A100(64)
	keys := make(map[string]bool)
	for i, s := range spellings {
		var m model.LLM
		if err := json.Unmarshal([]byte(s), &m); err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		k, err := Key(m, sys, normalizedOpts(sys))
		if err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		keys[k] = true
	}
	if len(keys) != 1 {
		t.Fatalf("three spellings of one model produced %d distinct keys: %v", len(keys), keys)
	}
}

// TestKeyStableAcrossMapIteration routes the system config through
// map[string]any — whose iteration order Go randomizes per run — and back
// before hashing, many times. encoding/json sorts map keys on marshal, so
// every pass must land on the direct-decode key; a drift here would mean
// the hash depends on an iteration order the runtime does not promise.
func TestKeyStableAcrossMapIteration(t *testing.T) {
	raw, err := json.Marshal(system.A100(256))
	if err != nil {
		t.Fatal(err)
	}
	var direct system.System
	if err := json.Unmarshal(raw, &direct); err != nil {
		t.Fatal(err)
	}
	m := model.MustPreset("gpt3-13B")
	want, err := Key(m, direct, normalizedOpts(direct))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		var loose map[string]any
		if err := json.Unmarshal(raw, &loose); err != nil {
			t.Fatal(err)
		}
		reencoded, err := json.Marshal(loose)
		if err != nil {
			t.Fatal(err)
		}
		var sys system.System
		if err := json.Unmarshal(reencoded, &sys); err != nil {
			t.Fatal(err)
		}
		got, err := Key(m, sys, normalizedOpts(sys))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pass %d: key drifted after a map round-trip: %s != %s", i, got, want)
		}
	}
}

// TestKeyGoldenShippedConfigs pins the canonical hash of every shipped
// model config against both shipped systems. These hex values are part of
// the on-disk cache contract: a change here silently orphans every store
// file in the field, so it must be a conscious decision (bump
// StrategySpaceVersion) — not an accident of reordering a struct field,
// renaming a JSON tag, or tweaking the encoder.
func TestKeyGoldenShippedConfigs(t *testing.T) {
	golden := map[string]string{
		"chinchilla-70B/a100-80g":        "dd161b8008cb78965ab5c725df2a0b62b6231d704a990f3752e9efb41e603ad7",
		"chinchilla-70B/h100-80g-ddr512": "eb47fc3b0608004077ae1fb967fd1303a63c14a94015104574fcbc084ce8c79d",
		"gpt2-1.5B/a100-80g":             "4ed82206d149f2018488f8d2aba2e9d4d1eecb947abcc55a5e0bc36b717e03b1",
		"gpt2-1.5B/h100-80g-ddr512":      "8489c9a8e46064b71edfd84ecdcbefbc1cb4f53ba731c106ebb4e8acae3c0102",
		"gpt3-13B/a100-80g":              "460837c6b513704fc5b3c5b1d19eea085bfa7447615a9e0b8b8dc58fbccd6d95",
		"gpt3-13B/h100-80g-ddr512":       "4d3d309feb1ea2f2668601d0d016d24428019ac24f0f92345e1cb61026b662c0",
		"gpt3-175B/a100-80g":             "c5797506f9e29cad5d28e1b55dd077a32a8f97f4eccbd06dd47db5d3947acc74",
		"gpt3-175B/h100-80g-ddr512":      "1c97c7f3596951e3e38fefd7035feee4b012713f1bc718261419e8b455a2aea2",
		"gpt3-6.7B/a100-80g":             "51d7df11346ac7d57fcf39f366c70b25307887e26ff62bcced32c9c838c6a4df",
		"gpt3-6.7B/h100-80g-ddr512":      "e2fba6214ef1fa5435c73ef7faf7e606856695e5096e7ed269e01ceea2478cca",
		"llama-65B/a100-80g":             "b270f2359681de7034e272efbdfede7b3165209d675f3974a10eef28178ac851",
		"llama-65B/h100-80g-ddr512":      "ec490584f7e229cdc9517246dc93d329dae0d2d55dbfa415b7f59a486d9da781",
		"megatron-1T/a100-80g":           "6504717f7fa3fc689d31a4de90f144a05507f49a348865104ef3d3cd531fbbd9",
		"megatron-1T/h100-80g-ddr512":    "92f88fd8014932f75c95662ae1447b07795f0449101c5fc4fd39b26af0ff16d3",
		"megatron-22B/a100-80g":          "8497c58896056a95eab2bfa3df50d8c195db9e06c7e356ea5bb26f608ce43d31",
		"megatron-22B/h100-80g-ddr512":   "63c212e1da81b62bb8b9f764a7764800f0f8420d70c3d4eb4a3feeeda880d0eb",
		"palm-540B/a100-80g":             "5275d2725c5b4cb0f2d5d90114d951ff19f132da733e4fde73fb9d1869217f1e",
		"palm-540B/h100-80g-ddr512":      "90a012820ab170e466659bb7f034fa55a872df6b0d1883c228674e6a42693cba",
		"turing-530B/a100-80g":           "2fcac3c5d672474dfe2a8fdc79808acda2a426efc923868bf7592bde6985974c",
		"turing-530B/h100-80g-ddr512":    "f30c701014655a99511618e3ca04b658a130467473b5dde1b6306f68906fef2c",
	}
	for _, mc := range []string{
		"chinchilla-70B", "gpt2-1.5B", "gpt3-13B", "gpt3-175B", "gpt3-6.7B",
		"llama-65B", "megatron-1T", "megatron-22B", "palm-540B", "turing-530B",
	} {
		m, err := config.Load[model.LLM]("../../configs/models/" + mc + ".json")
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []string{"a100-80g", "h100-80g-ddr512"} {
			sys, err := config.Load[system.System]("../../configs/systems/" + sc + ".json")
			if err != nil {
				t.Fatal(err)
			}
			got, err := Key(m, sys, normalizedOpts(sys))
			if err != nil {
				t.Fatal(err)
			}
			name := mc + "/" + sc
			if want := golden[name]; got != want {
				t.Errorf("%s: key %s, want %s (a deliberate semantic change must bump StrategySpaceVersion instead)",
					name, got, want)
			}
		}
	}
}

// TestKeyNoCollisions hashes a corpus of single-field perturbations around
// a base search and requires every distinct input to land on a distinct
// key. This is the other half of the golden test: stability for identical
// inputs, separation for different ones — in particular that no
// result-affecting field was accidentally dropped from the payload.
func TestKeyNoCollisions(t *testing.T) {
	baseM := model.MustPreset("gpt3-13B")
	baseSys := system.A100(64)
	seen := make(map[string]string) // key -> description of the input

	add := func(desc string, m model.LLM, sys system.System, opts search.Options) {
		t.Helper()
		k, err := Key(m, sys, opts)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if prev, ok := seen[k]; ok {
			t.Fatalf("collision: %q and %q share key %s", prev, desc, k)
		}
		seen[k] = desc
	}

	add("base", baseM, baseSys, normalizedOpts(baseSys))
	for _, batch := range []int{8, 16, 512, 3072} {
		add(fmt.Sprintf("batch=%d", batch), baseM.WithBatch(batch), baseSys, normalizedOpts(baseSys))
	}
	for _, preset := range []string{"gpt2-1.5B", "megatron-22B", "chinchilla-70B", "turing-530B"} {
		add("model="+preset, model.MustPreset(preset), baseSys, normalizedOpts(baseSys))
	}
	perturbed := baseM
	perturbed.Seq *= 2
	add("seq*2", perturbed, baseSys, normalizedOpts(baseSys))

	for _, procs := range []int{8, 16, 128, 4096} {
		sys := system.A100(procs)
		add(fmt.Sprintf("procs=%d", procs), baseM, sys, normalizedOpts(sys))
	}
	shrunk := baseSys.WithMem1Capacity(baseSys.Mem1.Capacity / 2)
	add("mem1/2", baseM, shrunk, normalizedOpts(shrunk))
	withDDR := baseSys.WithMem2(system.DDR5(512 * units.GiB))
	add("mem2=ddr512", baseM, withDDR, normalizedOpts(withDDR))
	h100 := system.H100(64, 80*units.GiB, 512*units.GiB)
	add("h100", baseM, h100, normalizedOpts(h100))

	for _, f := range []execution.FeatureSet{execution.FeatureBaseline, execution.FeatureSeqPar} {
		o := normalizedOpts(baseSys)
		o.Enum.Features = f
		add("features="+string(f), baseM, baseSys, o)
	}
	for _, tp := range []int{4, 8, 32} {
		o := normalizedOpts(baseSys)
		o.Enum.MaxTP = tp
		add(fmt.Sprintf("maxtp=%d", tp), baseM, baseSys, o)
	}
	for _, il := range []int{1, 2, 4} {
		o := normalizedOpts(baseSys)
		o.Enum.MaxInterleave = il
		add(fmt.Sprintf("interleave=%d", il), baseM, baseSys, o)
	}
	{
		o := normalizedOpts(baseSys)
		o.Enum.PinBeneficial = true
		add("pin-beneficial", baseM, baseSys, o)
	}
	for _, k := range []int{2, 5, 10} {
		o := normalizedOpts(baseSys)
		o.TopK = k
		add(fmt.Sprintf("topk=%d", k), baseM, baseSys, o)
	}
	{
		o := normalizedOpts(baseSys)
		o.Pareto = true
		add("pareto", baseM, baseSys, o)
	}
	// The Disable* switches change the diagnostic counters a verdict
	// carries, so each spelling must have its own identity.
	for _, d := range []string{"prescreen", "memo", "subtree"} {
		o := normalizedOpts(baseSys)
		switch d {
		case "prescreen":
			o.DisablePreScreen = true
		case "memo":
			o.DisableMemo = true
		case "subtree":
			o.DisableSubtreePrune = true
		}
		add("disable-"+d, baseM, baseSys, o)
	}

	// Scheduling and observability knobs must NOT change the identity: a
	// sweep sharded across machines with different worker counts has to hit
	// the rows a single machine wrote.
	o := normalizedOpts(baseSys)
	o.Workers = 7
	o.EstimateTotal = true
	o.Progress = &search.Progress{}
	k, err := Key(baseM, baseSys, o)
	if err != nil {
		t.Fatal(err)
	}
	if seen[k] != "base" {
		t.Fatalf("worker/progress knobs changed the key (landed on %q, want \"base\")", seen[k])
	}
}
