package resultstore

import (
	"encoding/json"
	"fmt"
	"testing"

	"calculon/internal/config"
	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/units"
)

// normalizedOpts builds search options exactly as search.Execution
// normalizes them before consulting the cache: Procs defaulted from the
// system, Features defaulted, HasMem2 derived. The key contract only holds
// for normalized options, so every test goes through this.
func normalizedOpts(sys system.System) search.Options {
	return search.Options{
		Enum: execution.EnumOptions{
			Procs:    sys.Procs,
			Features: execution.FeatureAll,
			HasMem2:  sys.Mem2.Present(),
		},
		TopK: 1,
	}
}

// TestKeyIgnoresDeltaAndScheduling: options proven result-AND-counter
// neutral must not reach the key — a verdict computed with delta evaluation
// (the default), without it, or under any worker count is the same search
// and must hit the same rows.
func TestKeyIgnoresDeltaAndScheduling(t *testing.T) {
	m := model.MustPreset("gpt3-13B")
	sys := system.A100(64)
	base, err := Key(m, sys, normalizedOpts(sys))
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*search.Options){
		func(o *search.Options) { o.DisableDelta = true },
		func(o *search.Options) { o.Workers = 7 },
	} {
		o := normalizedOpts(sys)
		mutate(&o)
		k, err := Key(m, sys, o)
		if err != nil {
			t.Fatal(err)
		}
		if k != base {
			t.Errorf("result-neutral option changed the key: %s vs %s", k, base)
		}
	}
}

// TestKeyStableAcrossFieldOrder: the canonical hash must not depend on the
// field order of the JSON files the inputs were loaded from. Two spellings
// of the same model with fields in opposite orders must map to one key.
func TestKeyStableAcrossFieldOrder(t *testing.T) {
	spellings := []string{
		`{"name":"tiny","hidden":1024,"attn_heads":16,"seq":2048,"blocks":24,"batch":512,"vocab":51200}`,
		`{"vocab":51200,"batch":512,"blocks":24,"seq":2048,"attn_heads":16,"hidden":1024,"name":"tiny"}`,
		"{\n  \"batch\": 512,\n  \"name\": \"tiny\",\n  \"seq\": 2048,\n  \"blocks\": 24,\n  \"vocab\": 51200,\n  \"hidden\": 1024,\n  \"attn_heads\": 16\n}",
	}
	sys := system.A100(64)
	keys := make(map[string]bool)
	for i, s := range spellings {
		var m model.LLM
		if err := json.Unmarshal([]byte(s), &m); err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		k, err := Key(m, sys, normalizedOpts(sys))
		if err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		keys[k] = true
	}
	if len(keys) != 1 {
		t.Fatalf("three spellings of one model produced %d distinct keys: %v", len(keys), keys)
	}
}

// TestKeyStableAcrossMapIteration routes the system config through
// map[string]any — whose iteration order Go randomizes per run — and back
// before hashing, many times. encoding/json sorts map keys on marshal, so
// every pass must land on the direct-decode key; a drift here would mean
// the hash depends on an iteration order the runtime does not promise.
func TestKeyStableAcrossMapIteration(t *testing.T) {
	raw, err := json.Marshal(system.A100(256))
	if err != nil {
		t.Fatal(err)
	}
	var direct system.System
	if err := json.Unmarshal(raw, &direct); err != nil {
		t.Fatal(err)
	}
	m := model.MustPreset("gpt3-13B")
	want, err := Key(m, direct, normalizedOpts(direct))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		var loose map[string]any
		if err := json.Unmarshal(raw, &loose); err != nil {
			t.Fatal(err)
		}
		reencoded, err := json.Marshal(loose)
		if err != nil {
			t.Fatal(err)
		}
		var sys system.System
		if err := json.Unmarshal(reencoded, &sys); err != nil {
			t.Fatal(err)
		}
		got, err := Key(m, sys, normalizedOpts(sys))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pass %d: key drifted after a map round-trip: %s != %s", i, got, want)
		}
	}
}

// TestKeyGoldenShippedConfigs pins the canonical hash of every shipped
// model config against both shipped systems. These hex values are part of
// the on-disk cache contract: a change here silently orphans every store
// file in the field, so it must be a conscious decision (bump
// StrategySpaceVersion) — not an accident of reordering a struct field,
// renaming a JSON tag, or tweaking the encoder.
func TestKeyGoldenShippedConfigs(t *testing.T) {
	golden := map[string]string{
		"chinchilla-70B/a100-80g":        "4d55ca6036bb5a077565424a0afea490101ff3deaf33c336f83bc5bbc0621a9a",
		"chinchilla-70B/h100-80g-ddr512": "1f56dad56897b3fff654f2ca7573a7dd3a1ff154a921e225d743250a1b9021b4",
		"gpt2-1.5B/a100-80g":             "240520c997cc6cfbf213004fc60a343f42f01e5b5ac49ed6daa7a622516d8b04",
		"gpt2-1.5B/h100-80g-ddr512":      "a5e58732f45a5fa45d7d2b0531e8d540da8718c6319beba368b4fb46568d0e79",
		"gpt3-13B/a100-80g":              "9f9c4f7e534275b2b8fb3dd760762f7c3d944eb4fbeaaa00abcff0a73b866ab4",
		"gpt3-13B/h100-80g-ddr512":       "256d5fb2776835c993e5e1680194da52831e4cda32beef0422a18989c4b2a99a",
		"gpt3-175B/a100-80g":             "87bbb5d6db4fca6c2b4159baac09bb80160ef76181e68108cd952bf020979423",
		"gpt3-175B/h100-80g-ddr512":      "37b01755c2f08c569af9a1e74fb880def46caaa8bb92760b4e14cb9da6317eec",
		"gpt3-6.7B/a100-80g":             "fc917a43decf822339ff4f25756e8df67fbbb82a0247cd9199d86aad8e5c3b39",
		"gpt3-6.7B/h100-80g-ddr512":      "20166a9fbfac0069c48f272c9ec6ffbc7934b15f166e8f59b5b35eb7347d17b4",
		"llama-65B/a100-80g":             "5f8842eeb6bae85b8dbb8e2a2d44a06d268472513d56f18160406a18f21bb774",
		"llama-65B/h100-80g-ddr512":      "b90769354aca278eba15ab0e372ee95860b23fb65ed9d2fd3881985627cbbc24",
		"megatron-1T/a100-80g":           "282c18a32f8f07ba8e7ce084953955c2cf0434517331d7cd66881657a831c3c4",
		"megatron-1T/h100-80g-ddr512":    "796025ead1e7ef9bbb36be9927a384934b6dbb0e5ce9965b952b048fd6bad259",
		"megatron-22B/a100-80g":          "73a12b5f36f383b545ccc7b933b10a1fc4b4fde3c0727a797142192958561f26",
		"megatron-22B/h100-80g-ddr512":   "833c88eeee51ef1d6104e21572085101bd9a49f08224f60b687641916d067141",
		"palm-540B/a100-80g":             "b5f34a995e56fe829becc6dd4e4a4e9cd7cedb53507e3b0e765ef612862e274d",
		"palm-540B/h100-80g-ddr512":      "949993af8690ef0f469d5843cd0b655e2e05827f104435e99f47f2945c1e3f76",
		"turing-530B/a100-80g":           "00014b01a47fb4f339ab25da3697bd280f190ec0601aeb9c2cfc2d6eec834769",
		"turing-530B/h100-80g-ddr512":    "dac5dea9ded6cdc0a2e8c5abee17f7fdc92ea1df0517e120e61a1aa7fa37c4fc",
	}
	for _, mc := range []string{
		"chinchilla-70B", "gpt2-1.5B", "gpt3-13B", "gpt3-175B", "gpt3-6.7B",
		"llama-65B", "megatron-1T", "megatron-22B", "palm-540B", "turing-530B",
	} {
		m, err := config.Load[model.LLM]("../../configs/models/" + mc + ".json")
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []string{"a100-80g", "h100-80g-ddr512"} {
			sys, err := config.Load[system.System]("../../configs/systems/" + sc + ".json")
			if err != nil {
				t.Fatal(err)
			}
			got, err := Key(m, sys, normalizedOpts(sys))
			if err != nil {
				t.Fatal(err)
			}
			name := mc + "/" + sc
			if want := golden[name]; got != want {
				t.Errorf("%s: key %s, want %s (a deliberate semantic change must bump StrategySpaceVersion instead)",
					name, got, want)
			}
		}
	}
}

// TestKeyNoCollisions hashes a corpus of single-field perturbations around
// a base search and requires every distinct input to land on a distinct
// key. This is the other half of the golden test: stability for identical
// inputs, separation for different ones — in particular that no
// result-affecting field was accidentally dropped from the payload.
func TestKeyNoCollisions(t *testing.T) {
	baseM := model.MustPreset("gpt3-13B")
	baseSys := system.A100(64)
	seen := make(map[string]string) // key -> description of the input

	add := func(desc string, m model.LLM, sys system.System, opts search.Options) {
		t.Helper()
		k, err := Key(m, sys, opts)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if prev, ok := seen[k]; ok {
			t.Fatalf("collision: %q and %q share key %s", prev, desc, k)
		}
		seen[k] = desc
	}

	add("base", baseM, baseSys, normalizedOpts(baseSys))
	for _, batch := range []int{8, 16, 512, 3072} {
		add(fmt.Sprintf("batch=%d", batch), baseM.WithBatch(batch), baseSys, normalizedOpts(baseSys))
	}
	for _, preset := range []string{"gpt2-1.5B", "megatron-22B", "chinchilla-70B", "turing-530B"} {
		add("model="+preset, model.MustPreset(preset), baseSys, normalizedOpts(baseSys))
	}
	perturbed := baseM
	perturbed.Seq *= 2
	add("seq*2", perturbed, baseSys, normalizedOpts(baseSys))

	for _, procs := range []int{8, 16, 128, 4096} {
		sys := system.A100(procs)
		add(fmt.Sprintf("procs=%d", procs), baseM, sys, normalizedOpts(sys))
	}
	shrunk := baseSys.WithMem1Capacity(baseSys.Mem1.Capacity / 2)
	add("mem1/2", baseM, shrunk, normalizedOpts(shrunk))
	withDDR := baseSys.WithMem2(system.DDR5(512 * units.GiB))
	add("mem2=ddr512", baseM, withDDR, normalizedOpts(withDDR))
	h100 := system.H100(64, 80*units.GiB, 512*units.GiB)
	add("h100", baseM, h100, normalizedOpts(h100))

	for _, f := range []execution.FeatureSet{execution.FeatureBaseline, execution.FeatureSeqPar} {
		o := normalizedOpts(baseSys)
		o.Enum.Features = f
		add("features="+string(f), baseM, baseSys, o)
	}
	for _, tp := range []int{4, 8, 32} {
		o := normalizedOpts(baseSys)
		o.Enum.MaxTP = tp
		add(fmt.Sprintf("maxtp=%d", tp), baseM, baseSys, o)
	}
	for _, il := range []int{1, 2, 4} {
		o := normalizedOpts(baseSys)
		o.Enum.MaxInterleave = il
		add(fmt.Sprintf("interleave=%d", il), baseM, baseSys, o)
	}
	{
		o := normalizedOpts(baseSys)
		o.Enum.PinBeneficial = true
		add("pin-beneficial", baseM, baseSys, o)
	}
	for _, k := range []int{2, 5, 10} {
		o := normalizedOpts(baseSys)
		o.TopK = k
		add(fmt.Sprintf("topk=%d", k), baseM, baseSys, o)
	}
	{
		o := normalizedOpts(baseSys)
		o.Pareto = true
		add("pareto", baseM, baseSys, o)
	}
	// The Disable* switches change the diagnostic counters a verdict
	// carries, so each spelling must have its own identity.
	for _, d := range []string{"prescreen", "memo", "subtree"} {
		o := normalizedOpts(baseSys)
		switch d {
		case "prescreen":
			o.DisablePreScreen = true
		case "memo":
			o.DisableMemo = true
		case "subtree":
			o.DisableSubtreePrune = true
		}
		add("disable-"+d, baseM, baseSys, o)
	}

	// Scheduling and observability knobs must NOT change the identity: a
	// sweep sharded across machines with different worker counts has to hit
	// the rows a single machine wrote.
	o := normalizedOpts(baseSys)
	o.Workers = 7
	o.EstimateTotal = true
	o.Progress = &search.Progress{}
	k, err := Key(baseM, baseSys, o)
	if err != nil {
		t.Fatal(err)
	}
	if seen[k] != "base" {
		t.Fatalf("worker/progress knobs changed the key (landed on %q, want \"base\")", seen[k])
	}
}
