package resultstore

import (
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
)

// Store implements search.Cache, so a *Store plugs directly into
// search.Options.Cache: Execution calls Lookup once per search (after
// normalizing its options) and Store once per finished, uncancelled search.
var _ search.Cache = (*Store)(nil)

// Lookup implements search.Cache: it derives the canonical key and serves
// the stored verdict, reconstructed into the exact Result a fresh
// evaluation would return. A key-derivation failure is reported as a miss —
// the search then simply evaluates.
func (s *Store) Lookup(m model.LLM, sys system.System, opts search.Options) (search.Result, bool) {
	key, err := Key(m, sys, opts)
	if err != nil {
		return search.Result{}, false
	}
	v, ok := s.lookup(key)
	if !ok {
		return search.Result{}, false
	}
	return v.result(), true
}

// Store implements search.Cache: it commits a finished search's verdict
// under its canonical key. Errors are swallowed by design — the cache is an
// accelerator, and a search that computed a correct result must not fail
// because the verdict could not be persisted. Rates-carrying results are
// refused defensively; the search layer already bypasses the cache for
// CollectRates runs (their sample order is not run-to-run deterministic).
func (s *Store) Store(m model.LLM, sys system.System, opts search.Options, res search.Result) {
	if res.Rates != nil {
		return
	}
	key, err := Key(m, sys, opts)
	if err != nil {
		return
	}
	// The append error is deliberately dropped (see above); a failed write
	// leaves the in-memory index updated, so the running process still
	// dedups.
	_ = s.Append(NewRow(key, m, sys, res))
}
