// Package resultstore persists search verdicts across processes so that no
// search ever walks the same strategy subtree twice. It is the warm-cache
// layer under the CLI and calculond: an append-only JSONL file of typed rows
// keyed on a canonical content hash of the search's result-affecting inputs,
// with an in-memory dedup index (last write wins), buffered batched commits,
// fsync on flush, and crash-safe recovery that tolerates a truncated final
// line. The split mirrors m-lab/etl's layering: schema.go owns the typed row
// structs, store.go the buffered commit path, and cache.go the dedup lookup
// the search engines consult.
//
// Correctness contract: a served verdict is bit-identical to what a fresh
// evaluation would return — same Best/Top/Pareto numbers, same counters.
// The equivalence tests in this package lock that in; anything that changes
// what a search computes must bump StrategySpaceVersion, which invalidates
// every stored row at load time (stale rows are skipped, not served).
package resultstore

import (
	"time"

	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/search"
	"calculon/internal/system"
)

const (
	// SchemaVersion is the wire-format version of Row. A file whose rows
	// carry any other value is rejected loudly at Open: an unknown schema is
	// indistinguishable from corruption, and silently dropping it could mask
	// a downgrade serving wrong verdicts.
	SchemaVersion = 1

	// StrategySpaceVersion identifies the semantics behind a stored verdict:
	// the enumeration order of the strategy lattice, the tie-break sequence,
	// and the performance model itself. Bump it whenever any of those change
	// in a result-visible way; rows stamped with an older version become
	// stale and are skipped at load time (cache invalidation), never served.
	// It is part of the canonical key, so old and new rows cannot collide.
	//
	// Version 2: the toggle enumeration inside each (tp,pp,dp) triple became
	// a reflected Gray-code walk (one toggle flips per step, feeding delta
	// evaluation), which renumbers the deterministic tie-break sequence —
	// equal-rate strategies can now resolve to a different winner than
	// version-1 rows recorded.
	StrategySpaceVersion = 2
)

// Row is one committed search verdict: the envelope (schema/space versions,
// kind, canonical key, provenance) plus the verdict payload. Rows are
// append-only; re-running a search appends a fresh row and the loader keeps
// the last one per key.
type Row struct {
	// Schema is the wire-format version; see SchemaVersion.
	Schema int `json:"schema"`
	// Space is the semantic version the verdict was computed under — which
	// versioned space depends on Kind: StrategySpaceVersion for training
	// rows, ServingSpaceVersion for serving rows.
	Space int `json:"space_version"`
	// Kind discriminates the verdict payload: "" is a training search
	// (Verdict), KindServing a serving search (Serving). An unrecognized
	// kind — a row written by a newer binary — loads as stale, not corrupt,
	// so mixed-version fleets can share one store file.
	Kind string `json:"kind,omitempty"`
	// Key is the canonical content hash identifying the search; see Key and
	// ServingKey.
	Key string `json:"key"`
	// CreatedUnix records when the verdict was committed (provenance only —
	// it is not part of the identity and never affects lookups).
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Model, System, and Procs are human-readable provenance for people
	// grepping the JSONL; the authoritative identity is Key.
	Model  string `json:"model,omitempty"`
	System string `json:"system,omitempty"`
	Procs  int    `json:"procs,omitempty"`

	// Verdict carries a training row's payload; it stays zero on serving
	// rows (the discriminator is Kind, not which field happens to be set).
	Verdict Verdict `json:"verdict"`
	// Serving carries a serving row's payload and is nil on training rows.
	Serving *ServingVerdict `json:"serving,omitempty"`
}

// stale reports whether the row's verdict was computed under an outdated
// version of its kind's semantic space — or under a kind this binary does
// not know, which is the same situation seen from the other side of an
// upgrade. Stale rows are counted and skipped at load, never served.
func (r Row) stale() bool {
	switch r.Kind {
	case "":
		return r.Space != StrategySpaceVersion
	case KindServing:
		return r.Space != ServingSpaceVersion
	default:
		return true
	}
}

// Verdict is the stored form of a search.Result. It mirrors the result
// field-for-field with explicit JSON tags so the wire schema is a conscious
// decision rather than an accident of Go field names; the conversions below
// are the only place the two meet, so a Result field added without a schema
// decision fails to round-trip in the equivalence tests.
//
// Rates is deliberately absent: histogram searches (CollectRates) order
// their samples by worker completion, which is not run-to-run
// deterministic, so the search layer bypasses the store for them.
type Verdict struct {
	Evaluated     int           `json:"evaluated"`
	Feasible      int           `json:"feasible"`
	PreScreened   int           `json:"pre_screened"`
	CacheHits     int           `json:"cache_hits"`
	SubtreePruned int           `json:"subtree_pruned"`
	Best          perf.Result   `json:"best"`
	Top           []perf.Result `json:"top,omitempty"`
	Pareto        []perf.Result `json:"pareto,omitempty"`
}

// newVerdict captures a finished search result for storage.
func newVerdict(res search.Result) Verdict {
	return Verdict{
		Evaluated:     res.Evaluated,
		Feasible:      res.Feasible,
		PreScreened:   res.PreScreened,
		CacheHits:     res.CacheHits,
		SubtreePruned: res.SubtreePruned,
		Best:          res.Best,
		Top:           res.Top,
		Pareto:        res.Pareto,
	}
}

// result reconstructs the search.Result a fresh evaluation would have
// returned. Slices are copied so a caller mutating the returned result
// cannot poison the index (perf.Result is a flat value type, so an element
// copy is a deep copy).
func (v Verdict) result() search.Result {
	res := search.Result{
		Evaluated:     v.Evaluated,
		Feasible:      v.Feasible,
		PreScreened:   v.PreScreened,
		CacheHits:     v.CacheHits,
		SubtreePruned: v.SubtreePruned,
		Best:          v.Best,
	}
	if v.Top != nil {
		res.Top = append([]perf.Result(nil), v.Top...)
	}
	if v.Pareto != nil {
		res.Pareto = append([]perf.Result(nil), v.Pareto...)
	}
	return res
}

// NewRow stamps a fresh envelope around a finished search's verdict.
func NewRow(key string, m model.LLM, sys system.System, res search.Result) Row {
	return Row{
		Schema:      SchemaVersion,
		Space:       StrategySpaceVersion,
		Key:         key,
		CreatedUnix: time.Now().Unix(),
		Model:       m.Name,
		System:      sys.Name,
		Procs:       sys.Procs,
		Verdict:     newVerdict(res),
	}
}
