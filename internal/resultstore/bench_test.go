package resultstore

import (
	"context"
	"path/filepath"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
)

// BenchmarkSearchWarmStore measures the repeated-search path the store
// exists for: the exact configuration of BenchmarkExecutionSearch, served
// from a warm store instead of walked. The strategies/s metric counts the
// served verdict's full space per wall-clock second, so the ratio to
// BenchmarkExecutionSearch's metric is the store's effective-throughput
// multiplier; allocs/op is the baselined number (key hash + index lookup +
// defensive slice copies, no I/O).
func BenchmarkSearchWarmStore(b *testing.B) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	sys := system.A100(64)
	opts := search.Options{Enum: execution.EnumOptions{Procs: 64, Features: execution.FeatureSeqPar, MaxInterleave: 2}}
	st, err := Open(filepath.Join(b.TempDir(), "store.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	opts.Cache = st
	cold, err := search.Execution(context.Background(), m, sys, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var served int
	for i := 0; i < b.N; i++ {
		res, err := search.Execution(context.Background(), m, sys, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Evaluated != cold.Evaluated {
			b.Fatalf("warm verdict diverged: %d evaluated, want %d", res.Evaluated, cold.Evaluated)
		}
		served += res.Evaluated
	}
	b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "strategies/s")
}
