package resultstore

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/units"
)

// TestStoreCachedEqualsFresh is the tentpole proof obligation of the result
// store: over randomized (model, system, options) draws, a verdict served
// from the store — same process or after a reopen from disk — must be
// bit-identical to a fresh evaluation. Pareto fronts, top-K sets, and every
// diagnostic counter included; reflect.DeepEqual, no tolerance. The
// DisableStore arm checks the escape hatch re-evaluates and still agrees.
// The CI race job runs this with -race, exercising concurrent appends.
func TestStoreCachedEqualsFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	models := []string{"gpt3-13B", "megatron-22B", "gpt2-1.5B", "chinchilla-70B"}
	features := []execution.FeatureSet{
		execution.FeatureBaseline, execution.FeatureSeqPar, execution.FeatureAll,
	}
	procChoices := []int{8, 16, 32}
	batchChoices := []int{8, 16, 32}

	draws := 8
	if testing.Short() {
		draws = 4
	}
	for i := 0; i < draws; i++ {
		m := model.MustPreset(models[rng.Intn(len(models))]).
			WithBatch(batchChoices[rng.Intn(len(batchChoices))])
		sys := system.A100(procChoices[rng.Intn(len(procChoices))])
		switch rng.Intn(3) {
		case 0:
			sys = sys.WithMem1Capacity(sys.Mem1.Capacity / 4)
		case 1:
			sys = sys.WithMem2(system.DDR5(512 * units.GiB))
		}
		opts := search.Options{
			Enum: execution.EnumOptions{
				Features:      features[rng.Intn(len(features))],
				MaxTP:         8,
				MaxInterleave: 2,
				PinBeneficial: rng.Intn(2) == 0,
			},
			Workers: 1 + rng.Intn(4),
			TopK:    1 + rng.Intn(8),
			Pareto:  true,
		}

		// The reference: a storeless evaluation.
		fresh, err := search.Execution(context.Background(), m, sys, opts)
		if err != nil {
			t.Fatalf("draw %d: fresh search: %v", i, err)
		}

		// Cold arm: store attached but empty — must evaluate, agree with the
		// reference, and commit exactly one row.
		path := filepath.Join(t.TempDir(), "store.jsonl")
		st, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		cold := opts
		cold.Cache = st
		cold.Workers = 1 + rng.Intn(4)
		coldRes, err := search.Execution(context.Background(), m, sys, cold)
		if err != nil {
			t.Fatalf("draw %d: cold search: %v", i, err)
		}
		if !reflect.DeepEqual(coldRes, fresh) {
			t.Fatalf("draw %d: cold run with an empty store diverges from the storeless reference:\ncold: %+v\nfresh: %+v",
				i, coldRes, fresh)
		}
		if s := st.Stats(); s.Misses != 1 || s.Hits != 0 || s.Appends != 1 {
			t.Fatalf("draw %d: cold-run stats = %+v, want 1 miss, 1 append", i, s)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		// Warm arm: reopen from disk (forcing the verdict through the JSONL
		// round-trip), different worker count, progress attached.
		st2, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		warm := opts
		warm.Cache = st2
		warm.Workers = 1 + rng.Intn(4)
		var prog search.Progress
		warm.Progress = &prog
		warmRes, err := search.Execution(context.Background(), m, sys, warm)
		if err != nil {
			t.Fatalf("draw %d: warm search: %v", i, err)
		}
		if !reflect.DeepEqual(warmRes, fresh) {
			t.Fatalf("draw %d: stored verdict diverges from fresh evaluation:\nwarm: %+v\nfresh: %+v",
				i, warmRes, fresh)
		}
		// Golden digits spelled out on top of DeepEqual: the float fields
		// round-trip through JSON exactly, so even 1e-9 slack must be unused.
		if d := math.Abs(float64(warmRes.Best.BatchTime - fresh.Best.BatchTime)); d > 1e-9 {
			t.Errorf("draw %d: batch time drifted %g through the store", i, d)
		}
		if d := math.Abs(warmRes.Best.SampleRate - fresh.Best.SampleRate); d > 1e-9 {
			t.Errorf("draw %d: sample rate drifted %g through the store", i, d)
		}
		if warmRes.Evaluated != fresh.Evaluated || warmRes.Feasible != fresh.Feasible ||
			warmRes.PreScreened != fresh.PreScreened || warmRes.CacheHits != fresh.CacheHits ||
			warmRes.SubtreePruned != fresh.SubtreePruned {
			t.Errorf("draw %d: served counters diverge: warm %+v fresh %+v", i, warmRes, fresh)
		}
		snap := prog.Snapshot()
		if snap.StoreHits != 1 || snap.Evaluated != 0 {
			t.Errorf("draw %d: warm progress = %+v, want 1 store hit and nothing evaluated", i, snap)
		}
		if s := st2.Stats(); s.Hits != 1 || s.Misses != 0 || s.Appends != 0 {
			t.Errorf("draw %d: warm-run stats = %+v, want exactly 1 hit and no append", i, s)
		}

		// Escape hatch: DisableStore with the cache still wired must
		// re-evaluate (no lookup, no store) and still agree.
		off := warm
		off.DisableStore = true
		var offProg search.Progress
		off.Progress = &offProg
		offRes, err := search.Execution(context.Background(), m, sys, off)
		if err != nil {
			t.Fatalf("draw %d: DisableStore search: %v", i, err)
		}
		if !reflect.DeepEqual(offRes, fresh) {
			t.Fatalf("draw %d: DisableStore run diverges from the reference", i)
		}
		offSnap := offProg.Snapshot()
		if offSnap.StoreHits != 0 || offSnap.Evaluated != int64(fresh.Evaluated) {
			t.Errorf("draw %d: DisableStore progress = %+v, want a full live evaluation", i, offSnap)
		}
		if s := st2.Stats(); s.Hits != 1 || s.Misses != 0 || s.Appends != 0 {
			t.Errorf("draw %d: DisableStore touched the store: %+v", i, s)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWarmSweepSkipsLeafEvaluations is the throughput acceptance test from
// the store's design goal: re-running a cliff-spanning system-size sweep
// against a warm store must skip at least 99% of leaf evaluations — here
// it skips all of them — while returning bit-identical points, proven by
// the Progress counters on both runs.
func TestWarmSweepSkipsLeafEvaluations(t *testing.T) {
	// The -short (race) configuration keeps the cold sweep cheap; the full
	// run uses the bench configuration the scaling studies actually sweep.
	m := model.MustPreset("turing-530B").WithBatch(3072)
	sizes := search.Sizes(16, 128) // spans the fit cliff: nothing fits below 112 procs
	opts := search.Options{Enum: execution.EnumOptions{
		Features:      execution.FeatureAll,
		PinBeneficial: true,
		MaxTP:         32,
		MaxInterleave: 4,
	}}
	if testing.Short() {
		m = model.MustPreset("gpt3-13B").WithBatch(32)
		sizes = search.Sizes(8, 64)
		opts.Enum = execution.EnumOptions{
			Features:      execution.FeatureSeqPar,
			MaxTP:         8,
			MaxInterleave: 2,
			PinBeneficial: true,
		}
	}
	sysAt := func(n int) system.System { return system.A100(n) }

	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	coldOpts := opts
	coldOpts.Cache = st
	var coldProg search.Progress
	coldOpts.Progress = &coldProg
	coldPts, err := search.SystemSize(context.Background(), m, sysAt, sizes, coldOpts)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	cold := coldProg.Snapshot()
	if cold.Evaluated == 0 {
		t.Fatal("cold sweep evaluated nothing; the skip ratio below would be vacuous")
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := st2.Stats(); s.Rows != len(sizes) {
		t.Fatalf("store holds %d rows after a %d-size sweep", s.Rows, len(sizes))
	}
	warmOpts := opts
	warmOpts.Cache = st2
	var warmProg search.Progress
	warmOpts.Progress = &warmProg
	warmPts, err := search.SystemSize(context.Background(), m, sysAt, sizes, warmOpts)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if !reflect.DeepEqual(warmPts, coldPts) {
		t.Fatalf("warm sweep points diverge from cold:\nwarm: %+v\ncold: %+v", warmPts, coldPts)
	}
	warm := warmProg.Snapshot()
	if warm.StoreHits != int64(len(sizes)) {
		t.Errorf("warm sweep store hits = %d, want %d (one per size)", warm.StoreHits, len(sizes))
	}
	// The acceptance bound: ≥99% of leaf evaluations skipped. The store
	// serves whole verdicts, so the warm run evaluates exactly zero.
	if warm.Evaluated*100 > cold.Evaluated {
		t.Errorf("warm sweep evaluated %d of %d leaves (>1%%); store failed its throughput contract",
			warm.Evaluated, cold.Evaluated)
	}
	if warm.Evaluated != 0 {
		t.Errorf("warm sweep evaluated %d leaves, want 0", warm.Evaluated)
	}
	if s := st2.Stats(); s.Hits != int64(len(sizes)) || s.Misses != 0 || s.Appends != 0 {
		t.Errorf("warm sweep stats = %+v, want %d hits and no traffic past the index", s, len(sizes))
	}
}
