package resultstore

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"calculon/internal/model"
	"calculon/internal/serving"
	"calculon/internal/system"
	"calculon/internal/units"
)

// servingSpec is a small but non-trivial serving problem: two mix buckets,
// disaggregation on, a real frontier.
func servingSpec() serving.Spec {
	return serving.Spec{
		Model:  model.MustPreset("gpt3-13B"),
		System: system.A100(16),
		Workload: serving.Workload{
			Mix: []serving.Bucket{
				{PromptLen: 512, GenLen: 128, Weight: 3},
				{PromptLen: 2048, GenLen: 256, Weight: 1},
			},
			SLO: serving.SLO{TTFT: 30, TPOT: 1},
		},
		Space: serving.Space{Procs: 16, MaxBatch: 16, Disaggregate: true},
	}
}

// TestServingWarmLookup is the serving store's equivalence contract: a
// search served from the store must be byte-identical to the fresh
// evaluation that populated it, across a process restart (reopen), and must
// not have evaluated anything.
func TestServingWarmLookup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := servingSpec()
	opts := serving.Options{Cache: st.ServingCache()}
	cold, err := serving.Search(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Feasible == 0 {
		t.Fatal("seed search found nothing; the warm path would be vacuous")
	}
	if s := st.Stats(); s.Misses != 1 || s.Appends != 1 {
		t.Fatalf("cold-run stats = %+v, want 1 miss and 1 append", s)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := st2.Stats(); s.Rows != 1 || s.Stale != 0 {
		t.Fatalf("reopen stats = %+v, want the one serving row", s)
	}
	warm, err := serving.Search(context.Background(), spec, serving.Options{Cache: st2.ServingCache()})
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Hits != 1 || s.Appends != 0 {
		t.Fatalf("warm-run stats = %+v, want 1 hit and no append", s)
	}
	a, errA := json.MarshalIndent(cold, "", "  ")
	b, errB := json.MarshalIndent(warm, "", "  ")
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("warm result diverges from cold:\n%s\nvs\n%s", a, b)
	}
}

// TestServingKeySeparatesSearches: result-affecting inputs must move the
// key; scheduling knobs must not.
func TestServingKeySeparatesSearches(t *testing.T) {
	spec := servingSpec().Normalize()
	base, err := ServingKey(spec, serving.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ServingKey(spec, serving.Options{Workers: 7, EstimateTotal: true})
	if err != nil {
		t.Fatal(err)
	}
	if base != sched {
		t.Error("scheduling knobs moved the serving key; sharded sweeps would never share rows")
	}
	for name, mutate := range map[string]func(*serving.Spec, *serving.Options){
		"slo":        func(s *serving.Spec, _ *serving.Options) { s.Workload.SLO.TPOT = units.Seconds(0.5) },
		"space":      func(s *serving.Spec, _ *serving.Options) { s.Space.MaxBatch = 8 },
		"prescreen":  func(_ *serving.Spec, o *serving.Options) { o.DisablePreScreen = true },
		"prefillsys": func(s *serving.Spec, _ *serving.Options) { sys := system.A100(16); s.PrefillSystem = &sys },
	} {
		sp, op := spec, serving.Options{}
		mutate(&sp, &op)
		k, err := ServingKey(sp, op)
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("%s: a result-affecting input did not move the serving key", name)
		}
	}
}

// TestServingRowsCoexistWithTraining: one file holds both kinds; a
// ServingSpaceVersion bump (simulated with a raw row) evicts serving rows
// without touching training rows, and vice versa is covered by the
// kind-aware staleness rule.
func TestServingRowsCoexistWithTraining(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	spec := servingSpec().Normalize()
	key, err := ServingKey(spec, serving.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := serving.Result{Evaluated: 5, Feasible: 1}
	oldServing := NewServingRow(key+"-old", spec, res)
	oldServing.Space = ServingSpaceVersion + 1
	futureKind := NewServingRow(key+"-future", spec, res)
	futureKind.Kind = "holographic"
	writeRawRows(t, path,
		testRow("train", 10),
		NewServingRow(key, spec, res),
		oldServing,
		futureKind,
	)

	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if s := st.Stats(); s.Rows != 2 || s.Loaded != 4 || s.Stale != 2 {
		t.Fatalf("stats = %+v, want train+serving live and old-space+unknown-kind stale", s)
	}
	if _, ok := st.lookup("train"); !ok {
		t.Error("training row lost in a mixed-kind file")
	}
	if v, ok := st.lookupServing(key); !ok || v.Evaluated != 5 {
		t.Errorf("serving row = (%+v, %v), want evaluated 5", v, ok)
	}
	// The two indices do not bleed into each other even on equal keys.
	if _, ok := st.lookup(key); ok {
		t.Error("serving row served from the training index")
	}
}

// TestServingRowWithoutPayloadRejected pins the decode invariant: a
// committed serving row missing its payload is corruption.
func TestServingRowWithoutPayloadRejected(t *testing.T) {
	row := NewServingRow("k", servingSpec().Normalize(), serving.Result{})
	row.Serving = nil
	if _, err := decodeRow(mustMarshal(t, row)); err == nil {
		t.Error("decodeRow accepted a serving row without a serving verdict")
	}
	st, err := Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(row); err == nil {
		t.Error("Append accepted a serving row without a serving verdict")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
