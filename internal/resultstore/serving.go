package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"calculon/internal/serving"
)

const (
	// KindServing marks a row whose payload is a serving-search verdict.
	KindServing = "serving"

	// ServingSpaceVersion identifies the semantics behind a stored serving
	// verdict: the engine enumeration order, the deployment tie-break
	// sequence (Seq), the continuous-batching and disaggregation models,
	// and the cost composition. Bump it whenever any of those change in a
	// result-visible way; rows stamped with an older version become stale
	// and are skipped at load time, never served. It versions the serving
	// space independently of StrategySpaceVersion — a training-model change
	// must not evict serving verdicts, nor the reverse.
	ServingSpaceVersion = 1
)

// ServingVerdict is the stored form of a serving.Result, mirrored
// field-for-field with explicit JSON tags for the same reason Verdict is: a
// serving.Result field added without a schema decision fails to round-trip
// in the warm-lookup equivalence test.
type ServingVerdict struct {
	Evaluated   int                  `json:"evaluated"`
	Feasible    int                  `json:"feasible"`
	PreScreened int                  `json:"pre_screened"`
	Frontier    []serving.Deployment `json:"frontier,omitempty"`
	Best        *serving.Deployment  `json:"best,omitempty"`
}

// newServingVerdict captures a finished serving search's result for storage.
func newServingVerdict(res serving.Result) ServingVerdict {
	return ServingVerdict{
		Evaluated:   res.Evaluated,
		Feasible:    res.Feasible,
		PreScreened: res.PreScreened,
		Frontier:    res.Frontier,
		Best:        res.Best,
	}
}

// result reconstructs the serving.Result a fresh search would have
// returned. The frontier is copied so a caller mutating the returned result
// cannot poison the index, and Best is re-anchored to the copied frontier's
// first point — the same aliasing a fresh search produces.
func (v ServingVerdict) result() serving.Result {
	res := serving.Result{
		Evaluated:   v.Evaluated,
		Feasible:    v.Feasible,
		PreScreened: v.PreScreened,
	}
	if v.Frontier != nil {
		res.Frontier = append([]serving.Deployment(nil), v.Frontier...)
	}
	if v.Best != nil {
		if len(res.Frontier) > 0 && *v.Best == res.Frontier[0] {
			res.Best = &res.Frontier[0]
		} else {
			best := *v.Best
			res.Best = &best
		}
	}
	return res
}

// servingKeyPayload is the exact set of inputs that can reach a serving
// search's result — the normalized spec plus the one Disable* switch that
// changes a diagnostic counter. Scheduling knobs (Workers, Progress,
// callbacks) are proven result-independent by the serving equivalence tests
// and are deliberately absent, for the same sharding reason as keyPayload.
type servingKeyPayload struct {
	Space            int          `json:"serving_space_version"`
	Spec             serving.Spec `json:"spec"`
	DisablePreScreen bool         `json:"disable_pre_screen"`
}

// ServingKey computes the canonical content hash identifying one serving
// search. Callers must pass the spec as the serving engine normalizes it
// (Spec.Normalize applied) so every spelling of the same search maps to one
// key; serving.Search consults its Cache only after that normalization.
func ServingKey(spec serving.Spec, opts serving.Options) (string, error) {
	payload := servingKeyPayload{
		Space:            ServingSpaceVersion,
		Spec:             spec,
		DisablePreScreen: opts.DisablePreScreen,
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("resultstore: serving key encoding: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// NewServingRow stamps a fresh envelope around a finished serving search's
// verdict.
func NewServingRow(key string, spec serving.Spec, res serving.Result) Row {
	v := newServingVerdict(res)
	return Row{
		Schema:      SchemaVersion,
		Space:       ServingSpaceVersion,
		Kind:        KindServing,
		Key:         key,
		CreatedUnix: time.Now().Unix(),
		Model:       spec.Model.Name,
		System:      spec.System.Name,
		Procs:       spec.Space.Procs,
		Serving:     &v,
	}
}

// ServingCache adapts a *Store to serving.Cache. The adapter exists because
// Store already implements search.Cache and the two interfaces collide on
// method names; Store.ServingCache hands out the serving view of the same
// file and index.
type ServingCache struct {
	s *Store
}

var _ serving.Cache = ServingCache{}

// ServingCache returns the store's serving.Cache view, backed by the same
// file, index, and counters as the training view.
func (s *Store) ServingCache() ServingCache { return ServingCache{s: s} }

// Lookup implements serving.Cache: it derives the canonical key and serves
// the stored verdict, reconstructed into the exact Result a fresh search
// would return. A key-derivation failure is reported as a miss.
func (c ServingCache) Lookup(spec serving.Spec, opts serving.Options) (serving.Result, bool) {
	key, err := ServingKey(spec, opts)
	if err != nil {
		return serving.Result{}, false
	}
	v, ok := c.s.lookupServing(key)
	if !ok {
		return serving.Result{}, false
	}
	return v.result(), true
}

// Store implements serving.Cache: it commits a finished serving search's
// verdict under its canonical key. Errors are swallowed by design, exactly
// as on the training path — the cache is an accelerator, and a search that
// computed a correct result must not fail because it could not persist.
func (c ServingCache) Store(spec serving.Spec, opts serving.Options, res serving.Result) {
	key, err := ServingKey(spec, opts)
	if err != nil {
		return
	}
	_ = c.s.Append(NewServingRow(key, spec, res))
}
