package comm

import (
	"math"
	"testing"
	"testing/quick"

	"calculon/internal/system"
	"calculon/internal/units"
)

func flatNet(bw units.BytesPerSec, lat units.Seconds) system.Network {
	return system.Network{Name: "flat", Size: 0, Bandwidth: bw, Latency: lat}
}

func TestRingAllReduceCost(t *testing.T) {
	n := flatNet(100, 0)
	// 2·(g−1)/g · bytes / bw
	got := Time(&n, AllReduce, 4, 400)
	want := units.Seconds(2 * (3.0 / 4.0) * 400 / 100)
	if math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("all-reduce = %v, want %v", got, want)
	}
}

func TestRSPlusAGEqualsAllReduce(t *testing.T) {
	// The RS+AG decomposition must cost the same as a ring all-reduce on a
	// latency-free network — that identity is why the optimization is free
	// on the network and pays off in sharded boundaries.
	n := flatNet(123, 0)
	f := func(rawG, rawB uint16) bool {
		g := int(rawG%31) + 2
		b := units.Bytes(rawB) + 1
		ar := Time(&n, AllReduce, g, b)
		rsag := Time(&n, ReduceScatter, g, b) + Time(&n, AllGather, g, b)
		return math.Abs(float64(ar-rsag)) <= 1e-9*math.Abs(float64(ar))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupOfOneIsFree(t *testing.T) {
	n := flatNet(100, 1e-6)
	for _, op := range []Op{AllReduce, ReduceScatter, AllGather, Broadcast} {
		if got := Time(&n, op, 1, 1e9); got != 0 {
			t.Errorf("%v on group of 1 = %v, want 0", op, got)
		}
	}
	// P2P is between two parties; group size is irrelevant.
	if got := Time(&n, P2P, 1, 100); got <= 0 {
		t.Errorf("p2p must cost time, got %v", got)
	}
}

func TestZeroBytesFree(t *testing.T) {
	n := flatNet(100, 1e-6)
	for _, op := range []Op{AllReduce, ReduceScatter, AllGather, Broadcast, P2P} {
		if got := Time(&n, op, 8, 0); got != 0 {
			t.Errorf("%v of 0 bytes = %v, want 0", op, got)
		}
	}
}

func TestInNetworkCollectivesCheaper(t *testing.T) {
	ring := flatNet(100e9, 1e-6)
	sharp := ring
	sharp.InNetworkCollectives = true
	b := units.Bytes(1e9)
	if !(Time(&sharp, AllReduce, 16, b) < Time(&ring, AllReduce, 16, b)) {
		t.Error("in-network all-reduce must beat the ring")
	}
	// Other ops are unaffected.
	if Time(&sharp, AllGather, 16, b) != Time(&ring, AllGather, 16, b) {
		t.Error("all-gather must not change with in-network collectives")
	}
}

func TestLatencyTermGrowsWithGroup(t *testing.T) {
	n := flatNet(1e12, 1e-6)
	small := Time(&n, AllGather, 2, 1e3)
	big := Time(&n, AllGather, 64, 1e3)
	if !(big > small) {
		t.Errorf("latency term must grow with group size: %v vs %v", small, big)
	}
}

func TestP2PCost(t *testing.T) {
	n := flatNet(100, 2e-6)
	got := Time(&n, P2P, 2, 500)
	want := units.Seconds(5) + 2e-6
	if math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("p2p = %v, want %v", got, want)
	}
}

func TestTimeMonotoneInBytes(t *testing.T) {
	n := system.MustPreset("a100-80g", 64).Networks[0]
	f := func(r1, r2 uint32) bool {
		a := units.Bytes(r1%1e7) + 1
		b := units.Bytes(r2%1e7) + 1
		if a > b {
			a, b = b, a
		}
		for _, op := range []Op{AllReduce, ReduceScatter, AllGather, Broadcast, P2P} {
			if Time(&n, op, 8, a) > Time(&n, op, 8, b)+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVolume(t *testing.T) {
	if got := Volume(AllReduce, 4, 400); got != 600 {
		t.Errorf("all-reduce volume = %v, want 600", got)
	}
	if got := Volume(AllGather, 4, 400); got != 300 {
		t.Errorf("all-gather volume = %v, want 300", got)
	}
	if got := Volume(P2P, 4, 400); got != 400 {
		t.Errorf("p2p volume = %v, want 400", got)
	}
	if got := Volume(Broadcast, 4, 400); got != 400 {
		t.Errorf("broadcast volume = %v, want 400", got)
	}
	if got := Volume(AllReduce, 1, 400); got != 0 {
		t.Errorf("group-of-one volume = %v, want 0", got)
	}
	if got := Volume(AllReduce, 8, 0); got != 0 {
		t.Errorf("zero-byte volume = %v, want 0", got)
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		AllReduce: "all-reduce", ReduceScatter: "reduce-scatter",
		AllGather: "all-gather", Broadcast: "broadcast", P2P: "p2p",
	}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestLatencySteps(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 512: 9}
	for g, want := range cases {
		if got := latencySteps(g); got != want {
			t.Errorf("latencySteps(%d) = %d, want %d", g, got, want)
		}
	}
}

// TestLogLatencyBeatsRingForBigGroups: the latency term of a large-group
// all-gather uses the logarithmic schedule, not (g−1) serialized hops.
func TestLogLatencyBeatsRingForBigGroups(t *testing.T) {
	n := flatNet(1e15, 1e-6) // bandwidth so high only latency matters
	got := Time(&n, AllGather, 512, 1e3)
	ringLat := units.Seconds(511e-6)
	logLat := units.Seconds(9e-6)
	if got > ringLat/10 {
		t.Errorf("all-gather latency %v should be near the log schedule %v, not the ring %v",
			got, logLat, ringLat)
	}
}
