package comm

import (
	"testing"

	"calculon/internal/system"
)

// BenchmarkAllReduce measures one collective pricing — called four times
// per block per evaluation.
func BenchmarkAllReduce(b *testing.B) {
	n := system.A100(64).Networks[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Time(&n, AllReduce, 8, 100e6)
	}
}
