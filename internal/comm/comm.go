// Package comm prices the communication primitives the execution strategies
// use — ring all-reduce, reduce-scatter, all-gather, broadcast, and
// point-to-point transfers — on a network description (§2.2 of the paper).
// Costs combine per-hop latency with size-derated bandwidth; networks with
// in-network collectives (e.g. switch reduction trees) pay a single data
// traversal for all-reduce instead of the ring's two.
package comm

import (
	"calculon/internal/system"
	"calculon/internal/units"
)

// Op is a communication primitive.
type Op int

const (
	// AllReduce combines a tensor across the group, leaving the full result
	// everywhere.
	AllReduce Op = iota
	// ReduceScatter combines a tensor, leaving each member with 1/g of it.
	ReduceScatter
	// AllGather concatenates per-member shards into the full tensor
	// everywhere.
	AllGather
	// Broadcast copies a tensor from one member to all.
	Broadcast
	// P2P sends a tensor to one neighbour (pipeline traffic).
	P2P
)

func (o Op) String() string {
	switch o {
	case AllReduce:
		return "all-reduce"
	case ReduceScatter:
		return "reduce-scatter"
	case AllGather:
		return "all-gather"
	case Broadcast:
		return "broadcast"
	default:
		return "p2p"
	}
}

// Time returns the time for the collective op of the given full-tensor size
// over a group of g processors on network n. A group of 1 (or empty tensors)
// costs nothing. The network is taken by pointer: the search hot path prices
// several collectives per evaluated strategy, and the struct (with its
// embedded efficiency curve) is large enough that per-call copies show up.
func Time(n *system.Network, op Op, g int, tensor units.Bytes) units.Seconds {
	if tensor <= 0 {
		return 0
	}
	if op == P2P {
		return tensor.Div(n.EffectiveBandwidth(tensor)) + n.Latency
	}
	if g <= 1 {
		return 0
	}
	// Ring algorithms move (g−1) chunks of tensor/g per phase; the chunk
	// size keys the bandwidth-efficiency lookup. For the latency term the
	// library is assumed to pick the better of the ring ((g−1) serialized
	// hops) and a recursive-halving/doubling schedule (⌈log₂ g⌉ rounds with
	// the same total bytes), as production collective libraries do.
	chunk := tensor.DivN(float64(g))
	bw := n.EffectiveBandwidth(chunk)
	steps := n.Latency.Times(float64(latencySteps(g)))
	phase := tensor.Times(float64(g - 1)).DivN(float64(g)).Div(bw)
	switch op {
	case ReduceScatter, AllGather:
		return phase + steps
	case Broadcast:
		// Pipelined tree broadcast: one data traversal plus log-ish latency,
		// bounded below by a ring's single phase.
		return tensor.Div(n.EffectiveBandwidth(tensor)) + steps
	default: // AllReduce
		if n.InNetworkCollectives {
			// Switch reduction: data goes up and results come down once.
			return tensor.Div(n.EffectiveBandwidth(tensor)) + 2*n.Latency
		}
		return 2 * (phase + steps)
	}
}

// latencySteps is the serialized-hop count of the latency-optimal
// schedule: min(g−1, ⌈log₂ g⌉).
func latencySteps(g int) int {
	logSteps := 0
	for 1<<logSteps < g {
		logSteps++
	}
	if g-1 < logSteps {
		return g - 1
	}
	return logSteps
}

// Volume returns the bytes this processor injects into the network for the
// op, used for bandwidth-utilization reporting.
func Volume(op Op, g int, tensor units.Bytes) units.Bytes {
	if tensor <= 0 {
		return 0
	}
	if op == P2P {
		return tensor
	}
	if g <= 1 {
		return 0
	}
	frac := float64(g-1) / float64(g)
	switch op {
	case ReduceScatter, AllGather:
		return tensor.Times(frac)
	case Broadcast:
		return tensor
	default:
		return (2 * tensor).Times(frac)
	}
}
