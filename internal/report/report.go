// Package report renders analysis results as text: stacked-bar breakdowns of
// time and memory (the Fig. 3/4/12 charts), t×p grids of best configurations
// (Figs. 5 and 9), scaling curves (Figs. 7, 10, 11), and aligned tables
// (Tables 2–4). Everything writes plain UTF-8 suitable for terminals, logs,
// and golden-file tests.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"calculon/internal/perf"
	"calculon/internal/units"
)

// Segment is one labelled portion of a stacked bar.
type Segment struct {
	Label string
	Value float64
}

// StackedBar renders labelled segments as a proportional text bar of the
// given width, e.g.
//
//	FW pass    ████████░ 5.02s (30%)
func StackedBar(w io.Writer, title, unit string, segs []Segment, width int) {
	total := 0.0
	for _, s := range segs {
		total += s.Value
	}
	fmt.Fprintf(w, "%s: %s%s total\n", title, trim(total), unit)
	if total <= 0 {
		return
	}
	labelW := 0
	for _, s := range segs {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	for _, s := range segs {
		if s.Value <= 0 {
			continue
		}
		frac := s.Value / total
		n := int(frac*float64(width) + 0.5)
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(w, "  %-*s %-*s %s%s (%.1f%%)\n",
			labelW, s.Label, width, strings.Repeat("█", n), trim(s.Value), unit, 100*frac)
	}
}

// TimeSegments decomposes a result into the paper's Fig. 3 time categories.
func TimeSegments(r perf.Result) []Segment {
	return []Segment{
		{"FW pass", float64(r.Time.FwdPass)},
		{"BW pass", float64(r.Time.BwdPass)},
		{"Optim step", float64(r.Time.OptimStep)},
		{"PP bubble", float64(r.Time.PPBubble)},
		{"FW recompute", float64(r.Time.Recompute)},
		{"TP comm", float64(r.Time.TPExposed)},
		{"PP comm", float64(r.Time.PPExposed)},
		{"DP comm", float64(r.Time.DPExposed)},
		{"Offload", float64(r.Time.OffloadExposed)},
	}
}

// MemSegments decomposes a tier into the paper's Fig. 3 memory categories,
// in gigabytes.
func MemSegments(m perf.MemBreakdown) []Segment {
	const gb = float64(units.GB)
	return []Segment{
		{"Weight", float64(m.Weights) / gb},
		{"Activation", float64(m.Activations) / gb},
		{"Weight gradients", float64(m.WeightGrads) / gb},
		{"Activation gradients", float64(m.ActGrads) / gb},
		{"Optimizer space", float64(m.Optimizer) / gb},
	}
}

// Breakdown renders the full Fig. 3-style report for one result: the batch
// time stack and the first-tier memory stack (plus the second tier when in
// use).
func Breakdown(w io.Writer, r perf.Result) {
	fmt.Fprintf(w, "%s on %s, %v\n", r.Model.Name, r.System, r.Strategy)
	fmt.Fprintf(w, "batch time %v | %.1f samples/s | MFU %.2f%%\n",
		r.BatchTime, r.SampleRate, 100*r.MFU)
	StackedBar(w, "Batch time", "s", TimeSegments(r), 40)
	StackedBar(w, "Mem1 (HBM) consumption", "GB", MemSegments(r.Mem1), 40)
	if r.Mem2.Total() > 0 {
		StackedBar(w, "Mem2 (offload) consumption", "GB", MemSegments(r.Mem2), 40)
		fmt.Fprintf(w, "offload bandwidth: required %v, used %v\n",
			r.OffloadBWRequired, r.OffloadBWUsed)
	}
}

// GridCell is one (t,p) entry of a Fig. 5/9-style grid.
type GridCell struct {
	Top    string // e.g. best batch time or sample rate
	Bottom string // e.g. required memory
	OK     bool   // false renders as the paper's "—" (infeasible)
}

// Grid renders a t×p matrix of cells with row/column headers. rows are
// labelled t=…, columns p=… to match the paper's figures.
func Grid(w io.Writer, title string, ts, ps []int, cell func(t, p int) GridCell) {
	fmt.Fprintln(w, title)
	colW := 12
	fmt.Fprintf(w, "%8s", "")
	for _, p := range ps {
		fmt.Fprintf(w, "%*s", colW, fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	for _, t := range ts {
		top := fmt.Sprintf("%8s", fmt.Sprintf("t=%d", t))
		bottom := fmt.Sprintf("%8s", "")
		for _, p := range ps {
			c := cell(t, p)
			if !c.OK {
				top += fmt.Sprintf("%*s", colW, "—")
				bottom += fmt.Sprintf("%*s", colW, "")
				continue
			}
			top += fmt.Sprintf("%*s", colW, c.Top)
			bottom += fmt.Sprintf("%*s", colW, c.Bottom)
		}
		fmt.Fprintln(w, top)
		if strings.TrimSpace(bottom) != "" {
			fmt.Fprintln(w, bottom)
		}
	}
}

// Table renders rows with aligned columns; the first row is the header.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(b.String(), " "))))
		}
	}
}

// ScalingPointView is one x,y of a scaling curve.
type ScalingPointView struct {
	X int
	Y float64 // relative efficiency in [0,1]; <0 marks "does not run"
}

// Scaling renders a Fig. 7/10-style relative-scaling curve as an ASCII
// column chart: one row per size, bar length proportional to efficiency.
func Scaling(w io.Writer, title string, pts []ScalingPointView, width int) {
	fmt.Fprintln(w, title)
	for _, p := range pts {
		if p.Y < 0 {
			fmt.Fprintf(w, "%6d |%s (does not run)\n", p.X, "")
			continue
		}
		n := int(p.Y*float64(width) + 0.5)
		fmt.Fprintf(w, "%6d |%-*s %.3f\n", p.X, width, strings.Repeat("▇", n), p.Y)
	}
}

// HistogramChart renders bin counts as proportional bars (Fig. 6a).
func HistogramChart(w io.Writer, title string, min, max float64, counts []int, width int) {
	fmt.Fprintln(w, title)
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	span := (max - min) / float64(len(counts))
	for i, c := range counts {
		lo := min + float64(i)*span
		n := int(float64(c) / float64(peak) * float64(width))
		fmt.Fprintf(w, "  [%8.1f,%8.1f) %-*s %d\n", lo, lo+span, width, strings.Repeat("█", n), c)
	}
}

// SortedSegments returns the segments in descending value order, for
// reporting the dominant costs first.
func SortedSegments(segs []Segment) []Segment {
	out := append([]Segment(nil), segs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

func trim(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// WriteCSV emits rows as RFC-4180 CSV; the first row is the header. It is
// the machine-readable sibling of Table for feeding sweeps into external
// plotting tools.
func WriteCSV(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
