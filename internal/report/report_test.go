package report

import (
	"strings"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
)

func sampleResult(t *testing.T) perf.Result {
	t.Helper()
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	st := execution.Strategy{TP: 8, PP: 8, DP: 1, Microbatch: 1, Interleave: 1,
		OneFOneB: true, Recompute: execution.RecomputeFull}
	r, err := perf.Run(m, system.A100(64), st)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStackedBarProportions(t *testing.T) {
	var b strings.Builder
	StackedBar(&b, "Batch time", "s", []Segment{
		{"FW", 3}, {"BW", 6}, {"zero", 0},
	}, 30)
	out := b.String()
	if !strings.Contains(out, "Batch time: 9s total") {
		t.Errorf("missing total: %q", out)
	}
	if !strings.Contains(out, "(33.3%)") || !strings.Contains(out, "(66.7%)") {
		t.Errorf("missing percentages: %q", out)
	}
	if strings.Contains(out, "zero") {
		t.Errorf("zero segments must be skipped: %q", out)
	}
}

func TestStackedBarEmpty(t *testing.T) {
	var b strings.Builder
	StackedBar(&b, "x", "s", nil, 10)
	if !strings.Contains(b.String(), "x: 0s total") {
		t.Errorf("empty bar output: %q", b.String())
	}
}

func TestBreakdownMentionsEverything(t *testing.T) {
	var b strings.Builder
	Breakdown(&b, sampleResult(t))
	out := b.String()
	for _, frag := range []string{
		"gpt3-175B", "batch time", "MFU",
		"FW pass", "BW pass", "FW recompute", "PP bubble",
		"Weight", "Activation", "Optimizer space",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("breakdown missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "Mem2") {
		t.Errorf("no mem2 section expected without offload:\n%s", out)
	}
}

func TestTimeSegmentsCoverBatchTime(t *testing.T) {
	r := sampleResult(t)
	sum := 0.0
	for _, s := range TimeSegments(r) {
		sum += s.Value
	}
	if diff := sum - float64(r.BatchTime); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("segments sum %f != batch %f", sum, float64(r.BatchTime))
	}
}

func TestGridRendersInfeasibleDash(t *testing.T) {
	var b strings.Builder
	Grid(&b, "demo", []int{1, 2}, []int{1, 2}, func(tt, pp int) GridCell {
		if tt == 2 && pp == 2 {
			return GridCell{}
		}
		return GridCell{Top: "1.0", Bottom: "2G", OK: true}
	})
	out := b.String()
	if !strings.Contains(out, "—") {
		t.Errorf("missing infeasible dash:\n%s", out)
	}
	if !strings.Contains(out, "t=1") || !strings.Contains(out, "p=2") {
		t.Errorf("missing headers:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, [][]string{
		{"name", "value"},
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	Table(&b, nil) // must not panic
}

func TestScalingChart(t *testing.T) {
	var b strings.Builder
	Scaling(&b, "scaling", []ScalingPointView{
		{X: 8, Y: 1.0}, {X: 16, Y: 0.5}, {X: 24, Y: -1},
	}, 10)
	out := b.String()
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.500") {
		t.Errorf("missing values:\n%s", out)
	}
	if !strings.Contains(out, "does not run") {
		t.Errorf("missing does-not-run marker:\n%s", out)
	}
}

func TestHistogramChart(t *testing.T) {
	var b strings.Builder
	HistogramChart(&b, "rates", 0, 10, []int{1, 0, 3}, 12)
	out := b.String()
	if !strings.Contains(out, "rates") || !strings.Contains(out, " 3") {
		t.Errorf("histogram output:\n%s", out)
	}
	var e strings.Builder
	HistogramChart(&e, "empty", 0, 0, []int{0}, 10)
	if !strings.Contains(e.String(), "(empty)") {
		t.Errorf("empty marker missing: %q", e.String())
	}
}

func TestSortedSegments(t *testing.T) {
	in := []Segment{{"a", 1}, {"b", 3}, {"c", 2}}
	out := SortedSegments(in)
	if out[0].Label != "b" || out[2].Label != "a" {
		t.Errorf("not sorted: %+v", out)
	}
	if in[0].Label != "a" {
		t.Error("input mutated")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, [][]string{
		{"gpus", "rate"},
		{"8", "1.5"},
		{"16", "2,5"}, // comma needs quoting
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "gpus,rate\n8,1.5\n16,\"2,5\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
