package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestKnownParameterCounts pins the derived parameter counts of the paper's
// four validation models to their marketing sizes. The transformer-block
// arithmetic (12h² + biases per block) must land within 2% of the nominal
// count, which is the accepted convention in the Megatron papers.
func TestKnownParameterCounts(t *testing.T) {
	cases := []struct {
		preset string
		want   float64
	}{
		{"megatron-22B", 22e9},
		{"gpt3-175B", 175e9},
		{"turing-530B", 530e9},
		{"megatron-1T", 1.008e12},
	}
	for _, c := range cases {
		m := MustPreset(c.preset)
		got := float64(m.Params())
		if rel := math.Abs(got-c.want) / c.want; rel > 0.02 {
			t.Errorf("%s: params = %.3g, want within 2%% of %.3g (rel %.3f)", c.preset, got, c.want, rel)
		}
	}
}

func TestBlockParamsDominatedByGEMMs(t *testing.T) {
	m := MustPreset("gpt3-175B")
	h := int64(m.Hidden)
	gemms := 12 * h * h
	bp := m.BlockParams()
	if bp < gemms {
		t.Fatalf("block params %d smaller than GEMM weights %d", bp, gemms)
	}
	if float64(bp-gemms)/float64(gemms) > 0.01 {
		t.Fatalf("non-GEMM params should be <1%% of a block, got %d vs %d", bp, gemms)
	}
}

func TestFFDefaultsTo4h(t *testing.T) {
	m := LLM{Hidden: 1024}
	if m.FF() != 4096 {
		t.Errorf("FF() = %d, want 4096", m.FF())
	}
	m.FeedForward = 2730
	if m.FF() != 2730 {
		t.Errorf("FF() override = %d, want 2730", m.FF())
	}
}

func TestLLaMaUsesCustomFF(t *testing.T) {
	m := MustPreset("llama-65B")
	if m.FF() != 33024 {
		t.Fatalf("llama FF = %d", m.FF())
	}
	got := float64(m.Params())
	if rel := math.Abs(got-65e9) / 65e9; rel > 0.05 {
		t.Errorf("llama-65B params = %.3g, want ~65e9 (rel %.3f)", got, rel)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	good := MustPreset("gpt3-175B")
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	mutations := []func(*LLM){
		func(m *LLM) { m.Hidden = 0 },
		func(m *LLM) { m.Hidden = -5 },
		func(m *LLM) { m.AttnHeads = 0 },
		func(m *LLM) { m.AttnHeads = 7 }, // 12288 % 7 != 0
		func(m *LLM) { m.Seq = 0 },
		func(m *LLM) { m.Blocks = 0 },
		func(m *LLM) { m.Batch = 0 },
		func(m *LLM) { m.FeedForward = -1 },
		func(m *LLM) { m.VocabSize = -1 },
	}
	for i, mut := range mutations {
		m := good
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestAllPresetsValid(t *testing.T) {
	for _, name := range PresetNames() {
		m := MustPreset(name)
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("preset %s has mismatched Name %q", name, m.Name)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestTrainFLOPsMatchesSixND(t *testing.T) {
	// The classic estimate is 6·params·tokens per sample for fwd+bwd; our
	// per-layer accounting should agree within 10% for a big dense model
	// (attention-matrix FLOPs push it slightly above 6·N·T).
	m := MustPreset("megatron-1T")
	classic := 6 * float64(m.Params()) * float64(m.Seq)
	got := float64(m.TrainFLOPsPerSample())
	if rel := math.Abs(got-classic) / classic; rel > 0.10 {
		t.Errorf("train FLOPs %.3g vs classic %.3g (rel %.3f)", got, classic, rel)
	}
	if got < classic*0.95 {
		t.Errorf("per-layer FLOPs %.3g should not undercut 6NT %.3g noticeably", got, classic)
	}
}

func TestFLOPsScaleLinearlyInBlocks(t *testing.T) {
	f := func(rawBlocks uint8) bool {
		blocks := int(rawBlocks%32) + 1
		m := MustPreset("gpt3-13B")
		m.Blocks = blocks
		per := float64(m.FwdFLOPsPerToken()) / float64(blocks)
		m2 := m
		m2.Blocks = 2 * blocks
		return math.Abs(float64(m2.FwdFLOPsPerToken())-2*float64(blocks)*per) < 1e-3*per
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHumanParams(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{175e9, "175B"},
		{1008e9, "1T"},
		{22e9, "22B"},
		{1_500_000_000, "1.5B"},
		{345_000_000, "345M"},
		{999, "999"},
	}
	for _, c := range cases {
		if got := HumanParams(c.in); got != c.want {
			t.Errorf("HumanParams(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStringIncludesNameAndParams(t *testing.T) {
	s := MustPreset("gpt3-175B").String()
	for _, frag := range []string{"gpt3-175B", "h=12288", "175B"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestWithBatchAndName(t *testing.T) {
	m := MustPreset("megatron-1T").WithBatch(4096).WithName("mt-1T-b4096")
	if m.Batch != 4096 || m.Name != "mt-1T-b4096" {
		t.Fatalf("WithBatch/WithName failed: %+v", m)
	}
	if MustPreset("megatron-1T").Batch == 4096 {
		t.Fatal("WithBatch must not mutate the preset")
	}
}

func TestPaLMParameterCount(t *testing.T) {
	m := MustPreset("palm-540B")
	got := float64(m.Params())
	if rel := math.Abs(got-540e9) / 540e9; rel > 0.03 {
		t.Errorf("palm-540B params = %.4g, want ~540e9 (rel %.3f)", got, rel)
	}
}

func TestGPT367BParameterCount(t *testing.T) {
	m := MustPreset("gpt3-6.7B")
	got := float64(m.Params())
	if rel := math.Abs(got-6.7e9) / 6.7e9; rel > 0.05 {
		t.Errorf("gpt3-6.7B params = %.4g, want ~6.7e9 (rel %.3f)", got, rel)
	}
}
