// Package model describes the application side of a Calculon analysis: the
// structure of a transformer-based LLM in the Megatron framing of §2.1 of
// the paper. A model is defined by its hidden size, attention-head count,
// sequence length, number of transformer blocks, and the global training
// batch size. Everything else (parameter counts, FLOPs per token, layer
// shapes) derives from these.
package model

import (
	"fmt"

	"calculon/internal/units"
)

// LLM is the application specification given to the performance model.
type LLM struct {
	// Name identifies the configuration in reports, e.g. "gpt3-175B".
	Name string `json:"name"`
	// Hidden is the embedding / hidden dimension h.
	Hidden int `json:"hidden"`
	// FeedForward is the MLP inner dimension; 0 means the conventional 4·h.
	FeedForward int `json:"feedforward,omitempty"`
	// AttnHeads is the number of attention heads a; Hidden must divide by it.
	AttnHeads int `json:"attn_heads"`
	// Seq is the training sequence length s.
	Seq int `json:"seq"`
	// Blocks is the number of transformer blocks L.
	Blocks int `json:"blocks"`
	// Batch is the global (mini-)batch size in samples.
	Batch int `json:"batch"`
	// VocabSize is used only for the optional embedding/unembedding layers
	// and the classic parameter-count cross-check; 0 disables them.
	VocabSize int `json:"vocab,omitempty"`
}

// FF returns the MLP inner dimension, defaulting to 4·Hidden.
func (m LLM) FF() int {
	if m.FeedForward > 0 {
		return m.FeedForward
	}
	return 4 * m.Hidden
}

// HeadSize returns Hidden / AttnHeads.
func (m LLM) HeadSize() int { return m.Hidden / m.AttnHeads }

// Validate checks the structural constraints on the LLM definition.
func (m LLM) Validate() error {
	switch {
	case m.Hidden <= 0:
		return fmt.Errorf("model %s: hidden must be positive, got %d", m.Name, m.Hidden)
	case m.AttnHeads <= 0:
		return fmt.Errorf("model %s: attn_heads must be positive, got %d", m.Name, m.AttnHeads)
	case m.Hidden%m.AttnHeads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by attn_heads %d", m.Name, m.Hidden, m.AttnHeads)
	case m.Seq <= 0:
		return fmt.Errorf("model %s: seq must be positive, got %d", m.Name, m.Seq)
	case m.Blocks <= 0:
		return fmt.Errorf("model %s: blocks must be positive, got %d", m.Name, m.Blocks)
	case m.Batch <= 0:
		return fmt.Errorf("model %s: batch must be positive, got %d", m.Name, m.Batch)
	case m.FeedForward < 0:
		return fmt.Errorf("model %s: feedforward must be non-negative, got %d", m.Name, m.FeedForward)
	case m.VocabSize < 0:
		return fmt.Errorf("model %s: vocab must be non-negative, got %d", m.Name, m.VocabSize)
	}
	return nil
}

// BlockParams returns the number of weight parameters in one transformer
// block: QKV projection (3h²+3h), attention output projection (h²+h), the
// two MLP matrices (h·ff+ff and ff·h+h), and the two LayerNorms (2h each).
func (m LLM) BlockParams() int64 {
	h, ff := int64(m.Hidden), int64(m.FF())
	attn := 3*h*h + 3*h + h*h + h
	mlp := h*ff + ff + ff*h + h
	norms := int64(4 * m.Hidden)
	return attn + mlp + norms
}

// Params returns the total parameter count: all blocks plus (when VocabSize
// is set) the token embedding and final LayerNorm. The unembedding shares
// the embedding matrix as in GPT-2/3.
func (m LLM) Params() int64 {
	p := m.BlockParams() * int64(m.Blocks)
	if m.VocabSize > 0 {
		p += int64(m.VocabSize)*int64(m.Hidden) + int64(m.Seq)*int64(m.Hidden) + 2*int64(m.Hidden)
	}
	return p
}

// FwdFLOPsPerToken estimates the forward-pass FLOPs for one token of one
// sample across all blocks: 2 FLOPs per multiply-accumulate in the GEMMs
// (≈ 2·params for the dense part) plus the 2·2·s·h attention-matrix terms.
func (m LLM) FwdFLOPsPerToken() units.FLOPs {
	h, s, ff := float64(m.Hidden), float64(m.Seq), float64(m.FF())
	dense := 2 * (4*h*h + 2*h*ff) // QKV+proj, MLP up+down
	attnMat := 4 * s * h          // QKᵀ and AV, 2·s·h each
	return units.FLOPs(float64(m.Blocks) * (dense + attnMat))
}

// TrainFLOPsPerSample estimates forward+backward FLOPs for one sample
// (sequence) without recompute: backward costs 2× forward.
func (m LLM) TrainFLOPsPerSample() units.FLOPs {
	return 3 * units.FLOPs(float64(m.Seq)) * m.FwdFLOPsPerToken()
}

func (m LLM) String() string {
	return fmt.Sprintf("%s{h=%d a=%d s=%d L=%d batch=%d params=%s}",
		m.Name, m.Hidden, m.AttnHeads, m.Seq, m.Blocks, m.Batch, HumanParams(m.Params()))
}

// HumanParams formats a parameter count the way the literature does,
// e.g. 174_591_000_000 → "175B".
func HumanParams(p int64) string {
	f := float64(p)
	switch {
	case f >= 999.5e9:
		return trim(f/1e12) + "T"
	case f >= 999.5e6:
		return trim(f/1e9) + "B"
	case f >= 999.5e3:
		return trim(f/1e6) + "M"
	default:
		return fmt.Sprintf("%d", p)
	}
}

func trim(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	if len(s) > 2 && s[len(s)-2:] == ".0" {
		s = s[:len(s)-2]
	}
	return s
}
