package model

import (
	"fmt"
	"sort"
)

// Preset returns one of the named LLM configurations used in the paper's
// studies (plus a few extra popular models for the example programs).
// The Megatron validation models (22B/175B/530B/1T) use the shapes from
// Megatron-LM / "Reducing Activation Recomputation" that the paper's
// Table 2 measurements were taken with.
func Preset(name string) (LLM, error) {
	m, ok := presets[name]
	if !ok {
		return LLM{}, fmt.Errorf("model: unknown preset %q (have %v)", name, PresetNames())
	}
	return m, nil
}

// MustPreset is Preset for static names in examples and tests.
func MustPreset(name string) LLM {
	m, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return m
}

// PresetNames lists the available presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]LLM{
	// Validation set of Table 2 (Selene runs). Batch sizes follow the
	// measured Megatron configurations: 22B trained with global batch 4 on
	// 8 GPUs, the others with one sample per GPU of the measured system.
	"megatron-22B": {
		Name: "megatron-22B", Hidden: 6144, AttnHeads: 64, Seq: 2048,
		Blocks: 48, Batch: 4, VocabSize: 51200,
	},
	"gpt3-175B": {
		Name: "gpt3-175B", Hidden: 12288, AttnHeads: 96, Seq: 2048,
		Blocks: 96, Batch: 64, VocabSize: 51200,
	},
	"turing-530B": {
		Name: "turing-530B", Hidden: 20480, AttnHeads: 128, Seq: 2048,
		Blocks: 105, Batch: 280, VocabSize: 51200,
	},
	"megatron-1T": {
		Name: "megatron-1T", Hidden: 25600, AttnHeads: 160, Seq: 2048,
		Blocks: 128, Batch: 512, VocabSize: 51200,
	},

	// PaLM-540B, the paper's other §1 motivating example (2,572 zettaFLOP,
	// >8M TPU-hours). Its gated MLP and multi-query attention are folded
	// into the conventional block shape at matched parameter count.
	"palm-540B": {
		Name: "palm-540B", Hidden: 18432, AttnHeads: 48, Seq: 2048,
		Blocks: 118, FeedForward: 86016, Batch: 2048, VocabSize: 262144,
	},

	// Additional models for the example programs and broader studies.
	"gpt3-6.7B": {
		Name: "gpt3-6.7B", Hidden: 4096, AttnHeads: 32, Seq: 2048,
		Blocks: 32, Batch: 1024, VocabSize: 51200,
	},
	"gpt2-1.5B": {
		Name: "gpt2-1.5B", Hidden: 1600, AttnHeads: 25, Seq: 1024,
		Blocks: 48, Batch: 512, VocabSize: 50257,
	},
	"gpt3-13B": {
		Name: "gpt3-13B", Hidden: 5120, AttnHeads: 40, Seq: 2048,
		Blocks: 40, Batch: 1024, VocabSize: 51200,
	},
	"chinchilla-70B": {
		Name: "chinchilla-70B", Hidden: 8192, AttnHeads: 64, Seq: 2048,
		Blocks: 80, Batch: 1536, VocabSize: 32000,
	},
	// LLaMa's gated MLP has three ff×h matrices of ff=22016; our block uses
	// the conventional two, so the preset carries the parameter-equivalent
	// 1.5·22016 = 33024 to keep FLOP and memory footprints faithful.
	"llama-65B": {
		Name: "llama-65B", Hidden: 8192, AttnHeads: 64, Seq: 2048,
		Blocks: 80, FeedForward: 33024, Batch: 2048, VocabSize: 32000,
	},
}

// WithBatch returns a copy of m with the global batch replaced; the studies
// frequently re-batch a preset (e.g. Megatron-1T with batch 4096 in §4.1).
func (m LLM) WithBatch(batch int) LLM {
	m.Batch = batch
	return m
}

// WithName returns a copy of m renamed, for derived configurations.
func (m LLM) WithName(name string) LLM {
	m.Name = name
	return m
}
