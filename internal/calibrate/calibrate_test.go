package calibrate

import (
	"testing"
)

// TestShippedCurvesNearOptimum is the calibration claim itself: the curves
// shipped in internal/system sit at (or within a few percent of) the error
// minimum over a wide range of scale factors.
func TestShippedCurvesNearOptimum(t *testing.T) {
	fit, err := Fit(0.7, 1.3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if fit.UnitError > 0.06 {
		t.Errorf("shipped-curve error %.3f exceeds 6%%", fit.UnitError)
	}
	if fit.UnitError > fit.BestError+0.02 {
		t.Errorf("shipped curves (err %.3f) are more than 2 points off the fitted optimum (%.3f at %.3f×)",
			fit.UnitError, fit.BestError, fit.BestFactor)
	}
	if fit.BestFactor < 0.9 || fit.BestFactor > 1.1 {
		t.Errorf("fitted factor %.3f should be near 1.0 — the shipped curves are the calibration", fit.BestFactor)
	}
}

// TestErrorGrowsAwayFromOptimum: mis-scaled curves validate worse in both
// directions.
func TestErrorGrowsAwayFromOptimum(t *testing.T) {
	unit, err := Error(1.0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Error(0.75)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Error(1.25)
	if err != nil {
		t.Fatal(err)
	}
	if !(slow > unit && fast > unit) {
		t.Errorf("error should grow away from 1.0: 0.75×→%.3f, 1.0×→%.3f, 1.25×→%.3f", slow, unit, fast)
	}
}

func TestScaledSystemClampsAtPeak(t *testing.T) {
	s := ScaledSystem(8, 100)
	for _, p := range s.Compute.MatrixEff {
		if p.Eff > 1 {
			t.Fatalf("efficiency above peak: %+v", p)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitAndErrorValidation(t *testing.T) {
	if _, err := Error(0); err == nil {
		t.Error("zero factor must fail")
	}
	if _, err := Fit(1, 1, 5); err == nil {
		t.Error("empty range must fail")
	}
	if _, err := Fit(0.5, 1.5, 1); err == nil {
		t.Error("single step must fail")
	}
	fit, err := Fit(0.9, 1.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.Sweep) != 3 {
		t.Errorf("sweep has %d points, want 3", len(fit.Sweep))
	}
}
