// Package calibrate makes the model's one semi-empirical input
// reproducible. The original tool relies on unpublished vendor
// GEMM-efficiency measurements; this reproduction ships piecewise-linear
// efficiency curves (internal/system) calibrated against the paper's
// published Table 2 measurements. This package re-derives that calibration:
// it scales the matrix-efficiency curve by a single factor and fits the
// factor that minimizes the average validation error, demonstrating that
// the shipped curves sit at (or very near) the optimum.
package calibrate

import (
	"fmt"
	"math"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
)

// anchor is one published Selene measurement from Table 2 of the paper.
type anchor struct {
	preset   string
	gpus, pp int
	seqSel   bool
	seconds  float64
}

// anchors are the eight measured points of Table 2.
var anchors = []anchor{
	{"megatron-22B", 8, 1, false, 1.42},
	{"gpt3-175B", 64, 8, false, 18.13},
	{"turing-530B", 280, 35, false, 49.05},
	{"megatron-1T", 512, 64, false, 94.42},
	{"megatron-22B", 8, 1, true, 1.10},
	{"gpt3-175B", 64, 8, true, 13.75},
	{"turing-530B", 280, 35, true, 37.83},
	{"megatron-1T", 512, 64, true, 71.49},
}

// ScaledSystem returns the A100 system with its matrix-efficiency curve
// multiplied by the factor (clamped to 1.0 — nothing exceeds peak).
func ScaledSystem(procs int, factor float64) system.System {
	s := system.A100(procs)
	curve := make(system.EfficiencyCurve, len(s.Compute.MatrixEff))
	for i, p := range s.Compute.MatrixEff {
		p.Eff = math.Min(1, p.Eff*factor)
		curve[i] = p
	}
	s.Compute.MatrixEff = curve
	return s
}

// Error returns the mean absolute relative error across the Table 2
// anchors when the matrix-efficiency curve is scaled by the factor.
func Error(factor float64) (float64, error) {
	if factor <= 0 {
		return 0, fmt.Errorf("calibrate: factor must be positive, got %g", factor)
	}
	var sum float64
	for _, a := range anchors {
		m := model.MustPreset(a.preset)
		st := execution.Strategy{
			TP: 8, PP: a.pp, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: execution.RecomputeFull,
		}
		if a.seqSel {
			st.Recompute = execution.RecomputeAttn
			st.TPRSAG, st.SeqParallel = true, true
		}
		res, err := perf.Run(m, ScaledSystem(a.gpus, factor), st)
		if err != nil {
			return 0, fmt.Errorf("calibrate: %s: %w", a.preset, err)
		}
		sum += math.Abs(float64(res.BatchTime)-a.seconds) / a.seconds
	}
	return sum / float64(len(anchors)), nil
}

// FitResult is the outcome of a calibration sweep.
type FitResult struct {
	// BestFactor is the curve scale minimizing the average error.
	BestFactor float64
	// BestError is the error at that factor.
	BestError float64
	// UnitError is the error of the shipped curves (factor 1.0).
	UnitError float64
	// Sweep holds every (factor, error) point evaluated.
	Sweep []SweepPoint
}

// SweepPoint is one evaluated calibration factor.
type SweepPoint struct {
	Factor float64
	Error  float64
}

// Fit sweeps scale factors over [lo, hi] in the given number of steps and
// returns the best one alongside the shipped curves' error.
func Fit(lo, hi float64, steps int) (FitResult, error) {
	if !(lo > 0 && hi > lo) || steps < 2 {
		return FitResult{}, fmt.Errorf("calibrate: bad sweep [%g,%g]×%d", lo, hi, steps)
	}
	var out FitResult
	out.BestError = math.Inf(1)
	for i := 0; i < steps; i++ {
		f := lo + (hi-lo)*float64(i)/float64(steps-1)
		e, err := Error(f)
		if err != nil {
			return out, err
		}
		out.Sweep = append(out.Sweep, SweepPoint{Factor: f, Error: e})
		if e < out.BestError {
			out.BestFactor, out.BestError = f, e
		}
	}
	unit, err := Error(1)
	if err != nil {
		return out, err
	}
	out.UnitError = unit
	return out, nil
}
