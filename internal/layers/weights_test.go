package layers

import (
	"testing"

	"calculon/internal/model"
)

// TestBlockWeightBytesMatchesGraph pins the closed form used by the
// execution pre-screen to the layer graph it summarizes: for every preset
// and tensor-parallel degree, and regardless of the shard flags that must
// not matter, BlockWeightBytes equals Sum(Block(...)).WeightBytes bit for
// bit. If the layer graph ever gains or loses a weight-bearing layer, this
// fails and the closed form must be updated in the same change.
func TestBlockWeightBytesMatchesGraph(t *testing.T) {
	for _, name := range model.PresetNames() {
		m := model.MustPreset(name)
		for _, tp := range []int{1, 2, 4, 5, 8, 16, m.AttnHeads} {
			if tp > m.AttnHeads {
				continue
			}
			want := Sum(Block(m, Shard{TP: tp, Microbatch: 1})).WeightBytes
			if got := BlockWeightBytes(m, tp); got != want {
				t.Errorf("%s tp=%d: closed form %v != graph sum %v", name, tp, got, want)
			}
			// Weight bytes must be invariant under everything but TP — the
			// property the pre-screen and the memo key both lean on.
			for _, sh := range []Shard{
				{TP: tp, Microbatch: 4},
				{TP: tp, Microbatch: 1, SeqParallel: true},
				{TP: tp, Microbatch: 1, SeqParallel: true, TPRedo: true},
				{TP: tp, Microbatch: 1, Fused: true},
				{TP: tp, Microbatch: 1, Inference: true},
			} {
				if got := Sum(Block(m, sh)).WeightBytes; got != want {
					t.Errorf("%s %+v: weight bytes %v vary with non-TP shard fields (want %v)",
						name, sh, got, want)
				}
			}
		}
	}
}
