package layers

import (
	"calculon/internal/model"
	"calculon/internal/units"
)

// BlockWeightBytes returns one transformer block's per-processor parameter
// storage under tensor parallelism, in closed form — the same value, bit for
// bit, as Sum(Block(m, Shard{TP: tp})).WeightBytes, but without building the
// layer graph. Weight storage depends only on the tensor-parallel degree:
// sequence parallelism, recompute, fusion, microbatch size, and inference
// mode all leave it unchanged.
//
// The execution pre-screen uses this to bound weight/gradient/optimizer
// memory analytically during enumeration, before any layer-level evaluation
// exists; TestBlockWeightBytesMatchesGraph pins the equality against the
// graph sum so the two can never drift apart. The equality must hold on
// every architecture, so the arithmetic is kept FMA-free (see docs/LINT.md).
//
//calculonvet:ordered
func BlockWeightBytes(m model.LLM, tp int) units.Bytes {
	if tp < 1 {
		tp = 1
	}
	h := float64(m.Hidden)
	hl := float64(ceilDiv(m.AttnHeads, tp)) * float64(m.HeadSize())
	ffl := float64(ceilDiv(m.FF(), tp))
	ln := 2 * units.Bytes(h) * dtype
	gemm := func(k, n float64) units.Bytes { return units.Bytes(float64(k*n)+n) * dtype }
	// Accumulated in the execution order of the weight-bearing layers of
	// Block: attn_ln, attn_qkv, attn_proj, mlp_ln, mlp_fc1, mlp_fc2.
	return ln + gemm(h, 3*hl) + gemm(hl, h) + ln + gemm(h, ffl) + gemm(ffl, h)
}
