package layers

import "calculon/internal/units"

// Totals aggregates a block's layer graph into the quantities the
// performance model and memory accountant consume.
type Totals struct {
	// Forward and backward FLOPs split by engine.
	FwdMatrixFLOPs units.FLOPs
	FwdVectorFLOPs units.FLOPs
	BwdMatrixFLOPs units.FLOPs
	BwdVectorFLOPs units.FLOPs

	// Forward and backward memory traffic.
	FwdTraffic units.Bytes
	BwdTraffic units.Bytes

	// WeightBytes is the per-processor parameter storage of one block.
	WeightBytes units.Bytes
	// ActBytes is the per-microbatch stored-activation footprint of one
	// block with no recomputation.
	ActBytes units.Bytes
	// SqActBytes is the attention-matrix (s²) portion of ActBytes.
	SqActBytes units.Bytes
	// MaxOutputBytes is the largest single activation tensor, used to size
	// gradient working space.
	MaxOutputBytes units.Bytes
}

// Sum aggregates the layer graph in slice order; every downstream
// equivalence suite pins these totals bit for bit, so the fold is kept
// FMA-free and order-stable.
//
//calculonvet:ordered
func Sum(ls []Layer) Totals {
	var t Totals
	for _, l := range ls {
		switch l.Engine {
		case Matrix:
			t.FwdMatrixFLOPs += l.FLOPs
			t.BwdMatrixFLOPs += l.BwdFLOPs
		default:
			t.FwdVectorFLOPs += l.FLOPs
			t.BwdVectorFLOPs += l.BwdFLOPs
		}
		t.FwdTraffic += l.Traffic
		t.BwdTraffic += l.BwdTraffic
		t.WeightBytes += l.WeightBytes
		t.ActBytes += l.ActBytes
		t.SqActBytes += l.SqActBytes
		if l.OutputBytes > t.MaxOutputBytes {
			t.MaxOutputBytes = l.OutputBytes
		}
	}
	return t
}

// Params returns the per-processor parameter count of the block.
func (t Totals) Params() float64 { return t.WeightBytes.Ratio(dtype) }
