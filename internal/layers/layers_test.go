package layers

import (
	"math"
	"testing"
	"testing/quick"

	"calculon/internal/model"
	"calculon/internal/units"
)

func gpt3() model.LLM { return model.MustPreset("gpt3-175B") }

// TestActivationClosedFormNoParallelism pins the per-layer accounting to the
// published closed form: with fp16 and t=1 a block stores exactly
// 34·s·b·h + 5·a·s²·b bytes of activations.
func TestActivationClosedFormNoParallelism(t *testing.T) {
	m := gpt3()
	for _, b := range []int{1, 2, 4} {
		tot := Sum(Block(m, Shard{TP: 1, Microbatch: b}))
		s, h, a := float64(m.Seq), float64(m.Hidden), float64(m.AttnHeads)
		want := 34*s*float64(b)*h + 5*a*s*s*float64(b)
		if got := float64(tot.ActBytes); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("b=%d: act bytes = %g, want 34sbh+5as²b = %g", b, got, want)
		}
		wantSq := 5 * a * s * s * float64(b)
		if got := float64(tot.SqActBytes); math.Abs(got-wantSq)/wantSq > 1e-9 {
			t.Errorf("b=%d: sq act bytes = %g, want 5as²b = %g", b, got, wantSq)
		}
	}
}

// TestActivationClosedFormTP pins the tensor-parallel form:
// sbh(10 + 24/t) + 5as²b/t — ten sbh replicated on the residual path.
func TestActivationClosedFormTP(t *testing.T) {
	m := gpt3()
	s, h, a := float64(m.Seq), float64(m.Hidden), float64(m.AttnHeads)
	for _, tp := range []int{2, 4, 8} {
		tot := Sum(Block(m, Shard{TP: tp, Microbatch: 1}))
		ft := float64(tp)
		want := s*h*(10+24/ft) + 5*a*s*s/ft
		if got := float64(tot.ActBytes); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("t=%d: act bytes = %g, want %g", tp, got, want)
		}
	}
}

// TestActivationClosedFormSeqParallel pins the fully sharded form:
// (34sbh + 5as²b)/t when sequence parallelism and TP-redo are both on.
func TestActivationClosedFormSeqParallel(t *testing.T) {
	m := gpt3()
	s, h, a := float64(m.Seq), float64(m.Hidden), float64(m.AttnHeads)
	for _, tp := range []int{2, 4, 8} {
		tot := Sum(Block(m, Shard{TP: tp, Microbatch: 1, SeqParallel: true, TPRedo: true}))
		want := (34*s*h + 5*a*s*s) / float64(tp)
		if got := float64(tot.ActBytes); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("t=%d: act bytes = %g, want (34sbh+5as²b)/t = %g", tp, got, want)
		}
	}
}

// TestSeqParallelWithoutRedoKeepsGatheredInputs verifies that without the
// TP-redo optimization the two GEMM inputs stay full-sequence:
// sbh(4 + 6/t + 24/t') where the 4sbh are the gathered QKV/fc1 inputs.
func TestSeqParallelWithoutRedo(t *testing.T) {
	m := gpt3()
	s, h, a := float64(m.Seq), float64(m.Hidden), float64(m.AttnHeads)
	tp := 8.0
	tot := Sum(Block(m, Shard{TP: 8, Microbatch: 1, SeqParallel: true}))
	// full form: everything /t except the two stored GEMM inputs (2sbh each)
	want := (34*s*h+5*a*s*s)/tp + 2*(2*s*h)*(1-1/tp)
	if got := float64(tot.ActBytes); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("act bytes = %g, want %g", got, want)
	}
}

func TestBlockWeightsMatchModel(t *testing.T) {
	for _, name := range []string{"gpt3-175B", "megatron-1T", "llama-65B"} {
		m := model.MustPreset(name)
		tot := Sum(Block(m, Shard{TP: 1, Microbatch: 1}))
		want := float64(m.BlockParams())
		if got := tot.Params(); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%s: block params = %g, want %g", name, got, want)
		}
	}
}

func TestWeightsShardByTP(t *testing.T) {
	m := gpt3()
	w1 := Sum(Block(m, Shard{TP: 1, Microbatch: 1})).WeightBytes
	w8 := Sum(Block(m, Shard{TP: 8, Microbatch: 1})).WeightBytes
	// GEMM weights (≈ all of them) shard by 8; LN params replicate.
	ratio := float64(w1) / float64(w8)
	if ratio < 7.5 || ratio > 8.1 {
		t.Errorf("weight shard ratio = %g, want ≈8", ratio)
	}
}

func TestFwdFLOPsMatchClosedForm(t *testing.T) {
	// Matrix FLOPs per block at t=1: 24bsh² + 4bs²h (GEMMs + attention).
	m := gpt3()
	b, s, h := 4.0, float64(m.Seq), float64(m.Hidden)
	tot := Sum(Block(m, Shard{TP: 1, Microbatch: 4}))
	want := 24*b*s*h*h + 4*b*s*s*h
	if got := float64(tot.FwdMatrixFLOPs); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("fwd matrix flops = %g, want %g", got, want)
	}
}

func TestBwdFLOPsTwiceFwdForGEMMs(t *testing.T) {
	tot := Sum(Block(gpt3(), Shard{TP: 4, Microbatch: 2}))
	if got, want := float64(tot.BwdMatrixFLOPs), 2*float64(tot.FwdMatrixFLOPs); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("bwd matrix flops = %g, want 2×fwd = %g", got, want)
	}
}

func TestMatrixFLOPsShardByTP(t *testing.T) {
	m := gpt3()
	f := func(rawTP uint8) bool {
		tp := []int{1, 2, 4, 8, 16, 32}[rawTP%6]
		f1 := float64(Sum(Block(m, Shard{TP: 1, Microbatch: 1})).FwdMatrixFLOPs)
		ft := float64(Sum(Block(m, Shard{TP: tp, Microbatch: 1})).FwdMatrixFLOPs)
		return math.Abs(ft-f1/float64(tp))/(f1/float64(tp)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnevenTPShardsUseCeil(t *testing.T) {
	// turing-530B has 128 heads; t=24 does not divide them: the busiest
	// processor carries ceil(128/24)=6 heads, more than 128/24≈5.33.
	m := model.MustPreset("turing-530B")
	even := float64(Sum(Block(m, Shard{TP: 32, Microbatch: 1})).FwdMatrixFLOPs)   // 4 heads
	uneven := float64(Sum(Block(m, Shard{TP: 24, Microbatch: 1})).FwdMatrixFLOPs) // 6 heads
	if uneven <= even {
		t.Errorf("uneven shard (t=24) should carry more work than t=32: %g vs %g", uneven, even)
	}
	ideal24 := float64(Sum(Block(m, Shard{TP: 1, Microbatch: 1})).FwdMatrixFLOPs) / 24
	if uneven <= ideal24 {
		t.Errorf("ceil sharding must exceed the ideal 1/24 share")
	}
}

func TestFusedLayersDropTrafficAndMasks(t *testing.T) {
	m := gpt3()
	plain := Sum(Block(m, Shard{TP: 8, Microbatch: 1}))
	fused := Sum(Block(m, Shard{TP: 8, Microbatch: 1, Fused: true}))
	if !(fused.FwdTraffic < plain.FwdTraffic) {
		t.Error("fusion must reduce forward traffic")
	}
	if !(fused.ActBytes < plain.ActBytes) {
		t.Error("fusion must reduce stored activations")
	}
	// FLOPs are unchanged — the math still happens, inline.
	if fused.FwdMatrixFLOPs != plain.FwdMatrixFLOPs || fused.FwdVectorFLOPs != plain.FwdVectorFLOPs {
		t.Error("fusion must not change FLOPs")
	}
}

func TestInferenceDropsBackward(t *testing.T) {
	tot := Sum(Block(gpt3(), Shard{TP: 8, Microbatch: 1, Inference: true}))
	if tot.BwdMatrixFLOPs != 0 || tot.BwdVectorFLOPs != 0 || tot.BwdTraffic != 0 || tot.ActBytes != 0 {
		t.Errorf("inference totals must have no backward state: %+v", tot)
	}
	if tot.FwdMatrixFLOPs == 0 {
		t.Error("inference keeps forward work")
	}
}

func TestBlockInputBytes(t *testing.T) {
	m := gpt3()
	got := BlockInputBytes(m, Shard{TP: 8, Microbatch: 2})
	want := units.Bytes(2*m.Seq*m.Hidden) * 2
	if got != want {
		t.Errorf("BlockInputBytes = %v, want %v", got, want)
	}
	sp := BlockInputBytes(m, Shard{TP: 8, Microbatch: 2, SeqParallel: true})
	if sp != want/8 {
		t.Errorf("seq-parallel boundary = %v, want %v", sp, want/8)
	}
}

func TestDefaultsAppliedForZeroShard(t *testing.T) {
	m := gpt3()
	a := Sum(Block(m, Shard{}))
	b := Sum(Block(m, Shard{TP: 1, Microbatch: 1}))
	if a != b {
		t.Error("zero Shard must behave as TP=1, Microbatch=1")
	}
}

func TestLayerOrderingAndNames(t *testing.T) {
	ls := Block(gpt3(), Shard{TP: 1, Microbatch: 1})
	wantOrder := []string{
		"attn_ln", "attn_qkv", "attn_scores", "attn_softmax", "attn_dropout",
		"attn_av", "attn_proj", "attn_resid",
		"mlp_ln", "mlp_fc1", "mlp_gelu", "mlp_fc2", "mlp_resid",
	}
	if len(ls) != len(wantOrder) {
		t.Fatalf("got %d layers, want %d", len(ls), len(wantOrder))
	}
	for i, l := range ls {
		if l.Name != wantOrder[i] {
			t.Errorf("layer %d = %s, want %s", i, l.Name, wantOrder[i])
		}
	}
}

func TestAttnGroupMembership(t *testing.T) {
	want := map[string]bool{
		"attn_scores": true, "attn_softmax": true, "attn_dropout": true, "attn_av": true,
	}
	for _, l := range Block(gpt3(), Shard{TP: 1, Microbatch: 1}) {
		if l.AttnGroup != want[l.Name] {
			t.Errorf("layer %s AttnGroup = %v, want %v", l.Name, l.AttnGroup, want[l.Name])
		}
	}
}

func TestGatheredInputMarking(t *testing.T) {
	for _, l := range Block(gpt3(), Shard{TP: 8, Microbatch: 1, SeqParallel: true}) {
		wantGathered := l.Name == "attn_qkv" || l.Name == "mlp_fc1"
		if l.GatheredInput != wantGathered {
			t.Errorf("layer %s GatheredInput = %v, want %v", l.Name, l.GatheredInput, wantGathered)
		}
	}
	for _, l := range Block(gpt3(), Shard{TP: 8, Microbatch: 1}) {
		if l.GatheredInput {
			t.Errorf("layer %s should not be marked gathered without seq parallelism", l.Name)
		}
	}
}

func TestEngineString(t *testing.T) {
	if Matrix.String() != "matrix" || Vector.String() != "vector" {
		t.Error("Engine.String mismatch")
	}
}

func TestSqActNeverExceedsAct(t *testing.T) {
	f := func(rawTP, rawB uint8) bool {
		tp := int(rawTP%16) + 1
		b := int(rawB%8) + 1
		for _, l := range Block(gpt3(), Shard{TP: tp, Microbatch: b}) {
			if l.SqActBytes > l.ActBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalsScaleLinearlyInMicrobatch(t *testing.T) {
	m := gpt3()
	t1 := Sum(Block(m, Shard{TP: 8, Microbatch: 1}))
	t4 := Sum(Block(m, Shard{TP: 8, Microbatch: 4}))
	if math.Abs(float64(t4.FwdMatrixFLOPs)-4*float64(t1.FwdMatrixFLOPs)) > 1e-6*float64(t1.FwdMatrixFLOPs) {
		t.Error("matrix FLOPs must scale linearly in microbatch")
	}
	if math.Abs(float64(t4.ActBytes)-4*float64(t1.ActBytes)) > 1e-6*float64(t1.ActBytes) {
		t.Error("activations must scale linearly in microbatch")
	}
	if t4.WeightBytes != t1.WeightBytes {
		t.Error("weights must not depend on microbatch")
	}
}
