// Package layers builds the transformer-block layer graph of Fig. 1 of the
// paper: multi-head attention followed by an MLP block, with LayerNorms,
// dropouts and residual connections. For every layer it accounts forward and
// backward FLOPs, memory traffic, parameter storage, and the activation
// bytes that must be stored for the backward pass — each under the sharding
// induced by tensor parallelism and sequence parallelism.
//
// The per-layer activation accounting intentionally reproduces the published
// closed forms: with fp16 and no parallelism a block stores
// 34·s·b·h + 5·a·s²·b bytes, tensor parallelism leaves 10·s·b·h of that
// replicated, and sequence parallelism shards the remainder (Korthikanti et
// al., reimplemented per layer). Tests pin these identities.
package layers

import (
	"calculon/internal/model"
	"calculon/internal/units"
)

// Engine selects which computational unit executes a layer (§2.2:
// computation is assigned to either "matrix" or "vector" execution).
type Engine int

const (
	// Matrix is the GEMM/tensor-core engine.
	Matrix Engine = iota
	// Vector is the element-wise/SIMT engine.
	Vector
)

func (e Engine) String() string {
	if e == Matrix {
		return "matrix"
	}
	return "vector"
}

// Layer is one node of the block graph with everything the processing model
// needs to time it and account its memory.
type Layer struct {
	Name   string
	Engine Engine

	// FLOPs is the forward operation count for one microbatch.
	FLOPs units.FLOPs
	// BwdFLOPs is the backward operation count (GEMMs: dgrad + wgrad ≈ 2×).
	BwdFLOPs units.FLOPs

	// Traffic is forward memory traffic in bytes (inputs + weights read,
	// outputs written). BwdTraffic is the backward equivalent.
	Traffic    units.Bytes
	BwdTraffic units.Bytes

	// WeightBytes is this processor's parameter storage for the layer.
	WeightBytes units.Bytes
	// ActBytes is the per-microbatch activation storage the backward pass
	// needs (the layer's saved inputs/outputs/masks).
	ActBytes units.Bytes
	// SqActBytes is the portion of ActBytes proportional to s² — the
	// attention-matrix tensors that selective (attn) recomputation drops.
	SqActBytes units.Bytes
	// OutputBytes is the size of the layer's output tensor (gradient
	// working-space accounting and offload sizing).
	OutputBytes units.Bytes

	// AttnGroup marks the attention-matrix layers (QKᵀ, softmax, dropout,
	// AV) that selective recomputation re-executes.
	AttnGroup bool
	// Fusable marks element-wise layers that layer fusion folds into their
	// neighbouring GEMM, eliminating their traffic and saved tensors.
	Fusable bool
	// GatheredInput marks layers whose stored input is the full-sequence
	// (all-gathered) tensor under sequence parallelism; the "TP redo"
	// optimization stores the sharded version instead and re-gathers it
	// during the backward pass.
	GatheredInput bool
}

// Params returns the number of parameters in the layer on this processor.
func (l Layer) Params() float64 { return l.WeightBytes.Ratio(2) }

// Shard describes how a block is partitioned and executed on one processor.
type Shard struct {
	// TP is the tensor-parallel degree t.
	TP int
	// SeqParallel shards the residual path (LayerNorms, dropouts) by t.
	SeqParallel bool
	// TPRedo stores sharded GEMM inputs and re-gathers in backward.
	TPRedo bool
	// Fused enables element-wise layer fusion.
	Fused bool
	// Microbatch is the per-pipeline microbatch size b.
	Microbatch int
	// Inference drops all backward-related accounting.
	Inference bool
}

const (
	// dtype is fp16/bf16: two bytes for weights, activations, gradients.
	dtype = units.Bytes(2)
	// maskByte is the dropout-mask element size.
	maskByte = units.Bytes(1)
)

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Block builds the layer graph of one transformer block for the given model
// under the given sharding. Layers appear in execution order.
func Block(m model.LLM, sh Shard) []Layer {
	if sh.TP < 1 {
		sh.TP = 1
	}
	if sh.Microbatch < 1 {
		sh.Microbatch = 1
	}
	b := float64(sh.Microbatch)
	s := float64(m.Seq)
	h := float64(m.Hidden)
	headSize := float64(m.HeadSize())
	// Uneven shards are carried by the busiest processor: ceil everywhere.
	localHeads := float64(ceilDiv(m.AttnHeads, sh.TP))
	hl := localHeads * headSize            // local attention width
	ffl := float64(ceilDiv(m.FF(), sh.TP)) // local MLP inner width
	sl := s                                // residual-path sequence slice
	if sh.SeqParallel {
		sl = float64(ceilDiv(m.Seq, sh.TP))
	}

	ls := make([]Layer, 0, 16)
	add := func(l Layer) {
		if sh.Inference {
			l.BwdFLOPs, l.BwdTraffic, l.ActBytes = 0, 0, 0
		}
		ls = append(ls, l)
	}

	layerNorm := func(name string) Layer {
		elems := b * sl * h
		return Layer{
			Name: name, Engine: Vector,
			FLOPs:    units.FLOPs(5 * elems),
			BwdFLOPs: units.FLOPs(8 * elems),
			// read input + gamma/beta, write output
			Traffic:     units.Bytes(2*elems)*dtype + 2*units.Bytes(h)*dtype,
			BwdTraffic:  units.Bytes(3*elems) * dtype,
			WeightBytes: 2 * units.Bytes(h) * dtype,
			ActBytes:    units.Bytes(elems) * dtype, // saved input
			OutputBytes: units.Bytes(elems) * dtype,
		}
	}

	gemm := func(name string, rows, k, n float64, storedIn units.Bytes, gathered bool) Layer {
		flops := 2 * rows * k * n
		w := units.Bytes(k*n+n) * dtype // matrix + bias
		in := units.Bytes(rows*k) * dtype
		out := units.Bytes(rows*n) * dtype
		return Layer{
			Name: name, Engine: Matrix,
			FLOPs:         units.FLOPs(flops),
			BwdFLOPs:      units.FLOPs(2 * flops), // dgrad + wgrad
			Traffic:       in + w + out,
			BwdTraffic:    2 * (in + w + out),
			WeightBytes:   w,
			ActBytes:      storedIn,
			OutputBytes:   out,
			GatheredInput: gathered,
		}
	}

	// --- Attention half ---------------------------------------------------

	add(layerNorm("attn_ln"))

	// QKV projection consumes the all-gathered full-sequence tensor. Under
	// sequence parallelism with TP-redo the saved copy is the sharded slice.
	qkvStored := units.Bytes(b*s*h) * dtype
	if sh.SeqParallel && sh.TPRedo {
		qkvStored = units.Bytes(b*sl*h) * dtype
	}
	add(gemm("attn_qkv", b*s, h, 3*hl, qkvStored, sh.SeqParallel))

	// QKᵀ attention scores: needs Q and K saved.
	scoreElems := b * localHeads * s * s
	add(Layer{
		Name: "attn_scores", Engine: Matrix,
		FLOPs:       units.FLOPs(2 * b * s * s * hl),
		BwdFLOPs:    units.FLOPs(4 * b * s * s * hl),
		Traffic:     units.Bytes(2*b*s*hl+scoreElems) * dtype,
		BwdTraffic:  2 * units.Bytes(2*b*s*hl+scoreElems) * dtype,
		ActBytes:    2 * units.Bytes(b*s*hl) * dtype, // Q and K
		OutputBytes: units.Bytes(scoreElems) * dtype,
		AttnGroup:   true,
	})

	add(Layer{
		Name: "attn_softmax", Engine: Vector,
		FLOPs:       units.FLOPs(5 * scoreElems),
		BwdFLOPs:    units.FLOPs(8 * scoreElems),
		Traffic:     2 * units.Bytes(scoreElems) * dtype,
		BwdTraffic:  3 * units.Bytes(scoreElems) * dtype,
		ActBytes:    units.Bytes(scoreElems) * dtype, // saved output
		SqActBytes:  units.Bytes(scoreElems) * dtype,
		OutputBytes: units.Bytes(scoreElems) * dtype,
		AttnGroup:   true,
	})

	add(Layer{
		Name: "attn_dropout", Engine: Vector,
		FLOPs:       units.FLOPs(scoreElems),
		BwdFLOPs:    units.FLOPs(scoreElems),
		Traffic:     2*units.Bytes(scoreElems)*dtype + units.Bytes(scoreElems)*maskByte,
		BwdTraffic:  2*units.Bytes(scoreElems)*dtype + units.Bytes(scoreElems)*maskByte,
		ActBytes:    units.Bytes(scoreElems) * maskByte, // mask
		SqActBytes:  units.Bytes(scoreElems) * maskByte,
		OutputBytes: units.Bytes(scoreElems) * dtype,
		AttnGroup:   true,
		Fusable:     true,
	})

	// Attention × V: needs the dropped scores and V saved.
	add(Layer{
		Name: "attn_av", Engine: Matrix,
		FLOPs:       units.FLOPs(2 * b * s * s * hl),
		BwdFLOPs:    units.FLOPs(4 * b * s * s * hl),
		Traffic:     units.Bytes(scoreElems+2*b*s*hl) * dtype,
		BwdTraffic:  2 * units.Bytes(scoreElems+2*b*s*hl) * dtype,
		ActBytes:    units.Bytes(scoreElems+b*s*hl) * dtype, // scores + V
		SqActBytes:  units.Bytes(scoreElems) * dtype,        // V is kept
		OutputBytes: units.Bytes(b*s*hl) * dtype,
		AttnGroup:   true,
	})

	add(gemm("attn_proj", b*s, hl, h, units.Bytes(b*s*hl)*dtype, false))

	// Post-attention dropout + residual add (on the sharded residual path
	// under sequence parallelism).
	residElems := b * sl * h
	add(Layer{
		Name: "attn_resid", Engine: Vector,
		FLOPs:       units.FLOPs(2 * residElems),
		BwdFLOPs:    units.FLOPs(2 * residElems),
		Traffic:     3*units.Bytes(residElems)*dtype + units.Bytes(residElems)*maskByte,
		BwdTraffic:  2*units.Bytes(residElems)*dtype + units.Bytes(residElems)*maskByte,
		ActBytes:    units.Bytes(residElems) * maskByte, // mask
		OutputBytes: units.Bytes(residElems) * dtype,
		Fusable:     true,
	})

	// --- MLP half ----------------------------------------------------------

	add(layerNorm("mlp_ln"))

	fc1Stored := units.Bytes(b*s*h) * dtype
	if sh.SeqParallel && sh.TPRedo {
		fc1Stored = units.Bytes(b*sl*h) * dtype
	}
	add(gemm("mlp_fc1", b*s, h, ffl, fc1Stored, sh.SeqParallel))

	geluElems := b * s * ffl
	add(Layer{
		Name: "mlp_gelu", Engine: Vector,
		FLOPs:       units.FLOPs(8 * geluElems),
		BwdFLOPs:    units.FLOPs(13 * geluElems),
		Traffic:     2 * units.Bytes(geluElems) * dtype,
		BwdTraffic:  3 * units.Bytes(geluElems) * dtype,
		ActBytes:    units.Bytes(geluElems) * dtype, // saved input
		OutputBytes: units.Bytes(geluElems) * dtype,
		Fusable:     true,
	})

	add(gemm("mlp_fc2", b*s, ffl, h, units.Bytes(geluElems)*dtype, false))

	add(Layer{
		Name: "mlp_resid", Engine: Vector,
		FLOPs:       units.FLOPs(2 * residElems),
		BwdFLOPs:    units.FLOPs(2 * residElems),
		Traffic:     3*units.Bytes(residElems)*dtype + units.Bytes(residElems)*maskByte,
		BwdTraffic:  2*units.Bytes(residElems)*dtype + units.Bytes(residElems)*maskByte,
		ActBytes:    units.Bytes(residElems) * maskByte,
		OutputBytes: units.Bytes(residElems) * dtype,
		Fusable:     true,
	})

	if sh.Fused {
		for i := range ls {
			if ls[i].Fusable {
				// The op is executed inside the neighbouring kernel's
				// epilogue: its tensors never round-trip through memory and
				// its masks are regenerated rather than stored.
				ls[i].Traffic = 0
				ls[i].BwdTraffic = 0
				ls[i].ActBytes = 0
				ls[i].SqActBytes = 0
			}
		}
	}
	return ls
}

// BlockInputBytes returns the size of a block's boundary tensor for one
// microbatch — what full recomputation stores, what pipeline point-to-point
// communication carries, and what activation offload moves per block. Under
// sequence parallelism the boundary tensor lives sharded.
func BlockInputBytes(m model.LLM, sh Shard) units.Bytes {
	if sh.TP < 1 {
		sh.TP = 1
	}
	if sh.Microbatch < 1 {
		sh.Microbatch = 1
	}
	rows := float64(sh.Microbatch) * float64(m.Seq)
	if sh.SeqParallel {
		rows = float64(sh.Microbatch) * float64(ceilDiv(m.Seq, sh.TP))
	}
	return units.Bytes(rows*float64(m.Hidden)) * dtype
}
