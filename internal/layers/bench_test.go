package layers

import (
	"testing"

	"calculon/internal/model"
)

// BenchmarkBlock measures the cost of building one block graph — inside the
// hot path of every model evaluation.
func BenchmarkBlock(b *testing.B) {
	m := model.MustPreset("gpt3-175B")
	sh := Shard{TP: 8, SeqParallel: true, Microbatch: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Block(m, sh)
	}
}

// BenchmarkSum measures the block aggregation.
func BenchmarkSum(b *testing.B) {
	ls := Block(model.MustPreset("gpt3-175B"), Shard{TP: 8, Microbatch: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Sum(ls)
	}
}
