package sensitivity

import (
	"strings"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

func config() (model.LLM, system.System, execution.Strategy) {
	m := model.MustPreset("gpt3-175B").WithBatch(64)
	sys := system.A100(64)
	st := execution.Strategy{
		TP: 8, PP: 8, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeFull, TPRSAG: true,
	}
	return m, sys, st
}

func find(t *testing.T, es []Elasticity, name string) Elasticity {
	t.Helper()
	for _, e := range es {
		if e.Param == name {
			return e
		}
	}
	t.Fatalf("missing elasticity %q in %+v", name, es)
	return Elasticity{}
}

func TestAnalyzeSigns(t *testing.T) {
	m, sys, st := config()
	es, err := Analyze(m, sys, st, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// More of any resource never slows the batch; less never speeds it.
	for _, e := range es {
		if e.SpeedupPct < -1e-9 {
			t.Errorf("%s: scaling up must not hurt (%.3f%%)", e.Param, e.SpeedupPct)
		}
		if !e.Infeasible && e.SlowdownPct < -1e-9 {
			t.Errorf("%s: scaling down must not help (%.3f%%)", e.Param, e.SlowdownPct)
		}
	}
	// A GEMM-dominated training configuration is most sensitive to matrix
	// throughput.
	matrix := find(t, es, "matrix throughput")
	for _, e := range es {
		if e.Param == "matrix throughput" {
			continue
		}
		if e.SpeedupPct > matrix.SpeedupPct {
			t.Errorf("matrix throughput should dominate, but %s gives %.2f%% vs %.2f%%",
				e.Param, e.SpeedupPct, matrix.SpeedupPct)
		}
	}
	// Capacity is a feasibility resource: ±10% of 80 GiB changes no timing
	// while the configuration still fits.
	capE := find(t, es, "mem1 capacity")
	if capE.SpeedupPct != 0 {
		t.Errorf("extra capacity should not speed a fitting config (%.3f%%)", capE.SpeedupPct)
	}
}

// TestCapacityCliffDetected: shrinking capacity below the working set shows
// up as "no longer fits" rather than a time delta.
func TestCapacityCliffDetected(t *testing.T) {
	m, sys, st := config()
	base, err := Analyze(m, sys, st, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if find(t, base, "mem1 capacity").Infeasible {
		t.Fatal("config should tolerate −10% of 80 GiB")
	}
	// Tighten capacity to just above the working set: −10% now breaks it.
	tight := sys.WithMem1Capacity(48 * units.GiB) // config uses ≈45 GiB
	es, err := Analyze(m, tight, st, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !find(t, es, "mem1 capacity").Infeasible {
		t.Error("−10% of a tight capacity must be flagged infeasible")
	}
}

// TestBottleneckMovesWithStrategy: with heavy exposed TP communication the
// fast-network bandwidth matters more than under ring overlap.
func TestBottleneckMovesWithStrategy(t *testing.T) {
	m, sys, st := config()
	exposed, err := Analyze(m, sys, st, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	hidden := st
	hidden.TPOverlap = execution.TPOverlapRing
	overlapped, err := Analyze(m, sys, hidden, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	nvExposed := find(t, exposed, "nvlink bandwidth").SpeedupPct
	nvHidden := find(t, overlapped, "nvlink bandwidth").SpeedupPct
	if !(nvHidden < nvExposed) {
		t.Errorf("hiding TP comm should reduce NVLink sensitivity: %.2f%% vs %.2f%%",
			nvHidden, nvExposed)
	}
}

func TestMem2KnobsPresentOnlyWithTier(t *testing.T) {
	m, sys, st := config()
	es, _ := Analyze(m, sys, st, 0.1)
	for _, e := range es {
		if strings.HasPrefix(e.Param, "mem2") {
			t.Fatalf("no mem2 knobs expected without a tier: %+v", e)
		}
	}
	st.WeightOffload = true
	tiered := sys.WithMem2(system.DDR5(2 * units.TiB))
	es2, err := Analyze(m, tiered, st, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	find(t, es2, "mem2 bandwidth")
	find(t, es2, "mem2 capacity")
}

func TestAnalyzeValidation(t *testing.T) {
	m, sys, st := config()
	if _, err := Analyze(m, sys, st, 0); err == nil {
		t.Error("zero perturbation must fail")
	}
	if _, err := Analyze(m, sys, st, 1); err == nil {
		t.Error("100% perturbation must fail")
	}
	bad := st
	bad.TP = 1000
	if _, err := Analyze(m, sys, bad, 0.1); err == nil {
		t.Error("infeasible base must fail")
	}
}

func TestRenderSorted(t *testing.T) {
	var b strings.Builder
	Render(&b, 0.1, []Elasticity{
		{Param: "small", SpeedupPct: 1},
		{Param: "big", SpeedupPct: 5},
		{Param: "broken", Infeasible: true},
	})
	out := b.String()
	if !strings.Contains(out, "no longer fits") {
		t.Errorf("missing infeasible marker:\n%s", out)
	}
	if strings.Index(out, "big") > strings.Index(out, "small") {
		t.Errorf("rows not sorted by speedup:\n%s", out)
	}
}
