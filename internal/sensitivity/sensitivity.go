// Package sensitivity quantifies §1's central codesign claim — that memory
// capacity, memory bandwidth, processing throughput, network bandwidth, and
// network scalability "interact with choices made in software" and must be
// delicately balanced. For a fixed configuration it perturbs one hardware
// resource at a time and reports the batch-time elasticity, exposing which
// resource the configuration is actually limited by; re-running the
// analysis under a different execution strategy shows the bottleneck move.
package sensitivity

import (
	"fmt"
	"io"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/system"
	"calculon/internal/units"
)

// Elasticity is one resource's effect on batch time.
type Elasticity struct {
	// Param names the perturbed resource.
	Param string
	// SpeedupPct is the batch-time improvement (positive = faster) when the
	// resource is scaled up by the perturbation factor.
	SpeedupPct float64
	// SlowdownPct is the batch-time degradation when scaled down.
	SlowdownPct float64
	// Infeasible marks resources whose reduction makes the configuration
	// stop fitting (capacity cliffs).
	Infeasible bool
}

// knob is one perturbable resource.
type knob struct {
	name  string
	scale func(system.System, float64) system.System
}

func knobs(sys system.System) []knob {
	ks := []knob{
		{"matrix throughput", func(s system.System, f float64) system.System {
			s.Compute.MatrixPeak = units.FLOPsPerSec(float64(s.Compute.MatrixPeak) * f)
			return s
		}},
		{"vector throughput", func(s system.System, f float64) system.System {
			s.Compute.VectorPeak = units.FLOPsPerSec(float64(s.Compute.VectorPeak) * f)
			return s
		}},
		{"mem1 bandwidth", func(s system.System, f float64) system.System {
			s.Mem1.Bandwidth = units.BytesPerSec(float64(s.Mem1.Bandwidth) * f)
			return s
		}},
		{"mem1 capacity", func(s system.System, f float64) system.System {
			s.Mem1.Capacity = units.Bytes(float64(s.Mem1.Capacity) * f)
			return s
		}},
	}
	for i, n := range sys.Networks {
		i, n := i, n
		ks = append(ks, knob{
			name: n.Name + " bandwidth",
			scale: func(s system.System, f float64) system.System {
				nets := append([]system.Network(nil), s.Networks...)
				nets[i].Bandwidth = units.BytesPerSec(float64(nets[i].Bandwidth) * f)
				s.Networks = nets
				return s
			},
		})
	}
	if sys.Mem2.Present() {
		ks = append(ks, knob{"mem2 bandwidth", func(s system.System, f float64) system.System {
			s.Mem2.Bandwidth = units.BytesPerSec(float64(s.Mem2.Bandwidth) * f)
			return s
		}})
		ks = append(ks, knob{"mem2 capacity", func(s system.System, f float64) system.System {
			if !s.Mem2.Capacity.IsUnbounded() {
				s.Mem2.Capacity = units.Bytes(float64(s.Mem2.Capacity) * f)
			}
			return s
		}})
	}
	return ks
}

// Analyze perturbs each hardware resource by ±frac (e.g. 0.1 for ±10%) and
// reports the batch-time elasticities for the configuration.
func Analyze(m model.LLM, sys system.System, st execution.Strategy, frac float64) ([]Elasticity, error) {
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("sensitivity: perturbation must be in (0,1), got %g", frac)
	}
	base, err := perf.Run(m, sys, st)
	if err != nil {
		return nil, fmt.Errorf("sensitivity: base configuration: %w", err)
	}
	var out []Elasticity
	for _, k := range knobs(sys) {
		e := Elasticity{Param: k.name}
		up, err := perf.Run(m, k.scale(sys, 1+frac), st)
		if err == nil {
			e.SpeedupPct = 100 * (1 - float64(up.BatchTime)/float64(base.BatchTime))
		}
		down, err := perf.Run(m, k.scale(sys, 1-frac), st)
		if err != nil {
			e.Infeasible = true
		} else {
			e.SlowdownPct = 100 * (float64(down.BatchTime)/float64(base.BatchTime) - 1)
		}
		out = append(out, e)
	}
	return out, nil
}

// Render writes the elasticity table, largest speedup first.
func Render(w io.Writer, frac float64, es []Elasticity) {
	rows := [][]string{{"resource", fmt.Sprintf("+%.0f%% gives", 100*frac), fmt.Sprintf("−%.0f%% costs", 100*frac)}}
	ordered := append([]Elasticity(nil), es...)
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].SpeedupPct > ordered[i].SpeedupPct {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	for _, e := range ordered {
		cost := fmt.Sprintf("%+.2f%% time", e.SlowdownPct)
		if e.Infeasible {
			cost = "no longer fits"
		}
		rows = append(rows, []string{e.Param, fmt.Sprintf("%+.2f%% time", -e.SpeedupPct), cost})
	}
	report.Table(w, rows)
}
