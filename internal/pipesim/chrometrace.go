package pipesim

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one complete event ("ph":"X") of the Chrome trace-event
// format, loadable in chrome://tracing or Perfetto.
type chromeEvent struct {
	Name            string         `json:"name"`
	Phase           string         `json:"ph"`
	TimestampMicros float64        `json:"ts"`
	DurationMicros  float64        `json:"dur"`
	PID             int            `json:"pid"`
	TID             int            `json:"tid"`
	Args            map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace simulates the schedule and writes it as a Chrome
// trace-event JSON document: one track per pipeline stage, one complete
// event per chunk visit. Load the output in chrome://tracing or
// https://ui.perfetto.dev to inspect the schedule interactively.
func WriteChromeTrace(w io.Writer, p Params) error {
	ops, _, err := Trace(p)
	if err != nil {
		return err
	}
	events := make([]chromeEvent, 0, len(ops))
	for _, o := range ops {
		dir := "fwd"
		if !o.Forward {
			dir = "bwd"
		}
		events = append(events, chromeEvent{
			Name:            fmt.Sprintf("%s c%d m%d", dir, o.Chunk, o.Microbatch),
			Phase:           "X",
			TimestampMicros: float64(o.Start) * 1e6,
			DurationMicros:  float64(o.Finish-o.Start) * 1e6,
			PID:             0,
			TID:             o.Stage,
			Args: map[string]any{
				"chunk":      o.Chunk,
				"microbatch": o.Microbatch,
				"direction":  dir,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
