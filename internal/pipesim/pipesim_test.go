package pipesim

import (
	"math"
	"testing"
	"testing/quick"

	"calculon/internal/units"
)

func sim(t *testing.T, p Params) Result {
	t.Helper()
	r, err := Simulate(p)
	if err != nil {
		t.Fatalf("Simulate(%+v): %v", p, err)
	}
	return r
}

// TestSingleStageHasNoBubble: p=1 is just sequential compute.
func TestSingleStageHasNoBubble(t *testing.T) {
	r := sim(t, Params{Stages: 1, Chunks: 1, Microbatches: 8,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB})
	if math.Abs(float64(r.Makespan-24)) > 1e-9 {
		t.Errorf("makespan = %v, want 24", r.Makespan)
	}
	if math.Abs(float64(r.Bubble)) > 1e-9 {
		t.Errorf("bubble = %v, want 0", r.Bubble)
	}
	if r.PeakInFlight != 1 {
		t.Errorf("peak in flight = %d, want 1", r.PeakInFlight)
	}
}

// TestOneFOneBBubbleClosedForm pins the textbook result: with zero hop cost
// and n ≥ p, the 1F1B bubble is exactly (p−1)(tf+tb).
func TestOneFOneBBubbleClosedForm(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{8, 16, 32} {
			if n < p {
				continue
			}
			r := sim(t, Params{Stages: p, Chunks: 1, Microbatches: n,
				FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB})
			want := units.Seconds(float64(p-1) * 3)
			if math.Abs(float64(r.Bubble-want)) > 1e-9 {
				t.Errorf("p=%d n=%d: bubble = %v, want %v", p, n, r.Bubble, want)
			}
		}
	}
}

// TestGPipeMatchesOneFOneBMakespan: for a uniform pipeline with zero hop
// cost, GPipe and 1F1B have the same makespan — only memory differs.
func TestGPipeMatchesOneFOneBMakespan(t *testing.T) {
	g := sim(t, Params{Stages: 4, Chunks: 1, Microbatches: 16,
		FwdChunk: 1, BwdChunk: 2, Schedule: GPipe})
	o := sim(t, Params{Stages: 4, Chunks: 1, Microbatches: 16,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB})
	if math.Abs(float64(g.Makespan-o.Makespan)) > 1e-9 {
		t.Errorf("GPipe %v vs 1F1B %v", g.Makespan, o.Makespan)
	}
}

// TestGPipeHoldsAllMicrobatches vs 1F1B holding ≈p: the memory rationale
// for 1F1B (Table 1's "PP 1F1B schedule: Mem cap ↓↓").
func TestInFlightActivations(t *testing.T) {
	p, n := 4, 16
	g := sim(t, Params{Stages: p, Chunks: 1, Microbatches: n,
		FwdChunk: 1, BwdChunk: 2, Schedule: GPipe})
	if g.PeakInFlight != n {
		t.Errorf("GPipe peak in flight = %d, want n = %d", g.PeakInFlight, n)
	}
	o := sim(t, Params{Stages: p, Chunks: 1, Microbatches: n,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB})
	if o.PeakInFlight != p {
		t.Errorf("1F1B peak in flight = %d, want p = %d", o.PeakInFlight, p)
	}
}

// TestInterleavingShrinksBubble: the whole point of the interleaved
// schedule (Fig. 2) — the bubble shrinks roughly by the interleave factor.
func TestInterleavingShrinksBubble(t *testing.T) {
	p, n := 4, 16
	// A stage's total work is fixed: v chunks of (fwd,bwd)=(2,4)/v each.
	v1 := sim(t, Params{Stages: p, Chunks: 1, Microbatches: n,
		FwdChunk: 2, BwdChunk: 4, Schedule: OneFOneB})
	v2 := sim(t, Params{Stages: p, Chunks: 2, Microbatches: n,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB})
	if !(v2.Bubble < v1.Bubble) {
		t.Errorf("interleaving must shrink the bubble: v=2 %v vs v=1 %v", v2.Bubble, v1.Bubble)
	}
	ratio := float64(v1.Bubble) / float64(v2.Bubble)
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("bubble reduction ratio %.2f, expected ≈2 (the interleave factor)", ratio)
	}
	// ... at the cost of more in-flight activations per stage (in chunk
	// units normalized to whole microbatches).
	if float64(v2.PeakInFlight)/2 < float64(v1.PeakInFlight) {
		t.Errorf("interleaving should not reduce activation residency: %d/2 vs %d",
			v2.PeakInFlight, v1.PeakInFlight)
	}
}

// TestInterleavedInFlightMatchesAnalyticalFactor checks the closed form the
// memory model uses: interleaved 1F1B holds ≈ p·(1 + (p−1)/(p·v))
// microbatches on stage 0.
func TestInterleavedInFlightMatchesAnalyticalFactor(t *testing.T) {
	for _, tc := range []struct{ p, v, n int }{
		{4, 2, 16}, {8, 2, 32}, {4, 4, 32},
	} {
		r := sim(t, Params{Stages: tc.p, Chunks: tc.v, Microbatches: tc.n,
			FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB})
		analytical := float64(tc.p) * (1 + float64(tc.p-1)/float64(tc.p*tc.v))
		simulated := float64(r.PeakInFlight) / float64(tc.v)
		if rel := math.Abs(simulated-analytical) / analytical; rel > 0.35 {
			t.Errorf("p=%d v=%d: simulated in-flight %.2f vs analytical %.2f (rel %.2f)",
				tc.p, tc.v, simulated, analytical, rel)
		}
	}
}

// TestBubbleShrinksWithMicrobatches: relative bubble ∝ (p−1)/n.
func TestBubbleShrinksWithMicrobatches(t *testing.T) {
	p := Params{Stages: 8, Chunks: 1, FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB}
	p.Microbatches = 8
	small := sim(t, p)
	p.Microbatches = 64
	large := sim(t, p)
	relSmall := float64(small.Bubble) / float64(small.Makespan)
	relLarge := float64(large.Bubble) / float64(large.Makespan)
	if !(relLarge < relSmall/4) {
		t.Errorf("relative bubble should shrink with n: %.3f vs %.3f", relSmall, relLarge)
	}
}

// TestHopsExtendMakespan: boundary transfers lengthen the critical path.
func TestHopsExtendMakespan(t *testing.T) {
	base := sim(t, Params{Stages: 4, Chunks: 1, Microbatches: 8,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB})
	hop := sim(t, Params{Stages: 4, Chunks: 1, Microbatches: 8,
		FwdChunk: 1, BwdChunk: 2, Hop: 0.5, Schedule: OneFOneB})
	if !(hop.Makespan > base.Makespan) {
		t.Errorf("hops must extend the makespan: %v vs %v", hop.Makespan, base.Makespan)
	}
}

// TestSimulationNeverBeatsWorkBound: makespan ≥ per-stage compute, and the
// bubble is never negative (property over random shapes).
func TestSimulationNeverBeatsWorkBound(t *testing.T) {
	f := func(rawP, rawV, rawN uint8, rawF, rawB uint16) bool {
		p := int(rawP%6) + 1
		v := int(rawV%3) + 1
		n := int(rawN%16) + 1
		fwd := units.Seconds(float64(rawF%100)+1) / 100
		bwd := units.Seconds(float64(rawB%100)+1) / 100
		r, err := Simulate(Params{Stages: p, Chunks: v, Microbatches: n,
			FwdChunk: fwd, BwdChunk: bwd, Schedule: OneFOneB})
		if err != nil {
			return false
		}
		return r.Bubble >= -1e-9 && r.Makespan >= r.ComputePerStage-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Stages: 0, Chunks: 1, Microbatches: 1},
		{Stages: 1, Chunks: 0, Microbatches: 1},
		{Stages: 1, Chunks: 1, Microbatches: 0},
		{Stages: 1, Chunks: 1, Microbatches: 1, FwdChunk: -1},
		{Stages: 2, Chunks: 2, Microbatches: 4, Schedule: GPipe}, // GPipe can't interleave
	}
	for i, p := range bad {
		if _, err := Simulate(p); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestScheduleString(t *testing.T) {
	if GPipe.String() != "gpipe" || OneFOneB.String() != "1f1b" {
		t.Error("Schedule.String mismatch")
	}
}
