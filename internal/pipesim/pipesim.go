// Package pipesim is a discrete simulator of the pipeline schedules the
// analytical model prices in closed form (Fig. 2 of the paper): GPipe-style
// all-forward-all-backward, 1F1B, and Megatron's interleaved 1F1B. It
// builds the exact operation DAG — every (stage, chunk, microbatch,
// direction) visit with its device-order and pipeline-dependency edges —
// and computes start/finish times by longest path.
//
// Its role in this repository is validation: the closed-form bubble and
// in-flight-activation expressions used by internal/perf are cross-checked
// against this simulator in tests, the same way the paper validates its
// analytical model against measurements.
package pipesim

import (
	"fmt"

	"calculon/internal/units"
)

// Schedule selects the pipeline schedule to simulate.
type Schedule int

const (
	// GPipe runs every forward before any backward.
	GPipe Schedule = iota
	// OneFOneB is the memory-saving one-forward-one-backward schedule;
	// with Chunks > 1 it becomes Megatron's interleaved schedule.
	OneFOneB
)

func (s Schedule) String() string {
	if s == GPipe {
		return "gpipe"
	}
	return "1f1b"
}

// Params describes the pipeline to simulate.
type Params struct {
	// Stages is the pipeline depth p.
	Stages int
	// Chunks is the interleaving factor v: each stage owns v chunks of
	// consecutive blocks (Fig. 2's "chunk of consecutive blocks").
	Chunks int
	// Microbatches is n, the microbatches per pipeline pass.
	Microbatches int
	// FwdChunk / BwdChunk are the compute times of one chunk visit.
	FwdChunk units.Seconds
	BwdChunk units.Seconds
	// Hop is the point-to-point boundary transfer time between stages.
	Hop      units.Seconds
	Schedule Schedule
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Stages < 1:
		return fmt.Errorf("pipesim: stages must be ≥1, got %d", p.Stages)
	case p.Chunks < 1:
		return fmt.Errorf("pipesim: chunks must be ≥1, got %d", p.Chunks)
	case p.Microbatches < 1:
		return fmt.Errorf("pipesim: microbatches must be ≥1, got %d", p.Microbatches)
	case p.FwdChunk < 0 || p.BwdChunk < 0 || p.Hop < 0:
		return fmt.Errorf("pipesim: times must be non-negative")
	case p.Schedule == GPipe && p.Chunks != 1:
		return fmt.Errorf("pipesim: GPipe does not interleave chunks")
	}
	return nil
}

// Result is the simulated outcome.
type Result struct {
	// Makespan is the end-to-end time of the pipeline pass.
	Makespan units.Seconds
	// ComputePerStage is the busy compute time of each stage (identical
	// across stages for a uniform pipeline).
	ComputePerStage units.Seconds
	// Bubble is the idle time of the bottleneck stage:
	// Makespan − ComputePerStage.
	Bubble units.Seconds
	// PeakInFlight is the maximum number of chunk-visits whose forward has
	// completed but whose backward has not yet started on stage 0 — the
	// activation residency the memory model sizes, in microbatch
	// equivalents (divide by Chunks for whole microbatches).
	PeakInFlight int
}

// op identifies one chunk visit.
type op struct {
	start, finish units.Seconds
}

// Simulate runs the schedule and returns its timing.
func Simulate(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	P, V, N := p.Stages, p.Chunks, p.Microbatches
	K := P * V // global chunk count; global chunk k lives on stage k%P, chunk k/P

	fwd := make([][]op, K) // [global chunk][microbatch]
	bwd := make([][]op, K)
	for k := 0; k < K; k++ {
		fwd[k] = make([]op, N)
		bwd[k] = make([]op, N)
	}

	// Per-device operation sequences in schedule order.
	seqs := make([][]ref, P)
	for s := 0; s < P; s++ {
		seqs[s] = deviceSequence(p, s)
	}

	// The op DAG is acyclic (device order plus forward-in-model-order and
	// backward-in-reverse-order dependencies), so repeated relaxation in
	// device order converges; iterate until a full pass changes nothing.
	devFree := make([]units.Seconds, P)
	devPos := make([]int, P)
	unset := units.Seconds(-1)
	for k := 0; k < K; k++ {
		for m := 0; m < N; m++ {
			fwd[k][m].start, bwd[k][m].start = unset, unset
		}
	}
	remaining := 2 * K * N
	for remaining > 0 {
		progressed := false
		for s := 0; s < P; s++ {
			for devPos[s] < len(seqs[s]) {
				r := seqs[s][devPos[s]]
				ready, ok := p.depReady(r, fwd, bwd)
				if !ok {
					break
				}
				o := &fwd[r.chunk][r.mb]
				dur := p.FwdChunk
				if !r.isFwd {
					o = &bwd[r.chunk][r.mb]
					dur = p.BwdChunk
				}
				start := devFree[s]
				if ready > start {
					start = ready
				}
				o.start = start
				o.finish = start + dur
				devFree[s] = o.finish
				devPos[s]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return Result{}, fmt.Errorf("pipesim: schedule deadlocked (stages=%d chunks=%d n=%d)", P, V, N)
		}
	}

	var res Result
	for k := 0; k < K; k++ {
		for m := 0; m < N; m++ {
			if bwd[k][m].finish > res.Makespan {
				res.Makespan = bwd[k][m].finish
			}
		}
	}
	res.ComputePerStage = units.Seconds(N*V) * (p.FwdChunk + p.BwdChunk)
	res.Bubble = res.Makespan - res.ComputePerStage
	res.PeakInFlight = peakInFlight(fwd, bwd, P, V, N)
	return res, nil
}

// ref names one op in a device sequence.
type ref struct {
	chunk int // global chunk index
	mb    int
	isFwd bool
}

// depReady returns when the op's pipeline dependency is satisfied, or false
// if a dependency has not been scheduled yet.
func (p Params) depReady(r ref, fwd, bwd [][]op) (units.Seconds, bool) {
	K := p.Stages * p.Chunks
	if r.isFwd {
		if r.chunk == 0 {
			return 0, true
		}
		dep := fwd[r.chunk-1][r.mb]
		if dep.start < 0 {
			return 0, false
		}
		return dep.finish + p.Hop, true
	}
	if r.chunk == K-1 {
		dep := fwd[K-1][r.mb]
		if dep.start < 0 {
			return 0, false
		}
		return dep.finish, true
	}
	dep := bwd[r.chunk+1][r.mb]
	if dep.start < 0 {
		return 0, false
	}
	return dep.finish + p.Hop, true
}

// deviceSequence produces stage s's op order under the schedule.
func deviceSequence(p Params, s int) []ref {
	P, V, N := p.Stages, p.Chunks, p.Microbatches
	total := N * V

	// Forward order: Megatron's round-robin over chunks in groups of P
	// microbatches; backward symmetric with chunks reversed. Building the
	// lists explicitly keeps the cross-device order consistent when N is
	// not a multiple of P.
	fwdOrder := make([]ref, 0, total)
	bwdOrder := make([]ref, 0, total)
	for group := 0; group*P < N; group++ {
		for c := 0; c < V; c++ {
			for j := 0; j < P; j++ {
				m := group*P + j
				if m >= N {
					continue
				}
				fwdOrder = append(fwdOrder, ref{chunk: c*P + s, mb: m, isFwd: true})
				bwdOrder = append(bwdOrder, ref{chunk: (V-1-c)*P + s, mb: m, isFwd: false})
			}
		}
	}
	fwdRef := func(i int) ref { return fwdOrder[i] }
	bwdRef := func(i int) ref { return bwdOrder[i] }

	var seq []ref
	if p.Schedule == GPipe {
		for i := 0; i < total; i++ {
			seq = append(seq, fwdRef(i))
		}
		for i := 0; i < total; i++ {
			seq = append(seq, bwdRef(i))
		}
		return seq
	}

	// 1F1B / interleaved 1F1B: Megatron's warmup count in chunk visits,
	// then strict alternation, then the cooldown drain. The interleaved
	// schedule is only defined for n divisible by p (Megatron asserts the
	// same); other shapes run all forwards first, which is always valid.
	warmup := P - s - 1
	if V > 1 {
		warmup = 2*(P-s-1) + (V-1)*P
		if N%P != 0 {
			warmup = total
		}
	}
	if warmup > total {
		warmup = total
	}
	fi, bi := 0, 0
	for ; fi < warmup; fi++ {
		seq = append(seq, fwdRef(fi))
	}
	for fi < total {
		seq = append(seq, fwdRef(fi))
		fi++
		seq = append(seq, bwdRef(bi))
		bi++
	}
	for bi < total {
		seq = append(seq, bwdRef(bi))
		bi++
	}
	return seq
}

// peakInFlight scans stage 0's chunk visits for the maximum number whose
// forward has finished while the backward has not started.
func peakInFlight(fwd, bwd [][]op, P, V, N int) int {
	var events []event
	for c := 0; c < V; c++ {
		k := c * P // stage 0's chunks
		for m := 0; m < N; m++ {
			events = append(events, event{fwd[k][m].finish, +1})
			events = append(events, event{bwd[k][m].start, -1})
		}
	}
	// Sort by time with releases (-1) before acquisitions at equal time.
	sortEvents(events)
	peak, cur := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

func sortEvents(ev []event) {
	// Insertion sort is fine for the test-sized traces this runs on.
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && less(ev[j], ev[j-1]); j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

type event struct {
	t     units.Seconds
	delta int
}

func less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	// At equal times the activation is still live while its backward runs:
	// count acquisitions before releases.
	return a.delta > b.delta
}
