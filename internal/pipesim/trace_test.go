package pipesim

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceCoversEveryOp(t *testing.T) {
	p := Params{Stages: 4, Chunks: 2, Microbatches: 8,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB}
	ops, res, err := Trace(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * p.Stages * p.Chunks * p.Microbatches / p.Stages * p.Stages // 2·K·N ops total
	if len(ops) != want {
		t.Fatalf("trace has %d ops, want %d", len(ops), want)
	}
	for _, o := range ops {
		if o.Finish <= o.Start {
			t.Fatalf("op %+v has non-positive duration", o)
		}
		if o.Finish > res.Makespan {
			t.Fatalf("op %+v finishes after the makespan %v", o, res.Makespan)
		}
	}
}

func TestTraceNoDeviceOverlap(t *testing.T) {
	p := Params{Stages: 4, Chunks: 2, Microbatches: 8,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB}
	ops, _, err := Trace(p)
	if err != nil {
		t.Fatal(err)
	}
	// Within one stage, ops must not overlap in time.
	last := map[int]float64{}
	for _, o := range ops {
		if float64(o.Start) < last[o.Stage]-1e-9 {
			t.Fatalf("stage %d ops overlap at %+v", o.Stage, o)
		}
		last[o.Stage] = float64(o.Finish)
	}
}

func TestRenderTimeline(t *testing.T) {
	var b strings.Builder
	err := RenderTimeline(&b, Params{Stages: 4, Chunks: 2, Microbatches: 6,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB}, 120)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"stage  0", "stage  3", "makespan", "bubble"} {
		if !strings.Contains(out, frag) {
			t.Errorf("timeline missing %q:\n%s", frag, out)
		}
	}
	// Stage 3 (last) starts later than stage 0: its row begins idle.
	lines := strings.Split(out, "\n")
	var s0, s3 string
	for _, l := range lines {
		if strings.HasPrefix(l, "stage  0") {
			s0 = l
		}
		if strings.HasPrefix(l, "stage  3") {
			s3 = l
		}
	}
	if !strings.Contains(s3, "|.") {
		t.Errorf("last stage should begin idle: %q", s3)
	}
	if strings.Contains(s0, "|.") {
		t.Errorf("first stage should begin busy: %q", s0)
	}
}

func TestRenderTimelineError(t *testing.T) {
	var b strings.Builder
	if err := RenderTimeline(&b, Params{}, 40); err == nil {
		t.Fatal("invalid params must error")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var b strings.Builder
	p := Params{Stages: 2, Chunks: 1, Microbatches: 3,
		FwdChunk: 1, BwdChunk: 2, Schedule: OneFOneB}
	if err := WriteChromeTrace(&b, p); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	want := 2 * p.Stages * p.Chunks * p.Microbatches
	if len(doc.TraceEvents) != want {
		t.Fatalf("got %d events, want %d", len(doc.TraceEvents), want)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur <= 0 || e.Tid < 0 || e.Tid >= p.Stages {
			t.Fatalf("bad event %+v", e)
		}
	}
	if err := WriteChromeTrace(&b, Params{}); err == nil {
		t.Fatal("invalid params must error")
	}
}
