package pipesim

import "testing"

// BenchmarkSimulate measures the discrete scheduler on a realistic shape.
func BenchmarkSimulate(b *testing.B) {
	p := Params{Stages: 16, Chunks: 2, Microbatches: 64,
		FwdChunk: 1, BwdChunk: 2, Hop: 0.01, Schedule: OneFOneB}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p); err != nil {
			b.Fatal(err)
		}
	}
}
