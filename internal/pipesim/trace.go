package pipesim

import (
	"fmt"
	"io"
	"strings"

	"calculon/internal/units"
)

// TraceOp is one executed chunk visit with its timing, for timeline
// rendering and schedule debugging.
type TraceOp struct {
	Stage      int
	Chunk      int // local chunk index on the stage (0..Chunks-1)
	Microbatch int
	Forward    bool
	Start      units.Seconds
	Finish     units.Seconds
}

// Trace simulates the schedule and returns every op with its timing,
// ordered by stage then start time.
func Trace(p Params) ([]TraceOp, Result, error) {
	res, err := Simulate(p)
	if err != nil {
		return nil, Result{}, err
	}
	// Re-run the placement to collect timings (Simulate is cheap).
	ops, err := collect(p)
	if err != nil {
		return nil, Result{}, err
	}
	return ops, res, nil
}

func collect(p Params) ([]TraceOp, error) {
	P, V, N := p.Stages, p.Chunks, p.Microbatches
	K := P * V
	fwd := make([][]op, K)
	bwd := make([][]op, K)
	for k := 0; k < K; k++ {
		fwd[k] = make([]op, N)
		bwd[k] = make([]op, N)
		for m := 0; m < N; m++ {
			fwd[k][m].start, bwd[k][m].start = -1, -1
		}
	}
	seqs := make([][]ref, P)
	for s := 0; s < P; s++ {
		seqs[s] = deviceSequence(p, s)
	}
	devFree := make([]units.Seconds, P)
	devPos := make([]int, P)
	remaining := 2 * K * N
	for remaining > 0 {
		progressed := false
		for s := 0; s < P; s++ {
			for devPos[s] < len(seqs[s]) {
				r := seqs[s][devPos[s]]
				ready, ok := p.depReady(r, fwd, bwd)
				if !ok {
					break
				}
				o := &fwd[r.chunk][r.mb]
				dur := p.FwdChunk
				if !r.isFwd {
					o = &bwd[r.chunk][r.mb]
					dur = p.BwdChunk
				}
				start := devFree[s]
				if ready > start {
					start = ready
				}
				o.start, o.finish = start, start+dur
				devFree[s] = o.finish
				devPos[s]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("pipesim: schedule deadlocked")
		}
	}
	var out []TraceOp
	for s := 0; s < P; s++ {
		for _, r := range seqs[s] {
			o := fwd[r.chunk][r.mb]
			if !r.isFwd {
				o = bwd[r.chunk][r.mb]
			}
			out = append(out, TraceOp{
				Stage: s, Chunk: r.chunk / P, Microbatch: r.mb, Forward: r.isFwd,
				Start: o.start, Finish: o.finish,
			})
		}
	}
	return out, nil
}

// RenderTimeline draws the Fig. 2-style schedule: one row per stage, time
// flowing right, forward visits as digits (the microbatch id, uppercase
// letters beyond 9), backward visits bracketed. width is the number of
// character cells for the whole makespan.
func RenderTimeline(w io.Writer, p Params, width int) error {
	ops, res, err := Trace(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pipeline schedule %s: p=%d v=%d n=%d — makespan %v, bubble %v\n",
		p.Schedule, p.Stages, p.Chunks, p.Microbatches, res.Makespan, res.Bubble)
	scale := float64(width) / float64(res.Makespan)
	rows := make([][]byte, p.Stages)
	for s := range rows {
		rows[s] = []byte(strings.Repeat(".", width))
	}
	for _, o := range ops {
		lo := int(float64(o.Start) * scale)
		hi := int(float64(o.Finish) * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		ch := mbChar(o.Microbatch, o.Forward)
		for x := lo; x < hi; x++ {
			rows[o.Stage][x] = ch
		}
	}
	for s, row := range rows {
		fmt.Fprintf(w, "stage %2d |%s|\n", s, string(row))
	}
	fmt.Fprintln(w, "(digits: forward visits by microbatch; letters a-z: backward visits; '.': idle)")
	return nil
}

func mbChar(mb int, fwd bool) byte {
	if fwd {
		if mb < 10 {
			return byte('0' + mb)
		}
		return byte('A' + (mb-10)%26)
	}
	return byte('a' + mb%26)
}
