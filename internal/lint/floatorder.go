package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder proves the numeric half of the equivalence contract. The
// pre-screen soundness proof and the §7 memory rows (docs/MODEL.md §13)
// depend on float sums being evaluated in one exact order with one exact
// rounding per operation; the golden tests pin digits at 1e-9. Go's spec
// guarantees no reassociation, but it explicitly permits fusing a*b±c into
// a single FMA — which rounds once instead of twice and therefore produces
// different bits on architectures whose compilers fuse (arm64, ppc64,
// s390x, riscv64) than on amd64. A reproduction validated on one machine
// can silently drift on another, the exact cross-framework gap Kundu et al.
// (arXiv:2407.14645) report.
//
// Inside functions annotated //calculonvet:ordered this analyzer flags:
//
//   - any float addition or subtraction with a bare multiplication operand
//     (a*b + c, x += a*b): wrap the product in an explicit conversion —
//     float64(a*b) + c — which the spec defines as a rounding barrier;
//   - any range over a map: iteration order would reorder the accumulation.
//
// The check is per-expression; fusion across statements is possible in
// theory but not performed by gc, and stays out of scope.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "//calculonvet:ordered functions must not contain FMA-fusible float expressions or map iteration",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "ordered") {
				continue
			}
			checkOrderedFunc(pass, fn)
		}
	}
	return nil
}

func checkOrderedFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.RangeStmt:
			if _, ok := pass.Info.TypeOf(e.X).Underlying().(*types.Map); ok {
				pass.Reportf(e.Pos(), "map iteration inside //calculonvet:ordered %s reorders the accumulation", fn.Name.Name)
			}
		case *ast.BinaryExpr:
			if e.Op != token.ADD && e.Op != token.SUB {
				return true
			}
			if !isFloat(pass.Info.TypeOf(e)) {
				return true
			}
			for _, operand := range []ast.Expr{e.X, e.Y} {
				if isBareFloatMul(pass, operand) {
					pass.Reportf(e.Pos(), "a*b %s c may fuse into an FMA and round differently across architectures; wrap the product in an explicit conversion", e.Op)
				}
			}
		case *ast.AssignStmt:
			if e.Tok != token.ADD_ASSIGN && e.Tok != token.SUB_ASSIGN {
				return true
			}
			for _, rhs := range e.Rhs {
				if isFloat(pass.Info.TypeOf(rhs)) && isBareFloatMul(pass, rhs) {
					pass.Reportf(e.Pos(), "x %s a*b may fuse into an FMA and round differently across architectures; wrap the product in an explicit conversion", e.Tok)
				}
			}
		}
		return true
	})
}

// isBareFloatMul reports whether e is a float multiplication not insulated
// by an explicit conversion (a CallExpr conversion is the spec-defined
// rounding barrier, so float64(a*b) is safe; parentheses are not a
// barrier).
func isBareFloatMul(pass *Pass, e ast.Expr) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	return ok && b.Op == token.MUL && isFloat(pass.Info.TypeOf(b))
}
