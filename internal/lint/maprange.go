package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange proves the determinism contract of the search pipeline: results
// are bit-identical regardless of worker count because every accumulation
// and every tie-break runs in a defined order. Go map iteration order is
// deliberately randomized, so a `range` over a map (or a sync.Map.Range
// callback) whose body accumulates floats, appends to an outer slice, or
// sends on a channel injects nondeterminism that no runtime test reliably
// catches — a 5M-strategy sweep can agree with itself for weeks and then
// not.
//
// Two sinks are recognized as order-insensitive and allowed: appending keys
// or values that the enclosing function subsequently sorts (the
// collect-then-sort idiom of PresetNames and benchdiff), and anything under
// a //calculonvet:unordered annotation on the range statement.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flags map iteration whose order can reach results: float accumulation, unsorted appends, channel sends",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, file := range pass.Files {
		suppressed := directiveLines(pass.Fset, file, "unordered")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.RangeStmt:
					if _, ok := pass.Info.TypeOf(stmt.X).Underlying().(*types.Map); !ok {
						return true
					}
					if suppressedAt(pass.Fset, suppressed, stmt.Pos()) {
						return true
					}
					checkUnorderedBody(pass, fn, stmt.Body, stmt.Pos(), stmt.End(), "map iteration")
				case *ast.CallExpr:
					if !isSyncMapRange(pass.Info, stmt) {
						return true
					}
					if suppressedAt(pass.Fset, suppressed, stmt.Pos()) {
						return true
					}
					if lit, ok := stmt.Args[0].(*ast.FuncLit); ok {
						checkUnorderedBody(pass, fn, lit.Body, lit.Pos(), lit.End(), "sync.Map.Range")
					}
				}
				return true
			})
		}
	}
	return nil
}

// isSyncMapRange matches m.Range(func(k, v any) bool { ... }) on *sync.Map.
func isSyncMapRange(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return false
	}
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Map" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// checkUnorderedBody flags order-sensitive sinks inside one iteration body
// whose visit order is undefined. lo..hi spans the iteration construct, so
// objects declared inside it (the loop variables, body locals) are exempt.
func checkUnorderedBody(pass *Pass, fn *ast.FuncDecl, body *ast.BlockStmt, lo, hi token.Pos, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range s.Lhs {
					if !isFloat(pass.Info.TypeOf(lhs)) {
						continue
					}
					if obj := rootObj(pass.Info, lhs); obj != nil && !declaredWithin(obj, lo, hi) {
						pass.Reportf(s.Pos(), "float accumulation into %s in %s order is nondeterministic", obj.Name(), what)
					}
				}
			case token.ASSIGN:
				for i, lhs := range s.Lhs {
					if i >= len(s.Rhs) {
						break
					}
					obj := rootObj(pass.Info, lhs)
					if obj == nil || declaredWithin(obj, lo, hi) {
						continue
					}
					if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isAppendTo(pass.Info, call, obj) {
						if !sortedAfter(pass, fn, obj, hi) {
							pass.Reportf(s.Pos(), "append to %s in %s order is nondeterministic; sort it afterwards or annotate //calculonvet:unordered", obj.Name(), what)
						}
						continue
					}
					if isFloat(pass.Info.TypeOf(lhs)) && mentionsObj(pass.Info, s.Rhs[i], obj) {
						pass.Reportf(s.Pos(), "float accumulation into %s in %s order is nondeterministic", obj.Name(), what)
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send in %s order is nondeterministic for the receiver", what)
		}
		return true
	})
}

// isAppendTo matches append(obj, ...).
func isAppendTo(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return len(call.Args) > 0 && rootObj(info, call.Args[0]) == obj
}

// mentionsObj reports whether e references obj anywhere.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, somewhere after pos in fn, obj is passed to a
// sort/slices sorting function — the collect-then-sort idiom that makes an
// append inside map iteration order-insensitive.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		callee, ok := calleeObj(pass.Info, call).(*types.Func)
		if !ok || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if rootObj(pass.Info, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
