package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DimCheck proves the dimensional soundness of the performance model. The
// whole value of an analytical model (paper §5–§7) is numbers trustworthy
// without hardware; a single Bytes+Seconds or FLOPs/BytesPerSec mix-up
// corrupts every strategy the search ranks, and a *consistently* wrong
// formula slips past both the 1e-9 goldens and the randomized equivalence
// suites. The analyzer assigns dimensions to the internal/units named types
// (Bytes=B, Seconds=s, BytesPerSec=B/s, FLOPs=flop, FLOPsPerSec=flop/s),
// infers dimensions bottom-up through arithmetic in the model packages, and
// reports three violation classes:
//
//   - (a) +, -, and comparisons whose operands carry different dimensions;
//   - (b) a * or / result whose inferred dimension disagrees with the
//     unit-typed slot it lands in — assigned, returned, passed as an
//     argument or receiver, or stored in a struct field (e.g. Bytes/Seconds
//     stored back in Bytes);
//   - (c) conversions that launder a dimension: float64(x) erasing a
//     dimensioned value, or a unit-type conversion re-tagging one concrete
//     dimension as another. Functions annotated //calculonvet:dimensionless
//     (String/format/serialization boundaries) are exempt from (c) only.
//
// Untyped and typed constants are dimensionally polymorphic — they adapt to
// the dimension the context requires — so `3*blockW`, `units.GiB`, and the
// dtype byte-width constants need no ceremony. Converting a dimensionless
// scalar into a unit type mints a quantity (units.Bytes(28*params)); that is
// how values are born and is always allowed. Conversions to integer types
// are outside the algebra: they capture magnitudes for error messages, not
// quantities the model computes with.
var DimCheck = &Analyzer{
	Name: "dimcheck",
	Doc:  "arithmetic over internal/units quantities must be dimensionally consistent, with no laundering conversions",
	Run:  runDimCheck,
}

// dimCheckScoped limits the analyzer to the model packages whose arithmetic
// realizes the paper's equations. Single-segment paths are the golden-test
// fixtures (and the root facade, which only forwards).
func dimCheckScoped(pkgPath string) bool {
	for _, s := range []string{
		"internal/perf",
		"internal/layers",
		"internal/comm",
		"internal/inference",
		"internal/serving",
		"internal/execution",
		"internal/tco",
	} {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return !strings.Contains(pkgPath, "/")
}

// dimen is a dimension: integer exponents over the model's three base
// dimensions. Bytes is {b:1}, BytesPerSec {b:1,s:-1}; the zero vector is a
// dimensionless scalar.
type dimen struct{ b, s, f int8 }

func (d dimen) zero() bool        { return d == dimen{} }
func (d dimen) mul(o dimen) dimen { return dimen{d.b + o.b, d.s + o.s, d.f + o.f} }
func (d dimen) div(o dimen) dimen { return dimen{d.b - o.b, d.s - o.s, d.f - o.f} }

func (d dimen) String() string {
	if d.zero() {
		return "dimensionless"
	}
	var num, den []string
	for _, t := range []struct {
		e   int8
		sym string
	}{{d.b, "B"}, {d.s, "s"}, {d.f, "flop"}} {
		switch {
		case t.e > 0:
			num = append(num, dimPow(t.sym, t.e))
		case t.e < 0:
			den = append(den, dimPow(t.sym, -t.e))
		}
	}
	n := strings.Join(num, "·")
	if n == "" {
		n = "1"
	}
	if len(den) == 0 {
		return n
	}
	return n + "/" + strings.Join(den, "·")
}

func dimPow(sym string, e int8) string {
	switch e {
	case 1:
		return sym
	case 2:
		return sym + "²"
	case 3:
		return sym + "³"
	}
	return fmt.Sprintf("%s^%d", sym, e)
}

// dimVal is the inference result for one expression: a concrete dimension,
// or "poly" — a constant (or a value outside the algebra) that adapts to
// whatever dimension the context requires.
type dimVal struct {
	concrete bool
	d        dimen
}

var polyDim = dimVal{}

func concreteDim(d dimen) dimVal { return dimVal{concrete: true, d: d} }

// unitDim maps a named type from internal/units to its dimension.
func unitDim(t types.Type) (dimen, bool) {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return dimen{}, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return dimen{}, false
	}
	if p := obj.Pkg().Path(); p != "units" && !strings.HasSuffix(p, "internal/units") {
		return dimen{}, false
	}
	switch obj.Name() {
	case "Bytes":
		return dimen{b: 1}, true
	case "Seconds":
		return dimen{s: 1}, true
	case "FLOPs":
		return dimen{f: 1}, true
	case "BytesPerSec":
		return dimen{b: 1, s: -1}, true
	case "FLOPsPerSec":
		return dimen{f: 1, s: -1}, true
	}
	return dimen{}, false
}

// staticDim is the dimension a value carries by virtue of its declared
// type: the unit dimension, the zero vector for other numeric types, and
// poly for everything outside the algebra (bools, strings, structs).
func staticDim(t types.Type) dimVal {
	if t == nil {
		return polyDim
	}
	if d, ok := unitDim(t); ok {
		return concreteDim(d)
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
		return concreteDim(dimen{})
	}
	return polyDim
}

func runDimCheck(pass *Pass) error {
	if !dimCheckScoped(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				c := &dimChecker{
					pass:    pass,
					memo:    map[ast.Expr]dimVal{},
					launder: hasDirective(d.Doc, "dimensionless"),
				}
				var sig *types.Signature
				if obj, ok := pass.Info.Defs[d.Name].(*types.Func); ok {
					sig = obj.Type().(*types.Signature)
				}
				c.checkBody(d.Body, sig)
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				c := &dimChecker{pass: pass, memo: map[ast.Expr]dimVal{}}
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						c.checkValueSpec(vs)
					}
				}
			}
		}
	}
	return nil
}

// dimChecker infers dimensions over one function (or one package-level var
// block). The memo dedups inference and therefore reporting: ast.Inspect
// visits parents before children, so a parent's inference computes and
// caches every subexpression before the walk reaches it.
type dimChecker struct {
	pass    *Pass
	memo    map[ast.Expr]dimVal
	launder bool // inside a //calculonvet:dimensionless function
}

// checkBody walks one function body: sinks add class (b) checks, while the
// generic expression handlers guarantee classes (a) and (c) are reported
// even for expressions that never reach a unit-typed slot.
func (c *dimChecker) checkBody(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if s, ok := c.pass.Info.TypeOf(x).(*types.Signature); ok {
				c.checkBody(x.Body, s)
			}
			return false
		case *ast.AssignStmt:
			c.checkAssign(x)
		case *ast.ReturnStmt:
			c.checkReturn(x, sig)
		case *ast.ValueSpec:
			c.checkValueSpec(x)
		case *ast.CallExpr:
			c.checkCall(x)
		case *ast.CompositeLit:
			c.checkCompositeLit(x)
		case *ast.BinaryExpr:
			c.dimOf(x)
		}
		return true
	})
}

func (c *dimChecker) dimOf(e ast.Expr) dimVal {
	e = ast.Unparen(e)
	if v, ok := c.memo[e]; ok {
		return v
	}
	v := c.infer(e)
	c.memo[e] = v
	return v
}

func (c *dimChecker) infer(e ast.Expr) dimVal {
	if tv, ok := c.pass.Info.Types[e]; ok && tv.Value != nil {
		return polyDim // constants adapt to any dimension
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		return c.inferBinary(x)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return c.dimOf(x.X)
		}
	case *ast.CallExpr:
		if c.pass.Info.Types[x.Fun].IsType() && len(x.Args) == 1 {
			return c.inferConversion(x)
		}
	}
	return staticDim(c.pass.Info.TypeOf(e))
}

func (c *dimChecker) inferBinary(e *ast.BinaryExpr) dimVal {
	switch e.Op {
	case token.ADD, token.SUB:
		x, y := c.dimOf(e.X), c.dimOf(e.Y)
		if x.concrete && y.concrete && x.d != y.d {
			c.pass.Reportf(e.Pos(), "dimension mismatch: %s %s %s", x.d, e.Op, y.d)
		}
		if x.concrete {
			return x
		}
		return y
	case token.MUL:
		x, y := c.dimOf(e.X), c.dimOf(e.Y)
		if !x.concrete && !y.concrete {
			return polyDim
		}
		return concreteDim(x.d.mul(y.d))
	case token.QUO:
		x, y := c.dimOf(e.X), c.dimOf(e.Y)
		if !x.concrete && !y.concrete {
			return polyDim
		}
		return concreteDim(x.d.div(y.d))
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		x, y := c.dimOf(e.X), c.dimOf(e.Y)
		if x.concrete && y.concrete && x.d != y.d {
			c.pass.Reportf(e.Pos(), "dimension mismatch: %s %s %s", x.d, e.Op, y.d)
		}
		return polyDim
	}
	return staticDim(c.pass.Info.TypeOf(e))
}

// inferConversion handles T(x) conversions, the only place dimensions can
// be created or destroyed.
func (c *dimChecker) inferConversion(call *ast.CallExpr) dimVal {
	target := c.pass.Info.TypeOf(call)
	od := c.dimOf(call.Args[0])
	if td, ok := unitDim(target); ok {
		// Minting a quantity from a scalar is allowed (and a same-dimension
		// conversion is the spec-defined rounding barrier floatorder asks
		// for); re-tagging one concrete dimension as another is laundering.
		if od.concrete && !od.d.zero() && od.d != td && !c.launder {
			c.pass.Reportf(call.Pos(), "conversion re-tags a value of dimension %s as %s (dimension %s)",
				od.d, c.typeName(target), td)
		}
		return concreteDim(td)
	}
	if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
		if od.concrete && !od.d.zero() && !c.launder {
			c.pass.Reportf(call.Pos(), "conversion to %s launders dimension %s; use a units helper (Ratio, Rate, Over, At) or annotate the function //calculonvet:dimensionless",
				c.typeName(target), od.d)
		}
		return concreteDim(dimen{})
	}
	// Integer and non-numeric conversions are outside the algebra.
	return polyDim
}

func (c *dimChecker) checkAssign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != len(s.Rhs) {
			return // tuple assignment: dimensions come from static types
		}
		for i := range s.Lhs {
			c.checkSink(s.Rhs[i], c.pass.Info.TypeOf(s.Lhs[i]), "assigned to")
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		lt := staticDim(c.pass.Info.TypeOf(s.Lhs[0]))
		rd := c.dimOf(s.Rhs[0])
		if lt.concrete && rd.concrete && lt.d != rd.d {
			c.pass.Reportf(s.Pos(), "dimension mismatch: %s %s %s", lt.d, s.Tok, rd.d)
		}
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		// x *= y and x /= y keep x's declared dimension only when y is
		// dimensionless; scale by counts through Times/DivN instead.
		if _, unit := unitDim(c.pass.Info.TypeOf(s.Lhs[0])); !unit {
			return
		}
		rd := c.dimOf(s.Rhs[0])
		if rd.concrete && !rd.d.zero() {
			c.pass.Reportf(s.Pos(), "%s by a value of dimension %s changes the left side's dimension; use Times/DivN or an explicit quotient",
				s.Tok, rd.d)
		}
	}
}

func (c *dimChecker) checkReturn(s *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(s.Results) == 0 || len(s.Results) != sig.Results().Len() {
		return
	}
	for i, r := range s.Results {
		c.checkSink(r, sig.Results().At(i).Type(), "returned as")
	}
}

func (c *dimChecker) checkValueSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, v := range vs.Values {
		c.checkSink(v, c.pass.Info.TypeOf(vs.Names[i]), "assigned to")
	}
}

// checkCall applies class (b) to argument and receiver positions of real
// calls, and routes conversions into the inference (class (c)).
func (c *dimChecker) checkCall(call *ast.CallExpr) {
	if c.pass.Info.Types[call.Fun].IsType() {
		c.dimOf(call)
		return
	}
	sig, ok := c.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // builtins: operands are still covered by the generic walk
	}
	params := sig.Params()
	for i, a := range call.Args {
		if i >= params.Len() {
			break
		}
		pt := params.At(i).Type()
		if sig.Variadic() && i == params.Len()-1 {
			if call.Ellipsis.IsValid() {
				c.checkSink(a, pt, "passed as")
				continue
			}
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
			for _, rest := range call.Args[i:] {
				c.checkSink(rest, pt, "passed as")
			}
			break
		}
		c.checkSink(a, pt, "passed as")
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := c.pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					c.checkSink(sel.X, recv.Type(), "used as receiver of")
				}
			}
		}
	}
}

func (c *dimChecker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Struct:
		fields := map[string]types.Type{}
		for i := 0; i < u.NumFields(); i++ {
			fields[u.Field(i).Name()] = u.Field(i).Type()
		}
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					if ft, ok := fields[key.Name]; ok {
						c.checkSink(kv.Value, ft, "stored in field "+key.Name+" as")
					}
				}
				continue
			}
			if i < u.NumFields() {
				c.checkSink(el, u.Field(i).Type(), "stored in field "+u.Field(i).Name()+" as")
			}
		}
	case *types.Slice:
		for _, el := range lit.Elts {
			c.checkLitElem(el, u.Elem())
		}
	case *types.Array:
		for _, el := range lit.Elts {
			c.checkLitElem(el, u.Elem())
		}
	case *types.Map:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.checkSink(kv.Value, u.Elem(), "stored in")
			}
		}
	}
}

func (c *dimChecker) checkLitElem(el ast.Expr, elem types.Type) {
	if kv, ok := el.(*ast.KeyValueExpr); ok {
		el = kv.Value
	}
	c.checkSink(el, elem, "stored in")
}

// checkSink reports class (b): e's inferred dimension disagrees with the
// dimension of the unit-typed slot it lands in.
func (c *dimChecker) checkSink(e ast.Expr, target types.Type, ctx string) {
	td, unit := unitDim(target)
	ed := c.dimOf(e)
	if !unit {
		return
	}
	if ed.concrete && ed.d != td {
		c.pass.Reportf(e.Pos(), "value of dimension %s %s %s (dimension %s)",
			ed.d, ctx, c.typeName(target), td)
	}
}

func (c *dimChecker) typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
