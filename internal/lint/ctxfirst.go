package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFirst proves the cancellation contract of PR 1: every search stops
// within one work chunk of ctx cancellation without leaking goroutines.
// That holds only if (1) contexts ride first in every signature so callers
// cannot forget them, (2) blocking exported entry points of the search and
// experiment engines accept a context at all, (3) every select that a loop
// re-enters offers <-ctx.Done() so a stalled channel peer cannot wedge a
// worker, and (4) library code never mints its own background context,
// which would detach a subtree of work from the caller's cancellation.
// Rule 1 applies module-wide; rules 2–4 are scoped to the packages that own
// goroutines and channel plumbing (internal/search, internal/experiments,
// internal/serving).
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must come first, blocking exported funcs must take one, loops must select on ctx.Done()",
	Run:  runCtxFirst,
}

// ctxScoped reports whether the package carries the concurrency rules.
// Single-segment paths are the golden-test fixtures.
func ctxScoped(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/search") ||
		strings.HasSuffix(pkgPath, "internal/experiments") ||
		strings.HasSuffix(pkgPath, "internal/serving") ||
		!strings.Contains(pkgPath, "/")
}

func runCtxFirst(pass *Pass) error {
	scoped := ctxScoped(pass.PkgPath)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxPosition(pass, fn)
			if fn.Body == nil || !scoped {
				continue
			}
			if fn.Name.IsExported() && !funcHasCtxParam(pass.Info, fn.Type) && canBlock(pass, fn.Body) {
				pass.Reportf(fn.Pos(), "exported %s can block (channels or goroutines in its body) but takes no context.Context", fn.Name.Name)
			}
			checkLoopSelects(pass, fn)
			checkNoBackground(pass, fn)
		}
	}
	return nil
}

// checkCtxPosition enforces ctx-first on any function that takes a context.
func checkCtxPosition(pass *Pass, fn *ast.FuncDecl) {
	params := fn.Type.Params
	if params == nil {
		return
	}
	pos := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.Info.TypeOf(field.Type)) && pos != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fn.Name.Name)
		}
		pos += n
	}
}

// canBlock reports whether the body performs channel operations, selects, or
// launches goroutines — the operations that can park a caller indefinitely.
func canBlock(pass *Pass, body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt, *ast.GoStmt:
			blocking = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				blocking = true
			}
		case *ast.RangeStmt:
			if _, ok := pass.Info.TypeOf(e.X).Underlying().(*types.Chan); ok {
				blocking = true
			}
		}
		return !blocking
	})
	return blocking
}

// checkLoopSelects flags selects that a for-loop re-enters without offering
// <-ctx.Done(), inside functions that do have a context in scope.
func checkLoopSelects(pass *Pass, fn *ast.FuncDecl) {
	if !funcHasCtxParam(pass.Info, fn.Type) {
		return
	}
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		inLoop := false
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			}
		}
		if inLoop && !selectHasCtxDone(pass, sel) {
			pass.Reportf(sel.Pos(), "select inside a loop has no <-ctx.Done() case; a stalled peer would wedge this worker past cancellation")
		}
		return true
	})
}

// selectHasCtxDone reports whether any case receives from the Done channel
// of a context.Context value.
func selectHasCtxDone(pass *Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		found := false
		ast.Inspect(comm.Comm, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			s, ok := call.Fun.(*ast.SelectorExpr)
			if ok && s.Sel.Name == "Done" && isContextType(pass.Info.TypeOf(s.X)) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkNoBackground flags context.Background()/TODO() in scoped library
// code. The one legitimate shape is the nil-default at the top of a
// function that already takes a ctx parameter ("if ctx == nil { ctx =
// context.Background() }"); anything else detaches work from the caller.
func checkNoBackground(pass *Pass, fn *ast.FuncDecl) {
	hasCtx := funcHasCtxParam(pass.Info, fn.Type)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"Background", "TODO"} {
			if calleeIsPkgFunc(pass.Info, call, "context", name) && !hasCtx {
				pass.Reportf(call.Pos(), "context.%s() in library code detaches work from the caller's cancellation; accept a ctx parameter instead", name)
			}
		}
		return true
	})
}
