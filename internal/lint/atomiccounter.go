package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCounter proves the counter invariant behind RunnerStats and
// ProgressSnapshot: the live evaluated/feasible/prescreened/cache-hit
// counters are written by every worker goroutine and read concurrently by
// progress tickers and signal handlers, so a single plain load or store on
// one of them is a data race that -race only catches when the schedule
// cooperates. Fields carrying a //calculonvet:counter annotation (on the
// field or on the owning struct's doc) must therefore be touched
// exclusively through sync/atomic:
//
//   - fields of a sync/atomic value type (atomic.Int64 & friends) may only
//     appear as the receiver of an atomic method call — never copied,
//     assigned, or address-escaped into non-atomic code;
//   - fields of a plain integer type may only appear as &f arguments to
//     sync/atomic package functions — mixed plain/atomic access is exactly
//     the bug class the annotation exists to ban.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "//calculonvet:counter fields may only be accessed via sync/atomic, never mixed plain/atomic",
	Run:  runAtomicCounter,
}

// atomicMethods are the sync/atomic value-type methods that constitute
// legitimate access.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

func runAtomicCounter(pass *Pass) error {
	counters := collectCounterFields(pass)
	if len(counters) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || !counters[obj] {
				return true
			}
			if !atomicUse(pass, sel, stack) {
				pass.Reportf(sel.Pos(), "counter field %s (//calculonvet:counter) must be accessed via sync/atomic only", obj.Name())
			}
			return true
		})
	}
	return nil
}

// collectCounterFields gathers the field objects annotated as counters in
// this package, either per field or via the struct's doc comment.
func collectCounterFields(pass *Pass) map[types.Object]bool {
	counters := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				structWide := hasDirective(gd.Doc, "counter") || hasDirective(ts.Doc, "counter") || hasDirective(ts.Comment, "counter")
				for _, field := range st.Fields.List {
					if !structWide && !hasDirective(field.Doc, "counter") && !hasDirective(field.Comment, "counter") {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							counters[obj] = true
						}
					}
				}
			}
		}
	}
	return counters
}

// atomicUse reports whether the selector access to a counter field is one
// of the sanctioned shapes.
func atomicUse(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	if isAtomicValueType(pass.Info.TypeOf(sel)) {
		// v.field.Method(...): the parent is the method selector, whose own
		// parent must be the call.
		m, ok := parent.(*ast.SelectorExpr)
		if !ok || !atomicMethods[m.Sel.Name] || len(stack) < 2 {
			return false
		}
		call, ok := stack[len(stack)-2].(*ast.CallExpr)
		return ok && call.Fun == m
	}
	// Plain integer counter: must appear as &field passed to atomic.F(...).
	addr, ok := parent.(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND || len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calleeObj(pass.Info, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicValueType reports whether t is one of sync/atomic's value types.
func isAtomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
