package lint_test

import (
	"testing"

	"calculon/internal/lint"
	"calculon/internal/lint/linttest"
)

// Each analyzer runs over its fixture package in testdata/src, which seeds
// every violation shape the analyzer knows alongside the clean idioms it must
// not flag; expectations live in `// want` comments next to the seeded lines.

func TestMapRange(t *testing.T) {
	linttest.Run(t, lint.MapRange, "testdata/src/maprange")
}

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, lint.CtxFirst, "testdata/src/ctxfirst")
}

func TestAtomicCounter(t *testing.T) {
	linttest.Run(t, lint.AtomicCounter, "testdata/src/atomiccounter")
}

func TestFloatOrder(t *testing.T) {
	linttest.Run(t, lint.FloatOrder, "testdata/src/floatorder")
}

func TestNakedErr(t *testing.T) {
	linttest.Run(t, lint.NakedErr, "testdata/src/nakederr")
}

func TestDimCheck(t *testing.T) {
	linttest.Run(t, lint.DimCheck, "testdata/src/dimcheck")
}

// TestByName pins the flag-parsing surface of the suite.
func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 6 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all 6", len(all), err)
	}
	two, err := lint.ByName("maprange, floatorder")
	if err != nil || len(two) != 2 || two[0].Name != "maprange" || two[1].Name != "floatorder" {
		t.Fatalf("ByName(maprange, floatorder) = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error")
	}
}
