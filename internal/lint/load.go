package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages resolves the patterns with the go tool (run in dir), parses
// the matched packages, and type-checks them against the compile-time export
// data of their dependencies — the same artifacts `go build` produces, so
// analysis sees exactly the types the compiler does. Test files are not
// loaded; the invariants calculonvet proves live in shipping code.
//
// Everything here is standard library: `go list -export -deps -json`
// supplies both the package graph and the .a export files that
// go/importer's gc importer reads back.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses every .go file in dir as one package (ignoring build tags
// and test files) and type-checks it, resolving its imports through fresh
// export data from the go tool. This is the analysistest-style entry point
// the golden tests use on testdata packages that are invisible to ./...
// patterns.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var syntax []*ast.File
	importSet := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		syntax = append(syntax, af)
		for _, im := range af.Imports {
			path := strings.Trim(im.Path.Value, `"`)
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkgPath := filepath.Base(dir)
	return checkParsed(fset, exportImporter(fset, exports), pkgPath, dir, syntax)
}

// goList runs `go list -e -export -deps -json` and decodes the package
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		p := &listedPackage{}
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// exportImporter builds a gc-export-data importer backed by the lookup map
// from go list. One importer is shared across all target packages so their
// dependency *types.Packages are identical objects.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// check parses the files and hands them to checkParsed.
func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		syntax = append(syntax, af)
	}
	return checkParsed(fset, imp, pkgPath, dir, syntax)
}

// checkParsed type-checks one package's parsed files.
func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, syntax []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Syntax:  syntax,
		Types:   tpkg,
		Info:    info,
	}, nil
}
