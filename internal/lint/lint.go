// Package lint is calculonvet's analysis core: a small, dependency-free
// counterpart of golang.org/x/tools/go/analysis built on the standard
// library's go/ast and go/types. It exists because the invariants the
// search engines rest on — deterministic float accumulation order, ctx-first
// cancellation, atomic-only counter access, FMA-safe ordered arithmetic,
// no silently dropped errors around config I/O, dimensionally sound
// quantity arithmetic — are contracts that randomized runtime tests can
// only sample; the analyzers here prove them over every function at
// compile time and fail CI on violations.
//
// The package defines the Analyzer/Pass/Diagnostic trio (mirroring
// go/analysis closely enough that a future migration to the real
// multichecker is mechanical), a package loader that type-checks the module
// from source using `go list -export` compile artifacts, and the source
// annotations the analyzers honor:
//
//	//calculonvet:counter    on a struct field (or a struct's doc comment):
//	                         the field is a shared counter and may only be
//	                         touched through sync/atomic.
//	//calculonvet:ordered    on a function: its float arithmetic is part of
//	                         a proof that depends on exact accumulation
//	                         order and rounding (docs/MODEL.md §13), so map
//	                         iteration and FMA-fusible expressions are
//	                         rejected.
//	//calculonvet:unordered  on (or immediately above) a map-range statement
//	                         or sync.Map.Range call: the iteration provably
//	                         feeds only order-insensitive sinks.
//	//calculonvet:dimensionless
//	                         on a function: it is a format/serialization
//	                         boundary, so dimcheck permits conversions that
//	                         erase a dimension (float64(bytes) fed to a
//	                         formatter) inside it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run receives a fully type-checked
// package and reports violations through the Pass.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and flags.
	Name string
	// Doc is a one-line description of the invariant the analyzer proves.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Diagnostic is one reported violation, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the combined
// diagnostics in deterministic (file, line, column, analyzer) order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				PkgPath:  pkg.PkgPath,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full calculonvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{MapRange, CtxFirst, AtomicCounter, FloatOrder, NakedErr, DimCheck}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// --- annotation scanning -------------------------------------------------

const directivePrefix = "//calculonvet:"

// hasDirective reports whether the comment group carries the directive
// (e.g. name "ordered" matches "//calculonvet:ordered").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directivePrefix+name {
			return true
		}
	}
	return false
}

// directiveLines returns the set of lines in file on which the directive
// appears, so statement-level annotations ("//calculonvet:unordered") can be
// matched against the annotated line or the line directly above it.
func directiveLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == directivePrefix+name {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// suppressedAt reports whether a directive line covers pos: same line or the
// line immediately above.
func suppressedAt(fset *token.FileSet, lines map[int]bool, pos token.Pos) bool {
	l := fset.Position(pos).Line
	return lines[l] || lines[l-1]
}

// --- shared type and AST helpers ----------------------------------------

// isFloat reports whether t is (or is a named type over) a floating-point
// type — units.Seconds, units.Bytes and friends included.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// rootObj resolves the leftmost identifier of an lvalue expression (x,
// x.f.g, x[i]) to its object, or nil when the root is not a plain
// identifier.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi] —
// used to separate loop-local accumulators from ones visible outside.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}

// calleeObj resolves a call's callee to its types object (function or
// method), or nil for indirect calls and type conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel := info.Selections[f]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[f.Sel]
	}
	return nil
}

// calleeIsPkgFunc reports whether the call is pkgpath.name(...).
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// errorReturningCall reports whether the call produces an error as its only
// or last result. Type conversions and builtins report false.
func errorReturningCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		if info.Types[call.Fun].IsType() {
			return false // conversion
		}
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// funcHasCtxParam reports whether the function type takes a context.Context
// anywhere in its parameter list.
func funcHasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if isContextType(info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// walkStack traverses root calling fn with each node and the stack of its
// ancestors (outermost first, excluding the node itself). Returning false
// from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}
