package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedErr guards the config and CLI boundary, where a silently dropped
// error turns into a wrong experiment rather than a crash: a truncated CPU
// profile from an unchecked Close, a half-written scenario file, a JSON
// round-trip that quietly produced zero values. Scoped to internal/config
// and the cmd/ tree (library hot paths return errors by construction and
// are exercised by the equivalence tests), it flags:
//
//   - expression statements that discard an error-returning call (the fmt
//     print family is exempt, per errcheck convention);
//   - deferred (*os.File).Close, whose error — the one that reports a failed
//     flush of buffered writes — vanishes; close explicitly on the write
//     path or check it in a defer closure;
//   - `_ =` discards of errors from encoding/json or the config package,
//     the round-trips whose failure modes are silent zero values.
var NakedErr = &Analyzer{
	Name: "nakederr",
	Doc:  "no silently discarded errors from config parsing, JSON round-trips, and file lifecycles in cmd/ and internal/config",
	Run:  runNakedErr,
}

// nakedErrScoped limits the analyzer to the packages whose dropped errors
// corrupt results silently: the CLIs, config parsing, and the stateful
// subsystems (result persistence, the HTTP service, serving search).
// Single-segment paths are the golden-test fixtures.
func nakedErrScoped(pkgPath string) bool {
	return strings.Contains(pkgPath, "/cmd/") ||
		strings.HasPrefix(pkgPath, "cmd/") ||
		strings.HasSuffix(pkgPath, "internal/config") ||
		strings.HasSuffix(pkgPath, "internal/resultstore") ||
		strings.HasSuffix(pkgPath, "internal/service") ||
		strings.HasSuffix(pkgPath, "internal/serving") ||
		!strings.Contains(pkgPath, "/")
}

func runNakedErr(pass *Pass) error {
	if !nakedErrScoped(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || !errorReturningCall(pass.Info, call) || exemptCallee(pass, call) {
					return true
				}
				pass.Reportf(s.Pos(), "%s returns an error that is silently discarded", calleeName(pass, call))
			case *ast.DeferStmt:
				if isFileClose(pass, s.Call) {
					pass.Reportf(s.Pos(), "deferred Close on an *os.File discards the error that reports a failed write-back; close explicitly on the success path")
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, s)
			}
			return true
		})
	}
	return nil
}

// exemptCallee excludes the fmt print family, whose errors are discarded by
// near-universal convention, and methods on *bytes.Buffer and
// *strings.Builder, which are documented never to return an error (errcheck
// ships the same default exclusions).
func exemptCallee(pass *Pass, call *ast.CallExpr) bool {
	fn, ok := calleeObj(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") ||
		strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if p, ok := sig.Recv().Type().(*types.Pointer); ok {
			if n, ok := p.Elem().(*types.Named); ok && n.Obj().Pkg() != nil {
				path, name := n.Obj().Pkg().Path(), n.Obj().Name()
				if path == "bytes" && name == "Buffer" || path == "strings" && name == "Builder" {
					return true
				}
			}
		}
	}
	return false
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn, ok := calleeObj(pass.Info, call).(*types.Func); ok {
		return fn.Name()
	}
	return "call"
}

// isFileClose matches x.Close() where x is an *os.File.
func isFileClose(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "File" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "os"
}

// checkBlankErrAssign flags assignments that blank out the error of a
// json/config round-trip: `_ = f(...)` and `v, _ := f(...)` where the blank
// sits in the (last) error position.
func checkBlankErrAssign(pass *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	last, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || !errorReturningCall(pass.Info, call) {
		return
	}
	fn, ok := calleeObj(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg == "encoding/json" || strings.HasSuffix(pkg, "internal/config") || pkg == "config" {
		pass.Reportf(s.Pos(), "error from %s.%s is discarded with _ ; a failed round-trip yields silent zero values", pkg, fn.Name())
	}
}
