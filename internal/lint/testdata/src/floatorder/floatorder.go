// Package floatorder is the golden-test fixture for the floatorder analyzer.
package floatorder

// bytes mirrors the model's named float types (units.Bytes et al.).
type bytes float64

// fma is the canonical hazard: a*b+c may fuse into one rounding.
//
//calculonvet:ordered
func fma(a, b, c float64) float64 {
	return a*b + c // want "may fuse into an FMA"
}

// safe insulates the product behind an explicit conversion, the spec-defined
// rounding barrier.
//
//calculonvet:ordered
func safe(a, b, c float64) float64 {
	return float64(a*b) + c
}

// parens shows that parentheses are NOT a barrier.
//
//calculonvet:ordered
func parens(a, b, c float64) float64 {
	return (a * b) + c // want "may fuse into an FMA"
}

// compound catches the assignment spelling of the same hazard.
//
//calculonvet:ordered
func compound(t, a, b float64) float64 {
	t += a * b // want "may fuse into an FMA"
	return t
}

// named proves the check sees through named float types.
//
//calculonvet:ordered
func named(k, n bytes) bytes {
	return k*n + 1 // want "may fuse into an FMA"
}

// mapAccum would accumulate in randomized order inside an ordered proof.
//
//calculonvet:ordered
func mapAccum(xs map[string]float64) float64 {
	var t float64
	for _, v := range xs { // want "map iteration inside //calculonvet:ordered mapAccum"
		t = t + v
	}
	return t
}

// unannotated code is out of scope even when fusible: the annotation marks
// exactly the functions whose digits a proof pins.
func unannotated(a, b, c float64) float64 {
	return a*b + c
}
