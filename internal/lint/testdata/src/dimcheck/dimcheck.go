// Package dimcheck is the golden-test fixture for the dimcheck analyzer.
package dimcheck

import (
	"fmt"

	"calculon/internal/units"
)

// --- class (a): +, -, and comparisons mixing dimensions -----------------

func mixedAdd(b units.Bytes, t units.Seconds) units.Seconds {
	return t + units.Seconds(b) // want "conversion re-tags a value of dimension B"
}

func mixedSub(b units.Bytes, bw units.BytesPerSec) {
	_ = b - units.Bytes(bw) // want "conversion re-tags a value of dimension B/s"
	_ = b + b.Times(2)      // ok: same dimension
}

func mixedAddRaw(f units.FLOPs, t units.Seconds, n int) {
	_ = t + units.Seconds(n)*t          // want "dimension mismatch: s . s²"
	_ = f/units.FLOPs(2) + f.Times(0.5) // ok: constants are polymorphic, so the divisor keeps the dimension
}

func mixedCompare(b units.Bytes, t units.Seconds) bool {
	return float64(b) > float64(t) // want "launders dimension B" "launders dimension s"
}

func mixedCompareUnits(t units.Seconds, bw units.BytesPerSec, n int) bool {
	if t > 0 { // ok: constants are polymorphic
		return true
	}
	return t*units.Seconds(n) > units.Seconds(float64(bw)) // want "dimension mismatch: s² > s" "launders dimension B/s"
}

func mixedAccum(total units.Seconds, b units.Bytes, bw units.BytesPerSec) units.Seconds {
	total += b.Over(bw) // ok: B/(B/s) = s through a typed helper
	total += b.Div(bw)  // ok: the conventions-carrying spelling
	total -= units.Seconds(0)
	return total
}

// --- class (b): * and / results landing in a disagreeing unit type ------

func mulIntoBytes(w units.Bytes, n int) units.Bytes {
	return w * units.Bytes(n) // want "value of dimension B² returned as units.Bytes"
}

func mulIntoBytesOK(w units.Bytes, n int) units.Bytes {
	return w.Times(float64(n)) // ok: scaling by a dimensionless count
}

func divLaunders(b units.Bytes, g int) {
	chunk := b / units.Bytes(g) // want "value of dimension dimensionless assigned to units.Bytes"
	_ = chunk
	ok := b.DivN(float64(g)) // ok: dividing by a count keeps the dimension
	_ = ok
}

func rateStoredAsTime(b units.Bytes, t units.Seconds) units.Seconds {
	return units.Seconds(float64(b)) / t // want "launders dimension B" "value of dimension dimensionless returned as units.Seconds"
}

func quotientAsSeconds(t units.Seconds, bw units.BytesPerSec) units.Seconds {
	return t / units.Seconds(float64(bw)) // want "value of dimension dimensionless returned as units.Seconds" "launders dimension B/s"
}

type breakdown struct {
	Time units.Seconds
	Mem  units.Bytes
}

func fieldSink(t units.Seconds, n int) breakdown {
	return breakdown{
		Time: units.Seconds(n) * t, // want "value of dimension s² stored in field Time"
		Mem:  0,                    // ok: constant
	}
}

func argSink(t units.Seconds, n int) units.Seconds {
	return minSec(t, t*units.Seconds(n)) // want "value of dimension s² passed as"
}

func minSec(a, b units.Seconds) units.Seconds {
	if a < b {
		return a
	}
	return b
}

func receiverSink(b units.Bytes, bw units.BytesPerSec, n int) units.Seconds {
	return (b * units.Bytes(n)).Div(bw) // want "value of dimension B² used as receiver of"
}

func opAssignSink(t units.Seconds, hop units.Seconds) units.Seconds {
	t *= hop // want "by a value of dimension s changes the left side"
	t /= 2   // ok: constant divisor
	return t
}

// --- class (c): laundering conversions ----------------------------------

func launder(t units.Seconds) float64 {
	return float64(t) // want "conversion to float64 launders dimension s"
}

func launderOK(t units.Seconds, u units.Seconds) float64 {
	return t.Ratio(u) // ok: a dimensionless quotient through a typed helper
}

func retag(b units.Bytes) units.FLOPs {
	return units.FLOPs(b) // want "conversion re-tags a value of dimension B as units.FLOPs"
}

func mint(params float64, elems int) units.Bytes {
	return units.Bytes(28*params) + units.Bytes(elems) // ok: minting from scalars
}

func barrier(blockW, weights units.Bytes) units.Bytes {
	return units.Bytes(3*blockW) + weights // ok: same-dimension conversion is a rounding barrier
}

// String is a genuine format boundary: erasing dimensions to feed a
// formatter is the annotation's purpose.
//
//calculonvet:dimensionless
func render(t units.Seconds, b units.Bytes) string {
	return fmt.Sprintf("%.3f s, %.0f bytes", float64(t), float64(b)) // ok: annotated boundary
}

// capture keeps magnitudes for a deferred error message; integer
// conversions are outside the algebra.
func capture(b units.Bytes) int64 {
	return int64(b) // ok: integer conversions are out of scope
}

// poly proves constants adapt to any dimension, typed or untyped.
func poly(w units.Bytes) units.Bytes {
	const dtype units.Bytes = 2
	if w > 80*units.GiB {
		return 3 * w * dtype / dtype
	}
	return w.Times(3)
}
