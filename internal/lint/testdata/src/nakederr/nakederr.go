// Package nakederr is the golden-test fixture for the nakederr analyzer.
package nakederr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// write drops every error a file write can produce.
func write(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // want "deferred Close on an .os.File discards the error"
	f.Write(data)   // want "Write returns an error that is silently discarded"
	fmt.Println("wrote", path)
}

// decode blanks the unmarshal error, yielding silent zero values.
func decode(data []byte) map[string]int {
	var out map[string]int
	_ = json.Unmarshal(data, &out) // want "error from encoding/json.Unmarshal is discarded"
	return out
}

// marshal blanks the error in a multi-value assignment.
func marshal(v any) []byte {
	b, _ := json.Marshal(v) // want "error from encoding/json.Marshal is discarded"
	return b
}

// bail discards the Close error on an early-exit path.
func bail(f *os.File, err error) error {
	if err != nil {
		f.Close() // want "Close returns an error that is silently discarded"
		return err
	}
	return nil
}

// buffered proves the in-memory writers are exempt: *bytes.Buffer and
// *strings.Builder are documented never to return an error.
func buffered(rows [][]byte) string {
	var buf bytes.Buffer
	var sb strings.Builder
	for _, row := range rows {
		buf.Write(row)      // ok: bytes.Buffer never fails
		buf.WriteByte('\n') // ok
		sb.Write(row)       // ok: strings.Builder never fails
	}
	return buf.String() + sb.String()
}

// checked is the clean shape: every error reaches the caller.
func checked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // want "Close returns an error that is silently discarded"
		return err
	}
	return f.Close()
}
