// Package ctxfirst is the golden-test fixture for the ctxfirst analyzer.
package ctxfirst

import "context"

// Search blocks on its work channel but accepts no context, so a caller
// cannot cancel it.
func Search(work chan int) int { // want "exported Search can block .* but takes no context.Context"
	return <-work
}

// Misplaced buries the context behind a data parameter.
func Misplaced(n int, ctx context.Context) { // want "context.Context must be the first parameter of Misplaced"
	_ = n
	<-ctx.Done()
}

// Drain re-enters a select that never offers ctx.Done, so a stalled peer
// wedges it past cancellation.
func Drain(ctx context.Context, work chan int) {
	for {
		select { // want "select inside a loop has no <-ctx.Done"
		case v := <-work:
			if v < 0 {
				return
			}
		}
	}
}

// Good is the shape the analyzer exists to enforce.
func Good(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-work:
			if v < 0 {
				return
			}
		}
	}
}

// Detached mints a context of its own instead of accepting one.
func Detached(work chan int, f func(context.Context, chan int)) {
	f(context.Background(), work) // want "in library code detaches work"
}

// DetachedTODO is the TODO spelling of the same escape.
func DetachedTODO(work chan int, f func(context.Context, chan int)) {
	f(context.TODO(), work) // want "in library code detaches work"
}

// Defaulted may default a nil context because the caller still owns the real
// one.
func Defaulted(ctx context.Context, work chan int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-ctx.Done():
		return 0
	case v := <-work:
		return v
	}
}

// drain is unexported: internal helpers inherit their caller's context
// discipline and are out of scope for the exported-entry-point rule.
func drain(work chan int) int {
	return <-work
}
