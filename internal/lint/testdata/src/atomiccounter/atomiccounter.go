// Package atomiccounter is the golden-test fixture for the atomiccounter
// analyzer.
package atomiccounter

import "sync/atomic"

// stats mixes annotated counters with an ordinary field.
type stats struct {
	//calculonvet:counter
	evaluated atomic.Int64
	//calculonvet:counter
	hits int64
	name string
}

// counters demonstrates the struct-wide form of the annotation.
//
//calculonvet:counter
type counters struct {
	pruned atomic.Int64
}

// sanctioned exercises every allowed access shape.
func sanctioned(s *stats, c *counters) int64 {
	s.evaluated.Add(1)
	atomic.AddInt64(&s.hits, 1)
	c.pruned.Store(0)
	s.name = "ok" // unannotated field: plain access is fine
	return s.evaluated.Load() + atomic.LoadInt64(&s.hits)
}

// violations exercises every banned shape.
func violations(s *stats, c *counters) int64 {
	s.hits++    // want "counter field hits .* must be accessed via sync/atomic only"
	x := s.hits // want "counter field hits .* must be accessed via sync/atomic only"
	copied := s.evaluated.Load() + 0
	_ = copied
	v := s.evaluated // want "counter field evaluated .* must be accessed via sync/atomic only"
	_ = v.Load()
	p := &c.pruned // want "counter field pruned .* must be accessed via sync/atomic only"
	_ = p
	return x
}
