// Package maprange is the golden-test fixture for the maprange analyzer.
package maprange

import (
	"sort"
	"sync"
)

// sumValues accumulates floats in map order — the canonical violation.
func sumValues(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation into total in map iteration order is nondeterministic"
	}
	return total
}

// sumSelfAssign is the same bug spelled without a compound token.
func sumSelfAssign(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want "float accumulation into total in map iteration order is nondeterministic"
	}
	return total
}

// collectUnsorted appends in map order and never restores an order.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys in map iteration order is nondeterministic"
	}
	return keys
}

// collectSorted is the sanctioned collect-then-sort idiom.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sendAll exposes iteration order to the channel's receiver.
func sendAll(m map[string]int, out chan<- int) {
	for _, v := range m {
		out <- v // want "channel send in map iteration order is nondeterministic"
	}
}

// annotated carries the escape hatch for an order-insensitive sink.
func annotated(m map[string]float64) float64 {
	var max float64
	//calculonvet:unordered
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// syncMapSum accumulates through a sync.Map.Range callback.
func syncMapSum(m *sync.Map) float64 {
	var total float64
	m.Range(func(_, v any) bool {
		total += v.(float64) // want "float accumulation into total in sync.Map.Range order is nondeterministic"
		return true
	})
	return total
}

// sliceSum iterates a slice: ordered, no diagnostics.
func sliceSum(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

// localAccum declares its accumulator inside the loop body: invisible outside
// a single iteration, so order cannot reach it.
func localAccum(m map[string][]float64) []float64 {
	out := make([]float64, 0, len(m))
	for k := range m {
		var rowSum float64
		for _, v := range m[k] {
			rowSum += v
		}
		_ = rowSum
	}
	return out
}
