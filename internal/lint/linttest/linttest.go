// Package linttest is the golden-test harness for calculonvet's analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest: a testdata
// package annotates the lines where diagnostics are expected with
//
//	code() // want "regexp" "another regexp"
//
// and Run type-checks the package, applies one analyzer, and fails the test
// on any unexpected diagnostic or unmatched expectation. Expectations match
// by (file, line) and a regexp over the message, so tests pin behavior, not
// exact wording.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"calculon/internal/lint"
)

// expectation is one `// want` regexp waiting for a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the package rooted at dir, applies the analyzer, and compares
// diagnostics against the `// want` annotations.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// wantRE extracts the quoted regexps of a `// want` comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans every comment of the package for want annotations.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// matchWant consumes the first unused expectation matching the diagnostic.
func matchWant(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

// Diagnose is a convenience for negative smoke tests: it runs the analyzers
// over the package at dir and returns the rendered diagnostics.
func Diagnose(t *testing.T, dir string, analyzers ...*lint.Analyzer) []string {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprint(d))
	}
	return out
}
