package config

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/serving"
	"calculon/internal/system"
)

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestShippedScenariosResolveAndRun loads every training JSON scenario
// asset in configs/scenarios, resolves it, and runs the performance model on
// it. Files named serving-* hold ServingScenario specs and have their own
// test below.
func TestShippedScenariosResolveAndRun(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "configs", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected ≥3 shipped scenarios, found %d", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), "serving-") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		sc, err := Load[Scenario](path)
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		m, sys, st, err := sc.Resolve()
		if err != nil {
			t.Errorf("%s: resolve: %v", e.Name(), err)
			continue
		}
		res, err := perf.Run(m, sys, st)
		if err != nil {
			t.Errorf("%s: run: %v", e.Name(), err)
			continue
		}
		if res.BatchTime <= 0 || res.SampleRate <= 0 {
			t.Errorf("%s: implausible result %v", e.Name(), res)
		}
	}
}

// TestShippedServingScenariosResolveAndSearch loads every serving-* scenario
// asset, resolves it, and runs the full serving search on it: the shipped
// examples must stay submittable end to end, not merely parse.
func TestShippedServingScenariosResolveAndSearch(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "configs", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "serving-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		found++
		sc, err := Load[ServingScenario](filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		spec, err := sc.Resolve()
		if err != nil {
			t.Errorf("%s: resolve: %v", e.Name(), err)
			continue
		}
		res, err := serving.Search(context.Background(), spec, serving.Options{})
		if err != nil {
			t.Errorf("%s: search: %v", e.Name(), err)
			continue
		}
		if res.Feasible == 0 || res.Best == nil {
			t.Errorf("%s: shipped serving scenario finds no feasible deployment", e.Name())
		}
	}
	if found == 0 {
		t.Fatal("no serving-* scenario shipped; the serving example is part of the CLI surface")
	}
}

// TestShippedSystemsValidate loads every system asset.
func TestShippedSystemsValidate(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "configs", "systems")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, err := Load[system.System](filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

// TestShippedModelsMatchPresets loads every model asset and checks it is
// identical to the in-code preset of the same name.
func TestShippedModelsMatchPresets(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "configs", "models")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(model.PresetNames()) {
		t.Errorf("configs/models has %d files, presets %d — regenerate the assets",
			len(entries), len(model.PresetNames()))
	}
	for _, e := range entries {
		m, err := Load[model.LLM](filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		want, err := model.Preset(m.Name)
		if err != nil {
			t.Errorf("%s: unknown preset %q", e.Name(), m.Name)
			continue
		}
		if m != want {
			t.Errorf("%s: asset diverges from preset:\n asset %+v\npreset %+v", e.Name(), m, want)
		}
	}
}
