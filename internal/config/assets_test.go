package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
)

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestShippedScenariosResolveAndRun loads every JSON scenario asset in
// configs/scenarios, resolves it, and runs the performance model on it.
func TestShippedScenariosResolveAndRun(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "configs", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected ≥3 shipped scenarios, found %d", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		sc, err := Load[Scenario](path)
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		m, sys, st, err := sc.Resolve()
		if err != nil {
			t.Errorf("%s: resolve: %v", e.Name(), err)
			continue
		}
		res, err := perf.Run(m, sys, st)
		if err != nil {
			t.Errorf("%s: run: %v", e.Name(), err)
			continue
		}
		if res.BatchTime <= 0 || res.SampleRate <= 0 {
			t.Errorf("%s: implausible result %v", e.Name(), res)
		}
	}
}

// TestShippedSystemsValidate loads every system asset.
func TestShippedSystemsValidate(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "configs", "systems")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, err := Load[system.System](filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

// TestShippedModelsMatchPresets loads every model asset and checks it is
// identical to the in-code preset of the same name.
func TestShippedModelsMatchPresets(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "configs", "models")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(model.PresetNames()) {
		t.Errorf("configs/models has %d files, presets %d — regenerate the assets",
			len(entries), len(model.PresetNames()))
	}
	for _, e := range entries {
		m, err := Load[model.LLM](filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		want, err := model.Preset(m.Name)
		if err != nil {
			t.Errorf("%s: unknown preset %q", e.Name(), m.Name)
			continue
		}
		if m != want {
			t.Errorf("%s: asset diverges from preset:\n asset %+v\npreset %+v", e.Name(), m, want)
		}
	}
}
