package config

import (
	"fmt"

	"calculon/internal/serving"
	"calculon/internal/tco"
)

// ServingScenario bundles one serving co-design search problem: the model,
// the decode system (and optionally a different prefill system for
// disaggregated pools), the request mix with its SLOs, the deployment space
// bounds, and the cost assumptions. Files under configs/scenarios with a
// "serving-" name prefix hold this shape; everything else there is a
// training Scenario.
type ServingScenario struct {
	Name   string    `json:"name,omitempty"`
	Model  ModelRef  `json:"model"`
	System SystemRef `json:"system"`
	// PrefillSystem, when present, is the system the disaggregated prefill
	// pool deploys on; absent means prefill shares the decode system.
	PrefillSystem *SystemRef       `json:"prefill_system,omitempty"`
	Workload      serving.Workload `json:"workload"`
	Space         serving.Space    `json:"space"`
	// Assumptions price the deployments; absent means tco.DefaultAssumptions.
	Assumptions *tco.Assumptions `json:"assumptions,omitempty"`
}

// Resolve materializes the scenario into a normalized, validated
// serving.Spec.
func (sc ServingScenario) Resolve() (serving.Spec, error) {
	m, err := sc.Model.Resolve()
	if err != nil {
		return serving.Spec{}, err
	}
	sys, err := sc.System.Resolve()
	if err != nil {
		return serving.Spec{}, err
	}
	spec := serving.Spec{
		Model:    m,
		System:   sys,
		Workload: sc.Workload,
		Space:    sc.Space,
	}
	if sc.Space.Procs == 0 {
		// A scenario that names a system size usually means to search within
		// it; an explicit space budget still wins.
		spec.Space.Procs = sys.Procs
	}
	if sc.PrefillSystem != nil {
		ps, err := sc.PrefillSystem.Resolve()
		if err != nil {
			return serving.Spec{}, fmt.Errorf("config: prefill system: %w", err)
		}
		spec.PrefillSystem = &ps
	}
	if sc.Assumptions != nil {
		spec.Assumptions = *sc.Assumptions
	}
	spec = spec.Normalize()
	return spec, spec.Validate()
}
