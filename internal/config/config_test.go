package config

import (
	"path/filepath"
	"strings"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

func TestModelRefPreset(t *testing.T) {
	m, err := (ModelRef{Preset: "gpt3-175B", Batch: 4096}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m.Hidden != 12288 || m.Batch != 4096 {
		t.Fatalf("resolved %+v", m)
	}
}

func TestModelRefInline(t *testing.T) {
	in := model.MustPreset("gpt3-13B")
	m, err := (ModelRef{Inline: &in}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "gpt3-13B" {
		t.Fatalf("resolved %+v", m)
	}
}

func TestModelRefErrors(t *testing.T) {
	in := model.MustPreset("gpt3-13B")
	cases := []ModelRef{
		{},
		{Preset: "nope"},
		{Preset: "gpt3-13B", Inline: &in},
		{Inline: &model.LLM{Hidden: -1, AttnHeads: 1, Seq: 1, Blocks: 1, Batch: 1}},
	}
	for i, r := range cases {
		if _, err := r.Resolve(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSystemRefPreset(t *testing.T) {
	s, err := (SystemRef{Preset: "a100-80g", Procs: 64}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Procs != 64 || s.Name != "a100-80g" {
		t.Fatalf("resolved %+v", s)
	}
}

func TestSystemRefErrors(t *testing.T) {
	in := system.A100(8)
	cases := []SystemRef{
		{},
		{Preset: "a100-80g"}, // missing procs
		{Preset: "nope", Procs: 8},
		{Preset: "a100-80g", Procs: 8, Inline: &in},
		{Inline: &system.System{}},
	}
	for i, r := range cases {
		if _, err := r.Resolve(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSystemRefInlineProcsOverride(t *testing.T) {
	in := system.A100(8)
	s, err := (SystemRef{Inline: &in, Procs: 32}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Procs != 32 {
		t.Fatalf("procs = %d", s.Procs)
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	sc := Scenario{
		Model:  ModelRef{Preset: "gpt3-175B", Batch: 64},
		System: SystemRef{Preset: "a100-80g", Procs: 64},
		Strategy: execution.Strategy{
			TP: 8, PP: 8, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: execution.RecomputeFull,
		},
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := Save(path, sc); err != nil {
		t.Fatal(err)
	}
	back, err := Load[Scenario](path)
	if err != nil {
		t.Fatal(err)
	}
	m, sys, st, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "gpt3-175B" || sys.Procs != 64 || st.TP != 8 {
		t.Fatalf("resolved %v %v %v", m.Name, sys.Procs, st)
	}
}

func TestScenarioResolveValidatesStrategy(t *testing.T) {
	sc := Scenario{
		Model:    ModelRef{Preset: "gpt3-175B"},
		System:   SystemRef{Preset: "a100-80g", Procs: 64},
		Strategy: execution.Strategy{TP: 1000, PP: 1, DP: 1},
	}
	if _, _, _, err := sc.Resolve(); err == nil {
		t.Fatal("invalid strategy must fail")
	}
}

func TestInlineSystemJSONRoundTrip(t *testing.T) {
	s := system.A100(128)
	path := filepath.Join(t.TempDir(), "system.json")
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := Load[system.System](path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Procs != 128 || back.Mem1.Capacity != s.Mem1.Capacity ||
		len(back.Networks) != 2 || back.Networks[0].Bandwidth != s.Networks[0].Bandwidth {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load[Scenario]("/nonexistent/path.json"); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := Save(bad, "just a string"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load[Scenario](bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("bad JSON must error with path, got %v", err)
	}
}
