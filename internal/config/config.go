// Package config round-trips the three Calculon specifications — LLM,
// system, execution strategy — through JSON files, mirroring the original
// tool's file-driven interface. A spec may either name a built-in preset
// (optionally overriding the batch size or processor count) or define the
// object inline.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

// ModelRef selects an LLM: by preset name with an optional batch override,
// or inline.
type ModelRef struct {
	Preset string     `json:"preset,omitempty"`
	Batch  int        `json:"batch,omitempty"`
	Inline *model.LLM `json:"inline,omitempty"`
}

// Resolve produces the LLM the reference describes.
func (r ModelRef) Resolve() (model.LLM, error) {
	var m model.LLM
	switch {
	case r.Inline != nil && r.Preset != "":
		return m, fmt.Errorf("config: model ref has both preset and inline")
	case r.Inline != nil:
		m = *r.Inline
	case r.Preset != "":
		var err error
		if m, err = model.Preset(r.Preset); err != nil {
			return m, err
		}
	default:
		return m, fmt.Errorf("config: model ref is empty")
	}
	if r.Batch > 0 {
		m = m.WithBatch(r.Batch)
	}
	return m, m.Validate()
}

// SystemRef selects a system: by preset name and processor count, or
// inline.
type SystemRef struct {
	Preset string         `json:"preset,omitempty"`
	Procs  int            `json:"procs,omitempty"`
	Inline *system.System `json:"inline,omitempty"`
}

// Resolve produces the system the reference describes.
func (r SystemRef) Resolve() (system.System, error) {
	var s system.System
	switch {
	case r.Inline != nil && r.Preset != "":
		return s, fmt.Errorf("config: system ref has both preset and inline")
	case r.Inline != nil:
		s = *r.Inline
		if r.Procs > 0 {
			s = s.WithProcs(r.Procs)
		}
	case r.Preset != "":
		if r.Procs <= 0 {
			return s, fmt.Errorf("config: system preset %q needs procs", r.Preset)
		}
		var err error
		if s, err = system.Preset(r.Preset, r.Procs); err != nil {
			return s, err
		}
	default:
		return s, fmt.Errorf("config: system ref is empty")
	}
	return s, s.Validate()
}

// Scenario bundles the three specifications of one analysis.
type Scenario struct {
	Model    ModelRef           `json:"model"`
	System   SystemRef          `json:"system"`
	Strategy execution.Strategy `json:"strategy"`
}

// Resolve materializes and validates all three parts.
func (sc Scenario) Resolve() (model.LLM, system.System, execution.Strategy, error) {
	m, err := sc.Model.Resolve()
	if err != nil {
		return m, system.System{}, sc.Strategy, err
	}
	sys, err := sc.System.Resolve()
	if err != nil {
		return m, sys, sc.Strategy, err
	}
	st := sc.Strategy.Normalize()
	return m, sys, st, st.Validate(m)
}

// Load reads a JSON file into any of the spec types.
func Load[T any](path string) (T, error) {
	var v T
	data, err := os.ReadFile(path)
	if err != nil {
		return v, fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("config: %s: %w", path, err)
	}
	return v, nil
}

// Save writes any of the spec types as indented JSON.
func Save[T any](path string, v T) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
