package config

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
)

// FuzzParseConfig throws arbitrary bytes at the JSON spec loaders — every
// shipped asset under configs/ is a seed — and asserts the whole
// parse → resolve → evaluate pipeline never panics. Inputs that fail to
// parse or validate are fine (that is the error path working); what the
// fuzzer hunts is a config that passes validation yet crashes the
// performance model. CI runs a short-fuzztime smoke of this on every push.
func FuzzParseConfig(f *testing.F) {
	root := repoRoot(f)
	err := filepath.WalkDir(filepath.Join(root, "configs"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f.Add(data)
		return nil
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var m model.LLM
		if err := json.Unmarshal(data, &m); err == nil {
			_ = m.Validate()
		}
		var sys system.System
		if err := json.Unmarshal(data, &sys); err == nil {
			_ = sys.Validate()
		}
		var sc Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return
		}
		scm, scs, st, err := sc.Resolve()
		if err != nil {
			return
		}
		// A scenario that resolves cleanly must evaluate without panicking;
		// an infeasible verdict is a valid outcome.
		if _, err := perf.Run(scm, scs, st); err != nil && !errors.Is(err, perf.ErrInfeasible) {
			// Non-infeasibility errors can only be validation failures, and
			// Resolve already validated — anything else is a contract break.
			t.Errorf("resolved scenario failed evaluation: %v", err)
		}
	})
}
