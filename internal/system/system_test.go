package system

import (
	"math"
	"testing"
	"testing/quick"

	"calculon/internal/units"
)

func TestEfficiencyCurveInterpolation(t *testing.T) {
	c := EfficiencyCurve{{Size: 1e3, Eff: 0.2}, {Size: 1e5, Eff: 0.8}}
	if got := c.At(1e2); got != 0.2 {
		t.Errorf("below range: got %g, want clamp to 0.2", got)
	}
	if got := c.At(1e6); got != 0.8 {
		t.Errorf("above range: got %g, want clamp to 0.8", got)
	}
	// Geometric midpoint 1e4 should interpolate to the arithmetic midpoint
	// in eff because the curve is linear in log10(size).
	if got := c.At(1e4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("log midpoint: got %g, want 0.5", got)
	}
}

func TestEfficiencyCurveEmptyIsUnity(t *testing.T) {
	var c EfficiencyCurve
	for _, s := range []float64{1, 1e6, 1e18} {
		if got := c.At(s); got != 1 {
			t.Errorf("empty curve At(%g) = %g, want 1", s, got)
		}
	}
}

func TestEfficiencyCurveMonotoneProperty(t *testing.T) {
	c := a100MatrixEff
	f := func(r1, r2 uint32) bool {
		a := 1 + float64(r1%1000000)*1e7
		b := 1 + float64(r2%1000000)*1e7
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyCurveValidate(t *testing.T) {
	bad := []EfficiencyCurve{
		{{Size: 0, Eff: 0.5}},
		{{Size: 1, Eff: 0}},
		{{Size: 1, Eff: 1.5}},
		{{Size: 10, Eff: 0.5}, {Size: 5, Eff: 0.6}},
		{{Size: 5, Eff: 0.5}, {Size: 5, Eff: 0.6}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("curve %d should fail validation", i)
		}
	}
	if err := a100MatrixEff.Validate(); err != nil {
		t.Errorf("a100 curve invalid: %v", err)
	}
}

func TestComputeRates(t *testing.T) {
	c := Compute{MatrixPeak: 100, VectorPeak: 10,
		MatrixEff: EfficiencyCurve{{Size: 1, Eff: 0.5}}}
	if got := c.MatrixRate(1e9); got != 50 {
		t.Errorf("MatrixRate = %v, want 50", got)
	}
	if got := c.VectorRate(1e9); got != 10 {
		t.Errorf("VectorRate = %v, want 10 (empty curve)", got)
	}
}

func TestMemoryAccessTime(t *testing.T) {
	m := Memory{Capacity: 80 * units.GiB, Bandwidth: 2e12}
	got := m.AccessTime(2e12)
	if math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("AccessTime = %v, want 1s", got)
	}
	if m.AccessTime(0) != 0 {
		t.Error("zero bytes must take zero time")
	}
	if m.AccessTime(-5) != 0 {
		t.Error("negative bytes must take zero time")
	}
}

func TestMemoryEfficiencyDerates(t *testing.T) {
	m := Memory{Capacity: 1, Bandwidth: 1000,
		Efficiency: EfficiencyCurve{{Size: 1, Eff: 0.5}}}
	if got := m.EffectiveBandwidth(100); got != 500 {
		t.Errorf("EffectiveBandwidth = %v, want 500", got)
	}
}

func TestNetworkCovers(t *testing.T) {
	nv := Network{Name: "nvlink", Size: 8}
	ib := Network{Name: "ib", Size: 0}
	if !nv.Covers(8) || nv.Covers(9) {
		t.Error("nvlink must cover exactly up to its size")
	}
	if !ib.Covers(1 << 20) {
		t.Error("size-0 network must cover everything")
	}
}

func TestNetworkFor(t *testing.T) {
	s := A100(4096)
	if got := s.NetworkFor(8).Name; got != "nvlink" {
		t.Errorf("group of 8 → %s, want nvlink", got)
	}
	if got := s.NetworkFor(16).Name; got != "ib-hdr" {
		t.Errorf("group of 16 → %s, want ib-hdr", got)
	}
	if got := s.ScaleOut().Name; got != "ib-hdr" {
		t.Errorf("ScaleOut → %s, want ib-hdr", got)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, s := range []System{
		A100(4096),
		H100(4096, 80*units.GiB, 0),
		H100(4096, 80*units.GiB, 512*units.GiB),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	base := A100(64)
	mutations := []func(*System){
		func(s *System) { s.Procs = 0 },
		func(s *System) { s.Compute.MatrixPeak = 0 },
		func(s *System) { s.Compute.VectorPeak = -1 },
		func(s *System) { s.Mem1.Capacity = 0 },
		func(s *System) { s.Mem1.Bandwidth = 0 },
		func(s *System) { s.Mem2 = Memory{Capacity: 10} }, // no bandwidth
		func(s *System) { s.Networks = nil },
		func(s *System) { s.Networks = []Network{{Name: "x", Size: 8, Bandwidth: 1e9}} }, // doesn't span
		func(s *System) { s.Networks[0].ProcUse = 1.5 },
		func(s *System) { s.Networks[0].Latency = -1 },
		func(s *System) {
			// system-wide network listed before a sized one
			s.Networks = []Network{
				{Name: "wide", Size: 0, Bandwidth: 1e9},
				{Name: "small", Size: 8, Bandwidth: 1e9},
			}
		},
	}
	for i, mut := range mutations {
		s := base
		s.Networks = append([]Network(nil), base.Networks...)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestWithHelpers(t *testing.T) {
	s := A100(4096)
	if got := s.WithProcs(8).Procs; got != 8 {
		t.Errorf("WithProcs = %d", got)
	}
	if got := s.WithMem1Capacity(160 * units.GiB).Mem1.Capacity; got != 160*units.GiB {
		t.Errorf("WithMem1Capacity = %v", got)
	}
	s2 := s.WithMem2(DDR5(512 * units.GiB))
	if !s2.Mem2.Present() || s2.Mem2.Bandwidth != 100e9 {
		t.Errorf("WithMem2 = %+v", s2.Mem2)
	}
	s3 := s.WithFastDomain(32)
	if s3.Networks[0].Size != 32 {
		t.Errorf("WithFastDomain = %d", s3.Networks[0].Size)
	}
	if s.Networks[0].Size != 8 {
		t.Error("WithFastDomain must not mutate the receiver")
	}
}

func TestInfiniteMem2(t *testing.T) {
	m := InfiniteMem2()
	if !m.Present() || !m.Capacity.IsUnbounded() || !m.Bandwidth.IsUnbounded() {
		t.Fatalf("InfiniteMem2 = %+v", m)
	}
	if m.AccessTime(1e15) != 0 {
		t.Error("infinite bandwidth must give zero access time")
	}
}

func TestPresetLookup(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name, 128)
		if err != nil {
			t.Errorf("Preset(%s): %v", name, err)
			continue
		}
		if s.Procs != 128 {
			t.Errorf("Preset(%s) procs = %d", name, s.Procs)
		}
	}
	if _, err := Preset("nonsense", 1); err == nil {
		t.Error("unknown preset must error")
	}
}

func TestSuperPodNetworkSelection(t *testing.T) {
	s := SuperPod(1024)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.NetworkFor(8).Name; got != "nvlink" {
		t.Errorf("group 8 → %s", got)
	}
	if got := s.NetworkFor(64).Name; got != "ib-leaf" {
		t.Errorf("group 64 → %s", got)
	}
	if got := s.NetworkFor(512).Name; got != "ib-spine" {
		t.Errorf("group 512 → %s", got)
	}
	// Tier bandwidths must descend.
	for i := 1; i < len(s.Networks); i++ {
		if s.Networks[i].Bandwidth >= s.Networks[i-1].Bandwidth {
			t.Error("network tiers should get slower outward")
		}
	}
}
