package system

import (
	"fmt"
	"sort"

	"calculon/internal/units"
)

// The GEMM-efficiency-versus-size curves below are the one place where the
// original tool relies on unpublished vendor measurements. We substitute
// piecewise-linear curves (keyed by the FLOP count of the operation)
// calibrated so that the paper's validation anchors land close:
//   - Table 2 — Selene batch times for Megatron 22B/175B/530B/1T within a
//     few percent,
//   - Fig. 3 — GPT-3 175B at (t,p,d)=(8,64,8) on 4096 A100s ≈ 16.7 s batch
//     time with ≈ 17.4 GiB of HBM in use.
//
// The curves have the standard roofline shape: tiny GEMMs are launch- and
// memory-bound, multi-TFLOP GEMMs approach peak.
var a100MatrixEff = EfficiencyCurve{
	{Size: 1e8, Eff: 0.15},
	{Size: 1e9, Eff: 0.30},
	{Size: 1e10, Eff: 0.50},
	{Size: 1e11, Eff: 0.68},
	{Size: 1e12, Eff: 0.78},
	{Size: 1e13, Eff: 0.82},
}

var a100VectorEff = EfficiencyCurve{
	{Size: 1e6, Eff: 0.20},
	{Size: 1e8, Eff: 0.55},
	{Size: 1e9, Eff: 0.80},
	{Size: 1e10, Eff: 0.90},
}

var hbmEff = EfficiencyCurve{
	{Size: 1e5, Eff: 0.30},
	{Size: 1e7, Eff: 0.70},
	{Size: 1e8, Eff: 0.85},
	{Size: 1e9, Eff: 0.92},
}

var nvlinkEff = EfficiencyCurve{
	{Size: 1e5, Eff: 0.25},
	{Size: 1e6, Eff: 0.55},
	{Size: 1e7, Eff: 0.75},
	{Size: 1e8, Eff: 0.85},
}

var ibEff = EfficiencyCurve{
	{Size: 1e5, Eff: 0.35},
	{Size: 1e6, Eff: 0.65},
	{Size: 1e7, Eff: 0.85},
	{Size: 1e8, Eff: 0.92},
}

// A100 returns a Selene-like system of the given size: A100-80GiB GPUs
// (312 TFLOP/s fp16 tensor, 78 TFLOP/s vector, 2 TB/s HBM2e) in NVLink
// clusters of 8 (300 GB/s per direction per GPU) joined by InfiniBand HDR
// (25 GB/s per GPU). §5.2 of the paper allocates up to 15% of the cores to
// NCCL kernels on NVLink and 2% to drive the slower network; those become
// the ProcUse taxes here.
func A100(procs int) System {
	return System{
		Name:  "a100-80g",
		Procs: procs,
		Compute: Compute{
			MatrixPeak: 312e12,
			VectorPeak: 78e12,
			MatrixEff:  a100MatrixEff,
			VectorEff:  a100VectorEff,
		},
		Mem1: Memory{
			Capacity:   80 * units.GiB,
			Bandwidth:  2.0e12,
			Efficiency: hbmEff,
		},
		Networks: []Network{
			{
				Name: "nvlink", Size: 8, Bandwidth: 300e9, Latency: 2e-6,
				Efficiency: nvlinkEff, ProcUse: 0.15,
			},
			{
				Name: "ib-hdr", Size: 0, Bandwidth: 25e9, Latency: 5e-6,
				Efficiency: ibEff, InNetworkCollectives: true, ProcUse: 0.02,
			},
		},
	}
}

// H100 returns the theoretical H100-based design of §7: ~1 PFLOP/s fp16
// matrix throughput, HBM3 at 3 TB/s (capacity chosen per design point),
// NVLink4 at 450 GB/s per direction in clusters of 8, NDR InfiniBand at
// 50 GB/s. The offload tier, when present, is DDR5 at 100 GB/s per direction
// driven by a TMA-like DMA engine that consumes no processor compute (§6).
func H100(procs int, hbm units.Bytes, ddr units.Bytes) System {
	s := System{
		Name:  "h100",
		Procs: procs,
		Compute: Compute{
			MatrixPeak: 990e12,
			VectorPeak: 120e12,
			MatrixEff:  a100MatrixEff,
			VectorEff:  a100VectorEff,
		},
		Mem1: Memory{
			Capacity:   hbm,
			Bandwidth:  3.0e12,
			Efficiency: hbmEff,
		},
		Networks: []Network{
			{
				Name: "nvlink4", Size: 8, Bandwidth: 450e9, Latency: 2e-6,
				Efficiency: nvlinkEff, ProcUse: 0.15,
			},
			{
				Name: "ib-ndr", Size: 0, Bandwidth: 50e9, Latency: 5e-6,
				Efficiency: ibEff, InNetworkCollectives: true, ProcUse: 0.02,
			},
		},
	}
	if ddr > 0 {
		s.Mem2 = DDR5(ddr)
	}
	return s
}

// SuperPod returns a three-tier A100 fabric: NVLink islands of 8, a
// rail-optimized leaf network giving full HDR bandwidth within 256-GPU
// scalable units, and an oversubscribed spine above them. It exercises the
// model's arbitrary-network-list support (§2.2: "each processor is able to
// connect to an arbitrary number of networks").
func SuperPod(procs int) System {
	s := A100(procs)
	s.Name = "a100-superpod"
	s.Networks = []Network{
		{
			Name: "nvlink", Size: 8, Bandwidth: 300e9, Latency: 2e-6,
			Efficiency: nvlinkEff, ProcUse: 0.15,
		},
		{
			Name: "ib-leaf", Size: 256, Bandwidth: 25e9, Latency: 4e-6,
			Efficiency: ibEff, InNetworkCollectives: true, ProcUse: 0.02,
		},
		{
			Name: "ib-spine", Size: 0, Bandwidth: 12.5e9, Latency: 7e-6,
			Efficiency: ibEff, InNetworkCollectives: true, ProcUse: 0.02,
		},
	}
	return s
}

// DDR5 builds the secondary offload memory used throughout §6/§7: the given
// capacity at 100 GB/s per direction.
func DDR5(capacity units.Bytes) Memory {
	return Memory{Capacity: capacity, Bandwidth: 100e9}
}

// InfiniteMem2 is the probing tier of §6's requirements analysis: unlimited
// capacity and bandwidth, so the model reports how much the best execution
// strategy would consume.
func InfiniteMem2() Memory {
	return Memory{Capacity: units.UnboundedBytes, Bandwidth: units.UnboundedBytesPerSec}
}

// Preset returns a named system sized to the given processor count.
func Preset(name string, procs int) (System, error) {
	switch name {
	case "a100-80g", "a100", "selene":
		return A100(procs), nil
	case "a100-40g":
		return A100(procs).WithMem1Capacity(40 * units.GiB), nil
	case "a100-superpod", "superpod":
		return SuperPod(procs), nil
	case "h100-80g", "h100":
		return H100(procs, 80*units.GiB, 0), nil
	case "h100-80g-ddr512":
		return H100(procs, 80*units.GiB, 512*units.GiB), nil
	default:
		return System{}, fmt.Errorf("system: unknown preset %q (have %v)", name, PresetNames())
	}
}

// MustPreset is Preset for static names in examples and tests.
func MustPreset(name string, procs int) System {
	s, err := Preset(name, procs)
	if err != nil {
		panic(err)
	}
	return s
}

// PresetNames lists the available system presets.
func PresetNames() []string {
	names := []string{"a100-80g", "a100-40g", "a100-superpod", "h100-80g", "h100-80g-ddr512"}
	sort.Strings(names)
	return names
}
