// Package system describes the hardware side of a Calculon analysis (§2.2 of
// the paper): a distributed machine of identical processors, each with a
// matrix engine and a vector engine whose achievable throughput depends on
// operation size, a two-level memory hierarchy (a fast first level for direct
// computation and an optional high-capacity second level for offloading), and
// one or more networks with size, bandwidth, latency, efficiency, optional
// in-network collectives, and a processor-utilization tax charged while the
// network runs at full bandwidth.
package system

import (
	"fmt"
	"math"

	"calculon/internal/units"
)

// EffPoint anchors an efficiency curve: operations of this Size achieve the
// fraction Eff of peak throughput.
type EffPoint struct {
	Size float64 `json:"size"`
	Eff  float64 `json:"eff"`
}

// EfficiencyCurve maps an operation size (FLOPs for compute, bytes for
// memory) to an achievable fraction of peak, interpolating piecewise
// linearly in log10(size) and clamping outside the anchored range. An empty
// curve means "always 100% of peak". This models, e.g., small GEMMs running
// at a lower fraction of peak than large ones (§2.2, [33]).
type EfficiencyCurve []EffPoint

// At returns the efficiency for an operation of the given size.
func (c EfficiencyCurve) At(size float64) float64 {
	if len(c) == 0 {
		return 1
	}
	if size <= c[0].Size {
		return c[0].Eff
	}
	last := c[len(c)-1]
	if size >= last.Size {
		return last.Eff
	}
	for i := 1; i < len(c); i++ {
		if size <= c[i].Size {
			lo, hi := c[i-1], c[i]
			f := (math.Log10(size) - math.Log10(lo.Size)) / (math.Log10(hi.Size) - math.Log10(lo.Size))
			return lo.Eff + f*(hi.Eff-lo.Eff)
		}
	}
	return last.Eff
}

// Validate checks that the curve is sorted by size with efficiencies in (0,1].
func (c EfficiencyCurve) Validate() error {
	for i, p := range c {
		if p.Size <= 0 {
			return fmt.Errorf("efficiency point %d: size must be positive, got %g", i, p.Size)
		}
		if p.Eff <= 0 || p.Eff > 1 {
			return fmt.Errorf("efficiency point %d: eff must be in (0,1], got %g", i, p.Eff)
		}
		if i > 0 && c[i-1].Size >= p.Size {
			return fmt.Errorf("efficiency points must be strictly increasing in size at %d", i)
		}
	}
	return nil
}

// Compute is the per-processor execution model: computation is assigned to
// either "matrix" execution (GEMMs) or "vector" execution (element-wise
// layers, reductions, optimizer math).
type Compute struct {
	MatrixPeak units.FLOPsPerSec `json:"matrix_peak"`
	VectorPeak units.FLOPsPerSec `json:"vector_peak"`
	// MatrixEff / VectorEff are keyed by the FLOP count of the operation.
	MatrixEff EfficiencyCurve `json:"matrix_eff,omitempty"`
	VectorEff EfficiencyCurve `json:"vector_eff,omitempty"`
}

// MatrixRate returns the achievable matrix throughput for an op of the given
// FLOP count. The pointer receiver keeps the per-op hot path from copying
// the embedded efficiency curves on every call.
func (c *Compute) MatrixRate(flops units.FLOPs) units.FLOPsPerSec {
	return units.FLOPsPerSec(float64(c.MatrixPeak) * c.MatrixEff.At(float64(flops)))
}

// VectorRate returns the achievable vector throughput for an op of the given
// FLOP count.
func (c *Compute) VectorRate(flops units.FLOPs) units.FLOPsPerSec {
	return units.FLOPsPerSec(float64(c.VectorPeak) * c.VectorEff.At(float64(flops)))
}

// Memory is one tier of the processor's memory system.
type Memory struct {
	Capacity  units.Bytes       `json:"capacity"`
	Bandwidth units.BytesPerSec `json:"bandwidth"`
	// Efficiency is keyed by the byte size of the access stream.
	Efficiency EfficiencyCurve `json:"efficiency,omitempty"`
}

// Present reports whether the tier exists (the second level is optional).
func (m Memory) Present() bool { return m.Capacity > 0 }

// AccessTime returns the time to stream the given bytes through this tier.
// Pointer receiver: called per priced op, so the receiver copy matters.
func (m *Memory) AccessTime(b units.Bytes) units.Seconds {
	if b <= 0 {
		return 0
	}
	return b.Div(m.EffectiveBandwidth(b))
}

// EffectiveBandwidth is the size-derated bandwidth for an access of b bytes.
func (m *Memory) EffectiveBandwidth(b units.Bytes) units.BytesPerSec {
	if m.Bandwidth.IsUnbounded() {
		return m.Bandwidth
	}
	return units.BytesPerSec(float64(m.Bandwidth) * m.Efficiency.At(float64(b)))
}

// Network models one interconnect reachable from every processor.
type Network struct {
	Name string `json:"name"`
	// Size is the domain size: the number of processors reachable at full
	// bandwidth (e.g. 8 for an NVLink cluster). Zero means system-wide.
	Size int `json:"size"`
	// Bandwidth is the per-processor injection bandwidth, per direction.
	Bandwidth units.BytesPerSec `json:"bandwidth"`
	Latency   units.Seconds     `json:"latency"`
	// Efficiency derates the achievable bandwidth (protocol overheads etc.),
	// keyed by message size in bytes.
	Efficiency EfficiencyCurve `json:"efficiency,omitempty"`
	// InNetworkCollectives indicates switch-offloaded reductions (e.g.
	// SHARP): all-reduce costs one traversal of the data instead of the
	// ring's 2(g−1)/g traversals.
	InNetworkCollectives bool `json:"in_network_collectives,omitempty"`
	// ProcUse is the fraction of the processor's compute consumed when this
	// network runs at full bandwidth (§2.2: 15% of cores for NCCL on NVLink,
	// 2% for the scale-out NIC). It prices communication/compute overlap.
	ProcUse float64 `json:"proc_use"`
}

// Covers reports whether a communication group of the given size fits inside
// one domain of this network.
func (n Network) Covers(group int) bool { return n.Size == 0 || group <= n.Size }

// EffectiveBandwidth is the size-derated per-processor bandwidth for a
// message of b bytes. Pointer receiver: the collective-time model calls it
// several times per evaluated strategy.
func (n *Network) EffectiveBandwidth(b units.Bytes) units.BytesPerSec {
	return units.BytesPerSec(float64(n.Bandwidth) * n.Efficiency.At(float64(b)))
}

// System is the full hardware specification.
type System struct {
	Name string `json:"name"`
	// Procs is the number of processors in the machine.
	Procs   int     `json:"procs"`
	Compute Compute `json:"compute"`
	// Mem1 is the first-level memory used for direct computation (HBM).
	Mem1 Memory `json:"mem1"`
	// Mem2 is the optional second-level offload memory (CPU DDR / CXL).
	Mem2 Memory `json:"mem2,omitempty"`
	// Networks are ordered fastest/smallest first (NVLink before InfiniBand).
	Networks []Network `json:"networks"`
}

// Validate checks the structural constraints on the system description.
func (s System) Validate() error {
	if s.Procs <= 0 {
		return fmt.Errorf("system %s: procs must be positive, got %d", s.Name, s.Procs)
	}
	if s.Compute.MatrixPeak <= 0 || s.Compute.VectorPeak <= 0 {
		return fmt.Errorf("system %s: compute peaks must be positive", s.Name)
	}
	if err := s.Compute.MatrixEff.Validate(); err != nil {
		return fmt.Errorf("system %s: matrix eff: %w", s.Name, err)
	}
	if err := s.Compute.VectorEff.Validate(); err != nil {
		return fmt.Errorf("system %s: vector eff: %w", s.Name, err)
	}
	if !s.Mem1.Present() || s.Mem1.Bandwidth <= 0 {
		return fmt.Errorf("system %s: mem1 must have capacity and bandwidth", s.Name)
	}
	if s.Mem2.Present() && s.Mem2.Bandwidth <= 0 {
		return fmt.Errorf("system %s: mem2 present but has no bandwidth", s.Name)
	}
	if len(s.Networks) == 0 {
		return fmt.Errorf("system %s: at least one network required", s.Name)
	}
	for i, n := range s.Networks {
		if n.Bandwidth <= 0 {
			return fmt.Errorf("system %s: network %d (%s) bandwidth must be positive", s.Name, i, n.Name)
		}
		if n.Latency < 0 {
			return fmt.Errorf("system %s: network %d (%s) latency must be non-negative", s.Name, i, n.Name)
		}
		if n.ProcUse < 0 || n.ProcUse > 1 {
			return fmt.Errorf("system %s: network %d (%s) proc_use must be in [0,1]", s.Name, i, n.Name)
		}
		if err := n.Efficiency.Validate(); err != nil {
			return fmt.Errorf("system %s: network %d (%s): %w", s.Name, i, n.Name, err)
		}
		if i > 0 && s.Networks[i-1].Size == 0 {
			return fmt.Errorf("system %s: system-wide network %q must be last", s.Name, s.Networks[i-1].Name)
		}
	}
	last := s.Networks[len(s.Networks)-1]
	if !last.Covers(s.Procs) {
		return fmt.Errorf("system %s: outermost network %q (size %d) does not span %d procs",
			s.Name, last.Name, last.Size, s.Procs)
	}
	return nil
}

// NetworkFor selects the network that carries a communication group of the
// given size: the fastest (earliest-listed) network whose domain covers the
// group. This is how tensor parallelism lands on NVLink when t fits the
// domain and spills to the scale-out fabric otherwise.
func (s System) NetworkFor(group int) Network {
	return *s.NetworkPtrFor(group)
}

// NetworkPtrFor is NetworkFor without the struct copy: it returns a pointer
// into s.Networks, valid as long as the System itself. The evaluation hot
// path selects a network per communication group per strategy, so the copy
// elision is worth the aliasing caveat.
func (s *System) NetworkPtrFor(group int) *Network {
	for i := range s.Networks {
		if s.Networks[i].Covers(group) {
			return &s.Networks[i]
		}
	}
	return &s.Networks[len(s.Networks)-1]
}

// ScaleOut returns the outermost (system-spanning) network, used by pipeline
// and data parallelism whose groups stride across fast domains.
func (s System) ScaleOut() Network { return s.Networks[len(s.Networks)-1] }

// WithProcs returns a copy resized to n processors (system-size sweeps).
func (s System) WithProcs(n int) System {
	s.Procs = n
	return s
}

// WithMem1Capacity returns a copy with the first-level capacity replaced
// (e.g. the 160 GiB variant of Fig. 5(d)).
func (s System) WithMem1Capacity(c units.Bytes) System {
	s.Mem1.Capacity = c
	return s
}

// WithMem2 returns a copy with the offload tier replaced. Passing a zero
// Memory removes the tier.
func (s System) WithMem2(m Memory) System {
	s.Mem2 = m
	return s
}

// WithFastDomain returns a copy whose first (fast) network has the given
// domain size, as in §4.1 where "the NVLink size is set to the number of
// GPUs in the TP domain" to expose the implicit costs of TP.
func (s System) WithFastDomain(size int) System {
	nets := make([]Network, len(s.Networks))
	copy(nets, s.Networks)
	if len(nets) > 0 && nets[0].Size != 0 {
		nets[0].Size = size
	}
	s.Networks = nets
	return s
}

func (s System) String() string {
	nets := make([]string, len(s.Networks))
	for i, n := range s.Networks {
		nets[i] = fmt.Sprintf("%s(size=%d,%v)", n.Name, n.Size, n.Bandwidth)
	}
	m2 := "none"
	if s.Mem2.Present() {
		m2 = fmt.Sprintf("%v@%v", s.Mem2.Capacity, s.Mem2.Bandwidth)
	}
	return fmt.Sprintf("%s{procs=%d matrix=%v mem1=%v@%v mem2=%s nets=%v}",
		s.Name, s.Procs, s.Compute.MatrixPeak, s.Mem1.Capacity, s.Mem1.Bandwidth, m2, nets)
}
