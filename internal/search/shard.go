package search

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
)

// Shard names one contiguous range of a sharded execution search: shard
// Index of Count splits of the deterministic (tp,pp,dp) triple sequence.
// Ranges are derived purely from (Index, Count, triple count) — shard i of
// n covers triples [i·T/n, (i+1)·T/n) — so any two processes given the same
// search agree on the partition without coordination.
type Shard struct {
	// Index is 0-based: 0 ≤ Index < Count.
	Index int `json:"index"`
	// Count is the total number of shards; 1 means the whole space.
	Count int `json:"count"`
}

// Validate reports whether the shard coordinates are well-formed.
func (s Shard) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("search: shard count %d, need at least 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("search: shard index %d out of range [0,%d)", s.Index, s.Count)
	}
	return nil
}

// String renders the 1-based i/n form the CLI accepts.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index+1, s.Count) }

// ParseShard parses the 1-based "i/n" form ("2/3" = second of three).
func ParseShard(v string) (Shard, error) {
	i := strings.IndexByte(v, '/')
	if i < 0 {
		return Shard{}, fmt.Errorf("search: shard %q: want i/n, e.g. 2/3", v)
	}
	var idx, cnt int
	if _, err := fmt.Sscanf(v[:i], "%d", &idx); err != nil {
		return Shard{}, fmt.Errorf("search: shard %q: bad index: %v", v, err)
	}
	if _, err := fmt.Sscanf(v[i+1:], "%d", &cnt); err != nil {
		return Shard{}, fmt.Errorf("search: shard %q: bad count: %v", v, err)
	}
	sh := Shard{Index: idx - 1, Count: cnt}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// SeqResult is one scored configuration together with its global
// enumeration sequence number — the deterministic tie-break key that makes
// partial results mergeable into exactly the single-process answer.
type SeqResult struct {
	Seq    int         `json:"seq"`
	Result perf.Result `json:"result"`
}

// ShardResult is the mergeable partial outcome of one shard of an
// execution search. It carries everything MergeResults needs to reproduce
// the single-process Result exactly: counters over the shard's leaves
// (including the closed-form subtree-pruned ones), and the shard-local
// best/top-K/Pareto candidates with their global sequence numbers. The
// merge invariants: the global best is the better()-minimum over shard
// bests; every global top-K member is in its shard's top-K; every global
// Pareto point is shard-locally nondominated — so merging the shard
// candidate sets loses nothing. CacheHits is the one counter that is NOT
// split-invariant (each process warms its own block-profile memo), which is
// why the CLI's canonical JSON omits it.
type ShardResult struct {
	Shard  Shard `json:"shard"`
	TopK   int   `json:"top_k"`
	Pareto bool  `json:"pareto"`

	Evaluated     int `json:"evaluated"`
	Feasible      int `json:"feasible"`
	PreScreened   int `json:"pre_screened"`
	CacheHits     int `json:"cache_hits"`
	SubtreePruned int `json:"subtree_pruned"`

	Best  *SeqResult  `json:"best,omitempty"`
	Top   []SeqResult `json:"top,omitempty"`
	Front []SeqResult `json:"front,omitempty"`
}

// shardRange returns the contiguous triple range [lo,hi) shard s covers out
// of total triples. Ranges tile the sequence exactly; with more shards than
// triples some ranges are empty.
func shardRange(s Shard, total int) (lo, hi int) {
	lo = s.Index * total / s.Count
	hi = (s.Index + 1) * total / s.Count
	return lo, hi
}

// ExecutionShard evaluates one shard of the execution search: the
// contiguous triple range derived from sh, scored with globally consistent
// sequence numbers, so that MergeResults over a complete set of shards
// reproduces Execution's answer exactly. Option normalization is shared
// with Execution — the same search splits identically everywhere.
//
// Sharded runs never consult or write the persistent store (the store
// operates on whole searches; merge the shards, then store if desired), and
// CollectRates is rejected (the rates order is not mergeable
// deterministically).
func ExecutionShard(ctx context.Context, m model.LLM, sys system.System, opts Options, sh Shard) (ShardResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := sh.Validate(); err != nil {
		return ShardResult{}, err
	}
	if opts.CollectRates {
		return ShardResult{}, fmt.Errorf("search: CollectRates is not supported on sharded searches")
	}
	opts, err := normalizeOptions(m, sys, opts)
	if err != nil {
		return ShardResult{}, err
	}
	opts.Cache = nil

	triples := opts.Enum.Triples(m)
	lo, hi := shardRange(sh, len(triples))
	// The shard's sequence numbers start after every leaf of the triples
	// before its range — closed-form, no enumeration.
	seqBase := 0
	for _, tpd := range triples[:lo] {
		seqBase += opts.Enum.TripleLeafCount(m, tpd)
	}

	prog := opts.Progress
	if prog == nil && opts.OnProgress != nil {
		prog = &Progress{}
	}
	if prog != nil {
		prog.markStart()
		if opts.EstimateTotal {
			total := 0
			for _, tpd := range triples[lo:hi] {
				total += opts.Enum.TripleLeafCount(m, tpd)
			}
			prog.AddTotal(int64(total))
		}
	}
	if opts.OnProgress != nil {
		stopTicker := startProgressTicker(prog, opts.OnProgress, opts.ProgressInterval)
		defer func() {
			stopTicker()
			opts.OnProgress(prog.Snapshot())
		}()
	}

	merged, subtreePruned, err := executionScored(ctx, m, sys, opts, prog, triples[lo:hi], seqBase)
	if err != nil {
		return ShardResult{}, err
	}
	out := ShardResult{
		Shard:         sh,
		TopK:          opts.TopK,
		Pareto:        opts.Pareto,
		Evaluated:     merged.evaluated,
		Feasible:      merged.feasible,
		PreScreened:   merged.prescreened,
		CacheHits:     merged.cacheHits,
		SubtreePruned: subtreePruned,
	}
	if merged.hasBest {
		out.Best = &SeqResult{Seq: merged.best.seq, Result: merged.best.res}
	}
	sort.Slice(merged.top, func(i, j int) bool { return better(merged.top[i], merged.top[j]) })
	for _, s := range merged.top {
		out.Top = append(out.Top, SeqResult{Seq: s.seq, Result: s.res})
	}
	if opts.Pareto {
		for _, s := range compactParetoScored(merged.front) {
			out.Front = append(out.Front, SeqResult{Seq: s.seq, Result: s.res})
		}
	}
	return out, ctx.Err()
}

// MergeResults combines the partial results of a complete shard set into
// exactly the Result the single-process search would return: counters sum
// (they are per-leaf deterministic), the best is the better()-minimum, the
// top-K and Pareto front re-rank the shard candidates under the same
// deterministic comparators the single process uses, with the global
// sequence numbers breaking ties. The shards may be given in any order but
// must form a complete partition: same Count, every Index exactly once,
// and agreeing TopK/Pareto settings. The one non-mergeable counter is
// CacheHits (per-process memo warm-up); it is summed, and callers that
// need byte-identical output across process splits must omit it, as
// calculon's canonical JSON does.
func MergeResults(shards []ShardResult) (Result, error) {
	if len(shards) == 0 {
		return Result{}, fmt.Errorf("search: merge: no shards")
	}
	n := shards[0].Shard.Count
	if len(shards) != n {
		return Result{}, fmt.Errorf("search: merge: have %d shards, shard set says %d", len(shards), n)
	}
	seen := make([]bool, n)
	for _, s := range shards {
		if s.Shard.Count != n {
			return Result{}, fmt.Errorf("search: merge: shard %s disagrees on the shard count %d", s.Shard, n)
		}
		if err := s.Shard.Validate(); err != nil {
			return Result{}, err
		}
		if seen[s.Shard.Index] {
			return Result{}, fmt.Errorf("search: merge: duplicate shard %s", s.Shard)
		}
		seen[s.Shard.Index] = true
		if s.TopK != shards[0].TopK || s.Pareto != shards[0].Pareto {
			return Result{}, fmt.Errorf("search: merge: shard %s disagrees on top-k/pareto settings", s.Shard)
		}
	}

	merged := workerState{topK: shards[0].TopK, pareto: shards[0].Pareto}
	subtreePruned := 0
	for _, s := range shards {
		ws := workerState{topK: s.TopK, pareto: s.Pareto}
		ws.evaluated = s.Evaluated
		ws.feasible = s.Feasible
		ws.prescreened = s.PreScreened
		ws.cacheHits = s.CacheHits
		if s.Best != nil {
			ws.best = scored{s.Best.Seq, s.Best.Result}
			ws.hasBest = true
		}
		for _, t := range s.Top {
			ws.top = append(ws.top, scored{t.Seq, t.Result})
		}
		for _, f := range s.Front {
			ws.front = append(ws.front, scored{f.Seq, f.Result})
		}
		subtreePruned += s.SubtreePruned
		merged.merge(ws)
	}
	return resultFrom(merged, subtreePruned, Options{TopK: merged.topK, Pareto: merged.pareto}), nil
}
