package search

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// TestTwoPhaseEquivalence is the proof obligation of the two-phase
// evaluation: over randomized (model, system, enumeration) draws, the search
// with the analytic pre-screen and the block-profile memo enabled must
// return results bit-identical to the direct path — same best strategy and
// numbers, same top-K set, same evaluated/feasible counts, same Pareto
// front. Both fast paths are exact rewrites, not approximations; any
// drift here is a bug in the pre-screen bound or the memo key. The CI race
// job runs this test with -race, which also exercises the concurrent memo.
func TestTwoPhaseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	models := []string{"gpt3-13B", "megatron-22B", "gpt2-1.5B", "chinchilla-70B"}
	features := []execution.FeatureSet{
		execution.FeatureBaseline, execution.FeatureSeqPar, execution.FeatureAll,
	}
	procChoices := []int{8, 16, 32}
	batchChoices := []int{8, 16, 32}

	const draws = 12
	for i := 0; i < draws; i++ {
		m := model.MustPreset(models[rng.Intn(len(models))]).
			WithBatch(batchChoices[rng.Intn(len(batchChoices))])
		procs := procChoices[rng.Intn(len(procChoices))]
		sys := system.A100(procs)
		switch rng.Intn(3) {
		case 0:
			// Tight first tier: most strategies die on the weight/optimizer
			// lower bound, stressing the pre-screen reject path.
			sys = sys.WithMem1Capacity(sys.Mem1.Capacity / 4)
		case 1:
			// Second tier present: offload toggles enter the space and the
			// mem2 bound becomes live.
			sys = sys.WithMem2(system.DDR5(512 * units.GiB))
		}
		opts := Options{
			Enum: execution.EnumOptions{
				Features:      features[rng.Intn(len(features))],
				MaxTP:         8,
				MaxInterleave: 2,
				PinBeneficial: rng.Intn(2) == 0,
			},
			Workers: 1 + rng.Intn(4),
			TopK:    1 + rng.Intn(8),
			Pareto:  true,
		}

		fast, err := Execution(context.Background(), m, sys, opts)
		if err != nil {
			t.Fatalf("draw %d: fast search: %v", i, err)
		}
		for _, ref := range []struct {
			name             string
			noScreen, noMemo bool
		}{
			{"no-prescreen", true, false},
			{"no-memo", false, true},
			{"direct", true, true},
			// Pre-screen and memo on, but the lattice-level subtree prune off:
			// pins the per-leaf and per-subtree accounting to each other,
			// PreScreened included.
			{"no-subtree-prune", false, false},
			// Everything on except incremental evaluation: every worker takes
			// the scratch path, pinning the delta chains (the default) to it
			// bit for bit — results and counters both.
			{"no-delta", false, false},
		} {
			o := opts
			o.DisablePreScreen = ref.noScreen
			o.DisableMemo = ref.noMemo
			o.DisableSubtreePrune = ref.name == "no-subtree-prune"
			o.DisableDelta = ref.name == "no-delta"
			o.Workers = 1 + rng.Intn(4)
			slow, err := Execution(context.Background(), m, sys, o)
			if err != nil {
				t.Fatalf("draw %d (%s): reference search: %v", i, ref.name, err)
			}
			if fast.Evaluated != slow.Evaluated || fast.Feasible != slow.Feasible {
				t.Errorf("draw %d (%s): counts diverge: fast (%d,%d) vs reference (%d,%d)",
					i, ref.name, fast.Evaluated, fast.Feasible, slow.Evaluated, slow.Feasible)
			}
			if fast.Found() != slow.Found() {
				t.Fatalf("draw %d (%s): feasibility verdict diverges", i, ref.name)
			}
			if !reflect.DeepEqual(fast.Best, slow.Best) {
				t.Errorf("draw %d (%s): best diverges:\nfast: %+v %v\nreference: %+v %v",
					i, ref.name, fast.Best.Strategy, fast.Best.BatchTime,
					slow.Best.Strategy, slow.Best.BatchTime)
			}
			if !reflect.DeepEqual(fast.Top, slow.Top) {
				t.Errorf("draw %d (%s): top-%d diverges", i, ref.name, opts.TopK)
			}
			if !reflect.DeepEqual(fast.Pareto, slow.Pareto) {
				t.Errorf("draw %d (%s): Pareto front diverges (%d vs %d points)",
					i, ref.name, len(fast.Pareto), len(slow.Pareto))
			}
			if ref.noScreen && slow.PreScreened != 0 {
				t.Errorf("draw %d (%s): %d pre-screened with the filter disabled",
					i, ref.name, slow.PreScreened)
			}
			if ref.noMemo && slow.CacheHits != 0 {
				t.Errorf("draw %d (%s): %d cache hits with the memo disabled",
					i, ref.name, slow.CacheHits)
			}
			if (ref.noScreen || o.DisableSubtreePrune) && slow.SubtreePruned != 0 {
				t.Errorf("draw %d (%s): %d subtree-pruned with pruning disabled",
					i, ref.name, slow.SubtreePruned)
			}
			if ref.name == "no-subtree-prune" && fast.PreScreened != slow.PreScreened {
				t.Errorf("draw %d (%s): pre-screened diverges: %d with subtree pruning vs %d without",
					i, ref.name, fast.PreScreened, slow.PreScreened)
			}
			if ref.name == "no-delta" &&
				(fast.PreScreened != slow.PreScreened || fast.SubtreePruned != slow.SubtreePruned) {
				t.Errorf("draw %d (%s): counters diverge between delta and scratch: (%d,%d) vs (%d,%d)",
					i, ref.name, fast.PreScreened, fast.SubtreePruned, slow.PreScreened, slow.SubtreePruned)
			}
		}
		// The fast path's counters must be internally consistent: pre-screened
		// strategies are a subset of the infeasible ones, and cache hits never
		// exceed the evaluations that reached phase 2.
		if fast.PreScreened > fast.Evaluated-fast.Feasible {
			t.Errorf("draw %d: %d pre-screened exceeds %d infeasible",
				i, fast.PreScreened, fast.Evaluated-fast.Feasible)
		}
		if fast.CacheHits > fast.Evaluated-fast.PreScreened {
			t.Errorf("draw %d: %d cache hits exceed %d phase-2 evaluations",
				i, fast.CacheHits, fast.Evaluated-fast.PreScreened)
		}
		// Subtree-pruned leaves are pre-screened leaves that were never
		// generated, so the count is bounded by PreScreened.
		if fast.SubtreePruned > fast.PreScreened {
			t.Errorf("draw %d: %d subtree-pruned exceeds %d pre-screened",
				i, fast.SubtreePruned, fast.PreScreened)
		}
	}
}

// TestTwoPhaseCountersReported sanity-checks that a default search actually
// exercises both fast paths — a memo key space orders of magnitude smaller
// than the strategy space guarantees hits, and a capacity-limited system
// guarantees pre-screen rejections. Guards against silently wiring the
// counters to a dead path.
func TestTwoPhaseCountersReported(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	sys := system.A100(16)
	res, err := Execution(context.Background(), m, sys, Options{
		Enum: execution.EnumOptions{Features: execution.FeatureSeqPar, MaxInterleave: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Error("expected block-profile cache hits in a default search")
	}
	// 13B parameters on 16 A100s cannot hold low-parallelism shards: the
	// weight/optimizer lower bound alone overflows 80 GiB, so the pre-screen
	// must fire.
	if res.PreScreened == 0 {
		t.Error("expected pre-screen rejections on a capacity-limited system")
	}
	if res.PreScreened > res.Evaluated-res.Feasible {
		t.Errorf("pre-screened %d exceeds infeasible %d",
			res.PreScreened, res.Evaluated-res.Feasible)
	}
}
