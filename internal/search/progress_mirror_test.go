package search

import (
	"context"
	"testing"
)

func TestProgressMirrorToAggregates(t *testing.T) {
	var agg Progress
	var a, b Progress
	a.MirrorTo(&agg)
	b.MirrorTo(&agg)
	a.add(progressDelta{evaluated: 10, feasible: 3, prescreened: 2})
	b.add(progressDelta{evaluated: 5, cacheHits: 4, subtreePruned: 1})
	a.AddTotal(100)
	b.AddTotal(50)

	snapA, snapB, snapAgg := a.Snapshot(), b.Snapshot(), agg.Snapshot()
	if snapA.Evaluated != 10 || snapB.Evaluated != 5 {
		t.Fatalf("per-progress counters blurred: a=%d b=%d", snapA.Evaluated, snapB.Evaluated)
	}
	if snapAgg.Evaluated != 15 || snapAgg.Feasible != 3 || snapAgg.PreScreened != 2 ||
		snapAgg.CacheHits != 4 || snapAgg.SubtreePruned != 1 || snapAgg.Total != 150 {
		t.Fatalf("aggregate = %+v", snapAgg)
	}
	if snapAgg.Elapsed <= 0 {
		t.Fatal("MirrorTo did not start the aggregate's clock")
	}

	// Unsubscribing stops the flow without touching accumulated counts.
	a.MirrorTo(nil)
	a.add(progressDelta{evaluated: 7})
	if got := agg.Snapshot().Evaluated; got != 15 {
		t.Fatalf("aggregate moved to %d after unsubscribe", got)
	}
}

// TestProgressMirrorThroughSearches runs two real searches, each with its
// own mirrored Progress, and checks the aggregate equals the sum of the
// results — the fleet-counter contract calculond's /metrics stands on.
func TestProgressMirrorThroughSearches(t *testing.T) {
	var agg Progress
	m, sys := bigSpace()
	opts := Options{
		Enum:    bigOptions().Enum,
		Workers: 4,
	}
	total := 0
	for i := 0; i < 2; i++ {
		var prog Progress
		prog.MirrorTo(&agg)
		o := opts
		o.Progress = &prog
		o.EstimateTotal = true
		res, err := Execution(context.Background(), m, sys, o)
		if err != nil {
			t.Fatal(err)
		}
		if got := prog.Snapshot().Evaluated; got != int64(res.Evaluated) {
			t.Fatalf("job progress %d != result %d", got, res.Evaluated)
		}
		total += res.Evaluated
	}
	snap := agg.Snapshot()
	if snap.Evaluated != int64(total) {
		t.Fatalf("aggregate evaluated %d, want %d", snap.Evaluated, total)
	}
	if snap.Total != snap.Evaluated {
		t.Fatalf("aggregate total %d != evaluated %d after both searches finished", snap.Total, snap.Evaluated)
	}
}
