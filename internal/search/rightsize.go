package search

// Right-sizing helpers for §5.2's acquisition question: "Right-sizing the
// system in light of [efficiency cliffs] could mean the difference between
// deciding to use or acquire a relatively smaller system."

// BestEfficiency returns the scaling point with the highest sample rate per
// processor — the most cost-effective size in a sweep. ok is false when no
// point in the sweep can run the model.
func BestEfficiency(points []ScalingPoint) (ScalingPoint, bool) {
	var best ScalingPoint
	found := false
	for _, p := range points {
		if !p.Found || p.Procs == 0 {
			continue
		}
		if !found || perProc(p) > perProc(best) ||
			(perProc(p) == perProc(best) && p.Procs < best.Procs) {
			best = p
			found = true
		}
	}
	return best, found
}

// SmallestReaching returns the smallest system size whose best
// configuration achieves at least the target sample rate.
func SmallestReaching(points []ScalingPoint, targetRate float64) (ScalingPoint, bool) {
	var best ScalingPoint
	found := false
	for _, p := range points {
		if !p.Found || p.Best.SampleRate < targetRate {
			continue
		}
		if !found || p.Procs < best.Procs {
			best = p
			found = true
		}
	}
	return best, found
}

// RightSize returns the smallest size whose per-processor efficiency is
// within frac of the sweep's best — the "don't buy into a cliff" answer.
// A frac of 0.1 accepts sizes within 10% of the best efficiency.
func RightSize(points []ScalingPoint, frac float64) (ScalingPoint, bool) {
	bestEff, ok := BestEfficiency(points)
	if !ok {
		return ScalingPoint{}, false
	}
	floor := perProc(bestEff) * (1 - frac)
	var best ScalingPoint
	found := false
	for _, p := range points {
		if !p.Found || perProc(p) < floor {
			continue
		}
		if !found || p.Procs < best.Procs {
			best = p
			found = true
		}
	}
	return best, found
}

func perProc(p ScalingPoint) float64 {
	return p.Best.SampleRate / float64(p.Procs)
}
