package search

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress is a live, lock-free view into a running search. Attach one via
// Options.Progress and read it from any goroutine — a progress ticker, an
// HTTP status handler, a signal handler printing partial results — while the
// search runs. Counters are flushed by the workers once per chunk, so a
// Snapshot taken mid-flight may lag the true position by at most one chunk
// per worker; once the search returns, the counters exactly match the
// returned Result.
//
// A single Progress may be shared across several searches (SystemSize and
// the budget sweep do this): counters and totals accumulate, and the rate
// reflects aggregate throughput since the first search started.
//
// Every field is written by worker goroutines and read concurrently by
// observers, so access goes through sync/atomic exclusively — calculonvet's
// atomiccounter analyzer enforces this at compile time.
//
//calculonvet:counter
type Progress struct {
	evaluated     atomic.Int64
	feasible      atomic.Int64
	prescreened   atomic.Int64
	cacheHits     atomic.Int64
	subtreePruned atomic.Int64
	storeHits     atomic.Int64
	total         atomic.Int64
	// startNano is the time the first search attached, in nanoseconds since
	// the Unix epoch; zero means not started.
	startNano atomic.Int64
	// mirror, when non-nil, receives a copy of every counter delta and total
	// this Progress records (see MirrorTo). Read on the flush path, so it
	// rides in an atomic pointer like every other field.
	mirror atomic.Pointer[Progress]
}

// MirrorTo subscribes agg to this Progress: every counter delta and total
// recorded here is also recorded on agg, so one aggregate Progress can give
// a fleet-wide view over many independent per-job Progresses without the
// jobs sharing one (which would blur their individual snapshots). A service
// wires each job's Progress to one aggregate and exposes both: per-job
// status from the job's own Snapshot, totals from the aggregate's.
//
// MirrorTo marks agg started (so its rate is measured from subscription
// time), may be called before the search attaches, and must not form a
// cycle. Passing nil unsubscribes.
func (p *Progress) MirrorTo(agg *Progress) {
	if agg != nil {
		agg.markStart()
	}
	p.mirror.Store(agg)
}

// markStart records the wall-clock start on first attachment.
func (p *Progress) markStart() {
	p.startNano.CompareAndSwap(0, time.Now().UnixNano())
}

// progressDelta is one chunk's worth of counter increments.
type progressDelta struct {
	evaluated     int64
	feasible      int64
	prescreened   int64
	cacheHits     int64
	subtreePruned int64
	storeHits     int64
}

// add flushes one chunk's worth of counts.
func (p *Progress) add(d progressDelta) {
	if d.evaluated != 0 {
		p.evaluated.Add(d.evaluated)
	}
	if d.feasible != 0 {
		p.feasible.Add(d.feasible)
	}
	if d.prescreened != 0 {
		p.prescreened.Add(d.prescreened)
	}
	if d.cacheHits != 0 {
		p.cacheHits.Add(d.cacheHits)
	}
	if d.subtreePruned != 0 {
		p.subtreePruned.Add(d.subtreePruned)
	}
	if d.storeHits != 0 {
		p.storeHits.Add(d.storeHits)
	}
	if m := p.mirror.Load(); m != nil {
		m.add(d)
	}
}

// Counts is one batch of counter increments for AddCounts. Other search
// verticals (the serving search) flush their per-chunk tallies through this
// instead of reaching into the unexported fields, so mirror propagation and
// the atomic discipline stay in one place.
type Counts struct {
	Evaluated   int64
	Feasible    int64
	PreScreened int64
	CacheHits   int64
	StoreHits   int64
}

// AddCounts flushes one batch of counts, propagating to any mirror exactly
// like the internal per-chunk flush does.
func (p *Progress) AddCounts(c Counts) {
	p.add(progressDelta{
		evaluated:   c.Evaluated,
		feasible:    c.Feasible,
		prescreened: c.PreScreened,
		cacheHits:   c.CacheHits,
		storeHits:   c.StoreHits,
	})
}

// MarkStart records the wall-clock start on first attachment, for searches
// outside this package that drive a Progress directly.
func (p *Progress) MarkStart() { p.markStart() }

// AddTotal grows the expected-strategy total (used for ETA). Searches add
// their own space size when Options.EstimateTotal is set; callers that know
// the size in advance may add it themselves instead.
func (p *Progress) AddTotal(n int64) {
	p.total.Add(n)
	if m := p.mirror.Load(); m != nil {
		m.AddTotal(n)
	}
}

// Snapshot captures the counters at one instant and derives throughput and
// an ETA. It is safe to call concurrently with the search.
func (p *Progress) Snapshot() ProgressSnapshot {
	s := ProgressSnapshot{
		Evaluated:     p.evaluated.Load(),
		Feasible:      p.feasible.Load(),
		PreScreened:   p.prescreened.Load(),
		CacheHits:     p.cacheHits.Load(),
		SubtreePruned: p.subtreePruned.Load(),
		StoreHits:     p.storeHits.Load(),
		Total:         p.total.Load(),
	}
	if start := p.startNano.Load(); start != 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - start)
	}
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.Rate = float64(s.Evaluated) / secs
	}
	if s.Total > s.Evaluated && s.Rate > 0 {
		s.ETA = time.Duration(float64(s.Total-s.Evaluated) / s.Rate * float64(time.Second))
	}
	return s
}

// ProgressSnapshot is one observation of a running search.
type ProgressSnapshot struct {
	// Evaluated and Feasible mirror Result's counters, live.
	Evaluated int64
	Feasible  int64
	// PreScreened and CacheHits mirror the two-phase evaluation counters:
	// strategies rejected by the analytic pre-screen, and evaluations served
	// from the memoized block profiles.
	PreScreened int64
	CacheHits   int64
	// SubtreePruned counts the strategies dropped whole at the (tp,pp,dp)
	// lattice level — accounted in Evaluated and PreScreened in closed form,
	// never enumerated. A progress line therefore covers the full space, not
	// just the leaves that were generated.
	SubtreePruned int64
	// StoreHits counts whole searches served from a persistent result store
	// (Options.Cache) without evaluating anything: the served verdict's own
	// counters live in the returned Result, not here.
	StoreHits int64
	// Total is the expected number of strategies, when known (see
	// Options.EstimateTotal and Progress.AddTotal); 0 when unknown.
	Total int64
	// Elapsed is the wall-clock time since the first attached search began.
	Elapsed time.Duration
	// Rate is the aggregate throughput in strategies per second.
	Rate float64
	// ETA estimates the remaining time from Rate and Total; 0 when Total is
	// unknown or already reached.
	ETA time.Duration
}

// String renders a one-line status suitable for a stderr ticker, e.g.
//
//	evaluated 1234567/10957376 (11.3%), 456789 feasible, 250k strategies/s, ETA 39s
func (s ProgressSnapshot) String() string {
	out := fmt.Sprintf("evaluated %d", s.Evaluated)
	if s.Total > 0 {
		out += fmt.Sprintf("/%d (%.1f%%)", s.Total, 100*float64(s.Evaluated)/float64(s.Total))
	}
	out += fmt.Sprintf(", %d feasible", s.Feasible)
	if s.PreScreened > 0 {
		out += fmt.Sprintf(", %d pre-screened", s.PreScreened)
	}
	if s.SubtreePruned > 0 {
		out += fmt.Sprintf(", %d subtree-pruned", s.SubtreePruned)
	}
	if s.StoreHits > 0 {
		out += fmt.Sprintf(", %d store hits", s.StoreHits)
	}
	if s.Rate > 0 {
		out += fmt.Sprintf(", %s strategies/s", compactCount(s.Rate))
	}
	if s.ETA > 0 {
		out += fmt.Sprintf(", ETA %v", s.ETA.Round(time.Second))
	}
	return out
}

// compactCount renders a rate the way humans scan tickers: 250k, 1.2M.
func compactCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
