package search

import (
	"context"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

// BenchmarkExecutionSearch measures end-to-end search throughput — the
// paper's headline capability ("millions of combinations in only a few
// minutes on a standard desktop computer"). The strategies-per-second
// metric is the number to watch.
func BenchmarkExecutionSearch(b *testing.B) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	sys := system.A100(64)
	opts := Options{Enum: execution.EnumOptions{Procs: 64, Features: execution.FeatureSeqPar, MaxInterleave: 2}}
	var evaluated int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Execution(context.Background(), m, sys, opts)
		if err != nil {
			b.Fatal(err)
		}
		// Accumulate across iterations: extrapolating from the last
		// iteration (evaluated/elapsed·N) over-reports whenever per-
		// iteration times vary; the summed count is exact.
		evaluated += res.Evaluated
	}
	b.ReportMetric(float64(evaluated)/b.Elapsed().Seconds(), "strategies/s")
}
