package search

import (
	"context"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

// BenchmarkExecutionSearch measures end-to-end search throughput on the
// scratch path (incremental evaluation disabled) — the paper's headline
// capability ("millions of combinations in only a few minutes on a standard
// desktop computer"). The strategies-per-second metric is the number to
// watch; BenchmarkExecutionSearchDelta runs the identical search on the
// default delta path, so the ratio of the two keeps the delta win honest
// the same way the sweep/no-prune pair does for the lattice prune.
func BenchmarkExecutionSearch(b *testing.B) {
	benchExecutionSearch(b, true)
}

// BenchmarkExecutionSearchDelta is the identical search on the default
// path: each worker threads a perf.RunDelta chain through the Gray-code-
// adjacent toggle order, recomputing only the term groups each flipped
// toggle can perturb.
func BenchmarkExecutionSearchDelta(b *testing.B) {
	benchExecutionSearch(b, false)
}

func benchExecutionSearch(b *testing.B, disableDelta bool) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	sys := system.A100(64)
	opts := Options{
		Enum:         execution.EnumOptions{Procs: 64, Features: execution.FeatureSeqPar, MaxInterleave: 2},
		DisableDelta: disableDelta,
	}
	var evaluated int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Execution(context.Background(), m, sys, opts)
		if err != nil {
			b.Fatal(err)
		}
		// Accumulate across iterations: extrapolating from the last
		// iteration (evaluated/elapsed·N) over-reports whenever per-
		// iteration times vary; the summed count is exact.
		evaluated += res.Evaluated
	}
	b.ReportMetric(float64(evaluated)/b.Elapsed().Seconds(), "strategies/s")
}

// sweepBenchOptions is the §5.2-shaped configuration both sweep benchmarks
// share: the full feature space with the beneficial toggles pinned, as the
// scaling studies run it. On a capacity-limited accelerator most low-TP
// subtrees fail the closed-form memory bound, which is exactly the regime the
// lattice prune targets.
func sweepBenchOptions() (model.LLM, []int, Options) {
	m := model.MustPreset("turing-530B").WithBatch(3072)
	sizes := Sizes(16, 128) // spans the fit cliff: nothing fits below 112 procs
	opts := Options{Enum: execution.EnumOptions{
		Features:      execution.FeatureAll,
		PinBeneficial: true,
		MaxTP:         32,
		MaxInterleave: 4,
	}}
	return m, sizes, opts
}

// BenchmarkSystemSizeSweep measures a §5.2 system-size sweep end to end with
// the lattice prune and the cross-size shared memo on — the configuration
// the scaling and right-sizing studies actually run. The strategies/s metric
// counts the full space (pruned subtrees included, since their verdicts are
// decided exactly), matching the Evaluated accounting.
func BenchmarkSystemSizeSweep(b *testing.B) {
	m, sizes, opts := sweepBenchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := SystemSize(context.Background(), m, func(n int) system.System { return system.A100(n) }, sizes, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !pts[len(pts)-1].Found {
			b.Fatal("175B should fit at 512 GPUs")
		}
	}
	b.ReportMetric(sweepSpace(m, sizes, opts)*float64(b.N)/b.Elapsed().Seconds(), "strategies/s")
}

// BenchmarkSystemSizeSweepNoPrune is the reference arm: the identical sweep
// with the subtree prune disabled, so every leaf is generated and pre-screened
// individually. The ratio of the two benchmarks' time/op is the prune's
// speedup; CI compares both against the committed baseline.
func BenchmarkSystemSizeSweepNoPrune(b *testing.B) {
	m, sizes, opts := sweepBenchOptions()
	opts.DisableSubtreePrune = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SystemSize(context.Background(), m, func(n int) system.System { return system.A100(n) }, sizes, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sweepSpace(m, sizes, opts)*float64(b.N)/b.Elapsed().Seconds(), "strategies/s")
}

// sweepSpace is the exact number of strategies one sweep pass covers.
func sweepSpace(m model.LLM, sizes []int, opts Options) float64 {
	total := 0
	for _, n := range sizes {
		e := opts.Enum
		e.Procs = n
		total += e.SpaceSize(m)
	}
	return float64(total)
}
