package search

import (
	"testing"

	"calculon/internal/perf"
)

func pt(procs int, rate float64, found bool) ScalingPoint {
	p := ScalingPoint{Procs: procs, Found: found}
	p.Best = perf.Result{SampleRate: rate}
	return p
}

func TestBestEfficiency(t *testing.T) {
	pts := []ScalingPoint{
		pt(8, 8, true),   // 1.0/proc
		pt(16, 20, true), // 1.25/proc — best
		pt(24, 18, true), // cliff: 0.75/proc
		pt(32, 38, true), // 1.1875/proc
		pt(40, 0, false), // cannot run
	}
	best, ok := BestEfficiency(pts)
	if !ok || best.Procs != 16 {
		t.Fatalf("BestEfficiency = %v (%v), want 16 procs", best.Procs, ok)
	}
	if _, ok := BestEfficiency([]ScalingPoint{pt(8, 0, false)}); ok {
		t.Fatal("all-infeasible sweep must report not found")
	}
}

func TestBestEfficiencyPrefersSmallerOnTie(t *testing.T) {
	pts := []ScalingPoint{pt(16, 16, true), pt(8, 8, true)}
	best, ok := BestEfficiency(pts)
	if !ok || best.Procs != 8 {
		t.Fatalf("tie should pick the smaller system, got %d", best.Procs)
	}
}

func TestSmallestReaching(t *testing.T) {
	pts := []ScalingPoint{
		pt(8, 8, true), pt(16, 20, true), pt(24, 18, true), pt(32, 38, true),
	}
	got, ok := SmallestReaching(pts, 18)
	if !ok || got.Procs != 16 {
		t.Fatalf("SmallestReaching(18) = %d (%v), want 16", got.Procs, ok)
	}
	if _, ok := SmallestReaching(pts, 100); ok {
		t.Fatal("unreachable target must report not found")
	}
}

func TestRightSizeAvoidsCliffs(t *testing.T) {
	pts := []ScalingPoint{
		pt(8, 8, true),   // 1.0/proc — within 20% of best
		pt(16, 20, true), // 1.25/proc — best efficiency
		pt(24, 18, true), // 0.75/proc — a cliff
	}
	got, ok := RightSize(pts, 0.25)
	if !ok || got.Procs != 8 {
		t.Fatalf("RightSize(25%%) = %d (%v), want the small 8-proc system", got.Procs, ok)
	}
	tight, ok := RightSize(pts, 0.05)
	if !ok || tight.Procs != 16 {
		t.Fatalf("RightSize(5%%) = %d (%v), want 16", tight.Procs, ok)
	}
	if _, ok := RightSize(nil, 0.1); ok {
		t.Fatal("empty sweep must report not found")
	}
}
