package search

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// stripCacheHits zeroes the one counter that is not process-split
// invariant: each sharded process warms its own block-profile memo, so the
// hit count depends on how the space was split (exactly why the canonical
// CLI JSON omits it). Everything else must match bit for bit.
func stripCacheHits(r Result) Result {
	r.CacheHits = 0
	return r
}

func runShards(t *testing.T, m model.LLM, sys system.System, opts Options, n int) Result {
	t.Helper()
	shards := make([]ShardResult, 0, n)
	for i := 0; i < n; i++ {
		sr, err := ExecutionShard(context.Background(), m, sys, opts, Shard{Index: i, Count: n})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i+1, n, err)
		}
		shards = append(shards, sr)
	}
	// Merge in scrambled order: the merge must not depend on arrival order.
	rand.New(rand.NewSource(int64(n))).Shuffle(len(shards), func(i, j int) {
		shards[i], shards[j] = shards[j], shards[i]
	})
	merged, err := MergeResults(shards)
	if err != nil {
		t.Fatalf("merge %d shards: %v", n, err)
	}
	return merged
}

// TestShardPartitionProperty is the randomized sharding property: for any
// shard count — 1, a divisor, coprime to the triple count, or more shards
// than triples (empty ranges) — running every shard separately and merging
// reproduces the single-process result exactly, counters included (modulo
// CacheHits, see stripCacheHits).
func TestShardPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	models := []string{"gpt3-13B", "megatron-22B", "gpt2-1.5B"}
	procChoices := []int{8, 16, 32}
	features := []execution.FeatureSet{
		execution.FeatureBaseline, execution.FeatureSeqPar, execution.FeatureAll,
	}

	const draws = 6
	for i := 0; i < draws; i++ {
		m := model.MustPreset(models[rng.Intn(len(models))]).WithBatch(8 << rng.Intn(3))
		procs := procChoices[rng.Intn(len(procChoices))]
		sys := system.A100(procs)
		switch rng.Intn(3) {
		case 0:
			sys = sys.WithMem1Capacity(sys.Mem1.Capacity / 4)
		case 1:
			sys = sys.WithMem2(system.DDR5(512 * units.GiB))
		}
		opts := Options{
			Enum: execution.EnumOptions{
				Features:      features[rng.Intn(len(features))],
				MaxTP:         8,
				MaxInterleave: 2,
			},
			Workers: 1 + rng.Intn(3),
			TopK:    1 + rng.Intn(6),
			Pareto:  true,
		}
		want, err := Execution(context.Background(), m, sys, opts)
		if err != nil {
			t.Fatalf("draw %d: single-process search: %v", i, err)
		}

		nTriples := len(opts.Enum.Triples(m))
		counts := []int{1, 3, 2 + rng.Intn(5), nTriples + 3} // incl. empty ranges
		for _, n := range counts {
			got := runShards(t, m, sys, opts, n)
			if !reflect.DeepEqual(stripCacheHits(got), stripCacheHits(want)) {
				t.Errorf("draw %d: %d-shard merge diverges from single process\n got %+v\nwant %+v",
					i, n, stripCacheHits(got), stripCacheHits(want))
			}
		}
	}
}

// TestShardRangesTile checks the range derivation: for any (count, total),
// the ranges are contiguous, in order, and tile [0,total) exactly.
func TestShardRangesTile(t *testing.T) {
	for _, total := range []int{0, 1, 2, 7, 100, 101} {
		for _, n := range []int{1, 2, 3, 7, 100, 150} {
			next := 0
			for i := 0; i < n; i++ {
				lo, hi := shardRange(Shard{Index: i, Count: n}, total)
				if lo != next || hi < lo {
					t.Fatalf("total %d count %d: shard %d range [%d,%d), want lo %d", total, n, i, lo, hi, next)
				}
				next = hi
			}
			if next != total {
				t.Fatalf("total %d count %d: ranges end at %d", total, n, next)
			}
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"1/1": {0, 1},
		"1/3": {0, 3},
		"3/3": {2, 3},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", in, got, err, want)
		}
		if got.String() != in {
			t.Errorf("Shard%+v.String() = %q, want %q", got, got.String(), in)
		}
	}
	for _, in := range []string{"", "3", "0/3", "4/3", "-1/3", "1/0", "a/b", "1/"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) succeeded, want error", in)
		}
	}
}

// TestMergeResultsRejectsBadSets checks the partition validation: missing,
// duplicate, miscounted, and setting-mismatched shard sets must all refuse
// to merge rather than produce a silently wrong Result.
func TestMergeResultsRejectsBadSets(t *testing.T) {
	m := model.MustPreset("gpt2-1.5B").WithBatch(8)
	sys := system.A100(8)
	opts := Options{Enum: execution.EnumOptions{Features: execution.FeatureBaseline}, TopK: 2, Pareto: true}
	var shards []ShardResult
	for i := 0; i < 3; i++ {
		sr, err := ExecutionShard(context.Background(), m, sys, opts, Shard{Index: i, Count: 3})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sr)
	}

	if _, err := MergeResults(nil); err == nil {
		t.Error("empty set merged")
	}
	if _, err := MergeResults(shards[:2]); err == nil {
		t.Error("incomplete set merged")
	}
	dup := []ShardResult{shards[0], shards[1], shards[1]}
	if _, err := MergeResults(dup); err == nil {
		t.Error("duplicate shard merged")
	}
	bad := []ShardResult{shards[0], shards[1], shards[2]}
	bad[2].Shard.Count = 4
	if _, err := MergeResults(bad); err == nil {
		t.Error("count mismatch merged")
	}
	bad = []ShardResult{shards[0], shards[1], shards[2]}
	bad[1].TopK = 99
	if _, err := MergeResults(bad); err == nil {
		t.Error("top-k mismatch merged")
	}
}

// TestExecutionShardRejections pins the option rules specific to shards.
func TestExecutionShardRejections(t *testing.T) {
	m := model.MustPreset("gpt2-1.5B").WithBatch(8)
	sys := system.A100(8)
	opts := Options{Enum: execution.EnumOptions{Features: execution.FeatureBaseline}}
	if _, err := ExecutionShard(context.Background(), m, sys, opts, Shard{Index: 0, Count: 0}); err == nil {
		t.Error("invalid shard accepted")
	}
	o := opts
	o.CollectRates = true
	if _, err := ExecutionShard(context.Background(), m, sys, o, Shard{Index: 0, Count: 2}); err == nil {
		t.Error("CollectRates accepted on a sharded search")
	}
}
