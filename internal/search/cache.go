package search

import (
	"calculon/internal/model"
	"calculon/internal/system"
)

// Cache is a store of finished search verdicts consulted by Execution before
// it walks a strategy space and fed by it afterwards. internal/resultstore
// provides the persistent implementation; the interface lives here so the
// search engines need no dependency on the storage layer.
//
// Implementations derive the identity of a search from the result-affecting
// inputs only — the model, the system, and the normalized result-affecting
// options (enumeration bounds, TopK, Pareto, and the Disable* evaluation
// switches, which leave results untouched but change the diagnostic
// counters). Scheduling knobs (Workers, Progress, callbacks) must not reach
// the identity: results are proven independent of them.
//
// Both methods may be called concurrently from many searches sharing one
// cache (the service does this); implementations synchronize internally.
type Cache interface {
	// Lookup returns the stored result of this exact search, if any.
	Lookup(m model.LLM, sys system.System, opts Options) (Result, bool)
	// Store records a finished search's result. Implementations are free to
	// drop writes (a full or read-only store is not an error).
	Store(m model.LLM, sys system.System, opts Options, res Result)
}
