package search

import (
	"sort"

	"calculon/internal/perf"
)

// ParetoFront returns the configurations not dominated on the
// (batch time, first-tier memory) plane: for each one, no other result is
// both faster and smaller. Fig. 5 of the paper highlights exactly this
// choice — "a variety of configurations that could be chosen to minimize
// either time or memory capacity, as desired." The front is returned
// fastest-first (and therefore largest-memory-first).
func ParetoFront(results []perf.Result) []perf.Result {
	if len(results) == 0 {
		return nil
	}
	sorted := append([]perf.Result(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].BatchTime != sorted[j].BatchTime {
			return sorted[i].BatchTime < sorted[j].BatchTime
		}
		return sorted[i].Mem1.Total() < sorted[j].Mem1.Total()
	})
	var front []perf.Result
	bestMem := sorted[0].Mem1.Total() + 1
	for _, r := range sorted {
		if m := r.Mem1.Total(); m < bestMem {
			front = append(front, r)
			bestMem = m
		}
	}
	return front
}
