package search

import (
	"context"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

func smallSearch(t *testing.T, workers int) Result {
	t.Helper()
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	sys := system.A100(64)
	res, err := Execution(context.Background(), m, sys, Options{
		Enum:    execution.EnumOptions{Procs: 64, Features: execution.FeatureSeqPar, MaxInterleave: 2},
		Workers: workers,
		TopK:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExecutionFindsFeasibleBest(t *testing.T) {
	res := smallSearch(t, 4)
	if !res.Found() {
		t.Fatal("no feasible configuration found")
	}
	if res.Feasible > res.Evaluated {
		t.Fatalf("feasible %d > evaluated %d", res.Feasible, res.Evaluated)
	}
	if res.Best.SampleRate <= 0 {
		t.Fatal("best has no sample rate")
	}
	if res.Best.Strategy.Procs() != 64 {
		t.Fatalf("best uses %d procs, want 64", res.Best.Strategy.Procs())
	}
}

// TestDeterministicAcrossWorkerCounts is the core parallel-search invariant:
// the same best configuration regardless of pool size.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	r1 := smallSearch(t, 1)
	r8 := smallSearch(t, 8)
	if r1.Best.Strategy != r8.Best.Strategy {
		t.Errorf("best differs across worker counts:\n1: %v\n8: %v", r1.Best.Strategy, r8.Best.Strategy)
	}
	if r1.Evaluated != r8.Evaluated || r1.Feasible != r8.Feasible {
		t.Errorf("counts differ: (%d,%d) vs (%d,%d)", r1.Evaluated, r1.Feasible, r8.Evaluated, r8.Feasible)
	}
	if len(r1.Top) != len(r8.Top) {
		t.Fatalf("top-k sizes differ: %d vs %d", len(r1.Top), len(r8.Top))
	}
	for i := range r1.Top {
		if r1.Top[i].Strategy != r8.Top[i].Strategy {
			t.Errorf("top[%d] differs: %v vs %v", i, r1.Top[i].Strategy, r8.Top[i].Strategy)
		}
	}
}

func TestTopKSortedAndBestFirst(t *testing.T) {
	res := smallSearch(t, 4)
	if len(res.Top) == 0 || len(res.Top) > 10 {
		t.Fatalf("top-k size %d", len(res.Top))
	}
	if res.Top[0].Strategy != res.Best.Strategy {
		t.Error("top[0] must be the best")
	}
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].SampleRate > res.Top[i-1].SampleRate {
			t.Errorf("top-k not sorted at %d", i)
		}
	}
}

func TestBestIsTrulyBestWithRates(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(16)
	sys := system.A100(16)
	res, err := Execution(context.Background(), m, sys, Options{
		Enum:         execution.EnumOptions{Procs: 16, Features: execution.FeatureBaseline, MaxInterleave: 2},
		CollectRates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) != res.Feasible {
		t.Fatalf("rates %d != feasible %d", len(res.Rates), res.Feasible)
	}
	for _, r := range res.Rates {
		if r > res.Best.SampleRate+1e-9 {
			t.Fatalf("found rate %f above best %f", r, res.Best.SampleRate)
		}
	}
}

func TestExecutionInfeasibleEverywhere(t *testing.T) {
	// Megatron-1T on 2 A100s: nothing can fit.
	m := model.MustPreset("megatron-1T").WithBatch(2)
	sys := system.A100(2)
	res, err := Execution(context.Background(), m, sys, Options{Enum: execution.EnumOptions{Procs: 2, MaxInterleave: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() || res.Feasible != 0 {
		t.Fatalf("expected nothing feasible, got %d", res.Feasible)
	}
	if res.Evaluated == 0 {
		t.Fatal("strategies must still be evaluated")
	}
}

func TestExecutionRejectsBadInputs(t *testing.T) {
	sys := system.A100(8)
	if _, err := Execution(context.Background(), model.LLM{}, sys, Options{}); err == nil {
		t.Error("bad model must error")
	}
	if _, err := Execution(context.Background(), model.MustPreset("gpt3-13B"), system.System{}, Options{}); err == nil {
		t.Error("bad system must error")
	}
}

func TestSystemSizeSweep(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	sizes := Sizes(16, 64) // 16, 32, 48, 64
	pts, err := SystemSize(context.Background(), m, func(n int) system.System { return system.A100(n) }, sizes, Options{
		Enum: execution.EnumOptions{Features: execution.FeatureSeqPar, MaxInterleave: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.Procs != sizes[i] {
			t.Errorf("point %d procs %d want %d", i, p.Procs, sizes[i])
		}
		if !p.Found {
			t.Errorf("13B should fit at %d GPUs", p.Procs)
		}
	}
	// The scaling envelope: more GPUs should never reduce best sample rate
	// by more than cliff noise; at least the largest should beat the
	// smallest for this well-divisible model.
	if !(pts[3].Best.SampleRate > pts[0].Best.SampleRate) {
		t.Errorf("64 GPUs (%f) should outperform 16 (%f)",
			pts[3].Best.SampleRate, pts[0].Best.SampleRate)
	}
}

// TestSystemSizeSweepEquivalence extends the two-phase equivalence guarantee
// to the sweep path: the cross-size shared memo, the subtree prune, and the
// worker-budget split must leave every scaling point bit-identical to the
// reference arms that disable them.
func TestSystemSizeSweepEquivalence(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	sizes := Sizes(16, 48)
	sysAt := func(n int) system.System { return system.A100(n) }
	base := Options{
		Enum:   execution.EnumOptions{Features: execution.FeatureSeqPar, MaxInterleave: 2},
		TopK:   4,
		Pareto: true,
	}
	ref, err := SystemSize(context.Background(), m, sysAt, sizes, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []struct {
		name string
		mod  func(*Options)
	}{
		{"no-subtree-prune", func(o *Options) { o.DisableSubtreePrune = true }},
		{"no-shared-memo", func(o *Options) { o.DisableMemo = true }},
		{"no-prescreen", func(o *Options) { o.DisablePreScreen = true }},
		{"one-worker", func(o *Options) { o.Workers = 1 }},
	} {
		o := base
		arm.mod(&o)
		got, err := SystemSize(context.Background(), m, sysAt, sizes, o)
		if err != nil {
			t.Fatalf("%s: %v", arm.name, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: scaling points diverge from the default sweep", arm.name)
		}
	}
}

func TestSizesHelper(t *testing.T) {
	got := Sizes(8, 32)
	want := []int{8, 16, 24, 32}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	if Sizes(8, 4) != nil {
		t.Error("empty range must be nil")
	}
}

func TestOffloadSearchUsesMem2(t *testing.T) {
	// With a big model on few GPUs, only offload strategies fit; the search
	// must find them when (and only when) the system has a second tier.
	m := model.MustPreset("megatron-1T").WithBatch(8)
	bare := system.A100(8)
	r1, err := Execution(context.Background(), m, bare, Options{Enum: execution.EnumOptions{Procs: 8, MaxInterleave: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Found() {
		t.Fatal("1T cannot fit on 8 bare A100s")
	}
	off := bare.WithMem2(system.DDR5(4 * units.TiB))
	r2, err := Execution(context.Background(), m, off, Options{Enum: execution.EnumOptions{Procs: 8, MaxInterleave: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Found() {
		t.Fatal("offload tier should make 1T trainable on 8 GPUs (§6: 'training of Megatron-1T ... on less than 256 GPUs')")
	}
	st := r2.Best.Strategy
	if !(st.WeightOffload || st.ActOffload || st.OptimOffload) {
		t.Errorf("best strategy should use offloading: %v", st)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h := NewHistogram(vals, 10)
	if h.Min != 0 || h.Max != 10 {
		t.Fatalf("range [%f,%f]", h.Min, h.Max)
	}
	if h.Total() != len(vals) {
		t.Fatalf("total %d", h.Total())
	}
	// max value lands in the last bin
	if h.Counts[9] != 2 { // 9 and 10
		t.Errorf("last bin = %d, want 2", h.Counts[9])
	}
	if NewHistogram(nil, 10).Total() != 0 {
		t.Error("empty histogram must be empty")
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		return NewHistogram(vals, 10).Total() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len %d", len(pts))
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Errorf("not sorted: %+v", pts)
	}
	if math.Abs(pts[2].Frac-1) > 1e-12 || math.Abs(pts[0].Frac-1.0/3) > 1e-12 {
		t.Errorf("fractions wrong: %+v", pts)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF must be nil")
	}
}

func TestWithinFraction(t *testing.T) {
	vals := []float64{100, 95, 89, 50, 10}
	if got := WithinFraction(vals, 0.10); got != 2 {
		t.Errorf("within 10%% = %d, want 2", got)
	}
	if got := WithinFraction(vals, 0.5); got != 4 {
		t.Errorf("within 50%% = %d, want 4", got)
	}
	if WithinFraction(nil, 0.1) != 0 {
		t.Error("empty must be 0")
	}
}
