package search

import "sort"

// Histogram is a fixed-bin histogram of sample rates (Fig. 6a).
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram bins the values into the given number of equal-width bins
// spanning [min, max]. The paper's Fig. 6(a) uses 10 bins.
func NewHistogram(values []float64, bins int) Histogram {
	h := Histogram{Counts: make([]int, bins)}
	if len(values) == 0 || bins <= 0 {
		return h
	}
	h.Min, h.Max = values[0], values[0]
	for _, v := range values {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	width := (h.Max - h.Min) / float64(bins)
	for _, v := range values {
		i := bins - 1
		if width > 0 {
			i = int((v - h.Min) / width)
			if i >= bins {
				i = bins - 1
			}
		}
		h.Counts[i]++
	}
	return h
}

// Total returns the number of binned values.
func (h Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical cumulative distribution of the values,
// ascending (Fig. 6b plots this over the top-100 sample rates).
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, Frac: float64(i+1) / float64(len(s))}
	}
	return out
}

// WithinFraction counts how many values lie within frac of the maximum —
// the paper's "only 30 configurations ... within 10% of the best" metric.
func WithinFraction(values []float64, frac float64) int {
	if len(values) == 0 {
		return 0
	}
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	n := 0
	for _, v := range values {
		if v >= max*(1-frac) {
			n++
		}
	}
	return n
}
