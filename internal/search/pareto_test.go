package search

import (
	"context"
	"testing"
	"testing/quick"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
	"calculon/internal/units"
)

func resultTM(t, mem float64) perf.Result {
	var r perf.Result
	r.BatchTime = units.Seconds(t)
	r.Mem1.Weights = units.Bytes(mem)
	return r
}

func TestParetoFrontBasics(t *testing.T) {
	in := []perf.Result{
		resultTM(10, 100), // dominated by (10,50)? no—same time more mem: dominated
		resultTM(10, 50),
		resultTM(20, 40),
		resultTM(30, 45), // dominated by (20,40)
		resultTM(40, 10),
	}
	front := ParetoFront(in)
	if len(front) != 3 {
		t.Fatalf("front size %d, want 3: %+v", len(front), front)
	}
	if front[0].BatchTime != 10 || front[0].Mem1.Total() != 50 {
		t.Errorf("front[0] = %v/%v", front[0].BatchTime, front[0].Mem1.Total())
	}
	if front[2].BatchTime != 40 || front[2].Mem1.Total() != 10 {
		t.Errorf("front[2] = %v/%v", front[2].BatchTime, front[2].Mem1.Total())
	}
	if ParetoFront(nil) != nil {
		t.Error("empty input must give empty front")
	}
}

// TestParetoFrontProperty: no front member is dominated by any input point.
func TestParetoFrontProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var in []perf.Result
		for i := 0; i+1 < len(raw); i += 2 {
			in = append(in, resultTM(float64(raw[i]%100)+1, float64(raw[i+1]%100)+1))
		}
		front := ParetoFront(in)
		if len(front) == 0 {
			return false
		}
		for _, fm := range front {
			for _, p := range in {
				if p.BatchTime < fm.BatchTime && p.Mem1.Total() < fm.Mem1.Total() {
					return false
				}
			}
		}
		// Front is sorted fastest-first with strictly decreasing memory.
		for i := 1; i < len(front); i++ {
			if front[i].BatchTime < front[i-1].BatchTime ||
				front[i].Mem1.Total() >= front[i-1].Mem1.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPinBeneficialPreservesOptimum is the justification for the big-sweep
// speedup: pinning the monotone toggles must find the same best sample rate
// as the full enumeration.
func TestPinBeneficialPreservesOptimum(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	sys := system.A100(32)
	full, err := Execution(context.Background(), m, sys, Options{
		Enum: execution.EnumOptions{Procs: 32, Features: execution.FeatureAll, MaxInterleave: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := Execution(context.Background(), m, sys, Options{
		Enum: execution.EnumOptions{Procs: 32, Features: execution.FeatureAll, MaxInterleave: 2, PinBeneficial: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Evaluated >= full.Evaluated {
		t.Fatalf("pinning must shrink the space: %d vs %d", pinned.Evaluated, full.Evaluated)
	}
	if pinned.Best.SampleRate < full.Best.SampleRate*(1-1e-9) {
		t.Errorf("pinned search lost the optimum: %.3f vs %.3f samples/s",
			pinned.Best.SampleRate, full.Best.SampleRate)
	}
}

// TestSearchParetoOption: the incremental front from the parallel search
// matches the invariants and is deterministic across worker counts.
func TestSearchParetoOption(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(32)
	sys := system.A100(32)
	run := func(workers int) Result {
		res, err := Execution(context.Background(), m, sys, Options{
			Enum:    execution.EnumOptions{Procs: 32, Features: execution.FeatureSeqPar, MaxInterleave: 2},
			Workers: workers,
			Pareto:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r8 := run(8)
	if len(r1.Pareto) == 0 {
		t.Fatal("empty Pareto front")
	}
	if len(r1.Pareto) != len(r8.Pareto) {
		t.Fatalf("front size differs across workers: %d vs %d", len(r1.Pareto), len(r8.Pareto))
	}
	for i := range r1.Pareto {
		if r1.Pareto[i].Strategy != r8.Pareto[i].Strategy {
			t.Errorf("front[%d] differs across workers", i)
		}
	}
	// The fastest front member is the overall best; memory decreases along
	// the front while time increases.
	if r1.Pareto[0].Strategy != r1.Best.Strategy {
		t.Error("front[0] must be the fastest configuration")
	}
	for i := 1; i < len(r1.Pareto); i++ {
		if r1.Pareto[i].BatchTime < r1.Pareto[i-1].BatchTime ||
			r1.Pareto[i].Mem1.Total() >= r1.Pareto[i-1].Mem1.Total() {
			t.Fatalf("front not monotone at %d", i)
		}
	}
}
