package search

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/system"
)

// bigOptions spans ~160k strategies (~0.5s of evaluation), so cancelling on
// first progress always lands mid-search with a wide margin.
func bigOptions() Options {
	return Options{
		Enum:    execution.EnumOptions{Procs: 64, Features: execution.FeatureAll, MaxInterleave: 2},
		Workers: 4,
	}
}

func bigSpace() (model.LLM, system.System) {
	return model.MustPreset("gpt3-13B").WithBatch(64), system.A100(64)
}

// waitForGoroutines fails the test if the goroutine count does not settle
// back to the baseline — the leak check behind the cancellation contract.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

func TestExecutionCancelledMidSearch(t *testing.T) {
	m, sys := bigSpace()
	opts := bigOptions()
	var prog Progress
	opts.Progress = &prog
	opts.EstimateTotal = true

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as the first chunk lands.
	go func() {
		for prog.Snapshot().Evaluated == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()

	start := time.Now()
	res, err := Execution(ctx, m, sys, opts)
	took := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := prog.Snapshot()
	if snap.Total == 0 {
		t.Fatal("EstimateTotal did not populate the total")
	}
	if int64(res.Evaluated) >= snap.Total {
		t.Fatalf("search ran to completion (%d of %d) despite cancellation", res.Evaluated, snap.Total)
	}
	if res.Evaluated == 0 {
		t.Fatal("cancel fired after first progress, yet nothing was evaluated")
	}
	// Partial counters must be consistent between the Result and the
	// Progress attachment.
	if snap.Evaluated != int64(res.Evaluated) || snap.Feasible != int64(res.Feasible) {
		t.Fatalf("progress (%d, %d) disagrees with result (%d, %d)",
			snap.Evaluated, snap.Feasible, res.Evaluated, res.Feasible)
	}
	if res.Feasible > res.Evaluated {
		t.Fatalf("feasible %d > evaluated %d", res.Feasible, res.Evaluated)
	}
	// "Returns within one chunk": generous wall-clock bound for CI noise —
	// a full run takes ~0.5s locally, a chunk well under 10ms.
	if took > 2*time.Second {
		t.Fatalf("cancelled search took %v", took)
	}
	waitForGoroutines(t, baseline)
}

func TestExecutionPreCancelled(t *testing.T) {
	m, sys := bigSpace()
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Execution(ctx, m, sys, bigOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most the chunks already buffered at cancellation get evaluated.
	if res.Evaluated > 16*chunkSize {
		t.Fatalf("pre-cancelled search still evaluated %d strategies", res.Evaluated)
	}
	waitForGoroutines(t, baseline)
}

func TestExecutionDeadline(t *testing.T) {
	m, sys := bigSpace()
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := Execution(ctx, m, sys, bigOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	waitForGoroutines(t, baseline)
}

func TestSystemSizeCancelled(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(64)
	baseline := runtime.NumGoroutine()
	var prog Progress
	opts := Options{
		Enum:     execution.EnumOptions{Features: execution.FeatureAll, MaxInterleave: 2},
		Progress: &prog,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for prog.Snapshot().Evaluated == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err := SystemSize(ctx, m, func(n int) system.System { return system.A100(n) },
		Sizes(16, 128), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, baseline)
}

func TestOnProgressTickerAndFinalSnapshot(t *testing.T) {
	m, sys := bigSpace()
	baseline := runtime.NumGoroutine()
	var calls atomic.Int64
	var last atomic.Int64
	opts := bigOptions()
	opts.EstimateTotal = true
	opts.ProgressInterval = time.Millisecond
	opts.OnProgress = func(s ProgressSnapshot) {
		calls.Add(1)
		last.Store(s.Evaluated)
	}
	res, err := Execution(context.Background(), m, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("OnProgress never fired")
	}
	// The final synchronous callback must carry the exact end counters.
	if last.Load() != int64(res.Evaluated) {
		t.Fatalf("final snapshot saw %d evaluated, result has %d", last.Load(), res.Evaluated)
	}
	waitForGoroutines(t, baseline)
}

func TestDeterministicWithCancellationMachinery(t *testing.T) {
	// Attaching Progress and a ticker must not perturb the search outcome.
	m, sys := bigSpace()
	plain, err := Execution(context.Background(), m, sys, Options{
		Enum:    execution.EnumOptions{Procs: 64, Features: execution.FeatureSeqPar, MaxInterleave: 2},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	observed, err := Execution(context.Background(), m, sys, Options{
		Enum:          execution.EnumOptions{Procs: 64, Features: execution.FeatureSeqPar, MaxInterleave: 2},
		Workers:       8,
		Progress:      &prog,
		EstimateTotal: true,
		OnProgress:    func(ProgressSnapshot) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best.Strategy != observed.Best.Strategy {
		t.Errorf("best differs with observability attached:\nplain: %v\nobserved: %v",
			plain.Best.Strategy, observed.Best.Strategy)
	}
	if plain.Evaluated != observed.Evaluated || plain.Feasible != observed.Feasible {
		t.Errorf("counts differ: (%d,%d) vs (%d,%d)",
			plain.Evaluated, plain.Feasible, observed.Evaluated, observed.Feasible)
	}
	if got := prog.Snapshot(); got.Evaluated != int64(observed.Evaluated) || got.Total != got.Evaluated {
		t.Errorf("progress snapshot (%d of %d) disagrees with result %d",
			got.Evaluated, got.Total, observed.Evaluated)
	}
}

func TestProgressSnapshotDerivedFields(t *testing.T) {
	var p Progress
	p.markStart()
	p.AddTotal(1000)
	p.add(progressDelta{evaluated: 250, feasible: 40})
	time.Sleep(10 * time.Millisecond)
	s := p.Snapshot()
	if s.Evaluated != 250 || s.Feasible != 40 || s.Total != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Elapsed <= 0 || s.Rate <= 0 {
		t.Fatalf("elapsed/rate not derived: %+v", s)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA missing with total known: %+v", s)
	}
	if str := s.String(); str == "" {
		t.Fatal("empty String()")
	}
	// Finished searches must not report an ETA.
	p.add(progressDelta{evaluated: 750})
	if s := p.Snapshot(); s.ETA != 0 {
		t.Fatalf("ETA %v after completion", s.ETA)
	}
}
