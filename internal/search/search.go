// Package search implements the paper's three search engines: the optimal
// execution search of §5.1 (exhaustively try every execution strategy for a
// fixed LLM and system), the optimal system-size sweep of §5.2 (repeat the
// execution search at every processor count to expose "efficiency cliffs"),
// and the statistics — histograms, CDFs, top-k — behind Fig. 6. Work is
// spread over a goroutine pool; results are deterministic regardless of the
// worker count (ties break on enumeration order).
//
// Searches are cancellable and observable: every engine takes a
// context.Context and stops within one work chunk of cancellation without
// leaking goroutines, and an optional Progress attachment exposes live
// evaluated/feasible counters, throughput, and an ETA (see Options).
package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
)

// Options configures an execution search.
type Options struct {
	// Enum bounds the strategy space (processor count, feature set, caps).
	Enum execution.EnumOptions
	// Workers is the goroutine-pool size; 0 means GOMAXPROCS.
	Workers int
	// TopK retains the best K results for CDF analysis (0 disables).
	TopK int
	// CollectRates retains every feasible configuration's sample rate for
	// histogram analysis (Fig. 6a). Costs 8 bytes per feasible point.
	CollectRates bool
	// Pareto maintains the time-versus-memory Pareto front across all
	// feasible configurations (Fig. 5's "minimize either time or memory"
	// choice). The front is kept incrementally, so memory stays bounded.
	Pareto bool

	// Progress, when non-nil, receives live counter updates the caller can
	// Snapshot from any goroutine while the search runs. The same Progress
	// may be shared across searches to aggregate a sweep.
	Progress *Progress
	// EstimateTotal pre-counts the strategy space (a fast enumeration pass
	// with no evaluation) and adds it to Progress so snapshots carry an ETA.
	// Ignored when Progress is nil and OnProgress is unset.
	EstimateTotal bool
	// OnProgress, when non-nil, is invoked about every ProgressInterval from
	// a dedicated goroutine while the search runs, and once more,
	// synchronously, just before Execution returns — so the final callback
	// always carries the exact end-of-search counters (or the partial
	// counters of a cancelled run). The callback must be safe to call from
	// another goroutine.
	OnProgress func(ProgressSnapshot)
	// ProgressInterval is the OnProgress cadence; 0 means one second.
	ProgressInterval time.Duration

	// DisablePreScreen turns off the phase-1 analytic feasibility filter so
	// every strategy takes the full evaluation path. Results are identical
	// either way (locked in by the equivalence property tests); this exists
	// as an escape hatch and for A/B measurement. Disabling the pre-screen
	// also disables subtree pruning, which is built on the same bound.
	DisablePreScreen bool
	// DisableMemo turns off the phase-2 block-profile cache inside the
	// shared perf.Runner. Results are identical either way; see
	// DisablePreScreen.
	DisableMemo bool
	// DisableSubtreePrune turns off the lattice-level filter: without it the
	// producer screens each (tp,pp,dp) triple with the same closed-form
	// memory bound the per-leaf pre-screen uses, evaluated at every toggle
	// projection the enumeration would emit, and drops whole subtrees whose
	// every leaf the pre-screen would reject — counting the dropped leaves
	// as Evaluated and PreScreened in closed form instead of enumerating
	// them. Results and counters are identical either way (locked in by the
	// equivalence property tests), only slower with the pruning off.
	DisableSubtreePrune bool
	// DisableDelta turns off incremental evaluation: each worker normally
	// threads a perf.RunDelta chain through its strategies, reusing the
	// term groups the Gray-code-adjacent toggle order leaves unchanged from
	// one leaf to the next, and this falls back to the scratch path
	// (RunDetailed) instead. Results and counters are identical either way
	// (locked in by the delta equivalence tests and the no-delta arm of the
	// search equivalence suite), only slower with delta off.
	DisableDelta bool

	// Cache, when non-nil, is a persistent store of finished search verdicts
	// (see internal/resultstore). It is consulted once per search, after
	// option normalization and before any evaluation: a hit returns the
	// stored Result verbatim — bit-identical to what the walk would produce,
	// a contract the resultstore equivalence tests lock in — and a miss runs
	// the search and stores the finished Result. Cancelled or failed
	// searches are never stored, and searches with CollectRates set bypass
	// the cache entirely (the Rates slice is ordered by worker completion,
	// which is not run-to-run deterministic).
	Cache Cache
	// DisableStore bypasses Cache without unwiring it: no lookup, no store.
	// The escape hatch mirrors DisablePreScreen/DisableMemo — results are
	// identical either way, this exists for A/B tests and measurement.
	DisableStore bool

	// sharedRunner, when non-nil, evaluates strategies instead of a freshly
	// built Runner. SystemSize threads per-size Runners drawn from one
	// perf.RunnerGroup through it so block profiles memoized at one size are
	// served at every other. The Disable* options must already be applied to
	// the runner by the caller.
	sharedRunner *perf.Runner
}

// Result is the outcome of an execution search.
type Result struct {
	// Best is the fastest feasible configuration found.
	Best perf.Result
	// Top holds the TopK best results, fastest first.
	Top []perf.Result
	// Evaluated counts every strategy tried; Feasible those that could run
	// (the paper's 10,957,376 vs 1,974,902 for GPT-3 175B on 4,096 GPUs).
	Evaluated int
	Feasible  int
	// PreScreened counts the evaluations rejected by the phase-1 analytic
	// filter before any layer-level work (a subset of Evaluated−Feasible);
	// CacheHits counts evaluations that reused a memoized block profile.
	// Both are 0 when the corresponding Disable option is set.
	PreScreened int
	CacheHits   int
	// SubtreePruned counts the strategies dropped at the lattice level:
	// leaves of (tp,pp,dp) subtrees whose closed-form bound proved every
	// toggle combination infeasible, accounted in closed form without being
	// enumerated. They are a subset of PreScreened (pruned leaves count as
	// Evaluated and PreScreened, exactly as the leaf-by-leaf path would);
	// 0 when DisableSubtreePrune or DisablePreScreen is set.
	SubtreePruned int
	// Rates holds every feasible sample rate when CollectRates is set.
	Rates []float64
	// Pareto holds the time-vs-memory front when Options.Pareto is set,
	// fastest (and most memory-hungry) first.
	Pareto []perf.Result
}

// Found reports whether any feasible configuration exists.
func (r Result) Found() bool { return r.Feasible > 0 }

type indexed struct {
	seq int
	st  execution.Strategy
}

type scored struct {
	seq int
	res perf.Result
}

// better reports whether a should be preferred over b: higher sample rate,
// with enumeration order as the deterministic tie-break.
func better(a, b scored) bool {
	if a.res.SampleRate != b.res.SampleRate {
		return a.res.SampleRate > b.res.SampleRate
	}
	return a.seq < b.seq
}

const chunkSize = 256

// chunkPool recycles the producer's strategy buffers: workers return each
// chunk after evaluating it, so a steady-state search keeps roughly one
// buffer in flight per worker instead of allocating one per 256 strategies.
// Chunks travel by pointer so neither side boxes a slice header per cycle.
var chunkPool = sync.Pool{New: func() any {
	b := make([]indexed, 0, chunkSize)
	return &b
}}

// newChunk returns an empty chunk buffer, recycled when available.
func newChunk() *[]indexed {
	b := chunkPool.Get().(*[]indexed)
	*b = (*b)[:0]
	return b
}

// Execution exhaustively evaluates every strategy the options allow for the
// model on the system and returns the best performer with statistics.
//
// Cancelling the context stops the search promptly — enumeration halts, each
// worker finishes at most its current chunk, and no goroutines are leaked.
// On cancellation the returned error is ctx.Err() and the Result still
// carries the partial Evaluated/Feasible counters (consistent with any
// attached Progress), though Best/Top/Pareto cover only the strategies seen.
func Execution(ctx context.Context, m model.LLM, sys system.System, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := normalizeOptions(m, sys, opts)
	if err != nil {
		return Result{}, err
	}

	prog := opts.Progress
	if prog == nil && opts.OnProgress != nil {
		prog = &Progress{}
	}

	// The store is consulted here — options normalized, nothing evaluated
	// yet — so every spelling of the same search maps to one cache identity.
	// A hit returns the stored verdict whole; the only trace it leaves on
	// the live counters is StoreHits (inflating Evaluated with work this
	// process never did would corrupt throughput and ETA accounting).
	useStore := opts.Cache != nil && !opts.DisableStore && !opts.CollectRates
	if useStore {
		if res, ok := opts.Cache.Lookup(m, sys, opts); ok {
			if prog != nil {
				prog.markStart()
				prog.add(progressDelta{storeHits: 1})
			}
			if opts.OnProgress != nil {
				opts.OnProgress(prog.Snapshot())
			}
			return res, nil
		}
	}
	if prog != nil {
		prog.markStart()
		if opts.EstimateTotal {
			// The space size is closed-form over the (tp,pp,dp) lattice —
			// divisor arithmetic, no enumeration pass — and buys the ETA in
			// snapshots.
			prog.AddTotal(int64(opts.Enum.SpaceSize(m)))
		}
	}
	if opts.OnProgress != nil {
		stopTicker := startProgressTicker(prog, opts.OnProgress, opts.ProgressInterval)
		defer func() {
			stopTicker()
			opts.OnProgress(prog.Snapshot())
		}()
	}

	merged, subtreePruned, err := executionScored(ctx, m, sys, opts, prog, opts.Enum.Triples(m), 0)
	if err != nil {
		return Result{}, err
	}
	out := resultFrom(merged, subtreePruned, opts)
	if useStore && ctx.Err() == nil {
		// Only complete verdicts are stored: a cancelled walk's counters and
		// fronts cover an unpredictable prefix of the space.
		opts.Cache.Store(m, sys, opts, out)
	}
	return out, ctx.Err()
}

// normalizeOptions validates the inputs and fills the option defaults. Both
// the plain and the sharded search run it, so the same search always walks
// the same triples in the same global sequence regardless of how it is
// split.
func normalizeOptions(m model.LLM, sys system.System, opts Options) (Options, error) {
	if err := m.Validate(); err != nil {
		return opts, err
	}
	if err := sys.Validate(); err != nil {
		return opts, err
	}
	if opts.Enum.Procs == 0 {
		opts.Enum.Procs = sys.Procs
	}
	if err := opts.Enum.Validate(); err != nil {
		return opts, err
	}
	if opts.Enum.Features == "" {
		opts.Enum.Features = execution.FeatureAll
	}
	opts.Enum.HasMem2 = sys.Mem2.Present()
	return opts, nil
}

// executionScored is the engine room shared by Execution and
// ExecutionShard: it runs the worker pool and the lattice producer over a
// contiguous run of (tp,pp,dp) triples and returns the merged per-worker
// state (with global sequence numbers, the deterministic tie-break key)
// plus the closed-form count of subtree-pruned leaves, both already folded
// into the counters. seqBase is the global sequence number of the first
// leaf of triples — the leaf count of everything before the range — so a
// shard scores its strategies exactly as the single-process walk would.
func executionScored(ctx context.Context, m model.LLM, sys system.System, opts Options, prog *Progress, triples [][3]int, seqBase int) (workerState, int, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runner := opts.sharedRunner
	if runner == nil {
		var err error
		runner, err = perf.NewRunner(m, sys)
		if err != nil {
			return workerState{}, 0, err
		}
		if opts.DisablePreScreen {
			runner.DisablePreScreen()
		}
		if opts.DisableMemo {
			runner.DisableMemo()
		}
		if opts.DisableDelta {
			runner.DisableDelta()
		}
	}
	chunks := make(chan *[]indexed, workers)
	results := make(chan workerState, workers)
	for w := 0; w < workers; w++ {
		go func() {
			ws := workerState{topK: opts.TopK, pareto: opts.Pareto}
			// Each worker threads one delta chain through its strategies:
			// inside a chunk the Gray-code toggle order makes neighbors
			// differ in a single toggle, so most term groups carry over.
			// The chain is goroutine-local; the Runner stays shared.
			var chain perf.RunInfo
			var res perf.Result
			for chunk := range chunks {
				// After cancellation, keep draining so the producer's sends
				// and close always complete, but stop evaluating.
				if ctx.Err() != nil {
					chunkPool.Put(chunk)
					continue
				}
				evalBefore, feasBefore := ws.evaluated, ws.feasible
				preBefore, hitBefore := ws.prescreened, ws.cacheHits
				for _, it := range *chunk {
					ws.evaluated++
					info, err := runner.RunDeltaInto(chain, it.st, &res)
					chain = info
					if info.PreScreened {
						ws.prescreened++
					}
					if info.CacheHit {
						ws.cacheHits++
					}
					if err != nil {
						continue
					}
					ws.add(it.seq, &res, opts.CollectRates)
				}
				chunkPool.Put(chunk)
				if prog != nil {
					prog.add(progressDelta{
						evaluated:   int64(ws.evaluated - evalBefore),
						feasible:    int64(ws.feasible - feasBefore),
						prescreened: int64(ws.prescreened - preBefore),
						cacheHits:   int64(ws.cacheHits - hitBefore),
					})
				}
			}
			results <- ws
		}()
	}

	// The producer walks the (tp,pp,dp) lattice: subtrees whose every toggle
	// projection fails the closed-form bound are dropped whole, with their
	// leaf count — exact, by TripleLeafCount — folded into the counters and
	// the enumeration sequence so downstream tie-breaks and ETAs are
	// bit-identical to the leaf-by-leaf path.
	var screen *execution.PreScreen
	if !opts.DisableSubtreePrune && !opts.DisablePreScreen {
		screen = execution.NewPreScreen(m, execution.Limits{
			Procs: sys.Procs,
			Mem1:  sys.Mem1.Capacity,
			Mem2:  sys.Mem2.Capacity,
		})
	}
	buf := newChunk()
	seq := seqBase
	subtreePruned := 0
	for _, tpd := range triples {
		if ctx.Err() != nil {
			break
		}
		if screen != nil {
			if err := screen.CheckTriple(opts.Enum, tpd); err != nil {
				leaves := opts.Enum.TripleLeafCount(m, tpd)
				seq += leaves
				subtreePruned += leaves
				if prog != nil {
					prog.add(progressDelta{
						evaluated:     int64(leaves),
						prescreened:   int64(leaves),
						subtreePruned: int64(leaves),
					})
				}
				continue
			}
		}
		_, more := opts.Enum.EnumerateTriple(m, tpd, func(st execution.Strategy) bool {
			*buf = append(*buf, indexed{seq, st})
			seq++
			if len(*buf) == chunkSize {
				select {
				case chunks <- buf:
				case <-ctx.Done():
					return false
				}
				buf = newChunk()
			}
			return true
		})
		if !more {
			break
		}
	}
	if len(*buf) > 0 {
		select {
		case chunks <- buf:
		case <-ctx.Done():
		}
	}
	close(chunks)

	merged := workerState{topK: opts.TopK, pareto: opts.Pareto}
	for w := 0; w < workers; w++ {
		merged.merge(<-results)
	}
	merged.evaluated += subtreePruned
	merged.prescreened += subtreePruned
	return merged, subtreePruned, nil
}

// resultFrom converts the merged worker state into the exported Result,
// dropping the sequence numbers after the final deterministic ordering.
func resultFrom(merged workerState, subtreePruned int, opts Options) Result {
	out := Result{
		Evaluated:     merged.evaluated,
		Feasible:      merged.feasible,
		PreScreened:   merged.prescreened,
		CacheHits:     merged.cacheHits,
		SubtreePruned: subtreePruned,
		Rates:         merged.rates,
	}
	if merged.feasible > 0 {
		out.Best = merged.best.res
		sort.Slice(merged.top, func(i, j int) bool { return better(merged.top[i], merged.top[j]) })
		for _, s := range merged.top {
			out.Top = append(out.Top, s.res)
		}
		if opts.Pareto {
			for _, s := range compactParetoScored(merged.front) {
				out.Pareto = append(out.Pareto, s.res)
			}
		}
	}
	return out
}

// startProgressTicker runs cb about every interval until the returned stop
// function is called; stop blocks until the ticker goroutine has exited, so
// callers never leak it and never race a final synchronous callback.
func startProgressTicker(p *Progress, cb func(ProgressSnapshot), interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cb(p.Snapshot())
			case <-quit:
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// workerState accumulates per-goroutine results for a deterministic merge.
type workerState struct {
	evaluated   int
	feasible    int
	prescreened int
	cacheHits   int
	best        scored
	hasBest     bool
	topK        int
	top         []scored
	rates       []float64
	pareto      bool
	front       []scored
}

// add records one feasible result. The result is passed by pointer so the
// hot loop's single reused Result is copied only into the slices that keep
// it, not through a parameter frame per call.
func (ws *workerState) add(seq int, res *perf.Result, collectRates bool) {
	s := scored{seq, *res}
	ws.feasible++
	if !ws.hasBest || better(s, ws.best) {
		ws.best = s
		ws.hasBest = true
	}
	if ws.topK > 0 {
		ws.top = append(ws.top, s)
		if len(ws.top) > 4*ws.topK {
			ws.compactTop()
		}
	}
	if ws.pareto {
		ws.front = append(ws.front, s)
		if len(ws.front) > 512 {
			ws.front = compactParetoScored(ws.front)
		}
	}
	if collectRates {
		ws.rates = append(ws.rates, s.res.SampleRate)
	}
}

// compactParetoScored reduces candidates to the time-vs-memory front with
// enumeration order as the deterministic tie-break. It works in place —
// sorting cands and compacting the front into its prefix — so the periodic
// re-compaction of a worker's running front costs no copy of the candidate
// slice; every caller owns its slice.
func compactParetoScored(cands []scored) []scored {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.res.BatchTime != b.res.BatchTime {
			return a.res.BatchTime < b.res.BatchTime
		}
		if am, bm := a.res.Mem1.Total(), b.res.Mem1.Total(); am != bm {
			return am < bm
		}
		return a.seq < b.seq
	})
	front := cands[:0]
	bestMem := cands[0].res.Mem1.Total() + 1
	for _, s := range cands {
		if m := s.res.Mem1.Total(); m < bestMem {
			front = append(front, s)
			bestMem = m
		}
	}
	return front
}

func (ws *workerState) compactTop() {
	sort.Slice(ws.top, func(i, j int) bool { return better(ws.top[i], ws.top[j]) })
	ws.top = ws.top[:ws.topK]
}

func (ws *workerState) merge(o workerState) {
	ws.evaluated += o.evaluated
	ws.feasible += o.feasible
	ws.prescreened += o.prescreened
	ws.cacheHits += o.cacheHits
	if o.hasBest && (!ws.hasBest || better(o.best, ws.best)) {
		ws.best = o.best
		ws.hasBest = true
	}
	ws.top = append(ws.top, o.top...)
	if ws.topK > 0 && len(ws.top) > ws.topK {
		ws.compactTop()
	}
	if ws.pareto {
		ws.front = compactParetoScored(append(ws.front, o.front...))
	}
	ws.rates = append(ws.rates, o.rates...)
}

// ScalingPoint is one system size of a §5.2 sweep.
type ScalingPoint struct {
	Procs    int
	Best     perf.Result
	Feasible int
	// Found is false when no configuration fits at this size (the zero-
	// performance points of Fig. 7).
	Found bool
}

// SystemSize runs a full execution search at each processor count,
// producing the scaling/efficiency-cliff data of Figs. 7 and 10.
//
// The sweep divides one global worker budget — opts.Workers, defaulting to
// GOMAXPROCS — across the sizes: up to budget sizes run concurrently, each
// with budget/concurrency workers, so a single-size sweep gets the whole
// pool and a wide sweep never oversubscribes it. Because the block-profile
// memo key contains nothing size-dependent, every per-size search shares one
// memo through a perf.RunnerGroup whenever the per-size systems agree on the
// memo-relevant inputs; profiles computed at one size are reused at all
// others, bit-identically.
//
// Cancellation propagates to every per-size search; on cancellation the
// points computed so far are returned together with ctx.Err(). A Progress
// attached through opts aggregates counters across all sizes.
func SystemSize(ctx context.Context, m model.LLM, sysAt func(procs int) system.System, sizes []int, opts Options) ([]ScalingPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.OnProgress != nil {
		// The sweep owns one ticker over the aggregate Progress; per-size
		// searches only flush counters into it (their OnProgress is unset
		// below).
		if opts.Progress == nil {
			opts.Progress = &Progress{}
		}
		opts.Progress.markStart()
		stopTicker := startProgressTicker(opts.Progress, opts.OnProgress, opts.ProgressInterval)
		defer func() {
			stopTicker()
			opts.OnProgress(opts.Progress.Snapshot())
		}()
	}
	budget := opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	concurrent := len(sizes)
	if concurrent > budget {
		concurrent = budget
	}
	concurrent = maxInt(1, concurrent)
	perSize := maxInt(1, budget/concurrent)
	var group *perf.RunnerGroup
	if len(sizes) > 0 && !opts.DisableMemo {
		// Sharing is best-effort: a sysAt that varies memo-relevant inputs
		// with size makes RunnerFor refuse below, and that size falls back
		// to a private memo.
		group, _ = perf.NewRunnerGroup(m, sysAt(sizes[0]))
	}
	points := make([]ScalingPoint, len(sizes))
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, concurrent)
	for i, n := range sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			o := opts
			o.Enum.Procs = n
			o.Workers = perSize
			// The ticker belongs to the sweep's caller, not each size.
			o.OnProgress = nil
			sys := sysAt(n)
			if group != nil {
				if r, err := group.RunnerFor(sys); err == nil {
					if o.DisablePreScreen {
						r.DisablePreScreen()
					}
					if o.DisableDelta {
						r.DisableDelta()
					}
					o.sharedRunner = r
				}
			}
			res, err := Execution(ctx, m, sys, o)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("size %d: %w", n, err)
				}
				mu.Unlock()
				return
			}
			points[i] = ScalingPoint{Procs: n, Best: res.Best, Feasible: res.Feasible, Found: res.Found()}
		}(i, n)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return points, ctx.Err()
}

// Sizes returns the multiples of step in [step, max], the x-axis of the
// scaling studies ("considering only multiples of 8 GPUs").
func Sizes(step, max int) []int {
	var out []int
	for n := step; n <= max; n += step {
		out = append(out, n)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
