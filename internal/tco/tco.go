// Package tco turns performance estimates into money and time: total cost
// of ownership for a training run. §6 of the paper argues that seemingly
// modest efficiency gains (the 10–20% from offloading) should be judged
// through TCO "as even small efficiency gains can accumulate during long
// system use time"; this package makes that comparison concrete, and §1's
// motivating arithmetic (84 days / $6M+ for Megatron-1T) is its test
// anchor.
package tco

import (
	"fmt"

	"calculon/internal/perf"
	"calculon/internal/units"
)

// Assumptions price a deployment.
type Assumptions struct {
	// CapexPerGPU is the all-in purchase price per processor (GPU + share
	// of chassis, network, facility build-out).
	CapexPerGPU float64
	// AmortizationYears spreads the capex over the system's useful life.
	AmortizationYears float64
	// GPUPowerWatts is the average draw per processor under load.
	GPUPowerWatts float64
	// PUE is the facility power-usage-effectiveness multiplier.
	PUE float64
	// EnergyCostPerKWh is the electricity price in dollars.
	EnergyCostPerKWh float64
	// OpexPerGPUYear covers staffing, maintenance, and support per
	// processor per year.
	OpexPerGPUYear float64
}

// DefaultAssumptions are round 2023-era numbers for an A100-class
// deployment: $25k/GPU amortized over 4 years, 500 W at PUE 1.3,
// $0.10/kWh, $2k/GPU-year opex.
func DefaultAssumptions() Assumptions {
	return Assumptions{
		CapexPerGPU:       25_000,
		AmortizationYears: 4,
		GPUPowerWatts:     500,
		PUE:               1.3,
		EnergyCostPerKWh:  0.10,
		OpexPerGPUYear:    2_000,
	}
}

// Validate checks the assumptions.
func (a Assumptions) Validate() error {
	switch {
	case a.CapexPerGPU < 0 || a.OpexPerGPUYear < 0 || a.EnergyCostPerKWh < 0:
		return fmt.Errorf("tco: costs must be non-negative")
	case a.AmortizationYears <= 0:
		return fmt.Errorf("tco: amortization years must be positive")
	case a.GPUPowerWatts <= 0:
		return fmt.Errorf("tco: GPU power must be positive")
	case a.PUE < 1:
		return fmt.Errorf("tco: PUE must be ≥1, got %g", a.PUE)
	}
	return nil
}

// RunCost is the cost of one training run.
type RunCost struct {
	// Duration is the wall-clock training time.
	Duration units.Seconds
	// Days is Duration in days, the unit the paper's §1 uses.
	Days float64
	// GPUHours is processors × duration.
	GPUHours float64
	// EnergyKWh is the facility energy consumed.
	EnergyKWh float64
	// EnergyCost, AmortizedCapex, Opex, and Total are dollars.
	EnergyCost     float64
	AmortizedCapex float64
	Opex           float64
	Total          float64
}

// TrainingRun prices training for the given number of tokens using the
// per-batch performance estimate. Tokens per batch is batch × sequence
// length of the estimated model.
func TrainingRun(res perf.Result, tokens float64, a Assumptions) (RunCost, error) {
	if err := a.Validate(); err != nil {
		return RunCost{}, err
	}
	if tokens <= 0 {
		return RunCost{}, fmt.Errorf("tco: tokens must be positive")
	}
	if res.SampleRate <= 0 || res.ProcsUsed <= 0 {
		return RunCost{}, fmt.Errorf("tco: result carries no throughput")
	}
	tokensPerSec := res.SampleRate * float64(res.Model.Seq)
	seconds := tokens / tokensPerSec

	var c RunCost
	c.Duration = units.Seconds(seconds)
	c.Days = seconds / 86_400
	hours := seconds / 3_600
	c.GPUHours = hours * float64(res.ProcsUsed)
	c.EnergyKWh = c.GPUHours * a.GPUPowerWatts / 1_000 * a.PUE
	c.EnergyCost = c.EnergyKWh * a.EnergyCostPerKWh
	years := seconds / (365.25 * 86_400)
	c.AmortizedCapex = a.CapexPerGPU * float64(res.ProcsUsed) * years / a.AmortizationYears
	c.Opex = a.OpexPerGPUYear * float64(res.ProcsUsed) * years
	c.Total = c.EnergyCost + c.AmortizedCapex + c.Opex
	return c, nil
}

// ProcHour returns the fully-loaded cost of one processor-hour under the
// assumptions: amortized capex, energy at the facility PUE, and opex. It is
// the serving-side unit price — a deployment's $/Mtoken is procs × ProcHour
// divided by the tokens it generates per hour.
func ProcHour(a Assumptions) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	const hoursPerYear = 365.25 * 24 // consistent with TrainingRun's year
	capex := a.CapexPerGPU / (a.AmortizationYears * hoursPerYear)
	opex := a.OpexPerGPUYear / hoursPerYear
	energy := a.GPUPowerWatts / 1_000 * a.PUE * a.EnergyCostPerKWh
	return capex + energy + opex, nil
}

// CostPerMToken prices a serving deployment of procs processors generating
// tokensPerSec aggregate tokens per second, in dollars per million generated
// tokens.
func CostPerMToken(procs int, tokensPerSec float64, a Assumptions) (float64, error) {
	if procs <= 0 {
		return 0, fmt.Errorf("tco: procs must be positive, got %d", procs)
	}
	if tokensPerSec <= 0 {
		return 0, fmt.Errorf("tco: deployment carries no throughput")
	}
	hourly, err := ProcHour(a)
	if err != nil {
		return 0, err
	}
	tokensPerHour := tokensPerSec * 3_600
	return float64(procs) * hourly / tokensPerHour * 1e6, nil
}

// Compare returns how much money and time plan B saves over plan A for the
// same token budget (negative values mean B is worse).
func Compare(a, b RunCost) (dollarsSaved, daysSaved float64) {
	return a.Total - b.Total, a.Days - b.Days
}

func (c RunCost) String() string {
	return fmt.Sprintf("%.1f days, %.2g GPU-hours, %.3g kWh → $%.4g (capex $%.3g, energy $%.3g, opex $%.3g)",
		c.Days, c.GPUHours, c.EnergyKWh, c.Total, c.AmortizedCapex, c.EnergyCost, c.Opex)
}
