package tco

import (
	"math"
	"strings"
	"testing"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/system"
)

func megatron1TRun(t *testing.T) perf.Result {
	t.Helper()
	// The paper's §1 anchor: Megatron-1T was trained on 3,072 A100s over
	// 450B tokens in 84 days. Use a comparable configuration.
	m := model.MustPreset("megatron-1T").WithBatch(1536)
	st := execution.Strategy{
		TP: 8, PP: 48, DP: 8, Microbatch: 1, Interleave: 2, OneFOneB: true,
		Recompute: execution.RecomputeFull, TPRSAG: true,
	}
	r, err := perf.Run(m, system.A100(3072), st)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSection1Anchor reproduces the paper's motivating arithmetic: training
// Megatron-1T on 450B tokens over 3,072 A100s took 84 days and "roughly
// seven hundred years on a single GPU"; at ~$1/GPU-hour that is over six
// million dollars. The estimate must land in that regime.
func TestSection1Anchor(t *testing.T) {
	res := megatron1TRun(t)
	c, err := TrainingRun(res, 450e9, DefaultAssumptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Days < 40 || c.Days > 170 {
		t.Errorf("duration %.0f days, paper reports 84", c.Days)
	}
	years := c.GPUHours / 24 / 365.25
	if years < 350 || years > 1400 {
		t.Errorf("single-GPU equivalent %.0f years, paper reports ≈700", years)
	}
	// "over six million dollars (US) assuming a single GPU at $1 per hour"
	dollarsAt1PerHour := c.GPUHours
	if dollarsAt1PerHour < 3e6 || dollarsAt1PerHour > 13e6 {
		t.Errorf("$1/GPU-hour cost $%.3g, paper reports >$6M", dollarsAt1PerHour)
	}
	if c.Total <= 0 || c.EnergyKWh <= 0 {
		t.Errorf("implausible cost: %+v", c)
	}
}

func TestCostScalesWithTokens(t *testing.T) {
	res := megatron1TRun(t)
	a := DefaultAssumptions()
	c1, err := TrainingRun(res, 100e9, a)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := TrainingRun(res, 200e9, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2.Total-2*c1.Total)/c1.Total > 1e-9 {
		t.Errorf("cost must scale linearly with tokens: %g vs 2×%g", c2.Total, c1.Total)
	}
	if math.Abs(c2.Days-2*c1.Days) > 1e-9 {
		t.Error("duration must scale linearly with tokens")
	}
}

// TestEfficiencyGainSavesMoney is §6's TCO argument: a 15% faster
// configuration on the same hardware saves proportional money.
func TestEfficiencyGainSavesMoney(t *testing.T) {
	res := megatron1TRun(t)
	faster := res
	faster.SampleRate *= 1.15
	a := DefaultAssumptions()
	base, err := TrainingRun(res, 450e9, a)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := TrainingRun(faster, 450e9, a)
	if err != nil {
		t.Fatal(err)
	}
	dollars, days := Compare(base, opt)
	if dollars <= 0 || days <= 0 {
		t.Fatalf("15%% speedup must save money and time: $%.0f, %.1f days", dollars, days)
	}
	if rel := dollars / base.Total; math.Abs(rel-0.13) > 0.02 { // 1−1/1.15 ≈ 13%
		t.Errorf("savings fraction %.3f, want ≈0.13", rel)
	}
}

func TestEnergyAccounting(t *testing.T) {
	res := megatron1TRun(t)
	a := DefaultAssumptions()
	c, err := TrainingRun(res, 450e9, a)
	if err != nil {
		t.Fatal(err)
	}
	wantKWh := c.GPUHours * a.GPUPowerWatts / 1000 * a.PUE
	if math.Abs(c.EnergyKWh-wantKWh)/wantKWh > 1e-9 {
		t.Errorf("energy %g kWh, want %g", c.EnergyKWh, wantKWh)
	}
	if math.Abs(c.EnergyCost-c.EnergyKWh*a.EnergyCostPerKWh)/c.EnergyCost > 1e-9 {
		t.Error("energy cost inconsistent")
	}
}

func TestAssumptionValidation(t *testing.T) {
	res := megatron1TRun(t)
	bad := []Assumptions{
		{CapexPerGPU: -1, AmortizationYears: 4, GPUPowerWatts: 500, PUE: 1.3},
		{CapexPerGPU: 1, AmortizationYears: 0, GPUPowerWatts: 500, PUE: 1.3},
		{CapexPerGPU: 1, AmortizationYears: 4, GPUPowerWatts: 0, PUE: 1.3},
		{CapexPerGPU: 1, AmortizationYears: 4, GPUPowerWatts: 500, PUE: 0.9},
	}
	for i, a := range bad {
		if _, err := TrainingRun(res, 1e9, a); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := TrainingRun(res, 0, DefaultAssumptions()); err == nil {
		t.Error("zero tokens should fail")
	}
	if _, err := TrainingRun(perf.Result{}, 1e9, DefaultAssumptions()); err == nil {
		t.Error("empty result should fail")
	}
}

func TestRunCostString(t *testing.T) {
	res := megatron1TRun(t)
	c, err := TrainingRun(res, 450e9, DefaultAssumptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, frag := range []string{"days", "GPU-hours", "kWh", "capex"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}
