package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"calculon/internal/perf"
	"calculon/internal/resultstore"
	"calculon/internal/search"
	"calculon/internal/serving"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the global search-worker budget shared by all running jobs
	// (0 = GOMAXPROCS).
	Workers int
	// MaxRunning bounds concurrently running jobs (clamped to [1, Workers]).
	MaxRunning int
	// QueueDepth bounds the accepted-but-waiting jobs; submits past it get
	// 503.
	QueueDepth int
	// Rate and Burst shape the per-client token bucket over /v1 requests;
	// Rate 0 disables limiting.
	Rate  float64
	Burst int
	// MaxWait caps the ?wait long-poll on the result endpoint (default 30s).
	MaxWait time.Duration
	// Store, when non-nil, is the persistent result store every job
	// consults before searching and feeds afterwards (see
	// internal/resultstore): resubmitting a spec the daemon has already
	// answered — even in a previous process — completes from cache without
	// evaluating a single strategy. The daemon owns the store's lifecycle
	// (open before New, close after Drain).
	Store *resultstore.Store
}

// maxBodyBytes bounds a job-spec body; anything bigger is a client error.
const maxBodyBytes = 1 << 20

// Server is the HTTP face of a Manager: routing, rate limiting, JSON
// encoding, and drain status. Handlers are synchronous — status reads are
// lock-free snapshots and the only wait (the result long-poll) selects on
// the request context, so a disconnected poller frees its handler
// immediately and no per-request goroutines exist to leak.
type Server struct {
	man      *Manager
	limiter  *Limiter
	mux      *http.ServeMux
	maxWait  time.Duration
	draining atomic.Bool
}

// New builds a server and starts its manager's scheduler.
func New(cfg Config) *Server {
	maxWait := cfg.MaxWait
	if maxWait <= 0 {
		maxWait = 30 * time.Second
	}
	s := &Server{
		man:     NewManager(cfg.Workers, cfg.MaxRunning, cfg.QueueDepth),
		limiter: NewLimiter(cfg.Rate, cfg.Burst),
		mux:     http.NewServeMux(),
		maxWait: maxWait,
	}
	s.man.store = cfg.Store
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.limited(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.limited(s.handleList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.limited(s.handleStatus))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.limited(s.handleResult))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.limited(s.handleCancel))
	s.mux.HandleFunc("GET /v1/store", s.limited(s.handleStore))
	return s
}

// Handler is the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the job machinery (tests and the daemon's drain path).
func (s *Server) Manager() *Manager { return s.man }

// Drain marks the server draining (healthz flips to 503 so load balancers
// eject it) and drains the manager within ctx's deadline. The HTTP listener
// itself is shut down by the caller — net/http owns that lifecycle.
func (s *Server) Drain(ctx context.Context) {
	s.draining.Store(true)
	s.man.Drain(ctx)
}

// limited wraps a handler with the per-client rate limit.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		client := r.RemoteAddr
		if host, _, err := net.SplitHostPort(client); err == nil {
			client = host
		}
		if !s.limiter.Allow(client) {
			s.man.Metrics().ratelimited.Add(1)
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.man.Metrics().Expose(w, s.man.FleetSnapshot(), s.man.Budget(), s.man.store)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	job, err := s.man.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.man.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.man.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.man.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	// ?wait=5s long-polls for completion, bounded by MaxWait and by the
	// request context: a hung-up client frees the handler immediately.
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad wait: %v", err))
			return
		}
		if wait > s.maxWait {
			wait = s.maxWait
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-job.Done():
			case <-t.C:
			case <-r.Context().Done():
				return
			}
		}
	}
	res, sres, state, jobErr, ok := job.Snapshot()
	if !ok {
		// Not finished: answer with the live status so pollers get the
		// counters for free.
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	out := JobResult{ID: job.ID, State: state}
	if jobErr != nil {
		out.Error = jobErr.Error()
	}
	if sres != nil {
		out.Evaluated = sres.Evaluated
		out.Feasible = sres.Feasible
		out.PreScreened = sres.PreScreened
		out.Found = sres.Best != nil
		out.Serving = sres
	}
	if res != nil {
		out.Evaluated = res.Evaluated
		out.Feasible = res.Feasible
		out.PreScreened = res.PreScreened
		out.SubtreePruned = res.SubtreePruned
		out.CacheHits = res.CacheHits
		out.Found = res.Found()
		if res.Found() {
			best := res.Best
			out.Best = &best
			out.Top = res.Top
			out.Pareto = res.Pareto
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// StoreStatus is the wire form of the persistent result store's state: the
// same counters /metrics exposes, plus the backing file's path, as JSON for
// operators and scripts. Read-only — the endpoint never mutates the store.
type StoreStatus struct {
	// Enabled is false when the daemon runs without a store (-store ""); all
	// other fields are zero in that case.
	Enabled        bool   `json:"enabled"`
	Path           string `json:"path,omitempty"`
	Rows           int    `json:"rows"`
	Loaded         int    `json:"loaded"`
	Stale          int    `json:"stale"`
	RecoveredBytes int    `json:"recovered_bytes"`
	Hits           int64  `json:"hits"`
	Misses         int64  `json:"misses"`
	Appends        int64  `json:"appends"`
	Flushes        int64  `json:"flushes"`
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	store := s.man.store
	if store == nil {
		writeJSON(w, http.StatusOK, StoreStatus{})
		return
	}
	st := store.Stats()
	writeJSON(w, http.StatusOK, StoreStatus{
		Enabled:        true,
		Path:           store.Path(),
		Rows:           st.Rows,
		Loaded:         st.Loaded,
		Stale:          st.Stale,
		RecoveredBytes: st.RecoveredBytes,
		Hits:           st.Hits,
		Misses:         st.Misses,
		Appends:        st.Appends,
		Flushes:        st.Flushes,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.man.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// JobStatus is the wire form of a job's lifecycle and live progress.
type JobStatus struct {
	ID       string         `json:"id"`
	State    State          `json:"state"`
	Created  time.Time      `json:"created"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
	Workers  int            `json:"workers,omitempty"`
	Error    string         `json:"error,omitempty"`
	Progress ProgressStatus `json:"progress"`
}

// ProgressStatus is the wire form of a search.ProgressSnapshot.
type ProgressStatus struct {
	Evaluated      int64   `json:"evaluated"`
	Feasible       int64   `json:"feasible"`
	PreScreened    int64   `json:"pre_screened"`
	SubtreePruned  int64   `json:"subtree_pruned"`
	CacheHits      int64   `json:"cache_hits"`
	StoreHits      int64   `json:"store_hits,omitempty"`
	Total          int64   `json:"total,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Rate           float64 `json:"rate,omitempty"`
	ETASeconds     float64 `json:"eta_seconds,omitempty"`
}

func progressStatus(s search.ProgressSnapshot) ProgressStatus {
	return ProgressStatus{
		Evaluated:      s.Evaluated,
		Feasible:       s.Feasible,
		PreScreened:    s.PreScreened,
		SubtreePruned:  s.SubtreePruned,
		CacheHits:      s.CacheHits,
		StoreHits:      s.StoreHits,
		Total:          s.Total,
		ElapsedSeconds: s.Elapsed.Seconds(),
		Rate:           s.Rate,
		ETASeconds:     s.ETA.Seconds(),
	}
}

// JobResult is the wire form of a finished job's search outcome. Training
// jobs fill Best/Top/Pareto; serving jobs fill Serving (the counter fields
// are shared, with Evaluated counting engine configurations there).
type JobResult struct {
	ID            string          `json:"id"`
	State         State           `json:"state"`
	Error         string          `json:"error,omitempty"`
	Evaluated     int             `json:"evaluated"`
	Feasible      int             `json:"feasible"`
	PreScreened   int             `json:"pre_screened"`
	SubtreePruned int             `json:"subtree_pruned"`
	CacheHits     int             `json:"cache_hits"`
	Found         bool            `json:"found"`
	Best          *perf.Result    `json:"best,omitempty"`
	Top           []perf.Result   `json:"top,omitempty"`
	Pareto        []perf.Result   `json:"pareto,omitempty"`
	Serving       *serving.Result `json:"serving,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The status line is gone; nothing useful can be sent. The error is
		// almost always a client hang-up mid-body.
		return
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
