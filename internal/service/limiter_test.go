package service

import (
	"testing"
	"time"
)

// fakeClock makes token refill deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(rate float64, burst int) (*Limiter, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(rate, burst)
	l.now = clock.now
	return l, clock
}

func TestLimiterBurstThenDeny(t *testing.T) {
	l, _ := newTestLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if !l.Allow("1.2.3.4") {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if l.Allow("1.2.3.4") {
		t.Fatal("request past burst allowed")
	}
}

func TestLimiterRefill(t *testing.T) {
	l, clock := newTestLimiter(2, 2) // 2 req/s, burst 2
	if !l.Allow("c") || !l.Allow("c") {
		t.Fatal("burst denied")
	}
	if l.Allow("c") {
		t.Fatal("empty bucket allowed")
	}
	clock.advance(500 * time.Millisecond) // refills one token at 2/s
	if !l.Allow("c") {
		t.Fatal("refilled token denied")
	}
	if l.Allow("c") {
		t.Fatal("second request after half-second refill allowed")
	}
	// Refill caps at burst no matter how long the client is idle.
	clock.advance(time.Hour)
	if !l.Allow("c") || !l.Allow("c") {
		t.Fatal("burst after idle denied")
	}
	if l.Allow("c") {
		t.Fatal("idle refill exceeded burst")
	}
}

func TestLimiterClientsAreIndependent(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	if !l.Allow("a") {
		t.Fatal("client a denied its burst")
	}
	if l.Allow("a") {
		t.Fatal("client a allowed past burst")
	}
	if !l.Allow("b") {
		t.Fatal("client b throttled by client a's spending")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l, _ := newTestLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if !l.Allow("c") {
			t.Fatal("disabled limiter denied a request")
		}
	}
}

func TestLimiterPrune(t *testing.T) {
	l, clock := newTestLimiter(1000, 1)
	for i := 0; i < pruneAbove+2; i++ {
		l.Allow(time.Duration(i).String())
	}
	if len(l.clients) <= pruneAbove {
		t.Fatalf("precondition: want > %d clients, have %d", pruneAbove, len(l.clients))
	}
	clock.advance(time.Minute) // every bucket fully refills
	l.Allow("fresh")
	if len(l.clients) > 2 {
		t.Fatalf("prune kept %d clients, want the fresh one (plus at most the trigger)", len(l.clients))
	}
}
