package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"calculon/internal/config"
)

// validSpec is a minimal spec that prepare() accepts; the bad-spec cases
// below each break one field of it.
func validSpec() JobSpec {
	return JobSpec{
		Model:  config.ModelRef{Preset: "gpt3-13B", Batch: 8},
		System: config.SystemRef{Preset: "a100-80g", Procs: 8},
	}
}

// TestShippedJobSpecsPrepare keeps every example under configs/jobs/
// submittable: each file must decode into a JobSpec and survive the same
// prepare() the daemon runs at POST /v1/jobs time.
func TestShippedJobSpecsPrepare(t *testing.T) {
	dir := filepath.Join("..", "..", "configs", "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	if len(entries) == 0 {
		t.Fatalf("no example job specs in %s", dir)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			t.Errorf("%s: decode: %v", e.Name(), err)
			continue
		}
		if _, err := spec.prepare(); err != nil {
			t.Errorf("%s: prepare: %v", e.Name(), err)
		}
	}
}

func TestPrepareRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"empty", JobSpec{}},
		{"unknown model preset", func() JobSpec {
			s := validSpec()
			s.Model.Preset = "no-such-model"
			return s
		}()},
		{"unknown system preset", func() JobSpec {
			s := validSpec()
			s.System.Preset = "no-such-system"
			return s
		}()},
		{"negative top_k", func() JobSpec {
			s := validSpec()
			s.Search.TopK = -1
			return s
		}()},
	}
	for _, tc := range cases {
		if _, err := tc.spec.prepare(); err == nil {
			t.Errorf("%s: prepare accepted a bad spec", tc.name)
		}
	}
}
