package service

import (
	"sync"
	"time"
)

// Limiter is a per-client token bucket: each client (keyed on remote
// address) accrues rate tokens per second up to burst, and every allowed
// request spends one. A tight poll loop from one client therefore degrades
// into 429s for that client alone; everyone else's buckets are untouched.
//
// State is a map guarded by a mutex — the check is a handful of float ops,
// far off any hot path. Fully refilled buckets are pruned opportunistically
// once the map grows past pruneAbove, so an address-churning client cannot
// grow it without bound.
type Limiter struct {
	rate  float64 // tokens per second; 0 or less disables the limiter
	burst float64
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// pruneAbove is the client count past which Allow sweeps out full buckets.
const pruneAbove = 4096

// NewLimiter builds a limiter granting rate requests per second with the
// given burst (clamped to at least 1). A rate of 0 or less disables
// limiting: Allow always returns true.
func NewLimiter(rate float64, burst int) *Limiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &Limiter{
		rate:    rate,
		burst:   b,
		now:     time.Now,
		clients: make(map[string]*bucket),
	}
}

// Allow reports whether the client may proceed, spending one token if so.
func (l *Limiter) Allow(client string) bool {
	if l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	bk, ok := l.clients[client]
	if !ok {
		if len(l.clients) > pruneAbove {
			l.prune(now)
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.clients[client] = bk
	} else {
		bk.tokens += now.Sub(bk.last).Seconds() * l.rate
		if bk.tokens > l.burst {
			bk.tokens = l.burst
		}
		bk.last = now
	}
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}

// prune drops clients whose buckets would be full again — they carry no
// information a fresh bucket wouldn't. Caller holds mu. Map order does not
// matter: every full bucket is deleted regardless of visit order.
func (l *Limiter) prune(now time.Time) {
	for client, bk := range l.clients {
		if bk.tokens+now.Sub(bk.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, client)
		}
	}
}
