package service

import (
	"context"
	"sync"
	"time"

	"calculon/internal/search"
	"calculon/internal/serving"
)

// State is a job's position in its lifecycle.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Job is one submitted search. The spec is resolved at submit time; prog is
// the job's own Progress (mirrored into the daemon's fleet aggregate), read
// lock-free by status handlers while the search runs. Everything else is
// guarded by mu.
type Job struct {
	ID string

	prep    prepared
	prog    *search.Progress
	created time.Time

	mu            sync.Mutex
	state         State
	started       time.Time
	finished      time.Time
	workers       int
	cancel        context.CancelFunc // set while running
	result        *search.Result     // set in terminal states when the search returned one
	servingResult *serving.Result    // the serving-job counterpart of result
	err           error

	// done closes on entry to a terminal state; result long-polls and the
	// drain path wait on it.
	done chan struct{}
}

func newJob(id string, prep prepared) *Job {
	j := &Job{
		ID:      id,
		prep:    prep,
		prog:    &search.Progress{},
		created: time.Now(),
		state:   StateQueued,
		done:    make(chan struct{}),
	}
	return j
}

// tryStart moves queued→running, recording the cancel hook and worker
// share. It fails when the job was cancelled while queued.
func (j *Job) tryStart(cancel context.CancelFunc, workers int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.workers = workers
	return true
}

// finish records the terminal state; at most one of res/sres is non-nil
// (whichever engine the job ran). Cancel may already have moved a queued job
// to cancelled; finishing is then a no-op.
func (j *Job) finish(state State, res *search.Result, sres *serving.Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.servingResult = sres
	j.err = err
	j.cancel = nil
	close(j.done)
	return true
}

// Cancel requests cancellation. A queued job goes terminal immediately; a
// running job has its context cancelled and goes terminal when the search
// unwinds (within one work chunk). Terminal jobs are untouched. The return
// reports whether this call changed anything — the queued case also reports
// queued=true so the caller can settle the queue gauge.
func (j *Job) Cancel() (changed, queued bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		close(j.done)
		return true, true
	case StateRunning:
		j.cancel()
		return true, false
	}
	return false, false
}

// Done exposes the terminal-state signal for waiters.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the API: lifecycle fields under the lock,
// live counters from the lock-free Progress.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	state, started, finished, workers, err := j.state, j.started, j.finished, j.workers, j.err
	j.mu.Unlock()
	s := JobStatus{
		ID:       j.ID,
		State:    state,
		Created:  j.created,
		Workers:  workers,
		Progress: progressStatus(j.prog.Snapshot()),
	}
	if !started.IsZero() {
		s.Started = &started
	}
	if !finished.IsZero() {
		s.Finished = &finished
	}
	if err != nil {
		s.Error = err.Error()
	}
	return s
}

// Snapshot returns the terminal result, if any: ok is false while the job
// has not finished. At most one of res/sres is non-nil, matching the job's
// kind. Cancelled and timed-out jobs may still carry a partial result
// (counters up to the cancellation point).
func (j *Job) Snapshot() (res *search.Result, sres *serving.Result, state State, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, j.state, nil, false
	}
	return j.result, j.servingResult, j.state, j.err, true
}
