package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"

	"calculon/internal/resultstore"
	"testing"
	"time"
)

// smallSpec is a job over a tiny strategy space (finishes in well under a
// second); bigSpec spans ~160k strategies (the cancel_test space), so a test
// can reliably catch it mid-flight.
func smallSpec() string {
	return `{"model":{"preset":"gpt3-13B","batch":8},"system":{"preset":"a100-80g","procs":8},"search":{"top_k":3}}`
}

func bigSpec() string {
	return `{"model":{"preset":"gpt3-13B","batch":64},"system":{"preset":"a100-80g","procs":64},"search":{"max_interleave":2}}`
}

// newTestServer builds a server and guarantees it is drained at cleanup so
// no scheduler or job goroutines outlive the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // hard drain: cancel running jobs immediately
		s.Drain(ctx)
	})
	return s
}

// do runs one request through the server's mux and decodes the JSON reply.
func do(t *testing.T, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func submit(t *testing.T, s *Server, spec string) JobStatus {
	t.Helper()
	var st JobStatus
	rec := do(t, s, "POST", "/v1/jobs", spec, &st)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", rec.Code, rec.Body.String())
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit: unexpected status %+v", st)
	}
	return st
}

// waitState polls until the job reaches want (or any terminal state when
// want is terminal and the job went elsewhere, which fails the test).
func waitState(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		rec := do(t, s, "GET", "/v1/jobs/"+id, "", &st)
		if rec.Code != http.StatusOK {
			t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

func TestSubmitPollResultLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, MaxRunning: 2, QueueDepth: 4})
	st := submit(t, s, smallSpec())

	done := waitState(t, s, st.ID, StateDone)
	if done.Progress.Evaluated == 0 || done.Progress.Total == 0 {
		t.Fatalf("done job carries no progress counters: %+v", done.Progress)
	}
	if done.Workers < 1 {
		t.Fatalf("done job reports %d workers", done.Workers)
	}

	var res JobResult
	rec := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "", &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("result: %d %s", rec.Code, rec.Body.String())
	}
	if !res.Found || res.Best == nil || res.Best.SampleRate <= 0 {
		t.Fatalf("result has no best configuration: %+v", res)
	}
	if len(res.Top) == 0 || len(res.Top) > 3 {
		t.Fatalf("top_k=3 returned %d entries", len(res.Top))
	}
	if res.Evaluated != int(done.Progress.Evaluated) {
		t.Fatalf("result evaluated %d != final progress %d", res.Evaluated, done.Progress.Evaluated)
	}
}

func TestResultLongPoll(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxRunning: 1, QueueDepth: 4})
	st := submit(t, s, smallSpec())
	var res JobResult
	rec := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result?wait=20s", "", &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("long-poll result: %d %s", rec.Code, rec.Body.String())
	}
	if res.State != StateDone {
		t.Fatalf("long-poll returned state %s", res.State)
	}
}

func TestResultBeforeDoneIs202(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxRunning: 1, QueueDepth: 4})
	st := submit(t, s, bigSpec())
	var got JobStatus
	rec := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "", &got)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("result on unfinished job: %d, want 202", rec.Code)
	}
	do(t, s, "DELETE", "/v1/jobs/"+st.ID, "", nil)
}

func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxRunning: 1, QueueDepth: 4})
	st := submit(t, s, bigSpec())
	// Catch it mid-search: running with progress flowing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := waitState(t, s, st.ID, StateRunning)
		if got.Progress.Evaluated > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
	}
	var cancelled JobStatus
	rec := do(t, s, "DELETE", "/v1/jobs/"+st.ID, "", &cancelled)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", rec.Code, rec.Body.String())
	}
	final := waitState(t, s, st.ID, StateCancelled)
	if final.Progress.Evaluated >= final.Progress.Total {
		t.Fatalf("cancelled job ran to completion (%d of %d)",
			final.Progress.Evaluated, final.Progress.Total)
	}
	// The partial result is still served.
	var res JobResult
	if rec := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "", &res); rec.Code != http.StatusOK {
		t.Fatalf("result after cancel: %d", rec.Code)
	}
	if res.State != StateCancelled {
		t.Fatalf("result state %s, want cancelled", res.State)
	}
	// Cancelling again is a no-op, not an error.
	if rec := do(t, s, "DELETE", "/v1/jobs/"+st.ID, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("re-cancel: %d", rec.Code)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxRunning: 1, QueueDepth: 4})
	running := submit(t, s, bigSpec())
	waitState(t, s, running.ID, StateRunning)
	queued := submit(t, s, smallSpec())
	var got JobStatus
	do(t, s, "DELETE", "/v1/jobs/"+queued.ID, "", &got)
	if got.State != StateCancelled {
		t.Fatalf("queued job state after cancel: %s", got.State)
	}
	if got.Started != nil {
		t.Fatal("cancelled-while-queued job claims to have started")
	}
	do(t, s, "DELETE", "/v1/jobs/"+running.ID, "", nil)
}

func TestQueueFullRejectsWith503(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxRunning: 1, QueueDepth: 1})
	running := submit(t, s, bigSpec())
	waitState(t, s, running.ID, StateRunning)
	submit(t, s, bigSpec()) // fills the queue
	rec := do(t, s, "POST", "/v1/jobs", bigSpec(), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit to full queue: %d, want 503", rec.Code)
	}
}

func TestBadSpecRejectedWith400(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxRunning: 1, QueueDepth: 1})
	for _, body := range []string{
		`not json`,
		`{}`,
		`{"model":{"preset":"no-such-model"},"system":{"preset":"a100-80g","procs":8}}`,
		`{"model":{"preset":"gpt3-13B"},"system":{"preset":"a100-80g","procs":8},"search":{"features":"warp-speed"}}`,
		`{"model":{"preset":"gpt3-13B"},"system":{"preset":"a100-80g","procs":8},"search":{"top_k":-1}}`,
	} {
		rec := do(t, s, "POST", "/v1/jobs", body, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("submit %q: %d, want 400", body, rec.Code)
		}
	}
	if rec := do(t, s, "GET", "/v1/jobs/job-999999", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/jobs/job-999999", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job cancel: %d, want 404", rec.Code)
	}
}

// TestWorkerBudgetAcrossConcurrentJobs drives the budget end to end: two
// jobs running at once on a workers=3 daemon report shares summing to 3.
func TestWorkerBudgetAcrossConcurrentJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3, MaxRunning: 2, QueueDepth: 4})
	a := submit(t, s, bigSpec())
	b := submit(t, s, bigSpec())
	stA := waitState(t, s, a.ID, StateRunning)
	stB := waitState(t, s, b.ID, StateRunning)
	if sum := stA.Workers + stB.Workers; sum != 3 {
		t.Fatalf("concurrent jobs hold %d+%d workers, budget is 3", stA.Workers, stB.Workers)
	}
	do(t, s, "DELETE", "/v1/jobs/"+a.ID, "", nil)
	do(t, s, "DELETE", "/v1/jobs/"+b.ID, "", nil)
}

func TestRateLimiter429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxRunning: 1, QueueDepth: 1, Rate: 0.001, Burst: 2})
	hit := func(addr string) int {
		req := httptest.NewRequest("GET", "/v1/jobs", nil)
		req.RemoteAddr = addr
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec.Code
	}
	for i := 0; i < 2; i++ {
		if code := hit("10.0.0.1:1234"); code != http.StatusOK {
			t.Fatalf("request %d within burst: %d", i, code)
		}
	}
	if code := hit("10.0.0.1:9999"); code != http.StatusTooManyRequests {
		t.Fatalf("request past burst: %d, want 429 (same host, different port)", code)
	}
	if code := hit("10.0.0.2:1234"); code != http.StatusOK {
		t.Fatal("different client throttled by the first one's spending")
	}
	// healthz and metrics stay reachable for a throttled client.
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.RemoteAddr = "10.0.0.1:1"
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz throttled: %d", rec.Code)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, MaxRunning: 2, QueueDepth: 4})
	st := submit(t, s, smallSpec())
	waitState(t, s, st.ID, StateDone)
	rec := do(t, s, "GET", "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, line := range []string{
		"calculond_jobs_submitted_total 1",
		"calculond_jobs_done_total 1",
		"calculond_jobs_queued 0",
		"calculond_jobs_running 0",
		"calculond_workers_total 4",
		"calculond_job_slots_total 2",
		"calculond_strategies_evaluated_total",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q:\n%s", line, body)
		}
	}
	// The fleet counter carries the finished job's evaluations.
	var evaluated int64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "calculond_strategies_evaluated_total ") {
			fmt.Sscanf(line, "calculond_strategies_evaluated_total %d", &evaluated)
		}
	}
	var res JobResult
	do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "", &res)
	if evaluated != int64(res.Evaluated) {
		t.Fatalf("fleet evaluated %d != job result %d", evaluated, res.Evaluated)
	}
}

func TestHealthzFlipsWhileDraining(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxRunning: 1, QueueDepth: 1})
	if rec := do(t, s, "GET", "/healthz", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", rec.Code)
	}
	s.Drain(context.Background())
	if rec := do(t, s, "GET", "/healthz", "", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d, want 503", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/jobs", smallSpec(), nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: %d, want 503", rec.Code)
	}
}

// waitForGoroutines is the leak check of internal/search's cancel_test: the
// count must settle back to the pre-server baseline after a drain.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestDrainCancelsAndLeaksNothing is the drain contract end to end: with a
// job running and another queued, a drain whose deadline is already past
// cancels both, unwinds every goroutine the service started, and leaves all
// jobs terminal.
func TestDrainCancelsAndLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Workers: 2, MaxRunning: 1, QueueDepth: 4})
	running := submit(t, s, bigSpec())
	waitState(t, s, running.ID, StateRunning)
	queued := submit(t, s, bigSpec())

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already past: running jobs are cancelled, not awaited
	start := time.Now()
	s.Drain(ctx)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("hard drain took %v", took)
	}
	for _, id := range []string{running.ID, queued.ID} {
		var st JobStatus
		do(t, s, "GET", "/v1/jobs/"+id, "", &st)
		if st.State != StateCancelled {
			t.Fatalf("job %s after drain: %s, want cancelled", id, st.State)
		}
	}
	waitForGoroutines(t, baseline)
}

// TestDrainLetsRunningJobsFinish is the graceful half: with a generous
// deadline, a job that is already running completes as done, not cancelled
// (only queued jobs are cancelled by a drain).
func TestDrainLetsRunningJobsFinish(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Workers: 4, MaxRunning: 1, QueueDepth: 4})
	st := submit(t, s, bigSpec())
	waitState(t, s, st.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Drain(ctx)
	var got JobStatus
	do(t, s, "GET", "/v1/jobs/"+st.ID, "", &got)
	if got.State != StateDone {
		t.Fatalf("job after graceful drain: %s (err %q), want done", got.State, got.Error)
	}
	waitForGoroutines(t, baseline)
}

// TestStoreEndpoint: /v1/store reports the persistent store's counters and
// path, and degrades to enabled=false when the daemon runs without one.
func TestStoreEndpoint(t *testing.T) {
	// No store configured.
	bare := newTestServer(t, Config{Workers: 1, MaxRunning: 1, QueueDepth: 4})
	var off StoreStatus
	if rec := do(t, bare, "GET", "/v1/store", "", &off); rec.Code != http.StatusOK {
		t.Fatalf("store status without store: %d", rec.Code)
	}
	if off.Enabled || off.Path != "" || off.Rows != 0 {
		t.Fatalf("storeless daemon reports %+v, want all-zero", off)
	}

	// With a store: run a job, rerun it from cache, watch the counters.
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s := newTestServer(t, Config{Workers: 1, MaxRunning: 1, QueueDepth: 4, Store: store})

	live := submit(t, s, smallSpec())
	waitState(t, s, live.ID, StateDone)
	rerun := submit(t, s, smallSpec())
	waitState(t, s, rerun.ID, StateDone)

	var st StoreStatus
	if rec := do(t, s, "GET", "/v1/store", "", &st); rec.Code != http.StatusOK {
		t.Fatalf("store status: %d", rec.Code)
	}
	if !st.Enabled || st.Path != store.Path() {
		t.Fatalf("store status = %+v, want enabled at %s", st, store.Path())
	}
	if st.Rows != 1 || st.Hits != 1 || st.Misses != 1 || st.Appends != 1 {
		t.Fatalf("store status = %+v, want 1 row / 1 hit / 1 miss / 1 append", st)
	}
}
