package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"calculon/internal/resultstore"
	"calculon/internal/search"
	"calculon/internal/serving"
)

// ErrDraining reports a submit against a daemon that is shutting down.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// maxRetainedJobs bounds the job registry: once past it, the oldest
// terminal jobs are evicted at submit time so a daemon fielding jobs for
// weeks holds a window of recent history, not every job ever run.
const maxRetainedJobs = 1024

// Manager owns the job lifecycle: a bounded FIFO queue in front of a
// scheduler goroutine that starts jobs as budget slots free up, a registry
// for status lookups, and the drain choreography. The fleet Progress
// aggregates every job's counters for /metrics.
type Manager struct {
	queue   *queue
	budget  *Budget
	metrics *Metrics
	fleet   *search.Progress
	// store, when non-nil, is the shared persistent result store every job
	// consults before searching and feeds afterwards. Jobs only read and
	// append; the daemon owns open/flush/close around the manager's
	// lifecycle, so a drain settles every pending row before exit.
	store *resultstore.Store

	// intakeCtx gates the scheduler: cancelling it stops new jobs from
	// starting. hardCtx parents every job's run context: cancelling it stops
	// running searches within one work chunk.
	intakeCtx    context.Context
	intakeCancel context.CancelFunc
	hardCtx      context.Context
	hardCancel   context.CancelFunc

	draining sync.Once
	wg       sync.WaitGroup // scheduler + running-job goroutines

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int
}

// NewManager starts a manager with the given worker budget cut into at most
// maxRunning concurrent jobs, and a queue of queueDepth waiting ones. The
// scheduler goroutine runs until Drain.
func NewManager(workers, maxRunning, queueDepth int) *Manager {
	m := &Manager{
		queue:   newQueue(queueDepth),
		budget:  NewBudget(workers, maxRunning),
		metrics: &Metrics{},
		fleet:   &search.Progress{},
		jobs:    make(map[string]*Job),
	}
	m.intakeCtx, m.intakeCancel = context.WithCancel(context.Background())
	m.hardCtx, m.hardCancel = context.WithCancel(context.Background())
	m.wg.Add(1)
	go m.schedule()
	return m
}

// Budget exposes the worker partition (for /metrics).
func (m *Manager) Budget() *Budget { return m.budget }

// Metrics exposes the lifecycle counters.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// FleetSnapshot is the aggregate strategy-counter view across all jobs.
func (m *Manager) FleetSnapshot() search.ProgressSnapshot { return m.fleet.Snapshot() }

// Submit validates the spec, registers the job, and queues it. The error
// distinguishes bad specs (client's fault) from a full queue or a draining
// daemon (server's state); the HTTP layer maps them to 400/503.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	prep, err := spec.prepare()
	if err != nil {
		return nil, err
	}
	if m.intakeCtx.Err() != nil {
		m.metrics.rejected.Add(1)
		return nil, ErrDraining
	}
	m.mu.Lock()
	m.seq++
	job := newJob(fmt.Sprintf("job-%06d", m.seq), prep)
	job.prog.MirrorTo(m.fleet)
	m.jobs[job.ID] = job
	m.evictLocked()
	m.mu.Unlock()
	if err := m.queue.Push(job); err != nil {
		m.mu.Lock()
		delete(m.jobs, job.ID)
		m.mu.Unlock()
		m.metrics.rejected.Add(1)
		return nil, err
	}
	m.metrics.submitted.Add(1)
	m.metrics.queued.Add(1)
	if spec.Serving != nil {
		m.metrics.servingJobs.Add(1)
	}
	return job, nil
}

// Job looks up a registered job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every registered job, oldest first.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel cancels the job with the given ID, settling the metrics for the
// queued case (running jobs settle when their goroutine unwinds).
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Job(id)
	if !ok {
		return nil, false
	}
	if changed, wasQueued := j.Cancel(); changed && wasQueued {
		m.metrics.queued.Add(-1)
		m.metrics.cancelled.Add(1)
	}
	return j, true
}

// evictLocked drops the oldest terminal jobs once the registry exceeds the
// retention bound. Caller holds mu.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= maxRetainedJobs {
		return
	}
	var terminal []*Job
	for _, j := range m.jobs {
		if j.State().Terminal() {
			terminal = append(terminal, j)
		}
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].ID < terminal[k].ID })
	for _, j := range terminal {
		if len(m.jobs) <= maxRetainedJobs {
			break
		}
		delete(m.jobs, j.ID)
	}
}

// schedule is the scheduler goroutine: hold a budget slot, then hand it the
// oldest runnable queued job. Acquiring before popping keeps the queue's
// advertised depth exact — a popped-but-unstartable job would otherwise act
// as one slot of invisible extra capacity. It exits when intakeCtx is
// cancelled (drain).
func (m *Manager) schedule() {
	defer m.wg.Done()
	for {
		workers, release, err := m.budget.Acquire(m.intakeCtx)
		if err != nil {
			return
		}
		var job *Job
		for {
			job, err = m.queue.Pop(m.intakeCtx)
			if err != nil {
				release()
				return
			}
			if job.State() == StateQueued {
				break
			}
			// Cancelled while queued: discard; gauges settled by Cancel.
		}
		m.wg.Add(1)
		go m.runJob(job, workers, release)
	}
}

// runJob executes one job under the drain-cancellable context, with the
// job's own cancel (DELETE) and optional timeout layered on top.
func (m *Manager) runJob(job *Job, workers int, release func()) {
	defer m.wg.Done()
	defer release()
	ctx, cancel := context.WithCancel(m.hardCtx)
	defer cancel()
	if !job.tryStart(cancel, workers) {
		return // cancelled between pop and start; gauges settled by Cancel
	}
	m.metrics.queued.Add(-1)
	m.metrics.running.Add(1)
	if job.prep.timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, job.prep.timeout)
		defer cancelTimeout()
	}
	var (
		res  *search.Result
		sres *serving.Result
		err  error
	)
	if job.prep.servingSpec != nil {
		sopts := job.prep.servingOpts
		sopts.Workers = workers
		sopts.Progress = job.prog
		if m.store != nil {
			sopts.Cache = m.store.ServingCache()
		}
		var r serving.Result
		r, err = serving.Search(ctx, *job.prep.servingSpec, sopts)
		sres = &r
	} else {
		opts := job.prep.opts
		opts.Workers = workers
		opts.Progress = job.prog
		if m.store != nil {
			// A typed-nil *Store behind the interface would defeat the nil check
			// inside Execution, hence the explicit guard.
			opts.Cache = m.store
		}
		var r search.Result
		r, err = search.Execution(ctx, job.prep.m, job.prep.sys, opts)
		res = &r
	}
	state := StateDone
	switch {
	case errors.Is(err, context.Canceled):
		state, err = StateCancelled, nil
	case err != nil:
		state = StateFailed
	}
	if job.finish(state, res, sres, err) {
		m.metrics.running.Add(-1)
		switch state {
		case StateDone:
			m.metrics.done.Add(1)
		case StateFailed:
			m.metrics.failed.Add(1)
		case StateCancelled:
			m.metrics.cancelled.Add(1)
		}
	}
}

// Drain shuts the manager down: no new jobs start, queued jobs are
// cancelled, and running jobs get until ctx's deadline to finish before
// their contexts are cancelled. Drain returns once every job goroutine has
// unwound — the no-leak guarantee the daemon's exit code stands on. It is
// idempotent; later calls wait for the first to finish.
func (m *Manager) Drain(ctx context.Context) {
	m.draining.Do(func() {
		m.intakeCancel()
		for {
			job, ok := m.queue.TryPop()
			if !ok {
				break
			}
			if changed, wasQueued := job.Cancel(); changed && wasQueued {
				m.metrics.queued.Add(-1)
				m.metrics.cancelled.Add(1)
			}
		}
	})
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.hardCancel()
		<-done
	}
	m.hardCancel() // release the context even on the graceful path
}
