package service

import (
	"context"
	"errors"
)

// ErrQueueFull reports a submit against a queue at capacity. The server maps
// it to 503 so clients back off instead of piling work the daemon has
// already promised it cannot start soon.
var ErrQueueFull = errors.New("service: job queue full")

// queue is a bounded FIFO of accepted-but-not-yet-running jobs. A buffered
// channel is the whole implementation: sends preserve submission order,
// capacity is the bound, and Pop's receive parks the scheduler until work or
// cancellation arrives. Cancelled jobs stay in the queue (a channel cannot
// remove from the middle); the scheduler discards them at Pop time, which
// keeps cancellation O(1) and the queue free of locks.
type queue struct {
	ch chan *Job
}

func newQueue(depth int) *queue {
	if depth < 1 {
		depth = 1
	}
	return &queue{ch: make(chan *Job, depth)}
}

// Push appends the job, or returns ErrQueueFull without blocking.
func (q *queue) Push(j *Job) error {
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Pop removes the oldest job, blocking until one is available or the context
// is cancelled.
func (q *queue) Pop(ctx context.Context) (*Job, error) {
	select {
	case j := <-q.ch:
		return j, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryPop removes the oldest job if one is queued; the drain path uses it to
// empty the queue without blocking.
func (q *queue) TryPop() (*Job, bool) {
	select {
	case j := <-q.ch:
		return j, true
	default:
		return nil, false
	}
}

// Len is the number of queued jobs (including any cancelled-but-unpopped
// ones awaiting discard).
func (q *queue) Len() int { return len(q.ch) }

// Cap is the configured bound.
func (q *queue) Cap() int { return cap(q.ch) }
