package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"calculon/internal/resultstore"
	"calculon/internal/search"
)

// Metrics is the daemon's counter set, exposed as text on GET /metrics.
// Every field is bumped by job goroutines and HTTP handlers while the
// metrics handler reads concurrently, so access is sync/atomic only —
// calculonvet's atomiccounter analyzer enforces it, the same contract as
// search.Progress. Strategy-level counters (evaluated, feasible,
// pre-screened, subtree-pruned, cache hits) are not duplicated here: every
// job's Progress mirrors into one fleet-wide search.Progress whose snapshot
// the exposition reads.
//
//calculonvet:counter
type Metrics struct {
	// Totals over the daemon's lifetime.
	submitted   atomic.Int64
	servingJobs atomic.Int64 // subset of submitted that are serving searches
	rejected    atomic.Int64 // queue-full and draining refusals
	ratelimited atomic.Int64 // 429s issued
	done        atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	// Gauges for the two live states.
	queued  atomic.Int64
	running atomic.Int64
}

// write renders one metric line pair (HELP omitted; TYPE kept so scrapers
// classify counters vs gauges).
func write(w io.Writer, name, typ string, v int64) {
	fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, v)
}

// Expose writes the Prometheus-style text exposition: job lifecycle
// counters and gauges, the budget's shape, the fleet-wide strategy counters
// aggregated across every job the daemon has run, and — when a persistent
// result store is attached — the store's dedup-cache counters.
func (m *Metrics) Expose(w io.Writer, fleet search.ProgressSnapshot, budget *Budget, store *resultstore.Store) {
	write(w, "calculond_jobs_submitted_total", "counter", m.submitted.Load())
	write(w, "calculond_jobs_serving_total", "counter", m.servingJobs.Load())
	write(w, "calculond_jobs_rejected_total", "counter", m.rejected.Load())
	write(w, "calculond_requests_ratelimited_total", "counter", m.ratelimited.Load())
	write(w, "calculond_jobs_done_total", "counter", m.done.Load())
	write(w, "calculond_jobs_failed_total", "counter", m.failed.Load())
	write(w, "calculond_jobs_cancelled_total", "counter", m.cancelled.Load())
	write(w, "calculond_jobs_queued", "gauge", m.queued.Load())
	write(w, "calculond_jobs_running", "gauge", m.running.Load())
	write(w, "calculond_workers_total", "gauge", int64(budget.Total()))
	write(w, "calculond_job_slots_total", "gauge", int64(budget.Slots()))
	write(w, "calculond_job_slots_free", "gauge", int64(budget.Free()))
	write(w, "calculond_strategies_evaluated_total", "counter", fleet.Evaluated)
	write(w, "calculond_strategies_feasible_total", "counter", fleet.Feasible)
	write(w, "calculond_strategies_prescreened_total", "counter", fleet.PreScreened)
	write(w, "calculond_strategies_subtree_pruned_total", "counter", fleet.SubtreePruned)
	write(w, "calculond_strategy_cache_hits_total", "counter", fleet.CacheHits)
	write(w, "calculond_searches_from_store_total", "counter", fleet.StoreHits)
	if store != nil {
		st := store.Stats()
		write(w, "calculond_store_rows", "gauge", int64(st.Rows))
		write(w, "calculond_store_hits_total", "counter", st.Hits)
		write(w, "calculond_store_misses_total", "counter", st.Misses)
		write(w, "calculond_store_appends_total", "counter", st.Appends)
		write(w, "calculond_store_flushes_total", "counter", st.Flushes)
	}
}
