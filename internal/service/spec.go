// Package service is the long-running face of the search engines: calculond
// wraps it around an HTTP listener. Clients POST a job spec (model + system
// + search options), get a job ID back, and poll status — live
// evaluated/feasible/pre-screened/subtree-pruned counters with an ETA,
// straight from the search's Progress attachment — until the result is
// ready. The pieces compose the repo's existing invariants: a bounded FIFO
// queue feeds a scheduler that partitions one global worker budget across
// concurrently running jobs (never oversubscribing it), every job runs under
// a cancellable context (DELETE cancels, drain cancels, a job timeout
// cancels), per-client rate limiting keeps one poller from starving the
// rest, and all cross-goroutine counters are sync/atomic only.
package service

import (
	"fmt"
	"time"

	"calculon/internal/config"
	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
)

// SearchSpec is the client-facing subset of search.Options: what to search,
// not how to schedule it (workers come from the daemon's budget, progress
// attachment from the job machinery).
type SearchSpec struct {
	// Features selects the optimization family: baseline|seqpar|all
	// (default all).
	Features string `json:"features,omitempty"`
	// MaxInterleave caps the pipeline-interleave factor (0 = unlimited).
	MaxInterleave int `json:"max_interleave,omitempty"`
	// TopK retains the best K configurations in the result (default 1).
	TopK int `json:"top_k,omitempty"`
	// Pareto retains the time-vs-memory Pareto front in the result.
	Pareto bool `json:"pareto,omitempty"`
	// TimeoutSeconds bounds the job's wall-clock run; 0 means no limit.
	// A timed-out job fails with a deadline error and partial counters.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// DisableStore bypasses the daemon's persistent result store for this
	// job: no cached verdict is served and the fresh one is not persisted.
	// Results are identical either way (the store serves bit-identical
	// verdicts); the escape hatch exists for A/B measurement and to force
	// re-evaluation.
	DisableStore bool `json:"disable_store,omitempty"`
}

// JobSpec is the body of POST /v1/jobs: the same model/system references the
// CLI's scenario files use, plus the search options.
type JobSpec struct {
	Model  config.ModelRef  `json:"model"`
	System config.SystemRef `json:"system"`
	Search SearchSpec       `json:"search"`
}

// prepared is a resolved, validated job spec ready to run.
type prepared struct {
	m       model.LLM
	sys     system.System
	opts    search.Options
	timeout time.Duration
}

// prepare resolves the references and validates everything client-supplied,
// so a bad spec is rejected at submit time (400) rather than failing the job
// after it queued.
func (s JobSpec) prepare() (prepared, error) {
	var p prepared
	var err error
	if p.m, err = s.Model.Resolve(); err != nil {
		return p, err
	}
	if p.sys, err = s.System.Resolve(); err != nil {
		return p, err
	}
	features := execution.FeatureSet(s.Search.Features)
	if features == "" {
		features = execution.FeatureAll
	}
	if !features.Valid() {
		return p, fmt.Errorf("service: unknown feature set %q (want baseline|seqpar|all)", s.Search.Features)
	}
	if s.Search.MaxInterleave < 0 {
		return p, fmt.Errorf("service: negative max_interleave %d", s.Search.MaxInterleave)
	}
	if s.Search.TimeoutSeconds < 0 {
		return p, fmt.Errorf("service: negative timeout_seconds %g", s.Search.TimeoutSeconds)
	}
	topK := s.Search.TopK
	switch {
	case topK < 0:
		return p, fmt.Errorf("service: negative top_k %d", topK)
	case topK == 0:
		topK = 1
	}
	p.opts = search.Options{
		Enum: execution.EnumOptions{
			Features:      features,
			MaxInterleave: s.Search.MaxInterleave,
		},
		TopK:          topK,
		Pareto:        s.Search.Pareto,
		EstimateTotal: true,
		DisableStore:  s.Search.DisableStore,
	}
	p.timeout = time.Duration(s.Search.TimeoutSeconds * float64(time.Second))
	return p, nil
}
