// Package service is the long-running face of the search engines: calculond
// wraps it around an HTTP listener. Clients POST a job spec (model + system
// + search options), get a job ID back, and poll status — live
// evaluated/feasible/pre-screened/subtree-pruned counters with an ETA,
// straight from the search's Progress attachment — until the result is
// ready. The pieces compose the repo's existing invariants: a bounded FIFO
// queue feeds a scheduler that partitions one global worker budget across
// concurrently running jobs (never oversubscribing it), every job runs under
// a cancellable context (DELETE cancels, drain cancels, a job timeout
// cancels), per-client rate limiting keeps one poller from starving the
// rest, and all cross-goroutine counters are sync/atomic only.
package service

import (
	"fmt"
	"time"

	"calculon/internal/config"
	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/serving"
	"calculon/internal/system"
	"calculon/internal/tco"
)

// SearchSpec is the client-facing subset of search.Options: what to search,
// not how to schedule it (workers come from the daemon's budget, progress
// attachment from the job machinery).
type SearchSpec struct {
	// Features selects the optimization family: baseline|seqpar|all
	// (default all).
	Features string `json:"features,omitempty"`
	// MaxInterleave caps the pipeline-interleave factor (0 = unlimited).
	MaxInterleave int `json:"max_interleave,omitempty"`
	// TopK retains the best K configurations in the result (default 1).
	TopK int `json:"top_k,omitempty"`
	// Pareto retains the time-vs-memory Pareto front in the result.
	Pareto bool `json:"pareto,omitempty"`
	// TimeoutSeconds bounds the job's wall-clock run; 0 means no limit.
	// A timed-out job fails with a deadline error and partial counters.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// DisableStore bypasses the daemon's persistent result store for this
	// job: no cached verdict is served and the fresh one is not persisted.
	// Results are identical either way (the store serves bit-identical
	// verdicts); the escape hatch exists for A/B measurement and to force
	// re-evaluation.
	DisableStore bool `json:"disable_store,omitempty"`
}

// ServingJobSpec is the serving-search job kind: the workload, the
// deployment space, and optionally a separate prefill-pool system and cost
// assumptions. A job carrying one runs serving.Search instead of the
// training-strategy search; the training-only Search fields must then stay
// empty (TimeoutSeconds and DisableStore still apply).
type ServingJobSpec struct {
	Workload serving.Workload `json:"workload"`
	Space    serving.Space    `json:"space"`
	// PrefillSystem, when present, is the system the disaggregated prefill
	// pool deploys on.
	PrefillSystem *config.SystemRef `json:"prefill_system,omitempty"`
	// Assumptions price the deployments; absent means tco.DefaultAssumptions.
	Assumptions *tco.Assumptions `json:"assumptions,omitempty"`
	// DisablePreScreen turns off the closed-form capacity pre-screen
	// (identical results, slower; for A/B measurement).
	DisablePreScreen bool `json:"disable_pre_screen,omitempty"`
}

// JobSpec is the body of POST /v1/jobs: the same model/system references the
// CLI's scenario files use, plus the search options. A spec with a serving
// section is a serving co-design job; otherwise it is a training-strategy
// search.
type JobSpec struct {
	Model   config.ModelRef  `json:"model"`
	System  config.SystemRef `json:"system"`
	Search  SearchSpec       `json:"search"`
	Serving *ServingJobSpec  `json:"serving,omitempty"`
}

// prepared is a resolved, validated job spec ready to run. Exactly one of
// the two engines is armed: servingSpec nil means a training search.
type prepared struct {
	m       model.LLM
	sys     system.System
	opts    search.Options
	timeout time.Duration

	servingSpec *serving.Spec
	servingOpts serving.Options
}

// prepare resolves the references and validates everything client-supplied,
// so a bad spec is rejected at submit time (400) rather than failing the job
// after it queued.
func (s JobSpec) prepare() (prepared, error) {
	var p prepared
	var err error
	if s.Serving != nil {
		return s.prepareServing()
	}
	if p.m, err = s.Model.Resolve(); err != nil {
		return p, err
	}
	if p.sys, err = s.System.Resolve(); err != nil {
		return p, err
	}
	features := execution.FeatureSet(s.Search.Features)
	if features == "" {
		features = execution.FeatureAll
	}
	if !features.Valid() {
		return p, fmt.Errorf("service: unknown feature set %q (want baseline|seqpar|all)", s.Search.Features)
	}
	if s.Search.MaxInterleave < 0 {
		return p, fmt.Errorf("service: negative max_interleave %d", s.Search.MaxInterleave)
	}
	if s.Search.TimeoutSeconds < 0 {
		return p, fmt.Errorf("service: negative timeout_seconds %g", s.Search.TimeoutSeconds)
	}
	topK := s.Search.TopK
	switch {
	case topK < 0:
		return p, fmt.Errorf("service: negative top_k %d", topK)
	case topK == 0:
		topK = 1
	}
	p.opts = search.Options{
		Enum: execution.EnumOptions{
			Features:      features,
			MaxInterleave: s.Search.MaxInterleave,
		},
		TopK:          topK,
		Pareto:        s.Search.Pareto,
		EstimateTotal: true,
		DisableStore:  s.Search.DisableStore,
	}
	p.timeout = time.Duration(s.Search.TimeoutSeconds * float64(time.Second))
	return p, nil
}

// prepareServing resolves a serving job, reusing the scenario-file resolver
// so the HTTP spec and configs/scenarios/serving-*.json accept the same
// shapes and reject the same mistakes.
func (s JobSpec) prepareServing() (prepared, error) {
	var p prepared
	if s.Search.Features != "" || s.Search.MaxInterleave != 0 || s.Search.TopK != 0 || s.Search.Pareto {
		return p, fmt.Errorf("service: a serving job takes no training search options (features/max_interleave/top_k/pareto)")
	}
	if s.Search.TimeoutSeconds < 0 {
		return p, fmt.Errorf("service: negative timeout_seconds %g", s.Search.TimeoutSeconds)
	}
	sc := config.ServingScenario{
		Model:         s.Model,
		System:        s.System,
		PrefillSystem: s.Serving.PrefillSystem,
		Workload:      s.Serving.Workload,
		Space:         s.Serving.Space,
		Assumptions:   s.Serving.Assumptions,
	}
	spec, err := sc.Resolve()
	if err != nil {
		return p, err
	}
	p.servingSpec = &spec
	p.servingOpts = serving.Options{
		EstimateTotal:    true,
		DisablePreScreen: s.Serving.DisablePreScreen,
		DisableStore:     s.Search.DisableStore,
	}
	p.timeout = time.Duration(s.Search.TimeoutSeconds * float64(time.Second))
	return p, nil
}
