package service

import (
	"context"
	"sync"
	"testing"
)

// TestBudgetPartitionNeverExceedsTotal is the acceptance proof for the
// worker budget: however the daemon is sized, the shares handed to
// concurrently running jobs sum to exactly the global budget — never past
// it — and every share can actually run (≥ 1 worker).
func TestBudgetPartitionNeverExceedsTotal(t *testing.T) {
	ctx := context.Background()
	for total := 1; total <= 33; total++ {
		for slots := 1; slots <= 9; slots++ {
			b := NewBudget(total, slots)
			wantSlots := slots
			if wantSlots > total {
				wantSlots = total
			}
			if b.Slots() != wantSlots {
				t.Fatalf("NewBudget(%d, %d).Slots() = %d, want %d", total, slots, b.Slots(), wantSlots)
			}
			sum := 0
			for i := 0; i < b.Slots(); i++ {
				w, release, err := b.Acquire(ctx)
				if err != nil {
					t.Fatalf("Acquire(%d, %d) slot %d: %v", total, slots, i, err)
				}
				defer release()
				if w < 1 {
					t.Fatalf("NewBudget(%d, %d): slot %d carries %d workers", total, slots, i, w)
				}
				sum += w
			}
			if sum != total {
				t.Fatalf("NewBudget(%d, %d): shares sum to %d, want exactly %d", total, slots, sum, total)
			}
			if b.Free() != 0 {
				t.Fatalf("NewBudget(%d, %d): %d slots free after acquiring all", total, slots, b.Free())
			}
		}
	}
}

// TestBudgetTwoConcurrentJobs pins the ISSUE's concrete scenario: two jobs
// on a -workers N daemon hold at most N workers in aggregate, for every N.
func TestBudgetTwoConcurrentJobs(t *testing.T) {
	ctx := context.Background()
	for n := 1; n <= 16; n++ {
		b := NewBudget(n, 2)
		w1, rel1, err := b.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		agg := w1
		if b.Free() > 0 {
			w2, rel2, err := b.Acquire(ctx)
			if err != nil {
				t.Fatal(err)
			}
			agg += w2
			rel2()
		}
		if agg > n {
			t.Fatalf("workers=%d: two concurrent jobs hold %d workers", n, agg)
		}
		rel1()
	}
}

func TestBudgetAcquireBlocksAndCancels(t *testing.T) {
	b := NewBudget(4, 1)
	_, release, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.Acquire(ctx); err == nil {
		t.Fatal("Acquire succeeded with no free slot and a cancelled ctx")
	}
	// Release is idempotent: double-release must not mint a second slot.
	release()
	release()
	if b.Free() != 1 {
		t.Fatalf("Free() = %d after double release, want 1", b.Free())
	}
}

func TestBudgetConcurrentAcquireRelease(t *testing.T) {
	b := NewBudget(8, 3)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, release, err := b.Acquire(context.Background())
			if err != nil || w < 1 {
				t.Errorf("Acquire: w=%d err=%v", w, err)
				return
			}
			release()
		}()
	}
	wg.Wait()
	if b.Free() != b.Slots() {
		t.Fatalf("Free() = %d after all releases, want %d", b.Free(), b.Slots())
	}
}
