package service

import (
	"context"
	"runtime"
	"sync"
)

// Budget partitions one global worker budget across concurrently running
// jobs. The daemon is handed -workers goroutines' worth of search capacity;
// no matter how many jobs run at once, their search.Options.Workers must
// never sum past that, or a loaded daemon oversubscribes the host exactly
// when it can least afford to.
//
// The partition is computed once, at construction: the budget is cut into
// slots disjoint shares — total/slots each, the remainder spread one extra
// to the first total%slots slots — and a job must hold a slot to run. Slots
// travel through a channel, so Acquire doubles as the running-job limit:
// when all slots are held, the scheduler parks until a job finishes.
// Disjointness is what makes the aggregate bound unconditional; there is no
// accounting to race on. Slot count is clamped to the budget so every slot
// carries at least one worker (a zero-worker share would fall through to
// GOMAXPROCS inside the search — the exact oversubscription this type
// exists to prevent).
type Budget struct {
	total  int
	shares chan int
}

// NewBudget cuts a budget of total workers (0 or less means GOMAXPROCS)
// into at most slots concurrent shares (clamped to [1, total]).
func NewBudget(total, slots int) *Budget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if slots < 1 {
		slots = 1
	}
	if slots > total {
		slots = total
	}
	b := &Budget{total: total, shares: make(chan int, slots)}
	base, extra := total/slots, total%slots
	for i := 0; i < slots; i++ {
		share := base
		if i < extra {
			share++
		}
		b.shares <- share
	}
	return b
}

// Acquire blocks until a slot is free (or ctx is cancelled) and returns the
// slot's worker share plus a release function. Release is idempotent and
// must be called exactly when the job's workers have stopped; until then the
// share stays subtracted from the budget.
func (b *Budget) Acquire(ctx context.Context) (workers int, release func(), err error) {
	select {
	case share := <-b.shares:
		var once sync.Once
		return share, func() {
			once.Do(func() { b.shares <- share })
		}, nil
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
}

// Total is the global worker budget.
func (b *Budget) Total() int { return b.total }

// Slots is the running-job limit the partition supports.
func (b *Budget) Slots() int { return cap(b.shares) }

// Free is the number of currently unheld slots.
func (b *Budget) Free() int { return len(b.shares) }
