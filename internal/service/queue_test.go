package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestQueueFIFOOrder(t *testing.T) {
	q := newQueue(8)
	for i := 0; i < 5; i++ {
		if err := q.Push(&Job{ID: fmt.Sprintf("job-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", q.Len())
	}
	for i := 0; i < 5; i++ {
		j, err := q.Pop(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("job-%d", i); j.ID != want {
			t.Fatalf("popped %s, want %s (FIFO violated)", j.ID, want)
		}
	}
}

func TestQueueBoundedRejection(t *testing.T) {
	q := newQueue(2)
	if err := q.Push(&Job{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(&Job{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(&Job{ID: "c"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push past capacity: err = %v, want ErrQueueFull", err)
	}
	// Popping frees capacity again.
	if _, err := q.Pop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(&Job{ID: "c"}); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestQueuePopHonorsContext(t *testing.T) {
	q := newQueue(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Pop(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Pop on empty queue: err = %v, want DeadlineExceeded", err)
	}
}

func TestQueueTryPop(t *testing.T) {
	q := newQueue(1)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned a job")
	}
	if err := q.Push(&Job{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	j, ok := q.TryPop()
	if !ok || j.ID != "a" {
		t.Fatalf("TryPop = (%v, %v), want job a", j, ok)
	}
}
