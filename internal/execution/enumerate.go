package execution

import (
	"fmt"

	"calculon/internal/model"
)

// FeatureSet names a family of allowed optimizations, mirroring the paper's
// study variants (Fig. 5): the original Megatron set, the sequence-parallel
// set, and the full Table 1 space.
type FeatureSet string

const (
	// FeatureBaseline is the original Megatron optimization set [29]:
	// microbatching, 1F1B, interleaving, full-or-no recompute, TP RS+AG.
	FeatureBaseline FeatureSet = "baseline"
	// FeatureSeqPar adds sequence parallelism with selective (attention)
	// recompute and TP-redo [20].
	FeatureSeqPar FeatureSet = "seqpar"
	// FeatureAll is every compatible technique from Table 1: optimizer
	// sharding, TP/DP communication overlap, fused layers, PP RS+AG, and —
	// when the system has a second memory tier — tensor offloading.
	FeatureAll FeatureSet = "all"
)

// Valid reports whether the set is one of the defined constants.
func (f FeatureSet) Valid() bool {
	switch f {
	case FeatureBaseline, FeatureSeqPar, FeatureAll:
		return true
	}
	return false
}

// EnumOptions bounds strategy enumeration.
type EnumOptions struct {
	// Procs is the exact number of processors every strategy must occupy.
	Procs int
	// Features selects which optimization toggles are explored.
	Features FeatureSet
	// HasMem2 permits the offload switches.
	HasMem2 bool
	// MaxTP caps the tensor-parallel degree (e.g. 32 in §4.1 where the
	// NVLink domain is stretched to the TP degree). Zero means no cap
	// beyond the model's head count.
	MaxTP int
	// MaxInterleave caps the interleaving factor explored. Zero means up to
	// the per-processor block count (divisor values only).
	MaxInterleave int
	// FixedTP/FixedPP/FixedDP pin a degree when nonzero (grid studies).
	FixedTP, FixedPP, FixedDP int
	// MicrobatchDivisorsOnly restricts m to divisors of the per-pipeline
	// batch; this is always true (non-divisors are infeasible) and the field
	// exists for documentation.
	MicrobatchDivisorsOnly bool
	// PinBeneficial fixes the toggles that are monotonically beneficial
	// under the performance model (1F1B, fused layers, DP overlap, ring TP
	// overlap, optimizer sharding) instead of enumerating both settings.
	// This shrinks large sweeps by ~50× without changing the optimum; the
	// non-monotone trade-offs (recompute, sequence parallelism, offload,
	// microbatch, interleaving) are still explored exhaustively.
	PinBeneficial bool
}

// divisors returns the sorted divisors of n.
func divisors(n int) []int {
	var small, large []int
	for i := 1; i*i <= n; i++ {
		if n%i == 0 {
			small = append(small, i)
			if j := n / i; j != i {
				large = append(large, j)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// Triples enumerates every (t,p,d) with t·p·d = procs that satisfies the
// model's structural constraints: t ≤ heads (and ≤ MaxTP when set),
// p ≤ blocks, d | batch. Degrees pinned in the options are respected.
func (o EnumOptions) Triples(m model.LLM) [][3]int {
	var out [][3]int
	maxTP := m.AttnHeads
	if o.MaxTP > 0 && o.MaxTP < maxTP {
		maxTP = o.MaxTP
	}
	for _, t := range divisors(o.Procs) {
		if t > maxTP || (o.FixedTP != 0 && t != o.FixedTP) {
			continue
		}
		rest := o.Procs / t
		for _, p := range divisors(rest) {
			if p > m.Blocks || (o.FixedPP != 0 && p != o.FixedPP) {
				continue
			}
			d := rest / p
			if d > m.Batch || m.Batch%d != 0 {
				continue
			}
			if o.FixedDP != 0 && d != o.FixedDP {
				continue
			}
			out = append(out, [3]int{t, p, d})
		}
	}
	return out
}

// Enumerate streams every strategy permitted by the options for the given
// model through yield; returning false from yield stops the enumeration.
// The count of generated strategies is returned.
func (o EnumOptions) Enumerate(m model.LLM, yield func(Strategy) bool) int {
	count := 0
	for _, tpd := range o.Triples(m) {
		n, more := o.EnumerateTriple(m, tpd, yield)
		count += n
		if !more {
			break
		}
	}
	return count
}

// EnumerateTriple streams every strategy of one (t,p,d) subtree through
// yield, in the same order Enumerate visits them. It returns the number of
// strategies generated and whether the subtree ran to completion (false when
// yield stopped it). The triple must come from Triples — the structural
// constraints are not re-checked here.
func (o EnumOptions) EnumerateTriple(m model.LLM, tpd [3]int, yield func(Strategy) bool) (int, bool) {
	count := 0
	emit := func(s Strategy) bool {
		count++
		return yield(s)
	}
	perPipe := m.Batch / tpd[2]
	base := Strategy{TP: tpd[0], PP: tpd[1], DP: tpd[2]}
	for _, mb := range divisors(perPipe) {
		s1 := base
		s1.Microbatch = mb
		if !o.forEachSchedule(m, s1, func(s2 Strategy) bool {
			return o.forEachToggle(s2, emit)
		}) {
			return count, false
		}
	}
	return count, true
}

// TripleLeafCount returns, in closed form, the number of strategies
// EnumerateTriple generates for the (t,p,d) subtree: the microbatch divisor
// count times the schedule variants times the toggle combinations. The
// lattice-pruned search uses it to keep the Evaluated/PreScreened counters
// and the ETA total exact without materializing pruned subtrees;
// TestLatticeCountsConsistent pins the equality against the enumerator.
func (o EnumOptions) TripleLeafCount(m model.LLM, tpd [3]int) int {
	mbs := len(divisors(m.Batch / tpd[2]))
	sched := 0
	if !o.PinBeneficial {
		sched++ // the plain GPipe-like schedule
	}
	if tpd[1] == 1 {
		sched++ // interleaving is meaningless without pipeline parallelism
	} else {
		bp := (m.Blocks + tpd[1] - 1) / tpd[1]
		for _, v := range divisors(bp) {
			if o.MaxInterleave > 0 && v > o.MaxInterleave {
				break
			}
			sched++
		}
	}
	return mbs * sched * o.togglesPerLeaf()
}

// togglesPerLeaf counts the switch combinations forEachToggle emits per
// (triple, microbatch, schedule) point; it mirrors that function's slices
// exactly and depends only on the options.
func (o EnumOptions) togglesPerLeaf() int {
	recomputes, comms := 2, 2
	tpOv, dpOv, shards, fused, offloads := 1, 1, 1, 1, 1
	switch o.Features {
	case FeatureBaseline:
	case FeatureSeqPar:
		recomputes, comms = 3, 4
	default: // FeatureAll
		recomputes, comms = 3, 7
		tpOv, dpOv, shards, fused = 3, 2, 2, 2
		if o.HasMem2 {
			offloads = 8
		}
	}
	if o.PinBeneficial {
		tpOv, dpOv, shards, fused = 1, 1, 1, 1
	}
	return recomputes * comms * tpOv * dpOv * shards * fused * offloads
}

// boundLeaves returns one representative strategy per distinct pre-screen
// verdict in the (t,p,d) subtree. PreScreen.Check reads only the parallelism
// degrees and the WeightOffload/OptimOffload/OptimSharding/DPOverlap
// switches (ActOffload reaches only the tier-presence check, which the
// offload projections cover), so projecting the toggle space onto those
// switches covers every leaf's verdict; the slices mirror forEachToggle.
func (o EnumOptions) boundLeaves(tpd [3]int) []Strategy {
	offs := []bool{false}
	shards := []bool{false}
	dpovs := []bool{false}
	switch o.Features {
	case FeatureBaseline, FeatureSeqPar:
	default: // FeatureAll
		shards, dpovs = []bool{false, true}, []bool{false, true}
		if o.PinBeneficial {
			shards, dpovs = shards[1:], dpovs[1:]
		}
		if o.HasMem2 {
			offs = []bool{false, true}
		}
	}
	out := make([]Strategy, 0, len(offs)*len(offs)*len(shards)*len(dpovs))
	for _, w := range offs {
		for _, oo := range offs {
			for _, sh := range shards {
				for _, dov := range dpovs {
					out = append(out, Strategy{
						TP: tpd[0], PP: tpd[1], DP: tpd[2],
						Microbatch: 1, Interleave: 1,
						Recompute: RecomputeNone, TPOverlap: TPOverlapNone,
						WeightOffload: w, OptimOffload: oo,
						OptimSharding: sh, DPOverlap: dov,
					})
				}
			}
		}
	}
	return out
}

// forEachSchedule enumerates pipeline schedule variants (1F1B on/off,
// interleave factors).
func (o EnumOptions) forEachSchedule(m model.LLM, s Strategy, yield func(Strategy) bool) bool {
	if !o.PinBeneficial {
		// Plain GPipe-like schedule (only sensible without interleaving).
		plain := s
		plain.OneFOneB = false
		plain.Interleave = 1
		if !yield(plain) {
			return false
		}
	}
	// 1F1B with every divisor interleaving of the per-proc block count.
	bp := s.BlocksPerProc(m)
	for _, v := range divisors(bp) {
		if o.MaxInterleave > 0 && v > o.MaxInterleave {
			break
		}
		if v > 1 && s.PP == 1 {
			break
		}
		ofb := s
		ofb.OneFOneB = true
		ofb.Interleave = v
		if !yield(ofb) {
			return false
		}
	}
	return true
}

// forEachToggle enumerates the optimization switches consistent with the
// feature set and the validation rules.
//
// The walk is a reflected mixed-radix Gray code over the toggle dimensions
// (recompute, comm combo, TP overlap, DP overlap, optimizer sharding, fused
// layers, offload combo): instead of restarting every inner dimension when
// an outer one advances, each dimension sweeps alternately up and down, so
// two successive strategies always differ in exactly one dimension. The
// offload dimension is itself a 3-bit Gray sequence, so successive offload
// combos flip a single switch. Delta evaluation (perf.Runner.RunDelta)
// exploits this adjacency: the fewer toggles change between neighbors, the
// more per-strategy terms carry over unrecomputed. Every combination is
// still emitted exactly once; only the order differs from a plain nested
// loop. The order is part of the deterministic tie-break sequence, so
// changing it is a strategy-space version bump (resultstore).
func (o EnumOptions) forEachToggle(s Strategy, yield func(Strategy) bool) bool {
	type commCombo struct {
		rsag, sp, redo, pprsag bool
	}
	var comms []commCombo
	recomputes := []RecomputeMode{RecomputeNone, RecomputeFull}
	tpOverlaps := []TPOverlapMode{TPOverlapNone}
	dpOverlaps := []bool{false}
	shards := []bool{false}
	fused := []bool{false}
	switch o.Features {
	case FeatureBaseline:
		comms = []commCombo{{}, {rsag: true}}
	case FeatureSeqPar:
		recomputes = []RecomputeMode{RecomputeNone, RecomputeAttn, RecomputeFull}
		comms = []commCombo{
			{}, {rsag: true},
			{rsag: true, sp: true}, {rsag: true, sp: true, redo: true},
		}
	default: // FeatureAll
		recomputes = []RecomputeMode{RecomputeNone, RecomputeAttn, RecomputeFull}
		comms = []commCombo{
			{}, {rsag: true}, {rsag: true, pprsag: true},
			{rsag: true, sp: true}, {rsag: true, sp: true, redo: true},
			{rsag: true, sp: true, pprsag: true}, {rsag: true, sp: true, redo: true, pprsag: true},
		}
		tpOverlaps = []TPOverlapMode{TPOverlapNone, TPOverlapPipe, TPOverlapRing}
		dpOverlaps = []bool{false, true}
		shards = []bool{false, true}
		fused = []bool{false, true}
	}
	if o.PinBeneficial {
		tpOverlaps = tpOverlaps[len(tpOverlaps)-1:]
		dpOverlaps = dpOverlaps[len(dpOverlaps)-1:]
		shards = shards[len(shards)-1:]
		fused = fused[len(fused)-1:]
	}
	offloads := [][3]bool{{false, false, false}}
	if o.HasMem2 && o.Features == FeatureAll {
		// 3-bit reflected Gray sequence over (weights, activations,
		// optimizer): one switch flips per step.
		offloads = [][3]bool{
			{false, false, false}, {false, false, true},
			{false, true, true}, {false, true, false},
			{true, true, false}, {true, true, true},
			{true, false, true}, {true, false, false},
		}
	}
	sizes := [7]int{
		len(recomputes), len(comms), len(tpOverlaps), len(dpOverlaps),
		len(shards), len(fused), len(offloads),
	}
	var idx [7]int
	dir := [7]int{1, 1, 1, 1, 1, 1, 1}
	for {
		cc := comms[idx[1]]
		off := offloads[idx[6]]
		v := s
		v.Recompute = recomputes[idx[0]]
		v.TPRSAG = cc.rsag
		v.SeqParallel = cc.sp
		v.TPRedoForSP = cc.redo
		v.PPRSAG = cc.pprsag
		v.TPOverlap = tpOverlaps[idx[2]]
		v.DPOverlap = dpOverlaps[idx[3]]
		v.OptimSharding = shards[idx[4]]
		v.FusedLayers = fused[idx[5]]
		v.WeightOffload = off[0]
		v.ActOffload = off[1]
		v.OptimOffload = off[2]
		if !yield(v) {
			return false
		}
		// Advance the deepest dimension that can still move in its current
		// direction, reflecting (reversing) every deeper one that cannot.
		// When no dimension can move, the space is exhausted.
		i := len(idx) - 1
		for i >= 0 {
			next := idx[i] + dir[i]
			if next >= 0 && next < sizes[i] {
				idx[i] = next
				break
			}
			dir[i] = -dir[i]
			i--
		}
		if i < 0 {
			return true
		}
	}
}

// SpaceSize counts the strategies Enumerate would generate without invoking
// a consumer, for reporting search-space sizes as in Fig. 6 and pre-counting
// ETA totals. It is closed-form — the per-triple leaf counts summed over the
// lattice — so it costs divisor arithmetic, not an enumeration pass;
// TestLatticeCountsConsistent pins it against the enumerator.
func (o EnumOptions) SpaceSize(m model.LLM) int {
	total := 0
	for _, tpd := range o.Triples(m) {
		total += o.TripleLeafCount(m, tpd)
	}
	return total
}

// Validate checks the options themselves.
func (o EnumOptions) Validate() error {
	if o.Procs <= 0 {
		return fmt.Errorf("execution: enum procs must be positive, got %d", o.Procs)
	}
	if o.Features != "" && !o.Features.Valid() {
		return fmt.Errorf("execution: bad feature set %q", o.Features)
	}
	return nil
}
