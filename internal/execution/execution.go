// Package execution defines the software side of a Calculon analysis: the
// execution strategy (§2.3 of the paper). A strategy picks the degrees of
// tensor, pipeline, and data parallelism, the microbatch size, and switches
// for every optimization surveyed in Table 1 — recompute, sequence
// parallelism, pipeline scheduling, communication-overlap modes, optimizer
// sharding, fused element-wise layers, and tensor offloading.
package execution

import (
	"fmt"

	"calculon/internal/model"
)

// RecomputeMode selects how much of the forward pass is re-executed during
// the backward pass to save activation memory (Table 1: full/attn/none).
type RecomputeMode string

const (
	// RecomputeNone stores every activation (fastest, most memory).
	RecomputeNone RecomputeMode = "none"
	// RecomputeAttn re-executes only the attention-matrix layers (QKᵀ,
	// softmax, dropout, AV) — "selective recomputation".
	RecomputeAttn RecomputeMode = "attn"
	// RecomputeFull stores only each block's input and re-runs the whole
	// block forward during backward.
	RecomputeFull RecomputeMode = "full"
)

// Valid reports whether the mode is one of the defined constants.
func (m RecomputeMode) Valid() bool {
	switch m {
	case RecomputeNone, RecomputeAttn, RecomputeFull:
		return true
	}
	return false
}

// TPOverlapMode selects how tensor-parallel communication is overlapped with
// computation (Table 1: none/pipe/ring [52]).
type TPOverlapMode string

const (
	// TPOverlapNone exposes all TP communication.
	TPOverlapNone TPOverlapMode = "none"
	// TPOverlapPipe pipelines the GEMM with the collective in coarse chunks,
	// hiding a moderate fraction.
	TPOverlapPipe TPOverlapMode = "pipe"
	// TPOverlapRing fuses the collective into the GEMM ring schedule, hiding
	// nearly all of it.
	TPOverlapRing TPOverlapMode = "ring"
)

// Valid reports whether the mode is one of the defined constants.
func (m TPOverlapMode) Valid() bool {
	switch m {
	case TPOverlapNone, TPOverlapPipe, TPOverlapRing:
		return true
	}
	return false
}

// HiddenFraction returns the fraction of TP communication time hidden behind
// compute for this mode.
func (m TPOverlapMode) HiddenFraction() float64 {
	switch m {
	case TPOverlapPipe:
		return 0.5
	case TPOverlapRing:
		return 0.9
	default:
		return 0
	}
}

// Strategy is the full execution configuration.
type Strategy struct {
	// TP, PP, DP are the tensor/pipeline/data parallelism degrees t, p, d.
	// Their product is the number of processors used.
	TP int `json:"tp"`
	PP int `json:"pp"`
	DP int `json:"dp"`
	// Microbatch is the per-pipeline microbatch size m (samples).
	Microbatch int `json:"microbatch"`
	// Interleave is the pipeline interleaving factor v (1 = plain schedule):
	// each processor owns v chunks of consecutive blocks (Fig. 2).
	Interleave int `json:"interleave"`
	// OneFOneB enables the memory-saving 1F1B schedule; required for
	// interleaving. When false the schedule is GPipe-like (all forward then
	// all backward), which holds activations for every in-flight microbatch.
	OneFOneB bool `json:"one_f_one_b"`

	Recompute   RecomputeMode `json:"recompute"`
	SeqParallel bool          `json:"seq_parallel"`
	// TPRSAG replaces each TP all-reduce with reduce-scatter + all-gather
	// so that pipeline point-to-point traffic can be sent sharded.
	TPRSAG bool `json:"tp_rs_ag"`
	// TPRedoForSP re-does the gather redundantly in backward to trade
	// network for memory when sequence parallelism is on ("TP redo for SP").
	TPRedoForSP bool          `json:"tp_redo_for_sp"`
	TPOverlap   TPOverlapMode `json:"tp_overlap"`
	DPOverlap   bool          `json:"dp_overlap"`
	// PPRSAG sends pipeline p2p tensors sharded across the TP group
	// (PP RS+AG, Table 1 [20]).
	PPRSAG bool `json:"pp_rs_ag"`
	// OptimSharding shards optimizer state across the DP group (ZeRO-1) and
	// turns the gradient all-reduce into reduce-scatter + all-gather.
	OptimSharding bool `json:"optim_sharding"`
	// FusedLayers fuses adjacent element-wise layers, removing their
	// intermediate memory round-trips and stored activations.
	FusedLayers bool `json:"fused_layers"`

	// Offload switches stash the corresponding tensors in second-level
	// memory, double-buffering per Fig. 8.
	WeightOffload bool `json:"weight_offload"`
	ActOffload    bool `json:"act_offload"`
	OptimOffload  bool `json:"optim_offload"`

	// Inference switches the model to a forward-only estimate: no backward
	// pass, no gradients, no optimizer state or step.
	Inference bool `json:"inference,omitempty"`
}

// Procs returns the number of processors the strategy occupies.
func (s Strategy) Procs() int { return s.TP * s.PP * s.DP }

// Normalize fills defaulted fields (zero Microbatch/Interleave become 1,
// empty modes become "none") and returns the result.
func (s Strategy) Normalize() Strategy {
	if s.Microbatch == 0 {
		s.Microbatch = 1
	}
	if s.Interleave == 0 {
		s.Interleave = 1
	}
	if s.Recompute == "" {
		s.Recompute = RecomputeNone
	}
	if s.TPOverlap == "" {
		s.TPOverlap = TPOverlapNone
	}
	return s
}

// Validate checks the strategy's internal and model-relative feasibility
// rules. System-relative checks (memory capacity, offload tier presence,
// processor count) live in the performance model, which has the system.
func (s Strategy) Validate(m model.LLM) error {
	if s.TP < 1 || s.PP < 1 || s.DP < 1 {
		return fmt.Errorf("execution: parallelism degrees must be ≥1, got (%d,%d,%d)", s.TP, s.PP, s.DP)
	}
	if s.TP > m.AttnHeads {
		return fmt.Errorf("execution: TP=%d exceeds attention heads %d", s.TP, m.AttnHeads)
	}
	if s.PP > m.Blocks {
		return fmt.Errorf("execution: PP=%d exceeds blocks %d", s.PP, m.Blocks)
	}
	if s.DP > m.Batch {
		return fmt.Errorf("execution: DP=%d exceeds batch %d", s.DP, m.Batch)
	}
	if m.Batch%s.DP != 0 {
		return fmt.Errorf("execution: DP=%d does not divide batch %d", s.DP, m.Batch)
	}
	perPipe := m.Batch / s.DP
	if s.Microbatch < 1 || s.Microbatch > perPipe {
		return fmt.Errorf("execution: microbatch %d outside 1..%d", s.Microbatch, perPipe)
	}
	if perPipe%s.Microbatch != 0 {
		return fmt.Errorf("execution: microbatch %d does not divide per-pipeline batch %d", s.Microbatch, perPipe)
	}
	if s.Interleave < 1 || s.Interleave > s.BlocksPerProc(m) {
		return fmt.Errorf("execution: interleave %d outside 1..%d", s.Interleave, s.BlocksPerProc(m))
	}
	if s.Interleave > 1 && !s.OneFOneB {
		return fmt.Errorf("execution: interleaving requires the 1F1B schedule")
	}
	if s.Interleave > 1 && s.PP == 1 {
		return fmt.Errorf("execution: interleaving is meaningless without pipeline parallelism")
	}
	if !s.Recompute.Valid() {
		return fmt.Errorf("execution: bad recompute mode %q", s.Recompute)
	}
	if !s.TPOverlap.Valid() {
		return fmt.Errorf("execution: bad TP overlap mode %q", s.TPOverlap)
	}
	if s.SeqParallel && !s.TPRSAG {
		return fmt.Errorf("execution: sequence parallelism requires TP RS+AG communication")
	}
	if s.TPRedoForSP && !s.SeqParallel {
		return fmt.Errorf("execution: TP redo requires sequence parallelism")
	}
	if s.PPRSAG && !s.TPRSAG {
		return fmt.Errorf("execution: PP RS+AG requires TP RS+AG sharded boundaries")
	}
	if s.Inference {
		if s.Recompute != RecomputeNone {
			return fmt.Errorf("execution: recompute is a training-only technique")
		}
		if s.OptimSharding || s.OptimOffload || s.DPOverlap {
			return fmt.Errorf("execution: optimizer/gradient techniques are training-only")
		}
		if s.WeightOffload || s.ActOffload {
			return fmt.Errorf("execution: training offload flags do not apply to inference (use the serving workload's KVOffload)")
		}
	}
	return nil
}

// BlocksPerProc returns the number of transformer blocks resident on the
// busiest processor: ceil(L/p). Uneven splits are allowed — they are what
// produces the paper's "efficiency cliffs" — and the busiest stage bounds
// the pipeline's throughput.
func (s Strategy) BlocksPerProc(m model.LLM) int {
	return (m.Blocks + s.PP - 1) / s.PP
}

// BlocksPerChunk returns the number of consecutive blocks in each interleave
// chunk on the busiest processor.
func (s Strategy) BlocksPerChunk(m model.LLM) int {
	bp := s.BlocksPerProc(m)
	return (bp + s.Interleave - 1) / s.Interleave
}

// Microbatches returns n, the number of microbatches per pipeline pass.
func (s Strategy) Microbatches(m model.LLM) int {
	return m.Batch / s.DP / s.Microbatch
}

func (s Strategy) String() string {
	return fmt.Sprintf("(t=%d,p=%d,d=%d,m=%d,v=%d,recomp=%s,sp=%v,redo=%v,ppRSAG=%v,fused=%v,ovl=%s/%v,shard=%v,off=%v%v%v)",
		s.TP, s.PP, s.DP, s.Microbatch, s.Interleave, s.Recompute, s.SeqParallel,
		s.TPRedoForSP, s.PPRSAG, s.FusedLayers, s.TPOverlap, s.DPOverlap, s.OptimSharding,
		b01(s.WeightOffload), b01(s.ActOffload), b01(s.OptimOffload))
}

func b01(b bool) int {
	if b {
		return 1
	}
	return 0
}
