package execution

import (
	"strings"
	"testing"
	"testing/quick"

	"calculon/internal/model"
)

func gpt3() model.LLM { return model.MustPreset("gpt3-175B") }

func validBase() Strategy {
	return Strategy{
		TP: 8, PP: 8, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: RecomputeFull, TPOverlap: TPOverlapNone,
	}
}

func TestValidateAcceptsMegatronConfig(t *testing.T) {
	if err := validBase().Validate(gpt3()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestValidateRules(t *testing.T) {
	m := gpt3() // heads=96, blocks=96, batch=64
	cases := []struct {
		name string
		mut  func(*Strategy)
		frag string
	}{
		{"zero tp", func(s *Strategy) { s.TP = 0 }, "≥1"},
		{"tp beyond heads", func(s *Strategy) { s.TP = 128 }, "attention heads"},
		{"pp beyond blocks", func(s *Strategy) { s.PP = 97 }, "blocks"},
		{"dp beyond batch", func(s *Strategy) { s.DP = 65 }, "batch"},
		{"dp not dividing batch", func(s *Strategy) { s.DP = 3 }, "divide"},
		{"microbatch zero", func(s *Strategy) { s.Microbatch = 0 }, "microbatch"},
		{"microbatch beyond per-pipe", func(s *Strategy) { s.Microbatch = 65 }, "microbatch"},
		{"microbatch non-divisor", func(s *Strategy) { s.Microbatch = 3; s.DP = 2 }, "divide"},
		{"interleave beyond blocks/p", func(s *Strategy) { s.Interleave = 13 }, "interleave"},
		{"interleave without 1f1b", func(s *Strategy) { s.Interleave = 2; s.OneFOneB = false }, "1F1B"},
		{"interleave without pp", func(s *Strategy) { s.PP = 1; s.TP = 8; s.DP = 8; s.Interleave = 2 }, "pipeline"},
		{"bad recompute", func(s *Strategy) { s.Recompute = "sometimes" }, "recompute"},
		{"bad overlap", func(s *Strategy) { s.TPOverlap = "maybe" }, "overlap"},
		{"seqpar without rsag", func(s *Strategy) { s.SeqParallel = true }, "RS+AG"},
		{"redo without seqpar", func(s *Strategy) { s.TPRedoForSP = true }, "redo"},
		{"pp rsag without tp rsag", func(s *Strategy) { s.PPRSAG = true }, "RS+AG"},
		{"inference with recompute", func(s *Strategy) { s.Inference = true }, "training-only"},
		{"inference with sharding", func(s *Strategy) {
			s.Inference = true
			s.Recompute = RecomputeNone
			s.OptimSharding = true
		}, "training-only"},
	}
	for _, c := range cases {
		s := validBase()
		c.mut(&s)
		err := s.Validate(m)
		if err == nil {
			t.Errorf("%s: should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.frag)
		}
	}
}

func TestBlocksPerProcCeil(t *testing.T) {
	m := model.MustPreset("turing-530B") // 105 blocks
	s := Strategy{TP: 1, PP: 10, DP: 1}
	if got := s.BlocksPerProc(m); got != 11 {
		t.Errorf("BlocksPerProc = %d, want ceil(105/10)=11", got)
	}
	s.PP = 35
	if got := s.BlocksPerProc(m); got != 3 {
		t.Errorf("BlocksPerProc = %d, want 3", got)
	}
}

func TestBlocksPerChunk(t *testing.T) {
	m := gpt3() // 96 blocks
	s := Strategy{TP: 1, PP: 8, DP: 1, Interleave: 3}
	if got := s.BlocksPerChunk(m); got != 4 {
		t.Errorf("BlocksPerChunk = %d, want 96/8/3=4", got)
	}
}

func TestMicrobatches(t *testing.T) {
	m := gpt3().WithBatch(512)
	s := Strategy{TP: 8, PP: 8, DP: 4, Microbatch: 2}
	if got := s.Microbatches(m); got != 64 {
		t.Errorf("Microbatches = %d, want 512/4/2=64", got)
	}
}

func TestNormalize(t *testing.T) {
	s := Strategy{TP: 1, PP: 1, DP: 1}.Normalize()
	if s.Microbatch != 1 || s.Interleave != 1 || s.Recompute != RecomputeNone || s.TPOverlap != TPOverlapNone {
		t.Fatalf("Normalize() = %+v", s)
	}
}

func TestDivisors(t *testing.T) {
	got := divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors(12) = %v, want %v", got, want)
		}
	}
}

func TestDivisorsProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%4096) + 1
		ds := divisors(n)
		prev := 0
		for _, d := range ds {
			if n%d != 0 || d <= prev {
				return false
			}
			prev = d
		}
		// first divisor is 1 and last is n
		return ds[0] == 1 && ds[len(ds)-1] == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriplesProductAndConstraints(t *testing.T) {
	m := gpt3().WithBatch(4096)
	o := EnumOptions{Procs: 4096, Features: FeatureAll}
	triples := o.Triples(m)
	if len(triples) == 0 {
		t.Fatal("no triples found")
	}
	for _, tr := range triples {
		tp, pp, dp := tr[0], tr[1], tr[2]
		if tp*pp*dp != 4096 {
			t.Fatalf("triple %v does not multiply to 4096", tr)
		}
		if tp > m.AttnHeads || pp > m.Blocks || dp > m.Batch || m.Batch%dp != 0 {
			t.Fatalf("triple %v violates constraints", tr)
		}
	}
}

func TestTriplesRespectCapsAndPins(t *testing.T) {
	m := gpt3().WithBatch(4096)
	o := EnumOptions{Procs: 4096, MaxTP: 8, FixedPP: 16}
	for _, tr := range o.Triples(m) {
		if tr[0] > 8 {
			t.Fatalf("MaxTP violated: %v", tr)
		}
		if tr[1] != 16 {
			t.Fatalf("FixedPP violated: %v", tr)
		}
	}
	o2 := EnumOptions{Procs: 64, FixedTP: 8, FixedDP: 2}
	for _, tr := range o2.Triples(m) {
		if tr[0] != 8 || tr[2] != 2 {
			t.Fatalf("pin violated: %v", tr)
		}
	}
}

// TestEnumerateAllValid is the core enumeration invariant: every generated
// strategy passes Validate for its model.
func TestEnumerateAllValid(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(64) // 40 heads, 40 blocks
	for _, fs := range []FeatureSet{FeatureBaseline, FeatureSeqPar, FeatureAll} {
		o := EnumOptions{Procs: 64, Features: fs, HasMem2: true, MaxInterleave: 4}
		n := 0
		o.Enumerate(m, func(s Strategy) bool {
			n++
			if err := s.Validate(m); err != nil {
				t.Fatalf("%s: generated invalid strategy %v: %v", fs, s, err)
			}
			return true
		})
		if n == 0 {
			t.Fatalf("%s: enumeration produced nothing", fs)
		}
	}
}

func TestEnumerateFeatureSetOrdering(t *testing.T) {
	// The feature sets are nested: baseline ⊂ seqpar ⊂ all.
	m := model.MustPreset("gpt3-13B").WithBatch(16)
	sizes := map[FeatureSet]int{}
	for _, fs := range []FeatureSet{FeatureBaseline, FeatureSeqPar, FeatureAll} {
		o := EnumOptions{Procs: 16, Features: fs, MaxInterleave: 2}
		sizes[fs] = o.SpaceSize(m)
	}
	if !(sizes[FeatureBaseline] < sizes[FeatureSeqPar] && sizes[FeatureSeqPar] < sizes[FeatureAll]) {
		t.Fatalf("feature-set sizes not nested: %v", sizes)
	}
}

func TestEnumerateOffloadRequiresMem2(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(16)
	o := EnumOptions{Procs: 16, Features: FeatureAll, HasMem2: false, MaxInterleave: 1}
	o.Enumerate(m, func(s Strategy) bool {
		if s.WeightOffload || s.ActOffload || s.OptimOffload {
			t.Fatalf("offload strategy generated without mem2: %v", s)
		}
		return true
	})
}

func TestEnumerateEarlyStop(t *testing.T) {
	m := model.MustPreset("gpt3-13B").WithBatch(16)
	o := EnumOptions{Procs: 16, Features: FeatureAll, MaxInterleave: 1}
	n := o.Enumerate(m, func(s Strategy) bool { return false })
	if n != 1 {
		t.Fatalf("early stop should yield exactly 1, got %d", n)
	}
}

func TestEnumOptionsValidate(t *testing.T) {
	if err := (EnumOptions{Procs: 0}).Validate(); err == nil {
		t.Error("zero procs should fail")
	}
	if err := (EnumOptions{Procs: 8, Features: "bogus"}).Validate(); err == nil {
		t.Error("bogus feature set should fail")
	}
	if err := (EnumOptions{Procs: 8, Features: FeatureAll}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestModeHelpers(t *testing.T) {
	if TPOverlapNone.HiddenFraction() != 0 {
		t.Error("none must hide nothing")
	}
	if !(TPOverlapPipe.HiddenFraction() > 0 && TPOverlapRing.HiddenFraction() > TPOverlapPipe.HiddenFraction()) {
		t.Error("ring must hide more than pipe, pipe more than none")
	}
	if RecomputeMode("x").Valid() || TPOverlapMode("y").Valid() || FeatureSet("z").Valid() {
		t.Error("bogus modes must be invalid")
	}
}

func TestStringContainsDegrees(t *testing.T) {
	s := validBase().String()
	for _, frag := range []string{"t=8", "p=8", "d=1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestInferenceRejectsTrainingOffload(t *testing.T) {
	s := validBase()
	s.Recompute = RecomputeNone
	s.Inference = true
	s.WeightOffload = true
	if err := s.Validate(gpt3()); err == nil {
		t.Error("weight offload must be rejected for inference")
	}
	s.WeightOffload = false
	s.ActOffload = true
	if err := s.Validate(gpt3()); err == nil {
		t.Error("activation offload must be rejected for inference")
	}
}
