package execution

import (
	"fmt"
	"math/bits"
	"reflect"
	"testing"
)

// toggleDim identifies which of the seven toggle dimensions two strategies
// differ in, treating the comm combo (TPRSAG/SeqParallel/TPRedoForSP/PPRSAG)
// and the offload triple (Weight/Act/Optim) each as one dimension, exactly
// as forEachToggle enumerates them.
func toggleDims(a, b Strategy) []string {
	var dims []string
	if a.Recompute != b.Recompute {
		dims = append(dims, "recompute")
	}
	if a.TPRSAG != b.TPRSAG || a.SeqParallel != b.SeqParallel ||
		a.TPRedoForSP != b.TPRedoForSP || a.PPRSAG != b.PPRSAG {
		dims = append(dims, "comm")
	}
	if a.TPOverlap != b.TPOverlap {
		dims = append(dims, "tpOverlap")
	}
	if a.DPOverlap != b.DPOverlap {
		dims = append(dims, "dpOverlap")
	}
	if a.OptimSharding != b.OptimSharding {
		dims = append(dims, "optimSharding")
	}
	if a.FusedLayers != b.FusedLayers {
		dims = append(dims, "fusedLayers")
	}
	if a.WeightOffload != b.WeightOffload || a.ActOffload != b.ActOffload ||
		a.OptimOffload != b.OptimOffload {
		dims = append(dims, "offload")
	}
	return dims
}

// TestForEachToggleGrayAdjacent proves the Gray property delta evaluation
// relies on: successive toggle emissions differ in exactly one dimension,
// and for the offload dimension in exactly one offload switch.
func TestForEachToggleGrayAdjacent(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts EnumOptions
	}{
		{"baseline", EnumOptions{Features: FeatureBaseline}},
		{"seqpar", EnumOptions{Features: FeatureSeqPar}},
		{"all", EnumOptions{Features: FeatureAll}},
		{"all+mem2", EnumOptions{Features: FeatureAll, HasMem2: true}},
		{"all+mem2+pin", EnumOptions{Features: FeatureAll, HasMem2: true, PinBeneficial: true}},
		{"seqpar+mem2", EnumOptions{Features: FeatureSeqPar, HasMem2: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var seq []Strategy
			tc.opts.forEachToggle(Strategy{TP: 2, PP: 2, DP: 2, Microbatch: 1, Interleave: 1}, func(s Strategy) bool {
				seq = append(seq, s)
				return true
			})
			if len(seq) != tc.opts.togglesPerLeaf() {
				t.Fatalf("emitted %d toggles, togglesPerLeaf says %d", len(seq), tc.opts.togglesPerLeaf())
			}
			for i := 1; i < len(seq); i++ {
				dims := toggleDims(seq[i-1], seq[i])
				if len(dims) != 1 {
					t.Fatalf("step %d changes %d dimensions %v:\nprev %+v\ncurr %+v",
						i, len(dims), dims, seq[i-1], seq[i])
				}
				if dims[0] == "offload" {
					flips := 0
					if seq[i-1].WeightOffload != seq[i].WeightOffload {
						flips++
					}
					if seq[i-1].ActOffload != seq[i].ActOffload {
						flips++
					}
					if seq[i-1].OptimOffload != seq[i].OptimOffload {
						flips++
					}
					if flips != 1 {
						t.Fatalf("step %d flips %d offload switches", i, flips)
					}
				}
			}
		})
	}
}

// TestForEachToggleExactlyOnce proves the Gray walk emits the same set of
// toggle combinations as before — every combination exactly once.
func TestForEachToggleExactlyOnce(t *testing.T) {
	for _, opts := range []EnumOptions{
		{Features: FeatureBaseline},
		{Features: FeatureSeqPar},
		{Features: FeatureAll},
		{Features: FeatureAll, HasMem2: true},
		{Features: FeatureAll, HasMem2: true, PinBeneficial: true},
	} {
		seen := map[Strategy]int{}
		opts.forEachToggle(Strategy{TP: 4, PP: 1, DP: 1, Microbatch: 2, Interleave: 1}, func(s Strategy) bool {
			seen[s]++
			return true
		})
		if len(seen) != opts.togglesPerLeaf() {
			t.Fatalf("opts %+v: %d distinct toggles, want %d", opts, len(seen), opts.togglesPerLeaf())
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("opts %+v: strategy emitted %d times: %+v", opts, n, s)
			}
		}
	}
}

// TestForEachToggleEarlyStop checks the walk honors a false yield.
func TestForEachToggleEarlyStop(t *testing.T) {
	opts := EnumOptions{Features: FeatureAll, HasMem2: true}
	n := 0
	done := opts.forEachToggle(Strategy{TP: 1, PP: 1, DP: 1, Microbatch: 1, Interleave: 1}, func(Strategy) bool {
		n++
		return n < 5
	})
	if done || n != 5 {
		t.Fatalf("done=%v n=%d, want early stop after 5", done, n)
	}
}

// TestDiffMaskCoversAllFields pins the FieldMask bit count to the Strategy
// field count so a new field cannot be added without a mask bit, and checks
// each single-field perturbation sets exactly its own bit.
func TestDiffMaskCoversAllFields(t *testing.T) {
	rt := reflect.TypeOf(Strategy{})
	if rt.NumField() != numStrategyFields {
		t.Fatalf("Strategy has %d fields, FieldMask covers %d — add the bit and DiffMask case",
			rt.NumField(), numStrategyFields)
	}
	base := Strategy{
		TP: 2, PP: 2, DP: 2, Microbatch: 2, Interleave: 1,
		Recompute: RecomputeNone, TPOverlap: TPOverlapNone,
	}
	if m := DiffMask(base, base); m != 0 {
		t.Fatalf("DiffMask(x,x) = %b, want 0", m)
	}
	perturb := []struct {
		mut  func(*Strategy)
		want FieldMask
	}{
		{func(s *Strategy) { s.TP = 4 }, FieldTP},
		{func(s *Strategy) { s.PP = 4 }, FieldPP},
		{func(s *Strategy) { s.DP = 4 }, FieldDP},
		{func(s *Strategy) { s.Microbatch = 4 }, FieldMicrobatch},
		{func(s *Strategy) { s.Interleave = 2 }, FieldInterleave},
		{func(s *Strategy) { s.OneFOneB = true }, FieldOneFOneB},
		{func(s *Strategy) { s.Recompute = RecomputeFull }, FieldRecompute},
		{func(s *Strategy) { s.SeqParallel = true }, FieldSeqParallel},
		{func(s *Strategy) { s.TPRSAG = true }, FieldTPRSAG},
		{func(s *Strategy) { s.TPRedoForSP = true }, FieldTPRedoForSP},
		{func(s *Strategy) { s.TPOverlap = TPOverlapRing }, FieldTPOverlap},
		{func(s *Strategy) { s.DPOverlap = true }, FieldDPOverlap},
		{func(s *Strategy) { s.PPRSAG = true }, FieldPPRSAG},
		{func(s *Strategy) { s.OptimSharding = true }, FieldOptimSharding},
		{func(s *Strategy) { s.FusedLayers = true }, FieldFusedLayers},
		{func(s *Strategy) { s.WeightOffload = true }, FieldWeightOffload},
		{func(s *Strategy) { s.ActOffload = true }, FieldActOffload},
		{func(s *Strategy) { s.OptimOffload = true }, FieldOptimOffload},
		{func(s *Strategy) { s.Inference = true }, FieldInference},
	}
	if len(perturb) != numStrategyFields {
		t.Fatalf("perturbation table has %d entries, want %d", len(perturb), numStrategyFields)
	}
	for i, p := range perturb {
		v := base
		p.mut(&v)
		got := DiffMask(base, v)
		if got != p.want {
			t.Errorf("perturbation %d: DiffMask = %b, want %b", i, got, p.want)
		}
		if bits.OnesCount32(uint32(got)) != 1 {
			t.Errorf("perturbation %d: %d bits set, want 1", i, bits.OnesCount32(uint32(got)))
		}
		if got := DiffMask(v, base); got != p.want {
			t.Errorf("perturbation %d: DiffMask not symmetric", i)
		}
	}
}

func ExampleDiffMask() {
	a := Strategy{TP: 4, PP: 2, DP: 8, Microbatch: 1, Interleave: 1}
	b := a
	b.Recompute = RecomputeFull
	b.ActOffload = true
	m := DiffMask(a, b)
	fmt.Println(m.Has(FieldRecompute), m.Has(FieldActOffload), m.Has(FieldTP))
	// Output: true true false
}
