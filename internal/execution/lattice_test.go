package execution

import (
	"math/rand"
	"testing"

	"calculon/internal/model"
	"calculon/internal/units"
)

// TestLatticeCountsConsistent is the counting obligation of the lattice
// search: for randomized enumeration options, the closed-form SpaceSize, the
// sum of per-triple TripleLeafCount values, and the number of strategies
// Enumerate actually generates must all agree. The lattice-pruned search
// relies on this equality to keep Evaluated/PreScreened counters and ETA
// totals exact while skipping whole subtrees.
func TestLatticeCountsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []string{"gpt3-13B", "megatron-22B", "gpt2-1.5B", "llama-65B"}
	features := []FeatureSet{FeatureBaseline, FeatureSeqPar, FeatureAll}
	procChoices := []int{8, 12, 16, 32, 48}
	batchChoices := []int{8, 16, 24, 32}

	const draws = 40
	for i := 0; i < draws; i++ {
		m := model.MustPreset(models[rng.Intn(len(models))]).
			WithBatch(batchChoices[rng.Intn(len(batchChoices))])
		o := EnumOptions{
			Procs:         procChoices[rng.Intn(len(procChoices))],
			Features:      features[rng.Intn(len(features))],
			HasMem2:       rng.Intn(2) == 0,
			MaxTP:         []int{0, 4, 8}[rng.Intn(3)],
			MaxInterleave: []int{0, 1, 2, 3}[rng.Intn(4)],
			PinBeneficial: rng.Intn(2) == 0,
		}
		// Occasionally pin a degree, as the grid studies do.
		if rng.Intn(4) == 0 {
			o.FixedTP = []int{1, 2, 4}[rng.Intn(3)]
		}

		triples := o.Triples(m)
		bySum := 0
		for _, tpd := range triples {
			bySum += o.TripleLeafCount(m, tpd)
		}
		byEnum := o.Enumerate(m, func(Strategy) bool { return true })
		if closed := o.SpaceSize(m); closed != byEnum || bySum != byEnum {
			t.Errorf("draw %d (%+v): SpaceSize=%d, Σ TripleLeafCount=%d, Enumerate=%d",
				i, o, closed, bySum, byEnum)
		}

		// Per-triple: the closed-form leaf count must match the enumerator's
		// count for that subtree alone.
		for _, tpd := range triples {
			n, _ := o.EnumerateTriple(m, tpd, func(Strategy) bool { return true })
			if want := o.TripleLeafCount(m, tpd); n != want {
				t.Errorf("draw %d triple %v: TripleLeafCount=%d, EnumerateTriple=%d",
					i, tpd, want, n)
			}
		}
	}
}

// TestCheckTripleDecidesSubtree is the soundness obligation of the subtree
// pre-screen: CheckTriple rejects a (t,p,d) subtree exactly when Check would
// reject every one of its leaves, and accepts exactly when some leaf passes.
// Randomized over options and over limit regimes that make the memory bound
// bite at different parallelism degrees.
func TestCheckTripleDecidesSubtree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	models := []string{"gpt3-13B", "megatron-22B", "chinchilla-70B"}
	features := []FeatureSet{FeatureBaseline, FeatureSeqPar, FeatureAll}
	procChoices := []int{8, 16, 32}

	const draws = 30
	prunedTotal, keptTotal := 0, 0
	for i := 0; i < draws; i++ {
		m := model.MustPreset(models[rng.Intn(len(models))]).WithBatch(16)
		o := EnumOptions{
			Procs:         procChoices[rng.Intn(len(procChoices))],
			Features:      features[rng.Intn(len(features))],
			HasMem2:       rng.Intn(2) == 0,
			MaxTP:         8,
			MaxInterleave: 2,
			PinBeneficial: rng.Intn(2) == 0,
		}
		lim := Limits{
			Procs: o.Procs,
			// 5..80 GiB of first-tier capacity: small enough that many triples
			// fail the weight/optimizer lower bound, large enough that some pass.
			Mem1: units.Bytes(5+rng.Intn(76)) * units.GiB,
		}
		if o.HasMem2 {
			lim.Mem2 = units.Bytes(64+rng.Intn(448)) * units.GiB
		}
		p := NewPreScreen(m, lim)

		for _, tpd := range o.Triples(m) {
			verdict := p.CheckTriple(o, tpd)
			anyPass := false
			o.EnumerateTriple(m, tpd, func(s Strategy) bool {
				if p.Check(s) == nil {
					anyPass = true
					return false
				}
				return true
			})
			if verdict != nil && anyPass {
				t.Errorf("draw %d triple %v: CheckTriple rejected (%v) but a leaf passes Check",
					i, tpd, verdict)
			}
			if verdict == nil && !anyPass {
				t.Errorf("draw %d triple %v: CheckTriple accepted but every leaf fails Check",
					i, tpd)
			}
			if verdict != nil {
				prunedTotal++
			} else {
				keptTotal++
			}
		}
	}
	// The limit regimes above must actually exercise both branches, or the
	// equivalence assertions are vacuous.
	if prunedTotal == 0 || keptTotal == 0 {
		t.Errorf("degenerate draw set: pruned=%d kept=%d triples — want both branches exercised",
			prunedTotal, keptTotal)
	}
}
