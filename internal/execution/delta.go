package execution

// FieldMask is a bitset over Strategy fields. Delta evaluation
// (perf.Runner.RunDelta) diffs two strategies into a FieldMask and uses it
// to decide which groups of performance terms the change can perturb; a
// term group whose inputs are all outside the mask carries over from the
// previous evaluation unrecomputed. The bits must stay in one-to-one
// correspondence with the Strategy fields — adding a Strategy field without
// a bit here silently breaks delta reuse, so TestDiffMaskCoversAllFields
// pins the field count.
type FieldMask uint32

const (
	FieldTP FieldMask = 1 << iota
	FieldPP
	FieldDP
	FieldMicrobatch
	FieldInterleave
	FieldOneFOneB
	FieldRecompute
	FieldSeqParallel
	FieldTPRSAG
	FieldTPRedoForSP
	FieldTPOverlap
	FieldDPOverlap
	FieldPPRSAG
	FieldOptimSharding
	FieldFusedLayers
	FieldWeightOffload
	FieldActOffload
	FieldOptimOffload
	FieldInference

	// numStrategyFields is the number of Strategy fields covered by the
	// mask; the coverage test compares it against reflection.
	numStrategyFields = iota
)

// Has reports whether any bit of q is set in m.
func (m FieldMask) Has(q FieldMask) bool { return m&q != 0 }

// DiffMask returns the set of fields on which a and b differ.
func DiffMask(a, b Strategy) FieldMask {
	var m FieldMask
	if a.TP != b.TP {
		m |= FieldTP
	}
	if a.PP != b.PP {
		m |= FieldPP
	}
	if a.DP != b.DP {
		m |= FieldDP
	}
	if a.Microbatch != b.Microbatch {
		m |= FieldMicrobatch
	}
	if a.Interleave != b.Interleave {
		m |= FieldInterleave
	}
	if a.OneFOneB != b.OneFOneB {
		m |= FieldOneFOneB
	}
	if a.Recompute != b.Recompute {
		m |= FieldRecompute
	}
	if a.SeqParallel != b.SeqParallel {
		m |= FieldSeqParallel
	}
	if a.TPRSAG != b.TPRSAG {
		m |= FieldTPRSAG
	}
	if a.TPRedoForSP != b.TPRedoForSP {
		m |= FieldTPRedoForSP
	}
	if a.TPOverlap != b.TPOverlap {
		m |= FieldTPOverlap
	}
	if a.DPOverlap != b.DPOverlap {
		m |= FieldDPOverlap
	}
	if a.PPRSAG != b.PPRSAG {
		m |= FieldPPRSAG
	}
	if a.OptimSharding != b.OptimSharding {
		m |= FieldOptimSharding
	}
	if a.FusedLayers != b.FusedLayers {
		m |= FieldFusedLayers
	}
	if a.WeightOffload != b.WeightOffload {
		m |= FieldWeightOffload
	}
	if a.ActOffload != b.ActOffload {
		m |= FieldActOffload
	}
	if a.OptimOffload != b.OptimOffload {
		m |= FieldOptimOffload
	}
	if a.Inference != b.Inference {
		m |= FieldInference
	}
	return m
}
