package execution

import (
	"fmt"

	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/units"
)

// Limits carries the system-side bounds the analytic pre-screen checks
// against. It is a plain-number view of the system so the execution package
// stays on the software side of the model.
type Limits struct {
	// Procs is the number of processors available.
	Procs int
	// Mem1 is the first-level (HBM) per-processor capacity.
	Mem1 units.Bytes
	// Mem2 is the second-level (offload) capacity; zero when the system has
	// no second tier.
	Mem2 units.Bytes
}

// PreScreen is the phase-1 filter of the two-phase strategy evaluation: a
// set of closed-form feasibility bounds cheap enough to run during
// enumeration, rejecting obviously infeasible strategies before any
// layer-level evaluation is built. It is conservative by construction —
// every bound it checks is a provable lower bound on what the full
// performance model would charge — so it never rejects a strategy the full
// evaluation would accept, and search results are bit-identical with the
// pre-screen on or off (only faster). The equivalence property tests pin
// this.
type PreScreen struct {
	m   model.LLM
	lim Limits
}

// NewPreScreen builds the filter for one fixed (model, limits) pair.
func NewPreScreen(m model.LLM, lim Limits) *PreScreen {
	return &PreScreen{m: m, lim: lim}
}

// Check reports why the strategy certainly cannot run within the limits, or
// nil when it might be feasible and deserves a full evaluation. The strategy
// must already be normalized and structurally valid (Validate). Check is
// pure and safe for concurrent use.
//
// The memory bound replicates the weight, weight-gradient, and optimizer
// rows of the full model's per-tier accounting exactly — those rows need no
// layer timing, only the closed-form block weight bytes — and the remaining
// rows (activations, gradient working space) are non-negative, so the sum
// here is a true lower bound on each tier's total.
//
// The bound must also round identically to the full model's rows on every
// architecture — a pre-screen that fuses a multiply-add the evaluation does
// not could reject at the boundary — so the arithmetic below is kept
// FMA-free (see docs/LINT.md).
//
//calculonvet:ordered
func (p *PreScreen) Check(st Strategy) error {
	if st.Procs() > p.lim.Procs {
		return &screenError{kind: screenProcs, need: int64(st.Procs()), have: int64(p.lim.Procs)}
	}
	if (st.WeightOffload || st.ActOffload || st.OptimOffload) && p.lim.Mem2 <= 0 {
		return &screenError{kind: screenNoMem2}
	}

	bp := st.BlocksPerProc(p.m)
	blockW := layers.BlockWeightBytes(p.m, st.TP)
	weights := blockW.Times(float64(bp))

	var mem1, mem2 units.Bytes
	w1 := weights
	if st.WeightOffload {
		w1 = minB(weights, 3*blockW)
		mem2 += weights - w1
	}
	mem1 += w1

	if !st.Inference {
		grads := weights
		if st.OptimSharding && st.DPOverlap {
			grads = minB(weights, units.Bytes(3*blockW)+weights.DivN(float64(st.DP)))
		}
		g1 := grads
		if st.WeightOffload {
			g1 = minB(grads, 3*blockW)
			mem2 += grads - g1
		}
		mem1 += g1

		optim := 6 * weights
		if st.OptimSharding {
			optim = optim.DivN(float64(st.DP))
		}
		o1 := optim
		if st.OptimOffload {
			o1 = minB(optim, 3*optim.DivN(float64(bp)))
			mem2 += optim - o1
		}
		mem1 += o1
	}

	if mem1 > p.lim.Mem1 {
		return &screenError{kind: screenMem1, need: int64(mem1), have: int64(p.lim.Mem1)}
	}
	if mem2 > p.lim.Mem2 {
		return &screenError{kind: screenMem2, need: int64(mem2), have: int64(p.lim.Mem2)}
	}
	return nil
}

type screenKind uint8

const (
	screenProcs screenKind = iota
	screenNoMem2
	screenMem1
	screenMem2
)

// screenError defers message formatting to Error(): the search path rejects
// millions of strategies and discards every message, so Check must not pay
// fmt (and units.Bytes' log10-based rendering) on the hot path. The operands
// are captured as raw numbers; formatting only happens when someone actually
// reads the error.
type screenError struct {
	kind       screenKind
	need, have int64
}

func (e *screenError) Error() string {
	switch e.kind {
	case screenProcs:
		return fmt.Sprintf("strategy needs %d procs, system has %d", e.need, e.have)
	case screenNoMem2:
		return "offloading requires a second memory tier"
	case screenMem1:
		return fmt.Sprintf("mem1 needs at least %v of %v for weights+gradients+optimizer",
			units.Bytes(e.need), units.Bytes(e.have))
	default:
		return fmt.Sprintf("mem2 needs at least %v of %v for offloaded weights+gradients+optimizer",
			units.Bytes(e.need), units.Bytes(e.have))
	}
}

// CheckTriple reports why every leaf of the (t,p,d) subtree certainly fails
// the pre-screen, or nil when at least one toggle combination passes the
// bound and the subtree must be enumerated. Check's verdict depends only on
// the parallelism degrees and four switches (see EnumOptions.boundLeaves),
// so trying one representative per projection class decides the whole
// subtree exactly: a non-nil return means Check would reject every leaf —
// the lattice search may drop the subtree and count its leaves as
// pre-screened without enumerating them, bit-identically to the leaf-by-leaf
// path. The returned error is the first projection's rejection.
func (p *PreScreen) CheckTriple(o EnumOptions, tpd [3]int) error {
	var firstErr error
	for _, st := range o.boundLeaves(tpd) {
		err := p.Check(st)
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func minB(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}
