package serving

import (
	"fmt"

	"calculon/internal/execution"
	"calculon/internal/layers"
	"calculon/internal/model"
	"calculon/internal/units"
)

// engineConfig is one replica-engine point of the enumeration: the
// parallelism degrees, the in-flight batch, and the KV placement. Replica
// counts and the disaggregation split are composed on top in closed form
// (stage 2), so they are not part of the parallel evaluation unit.
type engineConfig struct {
	tp, pp, batch int
	kvOffload     bool
}

// enumerate lists the engine space in the deterministic order every search
// of this spec uses: tp over the divisors of the attention heads, pp over
// the divisors of the blocks, batch in powers of two up to the cap, KV
// placement last. The index in the returned slice is the engine's sequence
// number; deployment tie-breaks derive from it, so the order is part of the
// byte-identical-output contract.
func enumerate(m model.LLM, sp Space) []engineConfig {
	var cfgs []engineConfig
	for _, tp := range divisors(m.AttnHeads) {
		if sp.MaxTP > 0 && tp > sp.MaxTP {
			break
		}
		if tp > sp.Procs {
			break
		}
		for _, pp := range divisors(m.Blocks) {
			if sp.MaxPP > 0 && pp > sp.MaxPP {
				break
			}
			if tp*pp > sp.Procs {
				break
			}
			for _, b := range batchSizes(sp.MaxBatch) {
				cfgs = append(cfgs, engineConfig{tp: tp, pp: pp, batch: b})
				if sp.KVOffload {
					cfgs = append(cfgs, engineConfig{tp: tp, pp: pp, batch: b, kvOffload: true})
				}
			}
		}
	}
	return cfgs
}

// divisors returns the positive divisors of n in ascending order.
func divisors(n int) []int {
	var ds []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
		}
	}
	return ds
}

// batchSizes returns 1, 2, 4, … up to max, including max itself when it is
// not a power of two.
func batchSizes(max int) []int {
	var bs []int
	for b := 1; b <= max; b *= 2 {
		bs = append(bs, b)
	}
	if last := bs[len(bs)-1]; last != max {
		bs = append(bs, max)
	}
	return bs
}

// strategyFor is the serving execution strategy of one replica engine: a
// single data-parallel engine (replication is modeled above the engine),
// sharded-boundary TP collectives like the CLI's serving defaults.
func strategyFor(tp, pp int) execution.Strategy {
	return execution.Strategy{
		TP: tp, PP: pp, DP: 1,
		Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeNone,
		TPRSAG:    true,
		Inference: true,
	}
}

// preScreen is the serving counterpart of execution.PreScreen: closed-form
// per-processor capacity bounds that reject an engine configuration before
// any pricing. Every bound is a provable lower bound on what
// inference.Estimate charges for the steady-state (mean) workload — the
// working-set term it omits is non-negative — so the screen never rejects an
// engine the full evaluation would accept, and search results are identical
// with it on or off (only PreScreened and speed change). The randomized
// scratch-vs-prescreen equivalence test pins this.
type preScreen struct {
	m       model.LLM
	ctx     int // mean prompt + mean generation length
	batchKV units.Bytes
	mem1    units.Bytes
	mem2    units.Bytes
	hasMem2 bool
}

func newPreScreen(spec *Spec, ctx int) *preScreen {
	return &preScreen{
		m:       spec.Model,
		ctx:     ctx,
		mem1:    spec.System.Mem1.Capacity,
		mem2:    spec.System.Mem2.Capacity,
		hasMem2: spec.System.Mem2.Present(),
	}
}

// check reports why the engine certainly cannot hold its weights and
// steady-state KV cache, or nil when it might be feasible and deserves
// pricing.
//
// The bound must round identically to the full model's accounting on every
// architecture — a screen that fuses a multiply-add the evaluation does not
// could reject at the boundary — so the arithmetic is kept FMA-free and in
// the evaluation's operation order (see docs/LINT.md).
//
//calculonvet:ordered
func (p *preScreen) check(cfg engineConfig) error {
	bp := (p.m.Blocks + cfg.pp - 1) / cfg.pp
	blockW := layers.BlockWeightBytes(p.m, cfg.tp)
	weights := blockW.Times(float64(bp))
	// Identical expression (and rounding) to inference.Estimate's kvPerBlock.
	kvPerBlock := units.Bytes(2*p.ctx*p.m.Hidden*2) / units.Bytes(cfg.tp) * units.Bytes(cfg.batch)
	if cfg.kvOffload {
		if !p.hasMem2 {
			return &screenError{kind: screenNoMem2}
		}
		kvAll := kvPerBlock.Times(float64(bp))
		if kvAll > p.mem2 {
			return &screenError{kind: screenMem2, need: int64(kvAll), have: int64(p.mem2)}
		}
		buf := 3 * kvPerBlock
		need := weights + buf
		if need > p.mem1 {
			return &screenError{kind: screenMem1, need: int64(need), have: int64(p.mem1)}
		}
		return nil
	}
	kv := kvPerBlock.Times(float64(bp))
	need := kv + weights
	if need > p.mem1 {
		return &screenError{kind: screenMem1, need: int64(need), have: int64(p.mem1)}
	}
	return nil
}

type screenKind uint8

const (
	screenNoMem2 screenKind = iota
	screenMem1
	screenMem2
)

// screenError defers message formatting to Error(): the screen rejects many
// engines and discards every message, so check must not pay fmt on the hot
// path (the same deferred-formatting discipline as execution's screenError).
type screenError struct {
	kind       screenKind
	need, have int64
}

func (e *screenError) Error() string {
	switch e.kind {
	case screenNoMem2:
		return "KV offload requires a second memory tier"
	case screenMem1:
		return fmt.Sprintf("mem1 needs at least %v of %v for weights+KV cache",
			units.Bytes(e.need), units.Bytes(e.have))
	default:
		return fmt.Sprintf("mem2 needs at least %v of %v for the offloaded KV cache",
			units.Bytes(e.need), units.Bytes(e.have))
	}
}
