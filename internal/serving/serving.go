// Package serving is the inference-side co-design search: what
// internal/search does for training strategies, this package does for
// serving deployments. The paper frames Calculon as a co-design tool for
// "training and inference of LLMs" (§1); internal/inference prices a single
// serving point, and this package layers the fleet-level questions on top —
// the questions Kundu et al. (arXiv 2407.14645) extend this analytical-model
// style to:
//
//   - continuous batching — a steady-state model of an engine that keeps a
//     fixed number of sequences in flight, admitting a new request whenever
//     one finishes, with the admitted requests' chunked prefill work
//     interfering with decode step time;
//   - prefill/decode disaggregation — prefill and decode run on
//     separately-sized pools (possibly different systems), with the prompt's
//     KV cache shipped from the prefill pool to the decode pool over the
//     scale-out network, priced by internal/comm;
//   - SLO-constrained search — enumerate (tp, pp, batch, KV offload,
//     replica counts, disaggregation split) under a cluster processor
//     budget, keep the deployments meeting the TTFT/TPOT objectives, and
//     return the Pareto frontier of tokens/s/user vs cluster tokens/s vs
//     $/Mtoken (internal/tco);
//   - right-sizing — sweep the processor budget to find the smallest
//     cluster that meets a target, reusing the deterministic enumeration
//     discipline so results are reproducible across worker counts.
package serving

import (
	"fmt"
	"math"
	"time"

	"calculon/internal/model"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/tco"
	"calculon/internal/units"
)

// Bucket is one class of requests in the arrival mix: a prompt length, a
// generation length, and the fraction of traffic it represents.
type Bucket struct {
	// PromptLen is the prompt length in tokens.
	PromptLen int `json:"prompt_len"`
	// GenLen is the number of generated tokens per request.
	GenLen int `json:"gen_len"`
	// Weight is the bucket's share of traffic; weights are normalized over
	// the mix, so they need not sum to one.
	Weight float64 `json:"weight"`
}

// SLO bounds per-request latency: the serving search only keeps deployments
// meeting both objectives.
type SLO struct {
	// TTFT is the worst-bucket time-to-first-token bound.
	TTFT units.Seconds `json:"ttft_seconds"`
	// TPOT is the steady-state time-per-output-token bound.
	TPOT units.Seconds `json:"tpot_seconds"`
}

// Workload is the serving request mix plus its latency objectives.
type Workload struct {
	Mix []Bucket `json:"mix"`
	SLO SLO      `json:"slo"`
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if len(w.Mix) == 0 {
		return fmt.Errorf("serving: workload needs at least one mix bucket")
	}
	for i, b := range w.Mix {
		switch {
		case b.PromptLen < 1:
			return fmt.Errorf("serving: bucket %d: prompt length must be ≥1, got %d", i, b.PromptLen)
		case b.GenLen < 1:
			return fmt.Errorf("serving: bucket %d: generation length must be ≥1, got %d", i, b.GenLen)
		case b.Weight <= 0:
			return fmt.Errorf("serving: bucket %d: weight must be positive, got %g", i, b.Weight)
		}
	}
	if w.SLO.TTFT <= 0 || w.SLO.TPOT <= 0 {
		return fmt.Errorf("serving: SLO bounds must be positive, got TTFT %v TPOT %v", w.SLO.TTFT, w.SLO.TPOT)
	}
	return nil
}

// MeanPromptLen returns the traffic-weighted mean prompt length, rounded up
// to a whole token. The steady-state engine is priced at the mean workload.
func (w Workload) MeanPromptLen() int {
	return weightedCeil(w.Mix, func(b Bucket) int { return b.PromptLen })
}

// MeanGenLen returns the traffic-weighted mean generation length, rounded up
// to a whole token.
func (w Workload) MeanGenLen() int {
	return weightedCeil(w.Mix, func(b Bucket) int { return b.GenLen })
}

// weightedCeil folds the traffic mix in slice order; the explicit
// conversion keeps the weighted term FMA-free so the mean workload is the
// same on every architecture.
//
//calculonvet:ordered
func weightedCeil(mix []Bucket, f func(Bucket) int) int {
	var sum, wsum float64
	for _, b := range mix {
		sum += float64(float64(f(b)) * b.Weight)
		wsum += b.Weight
	}
	if wsum <= 0 {
		return 0
	}
	n := int(math.Ceil(sum / wsum))
	if n < 1 {
		n = 1
	}
	return n
}

// Space bounds the deployment enumeration.
type Space struct {
	// Procs is the cluster processor budget every deployment must fit in
	// (all pools combined).
	Procs int `json:"procs"`
	// MaxBatch caps the in-flight batch per replica; batch sizes are
	// enumerated in powers of two up to the cap (plus the cap itself).
	// 0 defaults to 32.
	MaxBatch int `json:"max_batch,omitempty"`
	// MaxTP / MaxPP cap the per-replica parallelism degrees; 0 means
	// bounded only by the model (divisors of heads / blocks) and budget.
	MaxTP int `json:"max_tp,omitempty"`
	MaxPP int `json:"max_pp,omitempty"`
	// MaxReplicas caps the replica count of any one pool; 0 means bounded
	// only by the budget.
	MaxReplicas int `json:"max_replicas,omitempty"`
	// KVOffload also enumerates engines that stash the KV cache in the
	// second memory tier.
	KVOffload bool `json:"kv_offload,omitempty"`
	// Disaggregate also enumerates prefill/decode disaggregated pool
	// splits.
	Disaggregate bool `json:"disaggregate,omitempty"`
}

// Normalize fills defaulted fields.
func (s Space) Normalize() Space {
	if s.MaxBatch == 0 {
		s.MaxBatch = 32
	}
	return s
}

// Validate checks the space bounds.
func (s Space) Validate() error {
	switch {
	case s.Procs < 1:
		return fmt.Errorf("serving: space needs a positive processor budget, got %d", s.Procs)
	case s.MaxBatch < 1:
		return fmt.Errorf("serving: max batch must be ≥1, got %d", s.MaxBatch)
	case s.MaxTP < 0 || s.MaxPP < 0 || s.MaxReplicas < 0:
		return fmt.Errorf("serving: bounds must be non-negative")
	}
	return nil
}

// Spec is one serving search problem: a model, the system(s) to deploy on,
// the workload, the space bounds, and the cost assumptions.
type Spec struct {
	Model  model.LLM
	System system.System
	// PrefillSystem, when non-nil, is the system the disaggregated prefill
	// pool runs on; nil means the prefill pool uses System too.
	PrefillSystem *system.System
	Workload      Workload
	Space         Space
	// Assumptions price the deployments; the zero value is replaced by
	// tco.DefaultAssumptions.
	Assumptions tco.Assumptions
}

// Normalize fills defaulted fields and returns the result.
func (s Spec) Normalize() Spec {
	s.Space = s.Space.Normalize()
	if s.Assumptions == (tco.Assumptions{}) {
		s.Assumptions = tco.DefaultAssumptions()
	}
	return s
}

// Validate checks the spec. The spec must be normalized first.
func (s Spec) Validate() error {
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if err := s.System.Validate(); err != nil {
		return err
	}
	if s.PrefillSystem != nil {
		if err := s.PrefillSystem.Validate(); err != nil {
			return fmt.Errorf("serving: prefill system: %w", err)
		}
	}
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if err := s.Space.Validate(); err != nil {
		return err
	}
	return s.Assumptions.Validate()
}

// Options are the scheduling and diagnostic knobs of a serving search. Like
// search.Options, none of them may change the result — byte-identical output
// across worker counts is the package's contract, pinned by randomized
// equivalence tests.
type Options struct {
	// Workers bounds evaluation concurrency; <=0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives live counter updates.
	Progress *search.Progress
	// EstimateTotal adds the engine-space size to Progress up front (ETA).
	EstimateTotal bool
	// OnProgress, when non-nil, is called periodically with snapshots.
	OnProgress       func(search.ProgressSnapshot)
	ProgressInterval time.Duration
	// DisablePreScreen turns off the closed-form capacity pre-screen — the
	// escape hatch for the soundness equivalence tests. Results are
	// identical either way; only PreScreened and speed change.
	DisablePreScreen bool
	// Cache, when non-nil, serves whole searches from a persistent store
	// and records finished ones (see internal/resultstore).
	Cache Cache
	// DisableStore bypasses Cache without unwiring it.
	DisableStore bool
}

// Cache is a store of finished serving-search verdicts, the serving
// counterpart of search.Cache. Implementations derive the search identity
// from the result-affecting inputs only (spec and the Disable* switches —
// never Workers or callbacks) and must be safe for concurrent use.
type Cache interface {
	// Lookup returns the stored result of this exact search, if any.
	Lookup(spec Spec, opts Options) (Result, bool)
	// Store records a finished search's result; implementations may drop
	// writes.
	Store(spec Spec, opts Options, res Result)
}

// Deployment is one point of the serving design space: an engine
// configuration replicated into a cluster, with its latency, throughput,
// and cost.
type Deployment struct {
	// Seq is the deployment's index in the deterministic enumeration order
	// — the tie-break key, so equal-objective points resolve identically
	// regardless of worker count.
	Seq int `json:"seq"`
	// TP, PP, Batch, KVOffload identify the replica engine.
	TP        int  `json:"tp"`
	PP        int  `json:"pp"`
	Batch     int  `json:"batch"`
	KVOffload bool `json:"kv_offload,omitempty"`
	// Disaggregated marks a split prefill/decode deployment; Replicas then
	// counts decode replicas and PrefillReplicas the prefill pool.
	Disaggregated   bool `json:"disaggregated,omitempty"`
	Replicas        int  `json:"replicas"`
	PrefillReplicas int  `json:"prefill_replicas,omitempty"`
	// Procs is the total processor count across all pools.
	Procs int `json:"procs"`
	// TTFT is the worst-bucket time to first token; TPOT the steady-state
	// time per output token.
	TTFT units.Seconds `json:"ttft_seconds"`
	TPOT units.Seconds `json:"tpot_seconds"`
	// KVTransferTime is the per-request prefill→decode KV shipment time
	// (disaggregated deployments only).
	KVTransferTime units.Seconds `json:"kv_transfer_seconds,omitempty"`
	// UserTokensPerSec is the per-user generation rate (1/TPOT);
	// ClusterTokensPerSec the aggregate generation throughput.
	UserTokensPerSec    float64 `json:"user_tokens_per_sec"`
	ClusterTokensPerSec float64 `json:"cluster_tokens_per_sec"`
	// CostPerMToken is dollars per million generated tokens.
	CostPerMToken float64 `json:"cost_per_mtoken"`
	// DecodeBandwidthBound reports the engine's decode regime.
	DecodeBandwidthBound bool `json:"decode_bandwidth_bound"`
}

// Result is a finished serving search.
type Result struct {
	// Evaluated counts engine configurations examined (including
	// pre-screened ones); PreScreened the subset rejected by the
	// closed-form capacity bound without pricing; Feasible the composed
	// deployments that met both SLOs.
	Evaluated   int `json:"evaluated"`
	Feasible    int `json:"feasible"`
	PreScreened int `json:"pre_screened"`
	// Frontier is the Pareto-optimal set over (tokens/s/user ↑, cluster
	// tokens/s ↑, $/Mtoken ↓), sorted by cost ascending with deterministic
	// tie-breaks.
	Frontier []Deployment `json:"frontier"`
	// Best is the cheapest frontier point (ties broken toward higher
	// per-user rate, then lower Seq); nil when nothing met the SLOs.
	Best *Deployment `json:"best,omitempty"`
}
