package serving

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"calculon/internal/comm"
	"calculon/internal/search"
	"calculon/internal/tco"
	"calculon/internal/units"
)

// engineChunk is the number of engine configurations a worker claims at a
// time: small enough to keep workers busy near the end of the space, large
// enough that an engine's handful of estimates amortizes the channel hop.
const engineChunk = 16

// frontierCompactAt bounds the candidate buffer between Pareto compactions.
const frontierCompactAt = 4096

// Search runs the SLO-constrained serving co-design search and returns the
// Pareto frontier of deployments meeting the workload's latency objectives.
//
// The search is deterministic by construction, in two stages. Stage 1
// prices every engine configuration (tp, pp, batch, KV placement) in
// parallel under the worker budget, writing profiles into a dense array
// indexed by the enumeration sequence — worker count and scheduling cannot
// influence a single byte of what stage 2 sees. Stage 2 is serial closed
// form: it composes replica counts and disaggregation splits on top of the
// profiles, filters on the SLOs, prices $/Mtoken, and compacts the
// three-objective Pareto frontier with sequence-number tie-breaks. The
// randomized equivalence test pins byte-identical output across -workers 1
// and -workers N.
func Search(ctx context.Context, spec Spec, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}

	prog := opts.Progress
	if prog == nil && opts.OnProgress != nil {
		prog = &search.Progress{}
	}

	// The store is consulted before anything is evaluated, mirroring
	// search.Execution: a hit returns the stored verdict whole and leaves
	// only StoreHits on the live counters.
	useStore := opts.Cache != nil && !opts.DisableStore
	if useStore {
		if res, ok := opts.Cache.Lookup(spec, opts); ok {
			if prog != nil {
				prog.MarkStart()
				prog.AddCounts(search.Counts{StoreHits: 1})
			}
			if opts.OnProgress != nil {
				opts.OnProgress(prog.Snapshot())
			}
			return res, nil
		}
	}

	cfgs := enumerate(spec.Model, spec.Space)
	if prog != nil {
		prog.MarkStart()
		if opts.EstimateTotal {
			prog.AddTotal(int64(len(cfgs)))
		}
	}
	if opts.OnProgress != nil {
		stop := startTicker(prog, opts.OnProgress, opts.ProgressInterval)
		defer func() {
			stop()
			opts.OnProgress(prog.Snapshot())
		}()
	}

	pbar := spec.Workload.MeanPromptLen()
	gbar := spec.Workload.MeanGenLen()
	profiles, err := evalAll(ctx, &spec, opts, prog, cfgs, pbar, gbar)
	if err != nil {
		return Result{}, err
	}
	out := Result{Evaluated: len(cfgs)}
	for i := range profiles {
		if profiles[i].prescreened {
			out.PreScreened++
		}
	}
	if ctx.Err() != nil {
		// A cancelled stage 1 leaves an unpredictable prefix of the
		// profiles; composing a frontier from it would silently lie.
		return out, ctx.Err()
	}

	out.Frontier, out.Feasible = compose(&spec, cfgs, profiles, pbar, gbar)
	if len(out.Frontier) > 0 {
		out.Best = &out.Frontier[0]
	}
	if prog != nil {
		prog.AddCounts(search.Counts{Feasible: int64(out.Feasible)})
	}
	if useStore && ctx.Err() == nil {
		opts.Cache.Store(spec, opts, out)
	}
	return out, ctx.Err()
}

// evalAll is stage 1: the parallel engine-profile evaluation. Workers pull
// contiguous index spans and write into the dense profiles array; after
// cancellation they keep draining so the producer's sends always complete.
func evalAll(ctx context.Context, spec *Spec, opts Options, prog *search.Progress, cfgs []engineConfig, pbar, gbar int) ([]engineProfile, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var screen *preScreen
	if !opts.DisablePreScreen {
		screen = newPreScreen(spec, pbar+gbar)
	}
	profiles := make([]engineProfile, len(cfgs))
	type span struct{ lo, hi int }
	spans := make(chan span, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range spans {
				if ctx.Err() != nil {
					continue
				}
				var delta search.Counts
				for i := s.lo; i < s.hi; i++ {
					delta.Evaluated++
					if screen != nil {
						if err := screen.check(cfgs[i]); err != nil {
							profiles[i].prescreened = true
							delta.PreScreened++
							continue
						}
					}
					profiles[i] = evalEngine(spec, cfgs[i], pbar, gbar)
				}
				if prog != nil {
					prog.AddCounts(delta)
				}
			}
		}()
	}
produce:
	for lo := 0; lo < len(cfgs); lo += engineChunk {
		hi := lo + engineChunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		select {
		case <-ctx.Done():
			break produce
		case spans <- span{lo, hi}:
		}
	}
	close(spans)
	wg.Wait()
	// Surface the lowest-sequence spec-level failure deterministically.
	for i := range profiles {
		if profiles[i].err != nil {
			return nil, profiles[i].err
		}
	}
	return profiles, nil
}

// compose is stage 2: serial closed-form composition of deployments from
// the engine profiles. For every feasible engine it enumerates colocated
// replica counts and (when enabled) disaggregated decode/prefill pool
// splits, keeps the SLO-feasible ones, and streams them through the Pareto
// compactor. Being serial over the deterministic profile order, its output
// is independent of stage 1's scheduling by construction.
func compose(spec *Spec, cfgs []engineConfig, profiles []engineProfile, pbar, gbar int) ([]Deployment, int) {
	// The unit price is validated by Spec.Validate, so ProcHour cannot fail.
	hourly, _ := tco.ProcHour(spec.Assumptions)
	slo := spec.Workload.SLO

	// One prompt's full-model KV cache crosses the scale-out network from
	// the prefill pool to a decode replica (disaggregated mode).
	kvShip := units.Bytes(2 * pbar * spec.Model.Hidden * 2).Times(float64(spec.Model.Blocks))
	so := spec.System.ScaleOut()
	kvT := comm.Time(&so, comm.P2P, 2, kvShip)

	var fr frontier
	feasible := 0
	seq := 0
	for i := range profiles {
		p := &profiles[i]
		if !p.ok {
			continue
		}
		cfg := cfgs[i]
		engineProcs := cfg.tp * cfg.pp
		maxR := spec.Space.Procs / engineProcs
		if spec.Space.MaxReplicas > 0 && maxR > spec.Space.MaxReplicas {
			maxR = spec.Space.MaxReplicas
		}

		// Colocated continuous batching: the engine retires cfg.batch
		// sequences every ḡ steps and owes their prefill work in return;
		// chunked across the window, each decode step (on each stage)
		// carries 1/(ḡ·PP) of a full-batch prefill.
		tpot := p.est.StepTime + p.est.PrefillTime.DivN(float64(gbar))
		ttft := maxSec(p.prefill1) + tpot
		perStage := units.Seconds(float64(cfg.batch) / p.est.TokensPerSec)
		interf := p.est.PrefillTime.DivN(float64(gbar * cfg.pp))
		perReplica := (perStage + interf).Rate(float64(cfg.batch))
		for r := 1; r <= maxR; r++ {
			seq++
			if tpot > slo.TPOT || ttft > slo.TTFT {
				continue
			}
			feasible++
			procs := r * engineProcs
			cluster := float64(r) * perReplica
			fr.push(Deployment{
				Seq: seq, TP: cfg.tp, PP: cfg.pp, Batch: cfg.batch, KVOffload: cfg.kvOffload,
				Replicas: r, Procs: procs,
				TTFT: ttft, TPOT: tpot,
				UserTokensPerSec:     tpot.Rate(1),
				ClusterTokensPerSec:  cluster,
				CostPerMToken:        costPerMToken(procs, cluster, hourly),
				DecodeBandwidthBound: p.est.DecodeBandwidthBound,
			})
		}

		if !spec.Space.Disaggregate {
			continue
		}
		// Disaggregated pools: decode replicas run pure decode (no prefill
		// interference), a separately-sized prefill pool keeps up with the
		// retirement rate, and each admitted request pays the KV shipment
		// on its TTFT path.
		tpotD := p.est.StepTime
		tputD := p.est.TokensPerSec
		ttftD := maxSec(p.prefillP1) + kvT + tpotD
		// Each decode replica retires tputD/ḡ requests per second; a
		// prefill replica completes one mean prompt per prefillPMean.
		reqRate := tputD / float64(gbar)
		for rd := 1; rd <= maxR; rd++ {
			rp := int(math.Ceil(p.prefillPMean.AtRate(float64(rd) * reqRate)))
			if rp < 1 {
				rp = 1
			}
			if spec.Space.MaxReplicas > 0 && rp > spec.Space.MaxReplicas {
				break
			}
			procs := rd*engineProcs + rp*engineProcs
			if procs > spec.Space.Procs {
				break
			}
			seq++
			if tpotD > slo.TPOT || ttftD > slo.TTFT {
				continue
			}
			feasible++
			cluster := float64(rd) * tputD
			fr.push(Deployment{
				Seq: seq, TP: cfg.tp, PP: cfg.pp, Batch: cfg.batch, KVOffload: cfg.kvOffload,
				Disaggregated: true, Replicas: rd, PrefillReplicas: rp, Procs: procs,
				TTFT: ttftD, TPOT: tpotD, KVTransferTime: kvT,
				UserTokensPerSec:     tpotD.Rate(1),
				ClusterTokensPerSec:  cluster,
				CostPerMToken:        costPerMToken(procs, cluster, hourly),
				DecodeBandwidthBound: p.est.DecodeBandwidthBound,
			})
		}
	}
	fr.compact()
	return fr.pts, feasible
}

// costPerMToken is tco.CostPerMToken with the hourly unit price hoisted out
// of the composition loop.
func costPerMToken(procs int, tokensPerSec, hourly float64) float64 {
	return float64(procs) * hourly / (tokensPerSec * 3_600) * 1e6
}

func maxSec(xs []units.Seconds) units.Seconds {
	var m units.Seconds
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// frontier accumulates candidate deployments and keeps only the Pareto-
// optimal set over (UserTokensPerSec ↑, ClusterTokensPerSec ↑,
// CostPerMToken ↓). Compaction is order-independent: the surviving set of a
// candidate stream is the same however the stream is buffered, and
// objective-equal duplicates keep only the lowest sequence number — both
// necessary for the byte-identical-output contract.
type frontier struct {
	pts []Deployment
}

func (f *frontier) push(d Deployment) {
	f.pts = append(f.pts, d)
	if len(f.pts) >= frontierCompactAt {
		f.compact()
	}
}

// compact sorts by (cost asc, user rate desc, cluster rate desc, seq asc)
// and drops every point weakly dominated by an earlier survivor; a point
// equal on all three objectives counts as dominated, so each objective
// triple keeps exactly one canonical (lowest-seq) representative.
func (f *frontier) compact() {
	sort.Slice(f.pts, func(i, j int) bool {
		a, b := &f.pts[i], &f.pts[j]
		if a.CostPerMToken != b.CostPerMToken {
			return a.CostPerMToken < b.CostPerMToken
		}
		if a.UserTokensPerSec != b.UserTokensPerSec {
			return a.UserTokensPerSec > b.UserTokensPerSec
		}
		if a.ClusterTokensPerSec != b.ClusterTokensPerSec {
			return a.ClusterTokensPerSec > b.ClusterTokensPerSec
		}
		return a.Seq < b.Seq
	})
	kept := f.pts[:0]
	for _, d := range f.pts {
		dominated := false
		for k := range kept {
			if dominates(&kept[k], &d) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, d)
		}
	}
	f.pts = kept
}

// dominates reports whether a is at least as good as b on every objective
// (equality on all three counts, deduplicating the frontier).
func dominates(a, b *Deployment) bool {
	return a.CostPerMToken <= b.CostPerMToken &&
		a.UserTokensPerSec >= b.UserTokensPerSec &&
		a.ClusterTokensPerSec >= b.ClusterTokensPerSec
}

// SizeResult is one point of the right-sizing sweep.
type SizeResult struct {
	// Procs is the cluster processor budget of this point.
	Procs int `json:"procs"`
	// Result is the full serving search at that budget.
	Result Result `json:"result"`
}

// Sweep is the serving right-sizing sweep: one Search per processor budget,
// sharing the worker budget the way search.SystemSize does — min(sizes,
// budget) sweeps in flight, each with its proportional worker share, so the
// aggregate never exceeds the budget. Each point is itself deterministic,
// so the sweep is too.
func Sweep(ctx context.Context, spec Spec, sizes []int, opts Options) ([]SizeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.OnProgress != nil {
		if opts.Progress == nil {
			opts.Progress = &search.Progress{}
		}
		opts.Progress.MarkStart()
		stop := startTicker(opts.Progress, opts.OnProgress, opts.ProgressInterval)
		defer func() {
			stop()
			opts.OnProgress(opts.Progress.Snapshot())
		}()
	}
	budget := opts.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	concurrent := len(sizes)
	if concurrent > budget {
		concurrent = budget
	}
	if concurrent < 1 {
		concurrent = 1
	}
	perSize := budget / concurrent
	if perSize < 1 {
		perSize = 1
	}
	out := make([]SizeResult, len(sizes))
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, concurrent)
	for i, n := range sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			o := opts
			o.Workers = perSize
			// The ticker belongs to the sweep's caller, not each size.
			o.OnProgress = nil
			sp := spec
			sp.Space.Procs = n
			res, err := Search(ctx, sp, o)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			out[i] = SizeResult{Procs: n, Result: res}
		}(i, n)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, ctx.Err()
}

// startTicker runs cb about every interval until the returned stop function
// is called; stop blocks until the ticker goroutine has exited.
func startTicker(p *search.Progress, cb func(search.ProgressSnapshot), interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cb(p.Snapshot())
			case <-quit:
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}
