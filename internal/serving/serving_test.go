package serving

import (
	"context"
	"testing"

	"calculon/internal/inference"
	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// chatMix is a small two-bucket workload with generous SLOs: short
// interactive turns dominating, a long-document tail.
func chatMix() Workload {
	return Workload{
		Mix: []Bucket{
			{PromptLen: 512, GenLen: 128, Weight: 3},
			{PromptLen: 2048, GenLen: 256, Weight: 1},
		},
		SLO: SLO{TTFT: 30, TPOT: 1},
	}
}

func basicSpec() Spec {
	return Spec{
		Model:    model.MustPreset("gpt3-13B"),
		System:   system.A100(16),
		Workload: chatMix(),
		Space:    Space{Procs: 16, MaxBatch: 16},
	}
}

func TestServingSearchBasic(t *testing.T) {
	spec := basicSpec()
	res, err := Search(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Fatal("no engines evaluated")
	}
	if res.Feasible == 0 || len(res.Frontier) == 0 {
		t.Fatalf("expected feasible deployments under generous SLOs, got %d feasible, %d frontier",
			res.Feasible, len(res.Frontier))
	}
	if res.Best == nil || *res.Best != res.Frontier[0] {
		t.Fatal("Best must be the first frontier point")
	}
	slo := spec.Workload.SLO
	for i, d := range res.Frontier {
		if d.TTFT > slo.TTFT || d.TPOT > slo.TPOT {
			t.Errorf("frontier[%d] violates SLO: TTFT %v TPOT %v", i, d.TTFT, d.TPOT)
		}
		if d.Procs > spec.Space.Procs {
			t.Errorf("frontier[%d] exceeds the %d-proc budget with %d", i, spec.Space.Procs, d.Procs)
		}
		if d.Batch > spec.Space.MaxBatch || d.Replicas < 1 {
			t.Errorf("frontier[%d] outside the space: batch %d replicas %d", i, d.Batch, d.Replicas)
		}
		if d.CostPerMToken <= 0 || d.ClusterTokensPerSec <= 0 || d.UserTokensPerSec <= 0 {
			t.Errorf("frontier[%d] carries non-positive objectives: %+v", i, d)
		}
		if i > 0 && d.CostPerMToken < res.Frontier[i-1].CostPerMToken {
			t.Errorf("frontier not sorted by cost at %d", i)
		}
	}
	// No frontier point may weakly dominate another — compaction dedups
	// objective-equal points, so survivors are pairwise non-dominated.
	for i := range res.Frontier {
		for j := range res.Frontier {
			if i != j && dominates(&res.Frontier[i], &res.Frontier[j]) {
				t.Errorf("frontier[%d] dominates frontier[%d]", i, j)
			}
		}
	}
}

func TestImpossibleSLOFindsNothing(t *testing.T) {
	spec := basicSpec()
	spec.Workload.SLO = SLO{TTFT: 1e-9, TPOT: 1e-9}
	res, err := Search(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible != 0 || len(res.Frontier) != 0 || res.Best != nil {
		t.Fatalf("nothing can meet a nanosecond SLO, got %d feasible", res.Feasible)
	}
	if res.Evaluated == 0 {
		t.Fatal("engines must still be evaluated")
	}
}

// TestDisaggregationWinsTightTPOT forces the disaggregated mode to be the
// only way to meet the decode-latency objective: the TPOT bound is placed
// between the pure-decode step time and the colocated step time (which
// carries chunked-prefill interference), on a single-engine space. Every
// frontier point must then be a split deployment, demonstrating the
// prefill/decode pools end to end.
func TestDisaggregationWinsTightTPOT(t *testing.T) {
	spec := basicSpec()
	spec.Space = Space{Procs: 16, MaxBatch: 4, MaxTP: 1, MaxPP: 1, Disaggregate: true}

	// Probe the enumerated engines (tp=1, pp=1, batch 1/2/4) for the
	// tightest colocated TPOT and its pure-decode counterpart.
	pbar, gbar := spec.Workload.MeanPromptLen(), spec.Workload.MeanGenLen()
	sys := spec.System.WithProcs(1)
	bestColoc, bestDecode := units.Seconds(0), units.Seconds(0)
	for _, b := range []int{1, 2, 4} {
		est, err := inference.Estimate(spec.Model, sys, strategyFor(1, 1), inference.Workload{
			PromptLen: pbar, GenLen: gbar, Batch: b,
		})
		if err != nil {
			t.Fatal(err)
		}
		coloc := est.StepTime + est.PrefillTime/units.Seconds(gbar)
		if bestColoc == 0 || coloc < bestColoc {
			bestColoc, bestDecode = coloc, est.StepTime
		}
	}
	spec.Workload.SLO.TPOT = bestDecode + (bestColoc-bestDecode)/2

	res, err := Search(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("the disaggregated mode should meet the tight TPOT")
	}
	for i, d := range res.Frontier {
		if !d.Disaggregated {
			t.Fatalf("frontier[%d] is colocated but cannot meet TPOT %v", i, spec.Workload.SLO.TPOT)
		}
		if d.PrefillReplicas < 1 {
			t.Errorf("frontier[%d]: split deployment without a prefill pool", i)
		}
		if d.KVTransferTime <= 0 {
			t.Errorf("frontier[%d]: split deployment without a KV shipment cost", i)
		}
	}
}

// TestDisaggregationOnFrontier checks the milder default claim: with
// generous SLOs the best per-user rate is always a pure-decode (split)
// deployment, so the frontier must carry at least one.
func TestDisaggregationOnFrontier(t *testing.T) {
	spec := basicSpec()
	spec.Space.Disaggregate = true
	res, err := Search(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Frontier {
		if d.Disaggregated {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("expected a disaggregated deployment on the frontier")
	}
}

func TestKVOffloadEntersSpace(t *testing.T) {
	spec := basicSpec()
	spec.System = spec.System.WithMem2(system.DDR5(2 * units.TiB))
	spec.Space.KVOffload = true
	res, err := Search(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Search(context.Background(), basicSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 2*base.Evaluated {
		t.Fatalf("KV offload should double the engine space: %d vs %d", res.Evaluated, base.Evaluated)
	}
}

func TestSweepMonotone(t *testing.T) {
	spec := basicSpec()
	sizes := []int{4, 8, 16}
	out, err := Sweep(context.Background(), spec, sizes, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(sizes) {
		t.Fatalf("got %d points for %d sizes", len(out), len(sizes))
	}
	prevFeasible, prevCluster := 0, 0.0
	for i, p := range out {
		if p.Procs != sizes[i] {
			t.Fatalf("point %d: procs %d, want %d", i, p.Procs, sizes[i])
		}
		// A larger budget strictly contains the smaller one's deployment
		// space, so feasibility and peak throughput cannot shrink.
		if p.Result.Feasible < prevFeasible {
			t.Errorf("feasible count shrank at %d procs: %d < %d", p.Procs, p.Result.Feasible, prevFeasible)
		}
		best := 0.0
		for _, d := range p.Result.Frontier {
			if d.ClusterTokensPerSec > best {
				best = d.ClusterTokensPerSec
			}
		}
		if best < prevCluster {
			t.Errorf("peak cluster throughput shrank at %d procs: %g < %g", p.Procs, best, prevCluster)
		}
		prevFeasible, prevCluster = p.Result.Feasible, best
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty mix", func(s *Spec) { s.Workload.Mix = nil }},
		{"zero weight", func(s *Spec) { s.Workload.Mix[0].Weight = 0 }},
		{"zero prompt", func(s *Spec) { s.Workload.Mix[0].PromptLen = 0 }},
		{"zero gen", func(s *Spec) { s.Workload.Mix[0].GenLen = 0 }},
		{"zero SLO", func(s *Spec) { s.Workload.SLO = SLO{} }},
		{"zero budget", func(s *Spec) { s.Space.Procs = 0 }},
		{"negative bound", func(s *Spec) { s.Space.MaxTP = -1 }},
		{"bad prefill system", func(s *Spec) { s.PrefillSystem = &system.System{} }},
	}
	for _, tc := range cases {
		spec := basicSpec()
		tc.mutate(&spec)
		if _, err := Search(context.Background(), spec, Options{}); err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

func TestMeanWorkload(t *testing.T) {
	w := chatMix()
	// (3·512 + 1·2048)/4 = 896; (3·128 + 1·256)/4 = 160.
	if got := w.MeanPromptLen(); got != 896 {
		t.Errorf("mean prompt: got %d, want 896", got)
	}
	if got := w.MeanGenLen(); got != 160 {
		t.Errorf("mean gen: got %d, want 160", got)
	}
}

func TestFrontierCompaction(t *testing.T) {
	var f frontier
	f.push(Deployment{Seq: 1, UserTokensPerSec: 10, ClusterTokensPerSec: 100, CostPerMToken: 5})
	// Dominated on every axis.
	f.push(Deployment{Seq: 2, UserTokensPerSec: 9, ClusterTokensPerSec: 90, CostPerMToken: 6})
	// Objective-equal duplicate of seq 1: deduplicated, lowest seq kept.
	f.push(Deployment{Seq: 3, UserTokensPerSec: 10, ClusterTokensPerSec: 100, CostPerMToken: 5})
	// Trades user rate for cluster rate: survives.
	f.push(Deployment{Seq: 4, UserTokensPerSec: 5, ClusterTokensPerSec: 200, CostPerMToken: 5})
	// Cheaper but worse everywhere else: survives.
	f.push(Deployment{Seq: 5, UserTokensPerSec: 1, ClusterTokensPerSec: 10, CostPerMToken: 1})
	f.compact()
	if len(f.pts) != 3 {
		t.Fatalf("got %d survivors, want 3: %+v", len(f.pts), f.pts)
	}
	if f.pts[0].Seq != 5 || f.pts[1].Seq != 1 || f.pts[2].Seq != 4 {
		t.Errorf("wrong survivors/order: %+v", f.pts)
	}
}

func TestPrefillSystemPool(t *testing.T) {
	spec := basicSpec()
	spec.Space.Disaggregate = true
	// A prefill pool on a slower system must not change the decode-side
	// estimates, only the prefill pool sizing and TTFT.
	slow := system.A100(16)
	slow.Compute.MatrixPeak /= 4
	slow.Compute.VectorPeak /= 4
	spec.PrefillSystem = &slow
	res, err := Search(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := func() (Result, error) {
		s := basicSpec()
		s.Space.Disaggregate = true
		return Search(context.Background(), s, Options{})
	}()
	if err != nil {
		t.Fatal(err)
	}
	// With a 4x slower prefill pool, some split deployment must need more
	// prefill replicas for the same decode pool than the homogeneous run.
	maxSlow, maxFast := 0, 0
	for _, d := range res.Frontier {
		if d.Disaggregated && d.PrefillReplicas > maxSlow {
			maxSlow = d.PrefillReplicas
		}
	}
	for _, d := range fast.Frontier {
		if d.Disaggregated && d.PrefillReplicas > maxFast {
			maxFast = d.PrefillReplicas
		}
	}
	if maxSlow == 0 {
		t.Fatal("no split deployments with a dedicated prefill system")
	}
	if maxSlow < maxFast {
		t.Errorf("slower prefill pool should not need fewer replicas: %d vs %d", maxSlow, maxFast)
	}
}
