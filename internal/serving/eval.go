package serving

import (
	"errors"

	"calculon/internal/inference"
	"calculon/internal/perf"
	"calculon/internal/system"
	"calculon/internal/units"
)

// engineProfile is everything stage 2 needs to compose deployments from one
// engine configuration: the steady-state estimate at the mean workload plus
// the per-bucket batch-1 prefill times that govern TTFT. Profiles land in a
// dense array indexed by the engine's sequence number, so the parallel
// evaluation order cannot influence anything downstream.
type engineProfile struct {
	// ok marks a feasible engine; prescreened marks one rejected by the
	// closed-form capacity bound without pricing.
	ok          bool
	prescreened bool
	// err carries a non-infeasibility failure (a spec-level bug); the
	// search aborts on the lowest-sequence one.
	err error
	// est is the steady-state estimate at the mean workload (mean prompt,
	// mean generation, full batch).
	est inference.Result
	// prefill1 is each bucket's batch-1 prefill time on the decode system —
	// the TTFT prefill term of a colocated deployment.
	prefill1 []units.Seconds
	// prefillP1 and prefillPMean are the prefill-pool equivalents on the
	// prefill system (disaggregated mode only): per-bucket batch-1 prefill
	// times, and the mean-prompt batch-1 prefill time that sizes the pool.
	prefillP1    []units.Seconds
	prefillPMean units.Seconds
}

// evalEngine prices one engine configuration. Infeasible engines (capacity,
// divisibility) come back with ok=false; any other estimation error is
// recorded for the search to surface.
func evalEngine(spec *Spec, cfg engineConfig, pbar, gbar int) engineProfile {
	var p engineProfile
	st := strategyFor(cfg.tp, cfg.pp)
	// The engine occupies exactly tp·pp processors; the budget is a
	// cluster-level bound, so the per-replica estimate runs on a system of
	// the engine's own size.
	sysD := spec.System.WithProcs(cfg.tp * cfg.pp)

	est, err := inference.Estimate(spec.Model, sysD, st, inference.Workload{
		PromptLen: pbar, GenLen: gbar, Batch: cfg.batch, KVOffload: cfg.kvOffload,
	})
	if err != nil {
		return profileErr(err)
	}
	p.est = est

	p.prefill1 = make([]units.Seconds, len(spec.Workload.Mix))
	for i, b := range spec.Workload.Mix {
		r, err := inference.Estimate(spec.Model, sysD, st, inference.Workload{
			PromptLen: b.PromptLen, GenLen: b.GenLen, Batch: 1, KVOffload: cfg.kvOffload,
		})
		if err != nil {
			return profileErr(err)
		}
		p.prefill1[i] = r.PrefillTime
	}

	if spec.Space.Disaggregate {
		sysP := prefillSystem(spec).WithProcs(cfg.tp * cfg.pp)
		// Prefill replicas run prompt-only passes (GenLen 0) and never
		// offload: they hold one prompt's KV, not a batch's steady state.
		r, err := inference.Estimate(spec.Model, sysP, st, inference.Workload{
			PromptLen: pbar, GenLen: 0, Batch: 1,
		})
		if err != nil {
			return profileErr(err)
		}
		p.prefillPMean = r.PrefillTime
		p.prefillP1 = make([]units.Seconds, len(spec.Workload.Mix))
		for i, b := range spec.Workload.Mix {
			r, err := inference.Estimate(spec.Model, sysP, st, inference.Workload{
				PromptLen: b.PromptLen, GenLen: 0, Batch: 1,
			})
			if err != nil {
				return profileErr(err)
			}
			p.prefillP1[i] = r.PrefillTime
		}
	}

	p.ok = true
	return p
}

// profileErr folds an estimation error into a profile: infeasibility is a
// normal search outcome, anything else aborts.
func profileErr(err error) engineProfile {
	if errors.Is(err, perf.ErrInfeasible) {
		return engineProfile{}
	}
	return engineProfile{err: err}
}

// prefillSystem returns the system the disaggregated prefill pool runs on.
func prefillSystem(spec *Spec) system.System {
	if spec.PrefillSystem != nil {
		return *spec.PrefillSystem
	}
	return spec.System
}
