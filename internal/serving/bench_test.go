package serving

import (
	"context"
	"testing"

	"calculon/internal/model"
	"calculon/internal/system"
)

// BenchmarkServingSearch measures the serving co-design search end to end
// on a mid-size model with the disaggregated mode on — the configuration a
// right-sizing study runs per budget point. The strategies/s metric counts
// engine configurations (the parallel evaluation unit), matching the
// Evaluated accounting, so it is comparable across pre-screen on/off runs.
func BenchmarkServingSearch(b *testing.B) {
	spec := Spec{
		Model:  model.MustPreset("gpt3-13B"),
		System: system.A100(32),
		Workload: Workload{
			Mix: []Bucket{
				{PromptLen: 512, GenLen: 128, Weight: 3},
				{PromptLen: 2048, GenLen: 256, Weight: 1},
			},
			SLO: SLO{TTFT: 30, TPOT: 1},
		},
		Space: Space{Procs: 32, MaxBatch: 32, Disaggregate: true},
	}
	var evaluated int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Search(context.Background(), spec, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Feasible == 0 {
			b.Fatal("benchmark search found nothing")
		}
		// Accumulate across iterations: the summed count is exact, where
		// extrapolating from one iteration over-reports under variance.
		evaluated += res.Evaluated
	}
	b.ReportMetric(float64(evaluated)/b.Elapsed().Seconds(), "strategies/s")
}
