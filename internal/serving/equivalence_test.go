package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"calculon/internal/model"
	"calculon/internal/system"
	"calculon/internal/units"
)

// randomSpec draws a serving search problem: models of several sizes,
// sometimes capacity-squeezed or offload-capable systems, 1–3 mix buckets,
// SLOs from generous to unmeetable, and random space bounds. The same
// generator feeds both equivalence proofs.
func randomSpec(rng *rand.Rand) Spec {
	models := []string{"gpt3-13B", "gpt3-6.7B", "gpt2-1.5B"}
	procChoices := []int{8, 16, 32}
	sys := system.A100(procChoices[rng.Intn(len(procChoices))])
	switch rng.Intn(3) {
	case 0:
		// Tight first tier: most engines die on the weight/KV lower bound,
		// stressing the pre-screen reject path.
		sys = sys.WithMem1Capacity(sys.Mem1.Capacity / 4)
	case 1:
		// Second tier present: KV offload engines enter the space and the
		// mem2 bound becomes live.
		sys = sys.WithMem2(system.DDR5(512 * units.GiB))
	}
	mix := make([]Bucket, 1+rng.Intn(3))
	for i := range mix {
		mix[i] = Bucket{
			PromptLen: 64 << rng.Intn(5),
			GenLen:    16 << rng.Intn(4),
			Weight:    1 + rng.Float64()*4,
		}
	}
	return Spec{
		Model:  model.MustPreset(models[rng.Intn(len(models))]),
		System: sys,
		Workload: Workload{
			Mix: mix,
			SLO: SLO{
				TTFT: units.Seconds(0.05 * float64(uint(1)<<rng.Intn(10))),
				TPOT: units.Seconds(0.002 * float64(uint(1)<<rng.Intn(10))),
			},
		},
		Space: Space{
			Procs:        sys.Procs,
			MaxBatch:     8 << rng.Intn(3),
			MaxReplicas:  4 * rng.Intn(3), // 0 (unbounded), 4, or 8
			KVOffload:    rng.Intn(2) == 0,
			Disaggregate: rng.Intn(2) == 0,
		},
	}
}

// mustJSON is the byte-level view the CLI emits; comparing it proves not
// just equal values but identical formatted output.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWorkerCountEquivalence is the determinism contract: the serving
// search's output must be byte-identical between one worker and many. The
// CI race job runs this with -race, so the byte-equality proof and the
// data-race proof cover the same executions.
func TestWorkerCountEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const draws = 10
	for i := 0; i < draws; i++ {
		spec := randomSpec(rng)
		one, err := Search(context.Background(), spec, Options{Workers: 1})
		if err != nil {
			t.Fatalf("draw %d: single-worker search: %v", i, err)
		}
		workers := 2 + rng.Intn(7)
		many, err := Search(context.Background(), spec, Options{Workers: workers})
		if err != nil {
			t.Fatalf("draw %d: %d-worker search: %v", i, workers, err)
		}
		a, b := mustJSON(t, one), mustJSON(t, many)
		if !bytes.Equal(a, b) {
			t.Errorf("draw %d: output diverges between 1 and %d workers:\n%s\nvs\n%s", i, workers, a, b)
		}
	}
}

// TestPreScreenSoundness is the pre-screen's proof obligation: the
// closed-form capacity bound may only reject engines the full evaluation
// would also reject, so results with the screen on and off (the escape
// hatch) must be byte-identical — same frontier, same Feasible, same
// Evaluated. Only the PreScreened diagnostic may differ.
func TestPreScreenSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const draws = 10
	sawRejections := false
	for i := 0; i < draws; i++ {
		spec := randomSpec(rng)
		screened, err := Search(context.Background(), spec, Options{Workers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatalf("draw %d: screened search: %v", i, err)
		}
		scratch, err := Search(context.Background(), spec, Options{
			Workers:          1 + rng.Intn(4),
			DisablePreScreen: true,
		})
		if err != nil {
			t.Fatalf("draw %d: scratch search: %v", i, err)
		}
		if scratch.PreScreened != 0 {
			t.Fatalf("draw %d: %d pre-screened with the filter disabled", i, scratch.PreScreened)
		}
		sawRejections = sawRejections || screened.PreScreened > 0
		// Blank the diagnostic and compare everything else byte for byte.
		sr := screened
		sr.PreScreened = 0
		a, b := mustJSON(t, sr), mustJSON(t, scratch)
		if !bytes.Equal(a, b) {
			t.Errorf("draw %d: pre-screen changed the result:\n%s\nvs\n%s", i, a, b)
		}
	}
	if !sawRejections {
		t.Error("no draw exercised the pre-screen reject path; tighten the generator")
	}
}

// TestPreScreenFires pins the screen to a live reject path on a
// deterministic spec: a 13B model with a quartered HBM cannot hold its
// low-TP shards, so PreScreened must be non-zero.
func TestPreScreenFires(t *testing.T) {
	spec := basicSpec()
	spec.System = spec.System.WithMem1Capacity(spec.System.Mem1.Capacity / 4)
	res, err := Search(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PreScreened == 0 {
		t.Fatal("expected pre-screen rejections on a capacity-limited system")
	}
	if res.PreScreened > res.Evaluated {
		t.Fatalf("pre-screened %d exceeds evaluated %d", res.PreScreened, res.Evaluated)
	}
}

// TestSweepWorkerEquivalence extends the determinism contract to the
// right-sizing sweep: the per-size results must be byte-identical however
// the worker budget is partitioned.
func TestSweepWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	spec := randomSpec(rng)
	sizes := []int{4, 8, 16}
	one, err := Sweep(context.Background(), spec, sizes, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Sweep(context.Background(), spec, sizes, Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, one), mustJSON(t, many)
	if !bytes.Equal(a, b) {
		t.Errorf("sweep output diverges across worker budgets:\n%s\nvs\n%s", a, b)
	}
}
