package calculon_test

import (
	"context"
	"fmt"

	"calculon"
)

// ExampleRun estimates one training configuration and prints the headline
// numbers. (The exact values depend on the calibrated efficiency curves;
// the example prints derived booleans so it stays stable.)
func ExampleRun() {
	m := calculon.MustPreset("gpt3-175B").WithBatch(64)
	sys := calculon.A100(64)
	st := calculon.Strategy{
		TP: 8, PP: 8, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: calculon.RecomputeFull,
	}
	res, err := calculon.Run(m, sys, st)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("fits in 80 GiB:", res.Mem1.Total() < 80*calculon.GiB)
	fmt.Println("recompute slower than forward:", res.Time.Recompute >= res.Time.FwdPass/2)
	fmt.Println("procs:", res.ProcsUsed)
	// Output:
	// fits in 80 GiB: true
	// recompute slower than forward: true
	// procs: 64
}

// ExampleRun_infeasible shows the feasibility checking: a trillion-
// parameter model cannot run on a single GPU.
func ExampleRun_infeasible() {
	m := calculon.MustPreset("megatron-1T").WithBatch(1)
	_, err := calculon.Run(m, calculon.A100(1), calculon.Strategy{TP: 1, PP: 1, DP: 1})
	fmt.Println(err != nil)
	// Output:
	// true
}

// ExampleSearchExecution finds the best execution strategy for a model on
// a fixed system — the paper's §5.1 exhaustive search.
func ExampleSearchExecution() {
	m := calculon.MustPreset("gpt3-13B").WithBatch(32)
	res, err := calculon.SearchExecution(context.Background(), m, calculon.A100(32), calculon.SearchOptions{
		Enum: calculon.EnumOptions{Features: calculon.FeatureSeqPar, MaxInterleave: 2},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("found:", res.Found())
	fmt.Println("best uses all procs:", res.Best.Strategy.Procs() == 32)
	// Output:
	// found: true
	// best uses all procs: true
}

// ExampleEstimateInference prices a serving deployment: prefill plus
// bandwidth-bound autoregressive decode.
func ExampleEstimateInference() {
	m := calculon.MustPreset("gpt3-175B")
	st := calculon.Strategy{
		TP: 8, PP: 1, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: calculon.RecomputeNone, TPRSAG: true,
	}
	res, err := calculon.EstimateInference(m, calculon.A100(8), st,
		calculon.ServingWorkload{PromptLen: 512, GenLen: 128, Batch: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decode bandwidth-bound:", res.DecodeBandwidthBound)
	fmt.Println("prefill dominates short generations:", res.PrefillTime > res.StepTime)
	// Output:
	// decode bandwidth-bound: true
	// prefill dominates short generations: true
}
