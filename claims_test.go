package calculon_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"calculon"
	"calculon/internal/config"
	"calculon/internal/model"
	"calculon/internal/system"
)

// This file asserts the paper's three headline findings (§1) end-to-end
// through the public API, at reduced scale.

func searchOpts() calculon.SearchOptions {
	return calculon.SearchOptions{
		Enum: calculon.EnumOptions{
			Features:      calculon.FeatureAll,
			PinBeneficial: true,
			MaxInterleave: 4,
		},
	}
}

// TestClaim1NoUniformBestStrategy — "None of the existing software-
// parallelism strategies is uniformly the best. However, there is an
// optimal split-parallelism strategy … with the exact optimum depending on
// system parameters." The best split must beat every single-mode extreme,
// and changing the system must move the optimum.
func TestClaim1NoUniformBestStrategy(t *testing.T) {
	m := calculon.MustPreset("megatron-1T").WithBatch(512)

	sysA := calculon.A100(512)
	resA, err := calculon.SearchExecution(context.Background(), m, sysA, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Found() {
		t.Fatal("search found nothing")
	}
	best := resA.Best
	// The optimum is a genuine split: no parallelism mode at its extreme.
	st := best.Strategy
	if st.TP == 1 || st.TP*st.PP*st.DP != 512 {
		t.Errorf("optimum should blend modes, got %v", st)
	}
	// Single-mode-heavy strategies lose to it.
	for _, extreme := range []calculon.Strategy{
		{TP: 32, PP: 16, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeFull, TPRSAG: true, OptimSharding: true},
		{TP: 1, PP: 128, DP: 4, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeFull, TPRSAG: true, OptimSharding: true},
	} {
		r, err := calculon.Run(m, sysA, extreme)
		if err != nil {
			continue // an infeasible extreme also proves the point
		}
		if r.SampleRate >= best.SampleRate {
			t.Errorf("extreme %v (%.1f/s) should lose to the searched optimum (%.1f/s)",
				extreme, r.SampleRate, best.SampleRate)
		}
	}

	// A different system (bigger NVLink domain, more memory) moves the
	// optimal split.
	sysB := calculon.A100(512).WithFastDomain(32).WithMem1Capacity(160 * calculon.GiB)
	resB, err := calculon.SearchExecution(context.Background(), m, sysB, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Found() {
		t.Fatal("search on system B found nothing")
	}
	if resA.Best.Strategy == resB.Best.Strategy {
		t.Errorf("the optimum should depend on system parameters; both systems chose %v",
			resA.Best.Strategy)
	}
}

// TestClaim2EfficiencyCliffs — "The speed of LLM training can be a
// sensitive function of system size": an awkward size right next to a
// well-factoring one performs markedly worse per GPU.
func TestClaim2EfficiencyCliffs(t *testing.T) {
	m := calculon.MustPreset("turing-530B").WithBatch(512) // 105 blocks, hard to map
	sizes := []int{248, 256}                               // 248 = 8·31: no clean (t,p,d) factorization
	pts, err := calculon.SearchSystemSize(context.Background(), m,
		func(n int) calculon.System { return calculon.A100(n) }, sizes, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !pts[1].Found {
		t.Fatal("530B should run on 256 GPUs")
	}
	perGPU := func(p calculon.ScalingPoint) float64 {
		return p.Best.SampleRate / float64(p.Procs)
	}
	if pts[0].Found {
		drop := perGPU(pts[1]) / perGPU(pts[0])
		if drop < 1.05 {
			t.Errorf("expected an efficiency cliff at 248 GPUs; per-GPU ratio %.3f", drop)
		}
	}
	// If 248 cannot run at all, that is the deepest possible cliff — pass.
}

// TestClaim3OffloadTier — "Adding a second high-capacity tier of memory …
// enables efficient training of larger models [and] the bandwidth
// requirement … is within current technological capabilities."
func TestClaim3OffloadTier(t *testing.T) {
	m := calculon.MustPreset("megatron-1T").WithBatch(256)
	bare := calculon.A100(128)
	r1, err := calculon.SearchExecution(context.Background(), m, bare, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Found() {
		t.Fatal("1T should not fit on 128 bare 80-GiB GPUs")
	}
	tiered := bare.WithMem2(calculon.DDR5(512 * calculon.GiB))
	r2, err := calculon.SearchExecution(context.Background(), m, tiered, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Found() {
		t.Fatal("the offload tier should enable 1T training on 128 GPUs")
	}
	if r2.Best.MFU < 0.5 {
		t.Errorf("offload-enabled training should stay efficient, MFU %.1f%%", 100*r2.Best.MFU)
	}
	// "within current technological capabilities": the required offload
	// bandwidth must not exceed a DDR/CXL-class link.
	if r2.Best.OffloadBWRequired > 200e9 {
		t.Errorf("required offload bandwidth %v is beyond a DDR-class link",
			r2.Best.OffloadBWRequired)
	}
}

// TestGoldenReferenceConfigs pins the exact batch time and first-tier memory
// breakdown of the paper's Table 2 reference configurations — the
// Megatron-style models under full recompute and under sequence parallelism
// with selective recompute — loaded from the shipped JSON assets in
// configs/models and configs/systems. The goldens were produced by this
// model and exist to catch silent numeric drift: in particular, a cache-
// keying bug in the two-phase evaluation that served one configuration
// another's block profile would perturb these digits long before it moved a
// search optimum. Tolerance is 1e-9 relative — far tighter than any
// legitimate modeling change would land by accident.
func TestGoldenReferenceConfigs(t *testing.T) {
	goldens := []struct {
		preset    string
		gpus, pp  int
		mode      string
		batchTime float64
		mem1      calculon.MemBreakdown
	}{
		{"megatron-22B", 8, 1, "full",
			1.456927513332821,
			calculon.MemBreakdown{Weights: 5439873024, WeightGrads: 5439873024, Activations: 1207959552, ActGrads: 134217728, Optimizer: 32639238144}},
		{"megatron-22B", 8, 1, "seq+sel",
			1.0539197929908277,
			calculon.MemBreakdown{Weights: 5439873024, WeightGrads: 5439873024, Activations: 4680843264, ActGrads: 134217728, Optimizer: 32639238144}},
		{"gpt3-175B", 64, 8, "full",
			18.466107583057749,
			calculon.MemBreakdown{Weights: 5437845504, WeightGrads: 5437845504, Activations: 4831838208, ActGrads: 201326592, Optimizer: 32627073024}},
		{"gpt3-175B", 64, 8, "seq+sel",
			13.177672232179757,
			calculon.MemBreakdown{Weights: 5437845504, WeightGrads: 5437845504, Activations: 18723373056, ActGrads: 201326592, Optimizer: 32627073024}},
		{"turing-530B", 280, 35, "full",
			49.843145905172705,
			calculon.MemBreakdown{Weights: 3775718400, WeightGrads: 3775718400, Activations: 8808038400, ActGrads: 268435456, Optimizer: 22654310400}},
		{"turing-530B", 280, 35, "seq+sel",
			35.033783615868686,
			calculon.MemBreakdown{Weights: 3775718400, WeightGrads: 3775718400, Activations: 34131148800, ActGrads: 268435456, Optimizer: 22654310400}},
		{"megatron-1T", 512, 64, "full",
			91.809608457554901,
			calculon.MemBreakdown{Weights: 3932864000, WeightGrads: 3932864000, Activations: 13421772800, ActGrads: 335544320, Optimizer: 23597184000}},
		{"megatron-1T", 512, 64, "seq+sel",
			64.234977269071436,
			calculon.MemBreakdown{Weights: 3932864000, WeightGrads: 3932864000, Activations: 52009369600, ActGrads: 335544320, Optimizer: 23597184000}},
	}

	relClose := func(got, want float64) bool {
		if got == want {
			return true
		}
		return math.Abs(got-want) <= 1e-9*math.Abs(want)
	}

	baseSys, err := config.Load[system.System]("configs/systems/a100-80g.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens {
		m, err := config.Load[model.LLM](fmt.Sprintf("configs/models/%s.json", g.preset))
		if err != nil {
			t.Fatal(err)
		}
		sys := baseSys.WithProcs(g.gpus)
		st := calculon.Strategy{
			TP: 8, PP: g.pp, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeFull,
		}
		if g.mode == "seq+sel" {
			st.Recompute = calculon.RecomputeAttn
			st.TPRSAG, st.SeqParallel = true, true
		}
		res, err := calculon.Run(m, sys, st)
		if err != nil {
			t.Fatalf("%s %s: %v", g.preset, g.mode, err)
		}
		if !relClose(float64(res.BatchTime), g.batchTime) {
			t.Errorf("%s %s: batch time %.17g, golden %.17g",
				g.preset, g.mode, float64(res.BatchTime), g.batchTime)
		}
		for _, f := range []struct {
			name      string
			got, want float64
		}{
			{"weights", float64(res.Mem1.Weights), float64(g.mem1.Weights)},
			{"weight grads", float64(res.Mem1.WeightGrads), float64(g.mem1.WeightGrads)},
			{"activations", float64(res.Mem1.Activations), float64(g.mem1.Activations)},
			{"act grads", float64(res.Mem1.ActGrads), float64(g.mem1.ActGrads)},
			{"optimizer", float64(res.Mem1.Optimizer), float64(g.mem1.Optimizer)},
		} {
			if !relClose(f.got, f.want) {
				t.Errorf("%s %s: mem1 %s %.17g, golden %.17g",
					g.preset, g.mode, f.name, f.got, f.want)
			}
		}
	}
}
