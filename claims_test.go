package calculon_test

import (
	"context"
	"testing"

	"calculon"
)

// This file asserts the paper's three headline findings (§1) end-to-end
// through the public API, at reduced scale.

func searchOpts() calculon.SearchOptions {
	return calculon.SearchOptions{
		Enum: calculon.EnumOptions{
			Features:      calculon.FeatureAll,
			PinBeneficial: true,
			MaxInterleave: 4,
		},
	}
}

// TestClaim1NoUniformBestStrategy — "None of the existing software-
// parallelism strategies is uniformly the best. However, there is an
// optimal split-parallelism strategy … with the exact optimum depending on
// system parameters." The best split must beat every single-mode extreme,
// and changing the system must move the optimum.
func TestClaim1NoUniformBestStrategy(t *testing.T) {
	m := calculon.MustPreset("megatron-1T").WithBatch(512)

	sysA := calculon.A100(512)
	resA, err := calculon.SearchExecution(context.Background(), m, sysA, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Found() {
		t.Fatal("search found nothing")
	}
	best := resA.Best
	// The optimum is a genuine split: no parallelism mode at its extreme.
	st := best.Strategy
	if st.TP == 1 || st.TP*st.PP*st.DP != 512 {
		t.Errorf("optimum should blend modes, got %v", st)
	}
	// Single-mode-heavy strategies lose to it.
	for _, extreme := range []calculon.Strategy{
		{TP: 32, PP: 16, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeFull, TPRSAG: true, OptimSharding: true},
		{TP: 1, PP: 128, DP: 4, Microbatch: 1, Interleave: 1, OneFOneB: true,
			Recompute: calculon.RecomputeFull, TPRSAG: true, OptimSharding: true},
	} {
		r, err := calculon.Run(m, sysA, extreme)
		if err != nil {
			continue // an infeasible extreme also proves the point
		}
		if r.SampleRate >= best.SampleRate {
			t.Errorf("extreme %v (%.1f/s) should lose to the searched optimum (%.1f/s)",
				extreme, r.SampleRate, best.SampleRate)
		}
	}

	// A different system (bigger NVLink domain, more memory) moves the
	// optimal split.
	sysB := calculon.A100(512).WithFastDomain(32).WithMem1Capacity(160 * calculon.GiB)
	resB, err := calculon.SearchExecution(context.Background(), m, sysB, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Found() {
		t.Fatal("search on system B found nothing")
	}
	if resA.Best.Strategy == resB.Best.Strategy {
		t.Errorf("the optimum should depend on system parameters; both systems chose %v",
			resA.Best.Strategy)
	}
}

// TestClaim2EfficiencyCliffs — "The speed of LLM training can be a
// sensitive function of system size": an awkward size right next to a
// well-factoring one performs markedly worse per GPU.
func TestClaim2EfficiencyCliffs(t *testing.T) {
	m := calculon.MustPreset("turing-530B").WithBatch(512) // 105 blocks, hard to map
	sizes := []int{248, 256}                               // 248 = 8·31: no clean (t,p,d) factorization
	pts, err := calculon.SearchSystemSize(context.Background(), m,
		func(n int) calculon.System { return calculon.A100(n) }, sizes, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !pts[1].Found {
		t.Fatal("530B should run on 256 GPUs")
	}
	perGPU := func(p calculon.ScalingPoint) float64 {
		return p.Best.SampleRate / float64(p.Procs)
	}
	if pts[0].Found {
		drop := perGPU(pts[1]) / perGPU(pts[0])
		if drop < 1.05 {
			t.Errorf("expected an efficiency cliff at 248 GPUs; per-GPU ratio %.3f", drop)
		}
	}
	// If 248 cannot run at all, that is the deepest possible cliff — pass.
}

// TestClaim3OffloadTier — "Adding a second high-capacity tier of memory …
// enables efficient training of larger models [and] the bandwidth
// requirement … is within current technological capabilities."
func TestClaim3OffloadTier(t *testing.T) {
	m := calculon.MustPreset("megatron-1T").WithBatch(256)
	bare := calculon.A100(128)
	r1, err := calculon.SearchExecution(context.Background(), m, bare, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Found() {
		t.Fatal("1T should not fit on 128 bare 80-GiB GPUs")
	}
	tiered := bare.WithMem2(calculon.DDR5(512 * calculon.GiB))
	r2, err := calculon.SearchExecution(context.Background(), m, tiered, searchOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Found() {
		t.Fatal("the offload tier should enable 1T training on 128 GPUs")
	}
	if r2.Best.MFU < 0.5 {
		t.Errorf("offload-enabled training should stay efficient, MFU %.1f%%", 100*r2.Best.MFU)
	}
	// "within current technological capabilities": the required offload
	// bandwidth must not exceed a DDR/CXL-class link.
	if r2.Best.OffloadBWRequired > 200e9 {
		t.Errorf("required offload bandwidth %v is beyond a DDR-class link",
			r2.Best.OffloadBWRequired)
	}
}
