// Command calculond serves the execution search as a long-running HTTP/JSON
// daemon: POST a job spec, poll live progress, fetch the result. See
// docs/SERVICE.md for the API.
//
// Usage:
//
//	calculond -addr 127.0.0.1:8080 -workers 8 -max-running 2 [flags]
//
// Lifecycle: SIGTERM drains gracefully — the listener stops accepting,
// queued jobs are cancelled, running jobs get -drain-timeout to finish
// before their contexts are cancelled — and the process exits 0. SIGINT
// drains the same way but exits 130, matching the calculon CLI's exit-code
// convention (0 success, 1 runtime error, 2 usage).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"calculon/internal/resultstore"
	"calculon/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main minus os.Exit, so tests can table-check the exit codes.
func run(args []string) int {
	fs := flag.NewFlagSet("calculond", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 0, "global search-worker budget shared across all running jobs (0 = GOMAXPROCS)")
	maxRunning := fs.Int("max-running", 2, "maximum concurrently running jobs (clamped to the worker budget)")
	queueDepth := fs.Int("queue-depth", 64, "maximum queued jobs before submits get 503")
	rate := fs.Float64("rate", 20, "per-client request rate limit in req/s over /v1 (0 disables)")
	burst := fs.Int("burst", 40, "per-client burst allowance for the rate limit")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a drain lets running jobs finish before cancelling them")
	storePath := fs.String("store", "", "persistent result store (JSONL): jobs consult it before searching and append fresh verdicts (empty disables)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "calculond: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	var store *resultstore.Store
	if *storePath != "" {
		var err error
		if store, err = resultstore.Open(*storePath); err != nil {
			fmt.Fprintln(os.Stderr, "calculond:", err)
			return 1
		}
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "calculond: result store %s: %d rows", *storePath, st.Rows)
		if st.Stale > 0 {
			fmt.Fprintf(os.Stderr, ", %d stale (space version)", st.Stale)
		}
		if st.RecoveredBytes > 0 {
			fmt.Fprintf(os.Stderr, ", recovered from %d truncated bytes", st.RecoveredBytes)
		}
		fmt.Fprintln(os.Stderr)
	}
	// closeStore flushes the pending batch on every exit path; after a drain
	// the jobs have unwound, so nothing appends concurrently and the file
	// ends on a whole row.
	closeStore := func() bool {
		if store == nil {
			return true
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "calculond:", err)
			return false
		}
		return true
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calculond:", err)
		closeStore()
		return 1
	}
	svc := service.New(service.Config{
		Workers:    *workers,
		MaxRunning: *maxRunning,
		QueueDepth: *queueDepth,
		Rate:       *rate,
		Burst:      *burst,
		Store:      store,
	})
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// The supervisor (and the e2e smoke client) learns the bound port from
	// this line; keep its shape stable.
	fmt.Printf("calculond: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-serveErr:
		// The listener died under us (it is never closed on this path).
		fmt.Fprintln(os.Stderr, "calculond:", err)
		svc.Drain(context.Background())
		closeStore()
		return 1
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "calculond: %v — draining (timeout %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Stop accepting and wait out in-flight requests, then settle the
		// jobs. Shutdown's error is the deadline firing with pollers still
		// connected; the drain below still runs to completion.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "calculond: shutdown:", err)
		}
		svc.Drain(ctx)
		if !closeStore() {
			return 1
		}
		fmt.Fprintln(os.Stderr, "calculond: drained")
		if sig == os.Interrupt {
			return 130
		}
		return 0
	}
}
