//go:build e2e

// End-to-end smoke test for the daemon: build the real binary, boot it on
// an ephemeral port, and drive the full job lifecycle over actual HTTP —
// submit → poll → result → cancel → SIGTERM drain — failing on a nonzero
// exit or a process that outlives its drain window. CI's service-e2e job
// runs exactly this via `go test -tags e2e`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"calculon/internal/resultstore"
)

const smallJob = `{"model":{"preset":"gpt3-13B","batch":8},"system":{"preset":"a100-80g","procs":8},"search":{"top_k":3}}`
const bigJob = `{"model":{"preset":"gpt3-175B","batch":3072},"system":{"preset":"a100-80g","procs":4096},"search":{}}`

// servingJob exercises the serving-search job kind end to end, with the
// disaggregated prefill/decode pool mode in the search space.
const servingJob = `{"model":{"preset":"gpt3-13B"},"system":{"preset":"a100-80g","procs":16},` +
	`"serving":{"workload":{"mix":[{"prompt_len":512,"gen_len":128,"weight":1}],` +
	`"slo":{"ttft_seconds":30,"tpot_seconds":1}},"space":{"procs":16,"disaggregate":true}}}`

type status struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Workers  int    `json:"workers"`
	Error    string `json:"error"`
	Progress struct {
		Evaluated int64 `json:"evaluated"`
		StoreHits int64 `json:"store_hits"`
		Total     int64 `json:"total"`
	} `json:"progress"`
}

type result struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Found bool   `json:"found"`
	Best  *struct {
		SampleRate float64 `json:"sample_rate"`
	} `json:"best"`
	Serving *struct {
		Feasible int `json:"feasible"`
		Frontier []struct {
			Disaggregated   bool    `json:"disaggregated"`
			PrefillReplicas int     `json:"prefill_replicas"`
			CostPerMToken   float64 `json:"cost_per_mtoken"`
		} `json:"frontier"`
		Best *struct {
			CostPerMToken float64 `json:"cost_per_mtoken"`
		} `json:"best"`
	} `json:"serving"`
}

func TestCalculondE2E(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "calculond")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	storePath := filepath.Join(t.TempDir(), "results.jsonl")
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "4",
		"-max-running", "2",
		"-queue-depth", "8",
		"-rate", "0", // the smoke client polls hard; limiting is unit-tested
		"-drain-timeout", "20s",
		"-store", storePath)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	// Whatever happens below, the daemon must not outlive the test.
	exited := false
	defer func() {
		if !exited {
			daemon.Process.Kill()
			daemon.Wait()
			t.Errorf("daemon had to be killed; stderr:\n%s", stderr.String())
		}
	}()

	// The bound address is the first stdout line.
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatalf("no startup line; stderr:\n%s", stderr.String())
	}
	line := scanner.Text()
	idx := strings.LastIndex(line, "listening on ")
	if idx < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[idx+len("listening on "):])
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	client := &http.Client{Timeout: 10 * time.Second}
	call := func(method, path, body string, out any) int {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v\ndaemon stderr:\n%s", method, path, err, stderr.String())
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil && len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				t.Fatalf("%s %s: bad JSON %q: %v", method, path, data, err)
			}
		}
		return resp.StatusCode
	}
	waitFor := func(id, want string, needProgress bool) status {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			var st status
			if code := call("GET", "/v1/jobs/"+id, "", &st); code != http.StatusOK {
				t.Fatalf("status %s: HTTP %d", id, code)
			}
			if st.State == want && (!needProgress || st.Progress.Evaluated > 0) {
				return st
			}
			if st.State != want && st.State != "queued" && st.State != "running" {
				t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("job %s never reached %s", id, want)
		return status{}
	}

	// Healthy on boot.
	if code := call("GET", "/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}

	// Submit a small job and follow it to a served result.
	var small status
	if code := call("POST", "/v1/jobs", smallJob, &small); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitFor(small.ID, "done", true)
	var res result
	if code := call("GET", "/v1/jobs/"+small.ID+"/result", "", &res); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if !res.Found || res.Best == nil || res.Best.SampleRate <= 0 {
		t.Fatalf("result carries no best configuration: %+v", res)
	}

	// The identical spec again: the daemon's result store must serve the
	// verdict without evaluating anything, and the numbers must match the
	// live run exactly.
	var rerun status
	if code := call("POST", "/v1/jobs", smallJob, &rerun); code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", code)
	}
	cached := waitFor(rerun.ID, "done", false)
	if cached.Progress.Evaluated != 0 || cached.Progress.StoreHits != 1 {
		t.Fatalf("rerun progress = %+v, want a pure store hit (0 evaluated)", cached.Progress)
	}
	var cachedRes result
	if code := call("GET", "/v1/jobs/"+rerun.ID+"/result", "", &cachedRes); code != http.StatusOK {
		t.Fatalf("cached result: %d", code)
	}
	if !cachedRes.Found || cachedRes.Best == nil || cachedRes.Best.SampleRate != res.Best.SampleRate {
		t.Fatalf("cached result diverges from the live run: %+v vs %+v", cachedRes, res)
	}

	// The store inspection endpoint agrees with what just happened: one
	// committed row (the small job), one hit (the rerun), backed by the
	// file we pointed -store at.
	var stStatus struct {
		Enabled bool   `json:"enabled"`
		Path    string `json:"path"`
		Rows    int    `json:"rows"`
		Hits    int64  `json:"hits"`
		Misses  int64  `json:"misses"`
		Appends int64  `json:"appends"`
	}
	if code := call("GET", "/v1/store", "", &stStatus); code != http.StatusOK {
		t.Fatalf("store status: %d", code)
	}
	if !stStatus.Enabled || stStatus.Path != storePath {
		t.Fatalf("store status = %+v, want enabled at %s", stStatus, storePath)
	}
	if stStatus.Rows != 1 || stStatus.Hits != 1 || stStatus.Misses != 1 || stStatus.Appends != 1 {
		t.Fatalf("store status after cached rerun = %+v, want 1 row / 1 hit / 1 miss / 1 append", stStatus)
	}

	// A serving co-design job with disaggregation in the space: the result
	// must carry an SLO-feasible frontier that actually exercises the
	// prefill/decode pool split, and a resubmit must come straight from the
	// store, bit-identical.
	var srv status
	if code := call("POST", "/v1/jobs", servingJob, &srv); code != http.StatusAccepted {
		t.Fatalf("submit serving: %d", code)
	}
	waitFor(srv.ID, "done", true)
	var srvRes result
	if code := call("GET", "/v1/jobs/"+srv.ID+"/result", "", &srvRes); code != http.StatusOK {
		t.Fatalf("serving result: %d", code)
	}
	if !srvRes.Found || srvRes.Serving == nil || srvRes.Serving.Best == nil ||
		srvRes.Serving.Best.CostPerMToken <= 0 {
		t.Fatalf("serving result carries no best deployment: %+v", srvRes)
	}
	disaggregated := 0
	for _, d := range srvRes.Serving.Frontier {
		if d.Disaggregated {
			if d.PrefillReplicas < 1 {
				t.Fatalf("disaggregated frontier point without a prefill pool: %+v", d)
			}
			disaggregated++
		}
	}
	if disaggregated == 0 {
		t.Fatalf("no disaggregated deployment on the frontier: %+v", srvRes.Serving.Frontier)
	}
	var srvRerun status
	if code := call("POST", "/v1/jobs", servingJob, &srvRerun); code != http.StatusAccepted {
		t.Fatalf("resubmit serving: %d", code)
	}
	srvCached := waitFor(srvRerun.ID, "done", false)
	if srvCached.Progress.Evaluated != 0 || srvCached.Progress.StoreHits != 1 {
		t.Fatalf("serving rerun progress = %+v, want a pure store hit", srvCached.Progress)
	}
	var srvCachedRes result
	if code := call("GET", "/v1/jobs/"+srvRerun.ID+"/result", "", &srvCachedRes); code != http.StatusOK {
		t.Fatalf("cached serving result: %d", code)
	}
	if srvCachedRes.Serving == nil || srvCachedRes.Serving.Best == nil ||
		srvCachedRes.Serving.Best.CostPerMToken != srvRes.Serving.Best.CostPerMToken ||
		len(srvCachedRes.Serving.Frontier) != len(srvRes.Serving.Frontier) {
		t.Fatalf("cached serving result diverges from the live run: %+v vs %+v", srvCachedRes, srvRes)
	}

	// Submit a ~10M-strategy job, catch it mid-flight, cancel it.
	var big status
	if code := call("POST", "/v1/jobs", bigJob, &big); code != http.StatusAccepted {
		t.Fatalf("submit big: %d", code)
	}
	waitFor(big.ID, "running", true)
	if code := call("DELETE", "/v1/jobs/"+big.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel: %d", code)
	}
	cancelled := waitFor(big.ID, "cancelled", false)
	if cancelled.Progress.Total > 0 && cancelled.Progress.Evaluated >= cancelled.Progress.Total {
		t.Fatalf("cancelled job ran to completion: %+v", cancelled.Progress)
	}

	// Metrics reflect the lifecycle.
	metricsReq, _ := http.NewRequest("GET", base+"/metrics", nil)
	metricsResp, err := client.Do(metricsReq)
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	for _, want := range []string{
		"calculond_jobs_done_total 4",
		"calculond_jobs_cancelled_total 1",
		"calculond_jobs_serving_total 2",
		"calculond_workers_total 4",
		"calculond_searches_from_store_total 2",
		"calculond_store_rows 2",
		"calculond_store_hits_total 2",
		// Three misses by scrape time: the live small job, the live serving
		// job, and the (cancelled, never stored) big job each looked up once;
		// both reruns were hits.
		"calculond_store_misses_total 3",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// SIGTERM with a job running: the daemon must drain (cancelling the
	// job) and exit 0 within the drain window — a hung or leaked process
	// fails here.
	var last status
	if code := call("POST", "/v1/jobs", bigJob, &last); code != http.StatusAccepted {
		t.Fatalf("submit pre-drain: %d", code)
	}
	waitFor(last.ID, "running", true)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- daemon.Wait() }()
	select {
	case err := <-waited:
		exited = true
		if err != nil {
			t.Fatalf("drain exited nonzero: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(40 * time.Second):
		t.Fatalf("daemon still alive 40s after SIGTERM (leaked process)\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("stderr missing drain confirmation:\n%s", stderr.String())
	}

	// The drain flushed the store: reopening it must find whole committed
	// rows only — no truncated tail, nothing recovered, nothing stale. The
	// small job and the serving job contribute a row each; the pre-drain big
	// job contributes a third only if it finished inside the drain window
	// (the DELETE-cancelled job never stores), so the count is 2 or 3.
	st, err := resultstore.Open(storePath)
	if err != nil {
		t.Fatalf("reopening the store after drain: %v", err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Rows < 2 || stats.Rows > 3 || stats.Loaded != stats.Rows ||
		stats.RecoveredBytes != 0 || stats.Stale != 0 {
		t.Errorf("post-drain store stats = %+v, want 2-3 whole rows and a clean tail", stats)
	}
	fmt.Println("e2e lifecycle complete: submit, poll, result, serving job, cached reruns, cancel, drain")
}
