package main

import "testing"

// TestRunUsageExitCodes pins the daemon to the CLI's exit-code convention:
// 0 success (here: -h), 2 usage.
func TestRunUsageExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad flag value", []string{"-workers", "zebra"}, 2},
		{"stray argument", []string{"serve"}, 2},
	}
	for _, tc := range cases {
		if got := run(tc.args); got != tc.want {
			t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
		}
	}
}

func TestRunBadListenAddr(t *testing.T) {
	if got := run([]string{"-addr", "256.256.256.256:1"}); got != 1 {
		t.Errorf("run with unlistenable addr = %d, want 1", got)
	}
}
