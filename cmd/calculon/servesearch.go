package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"calculon/internal/config"
	"calculon/internal/search"
	"calculon/internal/serving"
	"calculon/internal/system"
	"calculon/internal/units"
)

// cmdServeSearch runs the SLO-constrained serving co-design search: it
// enumerates engine configurations and replica/disaggregation splits under a
// processor budget, keeps the deployments meeting the TTFT/TPOT objectives,
// and reports the Pareto frontier of per-user rate vs cluster throughput vs
// $/Mtoken. With -step/-max it sweeps the budget instead (right-sizing).
func cmdServeSearch(ctx context.Context, args []string) (retErr error) {
	fs := flag.NewFlagSet("serve-search", flag.ExitOnError)
	c := addCommon(fs)
	rt := addRuntime(fs)
	scenario := fs.String("scenario", "", "serving scenario JSON (overrides the model/system/workload flags)")
	prompt := fs.Int("prompt", 512, "prompt length in tokens (single-bucket mix)")
	gen := fs.Int("gen", 256, "generated tokens per request (single-bucket mix)")
	ttft := fs.Float64("ttft", 10, "time-to-first-token SLO in seconds (worst bucket)")
	tpot := fs.Float64("tpot", 0.1, "time-per-output-token SLO in seconds")
	maxBatch := fs.Int("max-batch", 32, "largest in-flight batch per replica")
	maxTP := fs.Int("max-tp", 0, "cap on tensor parallelism (0 = model/budget bound)")
	maxPP := fs.Int("max-pp", 0, "cap on pipeline parallelism (0 = model/budget bound)")
	maxReplicas := fs.Int("max-replicas", 0, "cap on any one pool's replica count (0 = budget bound)")
	kvOffload := fs.Bool("kv-offload", false, "also enumerate engines with the KV cache in the -mem2 tier")
	disagg := fs.Bool("disaggregate", false, "also enumerate prefill/decode disaggregated pool splits")
	prefillSystem := fs.String("prefill-system", "", "system preset for the disaggregated prefill pool (empty = same as -system)")
	noPreScreen := fs.Bool("no-prescreen", false, "disable the closed-form capacity pre-screen (escape hatch; identical results, slower)")
	step := fs.Int("step", 0, "right-size: sweep processor budgets in steps of this size (0 = single search)")
	max := fs.Int("max", 0, "right-size: largest processor budget of the sweep")
	asJSON := fs.Bool("json", false, "emit the result as canonical JSON instead of the report")
	outPath := fs.String("o", "", "write JSON output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec serving.Spec
	if *scenario != "" {
		sc, err := config.Load[config.ServingScenario](*scenario)
		if err != nil {
			return err
		}
		if spec, err = sc.Resolve(); err != nil {
			return err
		}
	} else {
		m, sys, err := c.resolve()
		if err != nil {
			return err
		}
		spec = serving.Spec{
			Model:  m,
			System: sys,
			Workload: serving.Workload{
				Mix: []serving.Bucket{{PromptLen: *prompt, GenLen: *gen, Weight: 1}},
				SLO: serving.SLO{TTFT: units.Seconds(*ttft), TPOT: units.Seconds(*tpot)},
			},
			Space: serving.Space{
				Procs:        c.procs,
				MaxBatch:     *maxBatch,
				MaxTP:        *maxTP,
				MaxPP:        *maxPP,
				MaxReplicas:  *maxReplicas,
				KVOffload:    *kvOffload,
				Disaggregate: *disagg,
			},
		}
		if *prefillSystem != "" {
			ps, err := system.Preset(*prefillSystem, sys.Procs)
			if err != nil {
				return fmt.Errorf("serve-search: prefill system: %w", err)
			}
			spec.PrefillSystem = &ps
		}
	}

	ctx, cleanup, err := rt.apply(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	opts := serving.Options{DisablePreScreen: *noPreScreen}
	closeStore, err := rt.openServingStore(&opts)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeStore(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	var prog search.Progress
	rt.attachServingProgress(&opts, &prog)

	if *step > 0 {
		sizes := search.Sizes(*step, *max)
		if len(sizes) == 0 {
			return fmt.Errorf("serve-search: empty size range (step %d, max %d)", *step, *max)
		}
		pts, err := serving.Sweep(ctx, spec, sizes, opts)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "calculon: sweep stopped early — %s\n", prog.Snapshot())
			}
			return err
		}
		if *asJSON {
			return writeJSON(*outPath, pts)
		}
		fmt.Printf("%s serving %s, right-sizing over %d budgets:\n", spec.Model.Name, spec.System.Name, len(pts))
		for _, p := range pts {
			if p.Result.Best == nil {
				fmt.Printf("  %5d procs: no deployment meets the SLOs\n", p.Procs)
				continue
			}
			b := p.Result.Best
			fmt.Printf("  %5d procs: %d feasible, best $%.2f/Mtok  %.1f tok/s/user  %.0f tok/s cluster  %s\n",
				p.Procs, p.Result.Feasible, b.CostPerMToken, b.UserTokensPerSec, b.ClusterTokensPerSec, deploymentLabel(*b))
		}
		return nil
	}

	res, err := serving.Search(ctx, spec, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "calculon: search stopped early — %s\n", prog.Snapshot())
		}
		return err
	}
	if *asJSON {
		return writeJSON(*outPath, res)
	}
	fmt.Printf("evaluated %d engine configurations, %d SLO-feasible deployments (%d pre-screened)\n",
		res.Evaluated, res.Feasible, res.PreScreened)
	if prog.Snapshot().StoreHits > 0 {
		fmt.Printf("verdict served from result store %s — nothing re-evaluated\n", rt.store)
	}
	if res.Best == nil {
		fmt.Printf("no deployment of %s on ≤%d × %s meets TTFT %v / TPOT %v\n",
			spec.Model.Name, spec.Space.Procs, spec.System.Name, spec.Workload.SLO.TTFT, spec.Workload.SLO.TPOT)
		return nil
	}
	fmt.Println("Pareto frontier (cheapest first):")
	for _, d := range res.Frontier {
		fmt.Printf("  $%8.2f/Mtok  %7.1f tok/s/user  %10.0f tok/s cluster  TTFT %-10v %s\n",
			d.CostPerMToken, d.UserTokensPerSec, d.ClusterTokensPerSec, d.TTFT, deploymentLabel(d))
	}
	return nil
}

// deploymentLabel renders a deployment's shape compactly: parallelism,
// batch, pools, and KV placement.
func deploymentLabel(d serving.Deployment) string {
	s := fmt.Sprintf("t%d p%d b%d ×%d", d.TP, d.PP, d.Batch, d.Replicas)
	if d.Disaggregated {
		s += fmt.Sprintf("+%dpf", d.PrefillReplicas)
	}
	if d.KVOffload {
		s += " kv-offload"
	}
	return fmt.Sprintf("%s (%d procs)", s, d.Procs)
}
