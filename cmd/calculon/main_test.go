package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput: %s", ferr, out)
	}
	return out
}

func TestDispatchPresets(t *testing.T) {
	out := capture(t, func() error { return dispatch(context.Background(), "presets", nil) })
	for _, frag := range []string{"gpt3-175B", "megatron-1T", "a100-80g", "h100-80g"} {
		if !strings.Contains(out, frag) {
			t.Errorf("presets output missing %q", frag)
		}
	}
}

func TestDispatchRun(t *testing.T) {
	out := capture(t, func() error {
		return dispatch(context.Background(), "run", []string{"-model", "gpt3-13B", "-batch", "8",
			"-procs", "8", "-tp", "8", "-pp", "1", "-dp", "1", "-recompute", "none", "-layers"})
	})
	for _, frag := range []string{"batch time", "MFU", "attn_qkv", "mlp_fc2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("run output missing %q:\n%s", frag, out)
		}
	}
}

func TestDispatchRunScenario(t *testing.T) {
	root := repoRootForTest(t)
	out := capture(t, func() error {
		return dispatch(context.Background(), "run", []string{"-scenario",
			filepath.Join(root, "configs", "scenarios", "validation-1t-full.json")})
	})
	if !strings.Contains(out, "megatron-1T") {
		t.Errorf("scenario run output missing model:\n%s", out)
	}
}

func TestDispatchStudyJSON(t *testing.T) {
	out := capture(t, func() error { return dispatch(context.Background(), "study", []string{"table2", "-json"}) })
	var rows []map[string]any
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatalf("study -json is not valid JSON: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("want 8 validation rows, got %d", len(rows))
	}
}

func TestDispatchInfer(t *testing.T) {
	out := capture(t, func() error {
		return dispatch(context.Background(), "infer", []string{"-model", "gpt3-13B", "-tp", "8", "-pp", "1",
			"-prompt", "128", "-gen", "16", "-serve-batch", "2"})
	})
	for _, frag := range []string{"prefill", "per-token", "throughput"} {
		if !strings.Contains(out, frag) {
			t.Errorf("infer output missing %q:\n%s", frag, out)
		}
	}
}

func TestDispatchTimeline(t *testing.T) {
	out := capture(t, func() error {
		return dispatch(context.Background(), "timeline", []string{"-model", "gpt3-13B", "-batch", "12",
			"-tp", "4", "-pp", "4", "-interleave", "2", "-width", "80"})
	})
	if !strings.Contains(out, "stage  0") || !strings.Contains(out, "bubble") {
		t.Errorf("timeline output incomplete:\n%s", out)
	}
}

func TestDispatchSensitivity(t *testing.T) {
	out := capture(t, func() error {
		return dispatch(context.Background(), "sensitivity", []string{"-model", "gpt3-13B", "-batch", "8",
			"-procs", "8", "-tp", "8", "-pp", "1", "-dp", "1", "-recompute", "none"})
	})
	if !strings.Contains(out, "matrix throughput") {
		t.Errorf("sensitivity output incomplete:\n%s", out)
	}
}

// TestDispatchSearchCancelled is the CLI half of the graceful-shutdown
// contract: a cancelled context (what SIGINT produces in main) makes the
// search subcommand return context.Canceled promptly instead of running the
// full sweep, and a -timeout produces context.DeadlineExceeded on its own.
func TestDispatchSearchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := dispatch(ctx, "search", []string{"-model", "gpt3-13B", "-batch", "64", "-procs", "64"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDispatchSearchTimeout(t *testing.T) {
	err := dispatch(context.Background(), "search", []string{"-model", "gpt3-175B", "-batch", "512",
		"-procs", "512", "-timeout", "50ms"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch(context.Background(), "bogus", nil); err != errUnknownCommand {
		t.Fatalf("want errUnknownCommand, got %v", err)
	}
}

func repoRootForTest(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}
