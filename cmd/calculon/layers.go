package main

import (
	"fmt"
	"os"

	"calculon/internal/execution"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/system"
)

// printLayers renders the per-layer cost profile of one transformer block.
func printLayers(m model.LLM, sys system.System, st execution.Strategy) error {
	rows, err := perf.LayerTimes(m, sys, st)
	if err != nil {
		return err
	}
	table := [][]string{{"layer", "engine", "fwd FLOPs", "fwd traffic", "fwd time", "bound", "bwd time", "weights", "acts"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Name, r.Engine.String(),
			r.FwdFLOPs.String(), r.FwdTraffic.String(),
			r.FwdTime.String(), r.FwdBound, r.BwdTime.String(),
			r.WeightBytes.String(), r.ActBytes.String(),
		})
	}
	fmt.Println("per-layer profile of one transformer block (one microbatch):")
	report.Table(os.Stdout, table)
	return nil
}
