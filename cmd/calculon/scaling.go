package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"calculon/internal/execution"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
)

func cmdScaling(ctx context.Context, args []string) (retErr error) {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	c := addCommon(fs)
	rt := addRuntime(fs)
	step := fs.Int("step", 64, "system-size step")
	max := fs.Int("max", 1024, "largest system size")
	tol := fs.Float64("tolerance", 0.10, "right-size efficiency tolerance")
	maxIl := fs.Int("max-interleave", 4, "cap on the interleave factor")
	asCSV := fs.Bool("csv", false, "emit the sweep as CSV instead of a chart")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, tmpl, err := c.resolve()
	if err != nil {
		return err
	}
	sizes := search.Sizes(*step, *max)
	if len(sizes) == 0 {
		return fmt.Errorf("scaling: empty size range (step %d, max %d)", *step, *max)
	}
	ctx, cleanup, err := rt.apply(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	opts := search.Options{
		Enum: execution.EnumOptions{
			Features:      execution.FeatureAll,
			PinBeneficial: true,
			MaxInterleave: *maxIl,
		},
	}
	closeStore, err := rt.openStore(&opts)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeStore(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	var prog search.Progress
	rt.attachProgress(&opts, &prog)
	pts, err := search.SystemSize(ctx, m, func(n int) system.System { return tmpl.WithProcs(n) },
		sizes, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "calculon: sweep stopped early — %s\n", prog.Snapshot())
		}
		return err
	}
	snap := prog.Snapshot()
	fmt.Printf("swept %d sizes: evaluated %d strategies (%d pre-screened, %d subtree-pruned, %d cache hits)\n",
		len(pts), snap.Evaluated, snap.PreScreened, snap.SubtreePruned, snap.CacheHits)
	if snap.StoreHits > 0 {
		fmt.Printf("%d of %d sizes served from result store %s\n", snap.StoreHits, len(pts), rt.store)
	}
	if *asCSV {
		rows := [][]string{{"gpus", "feasible", "sample_rate", "mfu", "strategy"}}
		for _, p := range pts {
			if !p.Found {
				rows = append(rows, []string{fmt.Sprintf("%d", p.Procs), "false", "", "", ""})
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Procs), "true",
				fmt.Sprintf("%.3f", p.Best.SampleRate),
				fmt.Sprintf("%.4f", p.Best.MFU),
				p.Best.Strategy.String(),
			})
		}
		return report.WriteCSV(os.Stdout, rows)
	}
	bestPerGPU := 0.0
	for _, p := range pts {
		if p.Found {
			if r := p.Best.SampleRate / float64(p.Procs); r > bestPerGPU {
				bestPerGPU = r
			}
		}
	}
	views := make([]report.ScalingPointView, len(pts))
	for i, p := range pts {
		v := report.ScalingPointView{X: p.Procs, Y: -1}
		if p.Found && bestPerGPU > 0 {
			v.Y = p.Best.SampleRate / (bestPerGPU * float64(p.Procs))
		}
		views[i] = v
	}
	report.Scaling(os.Stdout, fmt.Sprintf("%s on %s — best sample rate per size (relative scaling)", m.Name, tmpl.Name), views, 40)

	if eff, ok := search.BestEfficiency(pts); ok {
		fmt.Printf("\nmost efficient size: %d GPUs (%.2f samples/s per GPU)\n",
			eff.Procs, eff.Best.SampleRate/float64(eff.Procs))
	}
	if rs, ok := search.RightSize(pts, *tol); ok {
		fmt.Printf("right-size (within %.0f%% of best efficiency): %d GPUs at %.1f samples/s with %v\n",
			100**tol, rs.Procs, rs.Best.SampleRate, rs.Best.Strategy)
	}
	return nil
}
