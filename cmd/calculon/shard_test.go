package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDispatchShardMergeBytes is the CLI half of the sharded-sweep
// determinism contract: running the same search as three shards and merging
// the partial files reproduces the single-process `-json` output byte for
// byte. This is the same check the CI shard-merge job runs on the built
// binary; here it pins the dispatch plumbing (flag parsing, -o files, the
// canonical encoding) without a process boundary.
func TestDispatchShardMergeBytes(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-model", "gpt3-13B", "-batch", "32", "-procs", "16",
		"-system", "a100-80g", "-features", "seqpar", "-topk", "3", "-pareto"}

	single := filepath.Join(dir, "single.json")
	args := append(append([]string{}, common...), "-json", "-o", single)
	if err := dispatch(context.Background(), "search", args); err != nil {
		t.Fatal(err)
	}

	var parts []string
	for i := 1; i <= 3; i++ {
		part := filepath.Join(dir, fmt.Sprintf("part%d.json", i))
		args := append(append([]string{}, common...), "-shard", fmt.Sprintf("%d/3", i), "-o", part)
		if err := dispatch(context.Background(), "search", args); err != nil {
			t.Fatalf("shard %d/3: %v", i, err)
		}
		parts = append(parts, part)
	}

	merged := filepath.Join(dir, "merged.json")
	if err := dispatch(context.Background(), "merge", append([]string{"-o", merged}, parts...)); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("merged shard output differs from the single-process run:\nsingle: %d bytes\nmerged: %d bytes", len(want), len(got))
	}
	// The canonical JSON must not leak the non-deterministic counters.
	if bytes.Contains(want, []byte("cache_hits")) {
		t.Error("canonical search JSON must omit cache_hits (not split-invariant)")
	}
}

// TestDispatchShardBadSpec pins the 1-based CLI shard grammar errors.
func TestDispatchShardBadSpec(t *testing.T) {
	for _, bad := range []string{"0/3", "4/3", "3", "a/b", "1/0"} {
		err := dispatch(context.Background(), "search", []string{"-model", "gpt3-13B", "-batch", "32",
			"-procs", "16", "-shard", bad})
		if err == nil {
			t.Errorf("shard %q: want error, got nil", bad)
		}
	}
}

// TestDispatchMergeRejectsGarbage: merging a non-shard file must fail loudly
// rather than produce a half-merged result.
func TestDispatchMergeRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bogus := filepath.Join(dir, "bogus.json")
	if err := os.WriteFile(bogus, []byte(`{"not_a_shard": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := dispatch(context.Background(), "merge", []string{bogus})
	if err == nil || !strings.Contains(err.Error(), "not a shard result") {
		t.Fatalf("want 'not a shard result' error, got %v", err)
	}
	if err := dispatch(context.Background(), "merge", nil); err == nil {
		t.Fatal("merge with no files must fail")
	}
}
