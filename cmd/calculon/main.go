// Command calculon is the CLI of the Calculon reproduction: single-point
// performance estimates, exhaustive execution search, system-size scaling
// sweeps, and one-shot reproduction of every table and figure of the
// paper's evaluation.
//
// Usage:
//
//	calculon run     -model gpt3-175B -procs 4096 -tp 8 -pp 64 -dp 8 [flags]
//	calculon run     -scenario scenario.json
//	calculon search  -model gpt3-175B -batch 4096 -procs 4096 [flags]
//	calculon study   <fig3|fig4|fig5|fig6|fig7|fig9|fig10|fig11|table1|table2|table3|table4> [-full]
//	calculon presets
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"calculon/internal/config"
	"calculon/internal/execution"
	"calculon/internal/experiments"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/report"
	"calculon/internal/search"
	"calculon/internal/system"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the context instead of killing the process, so
	// long sweeps shut their worker pools down cleanly and report the
	// partial progress they made. A second signal kills immediately
	// (signal.NotifyContext restores default handling after stop).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := dispatch(ctx, os.Args[1], os.Args[2:]); err != nil {
		stop()
		switch {
		case err == errUnknownCommand:
			fmt.Fprintf(os.Stderr, "calculon: unknown command %q\n", os.Args[1])
			usage()
			os.Exit(2)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "calculon: interrupted")
			os.Exit(130)
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintln(os.Stderr, "calculon: timed out")
			os.Exit(124)
		case errors.Is(err, perf.ErrInfeasible):
			// Structurally impossible requests (a TP that does not divide the
			// heads, a PP that does not divide the blocks) are usage errors,
			// not runtime failures.
			fmt.Fprintln(os.Stderr, "calculon:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "calculon:", err)
		os.Exit(1)
	}
}

// errUnknownCommand marks an unrecognized subcommand for main's exit code.
var errUnknownCommand = fmt.Errorf("unknown command")

// dispatch routes one subcommand; extracted from main for testability. The
// context carries cancellation from signals (and tests); commands that run
// searches thread it through to the engines.
func dispatch(ctx context.Context, cmd string, args []string) error {
	switch cmd {
	case "run":
		return cmdRun(args)
	case "search":
		return cmdSearch(ctx, args)
	case "merge":
		return cmdMerge(args)
	case "scaling":
		return cmdScaling(ctx, args)
	case "timeline":
		return cmdTimeline(args)
	case "sensitivity":
		return cmdSensitivity(args)
	case "infer":
		return cmdInfer(args)
	case "serve-search":
		return cmdServeSearch(ctx, args)
	case "tco":
		return cmdTCO(ctx, args)
	case "study":
		return cmdStudy(ctx, args)
	case "calibrate":
		return cmdCalibrate(args)
	case "presets":
		return cmdPresets()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		return errUnknownCommand
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  calculon run     -model <preset> -procs N -tp T -pp P -dp D [flags]   single estimate
  calculon run     -scenario file.json                                  estimate from a spec file
  calculon search  -model <preset> -procs N [flags]                     optimal execution search (§5.1)
  calculon search  ... -shard 2/3 -o part2.json                         evaluate one shard of a search
  calculon merge   part1.json part2.json part3.json                     merge shard results bit-identically
  calculon study   <experiment> [-full]                                 reproduce a paper table/figure
  calculon scaling -model <preset> -step 64 -max 1024 [flags]           size sweep + right-sizing (§5.2)
  calculon timeline -model <preset> -tp T -pp P -interleave V [flags]   render the pipeline schedule (Fig. 2)
  calculon sensitivity -model <preset> -procs N -tp T -pp P [flags]     batch-time elasticity per resource
  calculon infer   -model <preset> -tp T -pp P [flags]                  serving (prefill+decode) estimate
  calculon serve-search -model <preset> -procs N -ttft 10 -tpot 0.1     SLO-constrained serving co-design search
  calculon serve-search -scenario serving-chat.json -disaggregate       ... from a serving scenario file
  calculon serve-search ... -step 16 -max 128                           right-size the serving cluster
  calculon tco     -model <preset> -procs N -tokens 450e9 [flags]       training-run cost of the best strategy
  calculon calibrate [-lo 0.7 -hi 1.3 -steps 25]                        refit efficiency curves vs Table 2
  calculon presets                                                      list model/system presets

experiments: fig2 fig3 fig4 fig5 fig6 fig7 fig9 fig10 fig11 table1 table2 table3 table4 seqscale

runtime flags (search, serve-search, scaling, tco, study): -timeout 5m abort with partial
progress; -progress 2s live stderr ticker; -pprof localhost:6060 and
-cpuprofile cpu.out profiling hooks. Ctrl-C interrupts any sweep cleanly.`)
}

type commonFlags struct {
	model  string
	batch  int
	system string
	procs  int
	hbm    string
	mem2   string
	mem2BW float64
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.model, "model", "gpt3-175B", "LLM preset name (see `calculon presets`)")
	fs.IntVar(&c.batch, "batch", 0, "global batch override (0 keeps the preset batch)")
	fs.StringVar(&c.system, "system", "a100-80g", "system preset name")
	fs.IntVar(&c.procs, "procs", 4096, "number of processors")
	fs.StringVar(&c.hbm, "hbm", "", "first-tier capacity override, e.g. 160GiB")
	fs.StringVar(&c.mem2, "mem2", "", "offload-tier capacity, e.g. 512GiB (empty disables)")
	fs.Float64Var(&c.mem2BW, "mem2-bw", 100e9, "offload-tier bandwidth in B/s per direction")
	return c
}

func (c *commonFlags) resolve() (model.LLM, system.System, error) {
	m, err := model.Preset(c.model)
	if err != nil {
		return m, system.System{}, err
	}
	if c.batch > 0 {
		m = m.WithBatch(c.batch)
	}
	sys, err := system.Preset(c.system, c.procs)
	if err != nil {
		return m, sys, err
	}
	if c.hbm != "" {
		cap, err := parseBytes(c.hbm)
		if err != nil {
			return m, sys, err
		}
		sys = sys.WithMem1Capacity(cap)
	}
	if c.mem2 != "" {
		cap, err := parseBytes(c.mem2)
		if err != nil {
			return m, sys, err
		}
		sys = sys.WithMem2(system.Memory{Capacity: cap, Bandwidth: bps(c.mem2BW)})
	}
	return m, sys, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	c := addCommon(fs)
	scenario := fs.String("scenario", "", "JSON scenario file (overrides other flags)")
	tp := fs.Int("tp", 8, "tensor parallelism degree")
	pp := fs.Int("pp", 8, "pipeline parallelism degree")
	dp := fs.Int("dp", 1, "data parallelism degree")
	mb := fs.Int("microbatch", 1, "microbatch size")
	il := fs.Int("interleave", 1, "pipeline interleaving factor")
	recompute := fs.String("recompute", "full", "activation recompute: none|attn|full")
	seqpar := fs.Bool("seqpar", false, "sequence parallelism (implies TP RS+AG)")
	overlap := fs.String("tp-overlap", "none", "TP comm overlap: none|pipe|ring")
	dpOverlap := fs.Bool("dp-overlap", false, "overlap DP communication with backward")
	shard := fs.Bool("shard-optimizer", false, "shard optimizer state across DP")
	fused := fs.Bool("fused", false, "fuse element-wise layers")
	offload := fs.String("offload", "", "comma-free offload letters: w(eights) a(ctivations) o(ptimizer), e.g. wao")
	inference := fs.Bool("inference", false, "forward-only inference estimate")
	layersFlag := fs.Bool("layers", false, "print the per-layer cost profile of one block")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		m   model.LLM
		sys system.System
		st  execution.Strategy
		err error
	)
	if *scenario != "" {
		sc, err := config.Load[config.Scenario](*scenario)
		if err != nil {
			return err
		}
		m, sys, st, err = sc.Resolve()
		if err != nil {
			return err
		}
	} else {
		m, sys, err = c.resolve()
		if err != nil {
			return err
		}
		st = execution.Strategy{
			TP: *tp, PP: *pp, DP: *dp, Microbatch: *mb, Interleave: *il,
			OneFOneB:  true,
			Recompute: execution.RecomputeMode(*recompute),
			TPOverlap: execution.TPOverlapMode(*overlap),
			DPOverlap: *dpOverlap, OptimSharding: *shard, FusedLayers: *fused,
			Inference: *inference,
		}
		if *seqpar {
			st.TPRSAG, st.SeqParallel = true, true
		}
		for _, ch := range *offload {
			switch ch {
			case 'w':
				st.WeightOffload = true
			case 'a':
				st.ActOffload = true
			case 'o':
				st.OptimOffload = true
			default:
				return fmt.Errorf("bad -offload letter %q", string(ch))
			}
		}
	}
	res, err := perf.Run(m, sys, st)
	if err != nil {
		return err
	}
	report.Breakdown(os.Stdout, res)
	if *layersFlag {
		fmt.Println()
		if err := printLayers(m, sys, st); err != nil {
			return err
		}
	}
	return nil
}

func cmdSearch(ctx context.Context, args []string) (retErr error) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	c := addCommon(fs)
	rt := addRuntime(fs)
	features := fs.String("features", "all", "optimization family: baseline|seqpar|all")
	topK := fs.Int("topk", 10, "print the K best configurations")
	hist := fs.Bool("histogram", false, "print the Fig. 6-style sample-rate histogram")
	pareto := fs.Bool("pareto", false, "print the time-vs-memory Pareto front")
	pin := fs.Bool("pin", false, "pin always-beneficial toggles (faster, same optimum)")
	maxIl := fs.Int("max-interleave", 0, "cap the interleave factor (0 = unlimited)")
	shardFlag := fs.String("shard", "", "evaluate one shard i/n (1-based, e.g. 2/3) of the search and emit a mergeable partial result as JSON")
	asJSON := fs.Bool("json", false, "emit the result as canonical JSON instead of the report")
	outPath := fs.String("o", "", "write JSON output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, sys, err := c.resolve()
	if err != nil {
		return err
	}
	ctx, cleanup, err := rt.apply(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	opts := search.Options{
		Enum: execution.EnumOptions{
			Features:      execution.FeatureSet(*features),
			MaxInterleave: *maxIl,
			PinBeneficial: *pin,
		},
		TopK:         *topK,
		CollectRates: *hist,
		Pareto:       *pareto,
	}
	if *shardFlag != "" {
		// Sharded runs bypass the store (it operates on whole searches) and
		// emit a mergeable ShardResult instead of the human report.
		sh, err := search.ParseShard(*shardFlag)
		if err != nil {
			return err
		}
		var prog search.Progress
		rt.attachProgress(&opts, &prog)
		sres, err := search.ExecutionShard(ctx, m, sys, opts, sh)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "calculon: shard %s stopped early — %s\n", sh, prog.Snapshot())
			}
			return err
		}
		return writeJSON(*outPath, sres)
	}
	closeStore, err := rt.openStore(&opts)
	if err != nil {
		return err
	}
	defer func() {
		// A flush failure means fresh verdicts never became durable; the
		// search output above is still valid, but the exit code must say so.
		if cerr := closeStore(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	var prog search.Progress
	rt.attachProgress(&opts, &prog)
	res, err := search.Execution(ctx, m, sys, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "calculon: search stopped early — %s\n", prog.Snapshot())
		}
		return err
	}
	if *asJSON {
		return writeJSON(*outPath, newSearchOutput(res))
	}
	fmt.Printf("evaluated %d strategies, %d feasible (%d pre-screened, %d subtree-pruned, %d cache hits)\n",
		res.Evaluated, res.Feasible, res.PreScreened, res.SubtreePruned, res.CacheHits)
	if prog.Snapshot().StoreHits > 0 {
		fmt.Printf("verdict served from result store %s — nothing re-evaluated\n", rt.store)
	}
	if !res.Found() {
		fmt.Println("no feasible configuration")
		return nil
	}
	for i, r := range res.Top {
		fmt.Printf("#%d  %.1f samples/s  MFU %.2f%%  %v  mem1 %v\n",
			i+1, r.SampleRate, 100*r.MFU, r.Strategy, r.Mem1.Total())
	}
	fmt.Println()
	report.Breakdown(os.Stdout, res.Best)
	if *pareto {
		fmt.Println("\ntime-vs-memory Pareto front (fastest first):")
		for _, r := range res.Pareto {
			fmt.Printf("  %v  mem1 %v  %v\n", r.BatchTime, r.Mem1.Total(), r.Strategy)
		}
	}
	if *hist {
		h := search.NewHistogram(res.Rates, 10)
		report.HistogramChart(os.Stdout, "sample-rate distribution", h.Min, h.Max, h.Counts, 40)
		fmt.Printf("within 10%% of best: %d of %d\n",
			search.WithinFraction(res.Rates, 0.10), res.Feasible)
	}
	return nil
}

func cmdStudy(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	rt := addRuntime(fs)
	full := fs.Bool("full", false, "paper-sized sweeps (minutes) instead of reduced ones")
	asJSON := fs.Bool("json", false, "emit the experiment's data as JSON instead of rendering it")
	if len(args) == 0 {
		return fmt.Errorf("study: missing experiment name")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	ctx, cleanup, err := rt.apply(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	scale := experiments.ScaleSmall
	if *full {
		scale = experiments.ScaleFull
	}
	w := os.Stdout
	emit := func(render func(), v any) error {
		if *asJSON {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		}
		render()
		return nil
	}
	switch name {
	case "table1":
		rows, err := experiments.Table1Ablation()
		if err != nil {
			return err
		}
		return emit(func() { experiments.RenderTable1(w, rows) }, rows)
	case "table2":
		rows, err := experiments.Table2Validation()
		if err != nil {
			return err
		}
		return emit(func() { experiments.RenderTable2(w, rows) }, rows)
	case "table3":
		evals, err := experiments.Table3Budget(ctx, scale)
		if err != nil {
			return err
		}
		return emit(func() { experiments.RenderTable3(w, evals) }, evals)
	case "table4", "fig12":
		rows, err := experiments.Table4Strategies(ctx, scale)
		if err != nil {
			return err
		}
		return emit(func() { experiments.RenderTable4(w, rows) }, rows)
	case "fig2":
		if err := experiments.Fig2Schedule(w); err != nil {
			return err
		}
	case "fig3":
		res, err := experiments.Fig3Breakdown()
		if err != nil {
			return err
		}
		return emit(func() { report.Breakdown(w, res) }, res)
	case "fig4":
		sweeps, err := experiments.Fig4Parallelism()
		if err != nil {
			return err
		}
		return emit(func() { experiments.RenderFig4(w, sweeps) }, sweeps)
	case "fig5":
		for _, v := range experiments.Fig5Variants() {
			g, err := experiments.Fig5Optimizations(ctx, v, scale)
			if err != nil {
				return err
			}
			experiments.RenderFig5(w, g)
			fmt.Fprintln(w)
		}
	case "fig6":
		stats, err := experiments.Fig6SearchSpace(ctx, scale)
		if err != nil {
			return err
		}
		return emit(func() { experiments.RenderFig6(w, stats) }, stats)
	case "fig7", "fig10":
		curves, err := experiments.ScalingStudy(ctx, name == "fig10", scale)
		if err != nil {
			return err
		}
		title := "Fig. 7 — LLM training scalability (no offloading)"
		if name == "fig10" {
			title = "Fig. 10 — LLM training scalability (100 GB/s offloading)"
		}
		experiments.RenderScaling(w, title, curves)
	case "fig9":
		for _, infinite := range []bool{true, false} {
			g, err := experiments.Fig9Offload(ctx, infinite, scale)
			if err != nil {
				return err
			}
			experiments.RenderFig9(w, g)
			fmt.Fprintln(w)
		}
	case "fig11":
		base, err := experiments.ScalingStudy(ctx, false, scale)
		if err != nil {
			return err
		}
		off, err := experiments.ScalingStudy(ctx, true, scale)
		if err != nil {
			return err
		}
		sp, err := experiments.OffloadSpeedup(base, off)
		if err != nil {
			return err
		}
		experiments.RenderSpeedup(w, sp)
	case "seqscale":
		pts, err := experiments.SeqScale(ctx, scale)
		if err != nil {
			return err
		}
		return emit(func() { experiments.RenderSeqScale(w, pts) }, pts)
	default:
		return fmt.Errorf("study: unknown experiment %q", name)
	}
	return nil
}

func cmdPresets() error {
	fmt.Println("LLM presets:")
	for _, n := range model.PresetNames() {
		fmt.Printf("  %v\n", model.MustPreset(n))
	}
	fmt.Println("system presets:")
	for _, n := range system.PresetNames() {
		fmt.Printf("  %s\n", n)
	}
	return nil
}
