package main

import (
	"bufio"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestRunAsMain turns the test binary into the real CLI: when
// CALCULON_BE_MAIN is set, it replaces os.Args with CALCULON_ARGS
// (newline-separated) and calls main(), so the exit-code tests below can
// observe the process-level contract without a separate go build.
func TestRunAsMain(t *testing.T) {
	if os.Getenv("CALCULON_BE_MAIN") != "1" {
		t.Skip("helper for the exit-code tests; not a test on its own")
	}
	os.Args = []string{"calculon"}
	if env := os.Getenv("CALCULON_ARGS"); env != "" {
		os.Args = append(os.Args, strings.Split(env, "\n")...)
	}
	main()
	// main returned without exiting: the success path. The test framework
	// exits 0 from here.
}

// beMain re-executes the test binary as the CLI with the given args.
func beMain(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run", "^TestRunAsMain$")
	cmd.Env = append(os.Environ(),
		"CALCULON_BE_MAIN=1",
		"CALCULON_ARGS="+strings.Join(args, "\n"))
	return cmd
}

// TestExitCodeConvention is the table the daemon reuses: 0 success, 2 usage
// (unknown subcommand, unknown flag, bad flag value, no arguments — each
// with a usage message on stderr), 124 timeout, 130 SIGINT.
func TestExitCodeConvention(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		want       int
		wantStderr string
	}{
		{"success", []string{"presets"}, 0, ""},
		{"no arguments", nil, 2, "usage:"},
		{"unknown subcommand", []string{"bogus"}, 2, "unknown command"},
		{"unknown flag", []string{"search", "-definitely-not-a-flag"}, 2, "flag provided but not defined"},
		{"bad flag value", []string{"run", "-tp", "zebra"}, 2, "invalid value"},
		{"infer non-dividing tp", []string{"infer", "-model", "gpt3-175B", "-tp", "7"}, 2, "infeasible"},
		{"infer non-dividing pp", []string{"infer", "-model", "gpt3-175B", "-tp", "8", "-pp", "7"}, 2, "infeasible"},
		{"timeout", []string{"search", "-model", "gpt3-13B", "-batch", "64", "-procs", "64",
			"-max-interleave", "2", "-timeout", "50ms"}, 124, "timed out"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmd := beMain(tc.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			code := 0
			if err != nil {
				ee, ok := err.(*exec.ExitError)
				if !ok {
					t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
				}
				code = ee.ExitCode()
			}
			if code != tc.want {
				t.Fatalf("calculon %v exited %d, want %d\nstderr: %s",
					tc.args, code, tc.want, stderr.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestExitCodeSIGINT interrupts a long search mid-flight and expects the
// 130 convention with a partial-progress report, the process-level half of
// the cancellation contract.
func TestExitCodeSIGINT(t *testing.T) {
	cmd := beMain("search", "-model", "gpt3-175B", "-batch", "3072", "-procs", "4096",
		"-progress", "25ms")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() })
	defer killer.Stop()

	// Wait for the first progress line so the interrupt lands mid-search,
	// then keep draining the pipe so the child never blocks on a full one.
	scanner := bufio.NewScanner(stderr)
	var lines []string
	interrupted := false
	for scanner.Scan() {
		lines = append(lines, scanner.Text())
		if !interrupted && strings.Contains(scanner.Text(), "evaluated") {
			interrupted = true
			if err := cmd.Process.Signal(os.Interrupt); err != nil {
				t.Fatal(err)
			}
		}
	}
	err = cmd.Wait()
	if !interrupted {
		t.Fatalf("no progress line before the search ended:\n%s", strings.Join(lines, "\n"))
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted search exited cleanly (err %v):\n%s", err, strings.Join(lines, "\n"))
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("interrupted search exited %d, want 130:\n%s", code, strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "interrupted") || !strings.Contains(joined, "stopped early") {
		t.Fatalf("stderr missing the partial-progress report:\n%s", joined)
	}
}
