package main

import (
	"flag"
	"fmt"
	"os"

	"calculon/internal/execution"
	"calculon/internal/perf"
	"calculon/internal/pipesim"
)

func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	c := addCommon(fs)
	tp := fs.Int("tp", 8, "tensor parallelism degree")
	pp := fs.Int("pp", 4, "pipeline parallelism degree")
	dp := fs.Int("dp", 1, "data parallelism degree")
	mb := fs.Int("microbatch", 1, "microbatch size")
	il := fs.Int("interleave", 2, "pipeline interleaving factor")
	recompute := fs.String("recompute", "none", "activation recompute: none|attn|full")
	width := fs.Int("width", 150, "timeline width in characters")
	traceOut := fs.String("trace", "", "also write a Chrome trace-event JSON file (chrome://tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c.procs = *tp * *pp * *dp
	m, sys, err := c.resolve()
	if err != nil {
		return err
	}
	st := execution.Strategy{
		TP: *tp, PP: *pp, DP: *dp, Microbatch: *mb, Interleave: *il, OneFOneB: true,
		Recompute: execution.RecomputeMode(*recompute), TPRSAG: true,
	}
	params, err := perf.PipelineParams(m, sys, st)
	if err != nil {
		return err
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, params); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s\n", *traceOut)
	}
	return pipesim.RenderTimeline(os.Stdout, params, *width)
}

// writeTrace writes the Chrome trace file, surfacing the Close error that
// reports a failed flush of buffered writes.
func writeTrace(path string, params pipesim.Params) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return pipesim.WriteChromeTrace(f, params)
}
