package main

import (
	"flag"
	"fmt"
	"os"

	"calculon/internal/execution"
	"calculon/internal/sensitivity"
)

func cmdSensitivity(args []string) error {
	fs := flag.NewFlagSet("sensitivity", flag.ExitOnError)
	c := addCommon(fs)
	tp := fs.Int("tp", 8, "tensor parallelism degree")
	pp := fs.Int("pp", 8, "pipeline parallelism degree")
	dp := fs.Int("dp", 1, "data parallelism degree")
	mb := fs.Int("microbatch", 1, "microbatch size")
	il := fs.Int("interleave", 1, "pipeline interleaving factor")
	recompute := fs.String("recompute", "full", "activation recompute: none|attn|full")
	frac := fs.Float64("perturb", 0.10, "perturbation fraction (0.10 = ±10%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, sys, err := c.resolve()
	if err != nil {
		return err
	}
	st := execution.Strategy{
		TP: *tp, PP: *pp, DP: *dp, Microbatch: *mb, Interleave: *il, OneFOneB: true,
		Recompute: execution.RecomputeMode(*recompute), TPRSAG: true,
	}
	es, err := sensitivity.Analyze(m, sys, st, *frac)
	if err != nil {
		return err
	}
	fmt.Printf("batch-time sensitivity of %s on %d × %s at %v (±%.0f%% per resource):\n",
		m.Name, sys.Procs, sys.Name, st, 100**frac)
	sensitivity.Render(os.Stdout, *frac, es)
	return nil
}
