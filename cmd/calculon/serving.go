package main

import (
	"context"
	"flag"
	"fmt"

	"calculon/internal/execution"
	"calculon/internal/inference"
	"calculon/internal/perf"
	"calculon/internal/search"
	"calculon/internal/tco"
)

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	c := addCommon(fs)
	tp := fs.Int("tp", 8, "tensor parallelism degree")
	pp := fs.Int("pp", 1, "pipeline parallelism degree")
	prompt := fs.Int("prompt", 512, "prompt length in tokens")
	gen := fs.Int("gen", 256, "generated tokens per sequence")
	batch := fs.Int("serve-batch", 8, "concurrent sequences")
	kvOffload := fs.Bool("kv-offload", false, "stash the KV cache in the second memory tier (-mem2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c.procs = *tp * *pp
	m, sys, err := c.resolve()
	if err != nil {
		return err
	}
	// A TP that does not divide the attention heads (or a PP that does not
	// divide the blocks) has no shardable execution; rejecting here keeps the
	// estimate honest instead of pricing a rounded-off model.
	if *tp < 1 || m.AttnHeads%*tp != 0 {
		return fmt.Errorf("infer: -tp %d does not divide %s's %d attention heads: %w",
			*tp, m.Name, m.AttnHeads, perf.ErrInfeasible)
	}
	if *pp < 1 || m.Blocks%*pp != 0 {
		return fmt.Errorf("infer: -pp %d does not divide %s's %d blocks: %w",
			*pp, m.Name, m.Blocks, perf.ErrInfeasible)
	}
	st := execution.Strategy{
		TP: *tp, PP: *pp, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: execution.RecomputeNone, TPRSAG: true,
	}
	res, err := inference.Estimate(m, sys, st, inference.Workload{
		PromptLen: *prompt, GenLen: *gen, Batch: *batch, KVOffload: *kvOffload,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s serving on %d × %s (t=%d, p=%d)\n", m.Name, c.procs, sys.Name, *tp, *pp)
	fmt.Printf("  prompt %d, generate %d, batch %d\n", *prompt, *gen, *batch)
	fmt.Printf("  prefill (time to first token): %v\n", res.PrefillTime)
	fmt.Printf("  per-token latency:             %v\n", res.StepTime)
	fmt.Printf("  throughput:                    %.1f tokens/s\n", res.TokensPerSec)
	fmt.Printf("  full response time:            %v\n", res.TotalTime)
	bound := "compute"
	if res.DecodeBandwidthBound {
		bound = "memory bandwidth"
	}
	fmt.Printf("  decode bound by:               %s\n", bound)
	fmt.Printf("  per GPU: weights %v, KV cache %v, total %v of %v\n",
		res.WeightBytes, res.KVCacheBytes, res.Mem1Used, sys.Mem1.Capacity)
	return nil
}

func cmdTCO(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tco", flag.ExitOnError)
	c := addCommon(fs)
	rt := addRuntime(fs)
	tokens := fs.Float64("tokens", 450e9, "training tokens")
	capex := fs.Float64("capex", 25_000, "capex per GPU in dollars")
	watts := fs.Float64("watts", 500, "average power per GPU")
	kwh := fs.Float64("kwh", 0.10, "energy price per kWh in dollars")
	pin := fs.Bool("pin", true, "pin always-beneficial toggles in the search")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, sys, err := c.resolve()
	if err != nil {
		return err
	}
	ctx, cleanup, err := rt.apply(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	opts := search.Options{
		Enum: execution.EnumOptions{
			Features:      execution.FeatureAll,
			PinBeneficial: *pin,
			MaxInterleave: 4,
		},
	}
	var prog search.Progress
	rt.attachProgress(&opts, &prog)
	res, err := search.Execution(ctx, m, sys, opts)
	if err != nil {
		return err
	}
	if !res.Found() {
		return fmt.Errorf("no feasible execution for %s on %d × %s", m.Name, sys.Procs, sys.Name)
	}
	assume := tco.DefaultAssumptions()
	assume.CapexPerGPU = *capex
	assume.GPUPowerWatts = *watts
	assume.EnergyCostPerKWh = *kwh
	cost, err := tco.TrainingRun(res.Best, *tokens, assume)
	if err != nil {
		return err
	}
	fmt.Printf("%s, %.3g tokens, best of %d feasible strategies on %d × %s:\n",
		m.Name, *tokens, res.Feasible, sys.Procs, sys.Name)
	fmt.Printf("  strategy: %v (MFU %.1f%%)\n", res.Best.Strategy, 100*res.Best.MFU)
	fmt.Printf("  %v\n", cost)
	return nil
}
