package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"runtime/pprof"
	"time"

	"calculon/internal/resultstore"
	"calculon/internal/search"
	"calculon/internal/serving"
	"calculon/internal/units"
)

// parseBytes adapts units.ParseBytes for flag values.
func parseBytes(s string) (units.Bytes, error) { return units.ParseBytes(s) }

// bps converts a raw float flag to a bandwidth.
func bps(v float64) units.BytesPerSec { return units.BytesPerSec(v) }

// runtimeFlags are the observability and lifecycle flags shared by every
// long-running subcommand: a wall-clock timeout, a live progress ticker on
// stderr, and profiling hooks.
type runtimeFlags struct {
	timeout    time.Duration
	progress   time.Duration
	pprofAddr  string
	cpuprofile string
	workers    int
	store      string
}

// addRuntime registers the runtime flags on a subcommand's FlagSet.
func addRuntime(fs *flag.FlagSet) *runtimeFlags {
	r := &runtimeFlags{}
	fs.DurationVar(&r.timeout, "timeout", 0, "abort after this long, reporting partial progress (0 = no limit)")
	fs.DurationVar(&r.progress, "progress", 0, "print a live progress line to stderr at this interval (0 = off)")
	fs.StringVar(&r.pprofAddr, "pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060")
	fs.StringVar(&r.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.IntVar(&r.workers, "workers", 0, "total worker budget for searches and sweeps (0 = GOMAXPROCS)")
	fs.StringVar(&r.store, "store", "", "persistent result store (JSONL): searches consult it before evaluating and append fresh verdicts (empty disables)")
	return r
}

// openStore opens the persistent result store named by -store and wires it
// into the search options. The returned close function flushes the pending
// batch; its error must reach the user — a verdict that never hit disk is a
// cache that silently re-pays the walk next run.
func (r *runtimeFlags) openStore(opts *search.Options) (func() error, error) {
	if r.store == "" {
		return func() error { return nil }, nil
	}
	st, err := resultstore.Open(r.store)
	if err != nil {
		return nil, err
	}
	if s := st.Stats(); s.Stale > 0 || s.RecoveredBytes > 0 {
		fmt.Fprintf(os.Stderr, "calculon: store %s: %d rows (%d stale, recovered from %d truncated bytes)\n",
			r.store, s.Rows, s.Stale, s.RecoveredBytes)
	}
	opts.Cache = st
	return st.Close, nil
}

// openServingStore is openStore for the serving engine: the same JSONL file
// serves both kinds of verdict, and the serving search gets the store's
// serving.Cache view.
func (r *runtimeFlags) openServingStore(opts *serving.Options) (func() error, error) {
	if r.store == "" {
		return func() error { return nil }, nil
	}
	st, err := resultstore.Open(r.store)
	if err != nil {
		return nil, err
	}
	if s := st.Stats(); s.Stale > 0 || s.RecoveredBytes > 0 {
		fmt.Fprintf(os.Stderr, "calculon: store %s: %d rows (%d stale, recovered from %d truncated bytes)\n",
			r.store, s.Rows, s.Stale, s.RecoveredBytes)
	}
	opts.Cache = st.ServingCache()
	return st.Close, nil
}

// apply derives the command's context from the timeout and starts the
// profiling hooks. The returned cleanup must run before the command exits;
// it stops the CPU profile and releases the timeout.
func (r *runtimeFlags) apply(ctx context.Context) (context.Context, func(), error) {
	cancel := func() {}
	if r.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
	}
	if r.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(r.pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "calculon: pprof server: %v\n", err)
			}
		}()
	}
	stopProfile := func() {}
	if r.cpuprofile != "" {
		f, err := os.Create(r.cpuprofile)
		if err != nil {
			cancel()
			return ctx, nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = fmt.Errorf("%w (closing profile file: %v)", err, cerr)
			}
			cancel()
			return ctx, nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "calculon: cpuprofile: %v\n", err)
			}
		}
	}
	return ctx, func() {
		stopProfile()
		cancel()
	}, nil
}

// attachProgress wires the runtime flags' observability into search options:
// a shared Progress for partial-result reporting, a pre-counted total for
// ETAs, and — when -progress is set — a stderr ticker.
func (r *runtimeFlags) attachProgress(opts *search.Options, prog *search.Progress) {
	opts.Progress = prog
	opts.EstimateTotal = true
	opts.Workers = r.workers
	if r.progress > 0 {
		opts.ProgressInterval = r.progress
		opts.OnProgress = func(s search.ProgressSnapshot) {
			fmt.Fprintf(os.Stderr, "calculon: %s\n", s)
		}
	}
}

// attachServingProgress mirrors attachProgress for serving.Options.
func (r *runtimeFlags) attachServingProgress(opts *serving.Options, prog *search.Progress) {
	opts.Progress = prog
	opts.EstimateTotal = true
	opts.Workers = r.workers
	if r.progress > 0 {
		opts.ProgressInterval = r.progress
		opts.OnProgress = func(s search.ProgressSnapshot) {
			fmt.Fprintf(os.Stderr, "calculon: %s\n", s)
		}
	}
}
