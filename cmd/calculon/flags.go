package main

import (
	"calculon/internal/units"
)

// parseBytes adapts units.ParseBytes for flag values.
func parseBytes(s string) (units.Bytes, error) { return units.ParseBytes(s) }

// bps converts a raw float flag to a bandwidth.
func bps(v float64) units.BytesPerSec { return units.BytesPerSec(v) }
