package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"calculon/internal/perf"
	"calculon/internal/search"
)

// searchOutput is the canonical JSON of a finished search: exactly the
// fields that are bit-identical however the search was executed — single
// process, any worker count, or sharded across machines and merged. Two
// Result fields are deliberately absent: CacheHits (each process warms its
// own block-profile memo, so the count depends on the process split) and
// Rates (ordered by worker completion). The CI shard-merge job diffs this
// encoding byte for byte between a single-process run and a merged sharded
// run; anything added here must keep that property.
type searchOutput struct {
	Evaluated     int           `json:"evaluated"`
	Feasible      int           `json:"feasible"`
	PreScreened   int           `json:"pre_screened"`
	SubtreePruned int           `json:"subtree_pruned"`
	Best          *perf.Result  `json:"best,omitempty"`
	Top           []perf.Result `json:"top,omitempty"`
	Pareto        []perf.Result `json:"pareto,omitempty"`
}

func newSearchOutput(res search.Result) searchOutput {
	out := searchOutput{
		Evaluated:     res.Evaluated,
		Feasible:      res.Feasible,
		PreScreened:   res.PreScreened,
		SubtreePruned: res.SubtreePruned,
		Top:           res.Top,
		Pareto:        res.Pareto,
	}
	if res.Found() {
		best := res.Best
		out.Best = &best
	}
	return out
}

// writeJSON writes v as indented JSON with a trailing newline to path, or
// to stdout when path is empty. The encoding (MarshalIndent, two-space
// indent, "\n") is the byte-level contract the shard-merge determinism
// checks diff against.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// cmdMerge combines the partial results of a complete shard set — the files
// `calculon search -shard i/n` wrote — into exactly the single-process
// answer, in the same canonical JSON a single `calculon search -json` run
// emits.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	outPath := fs.String("o", "", "write the merged result to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("merge: need the shard result files, e.g. calculon merge shard-*.json")
	}
	shards := make([]search.ShardResult, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		var sr search.ShardResult
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sr); err != nil {
			return fmt.Errorf("merge: %s: not a shard result: %v", f, err)
		}
		shards = append(shards, sr)
	}
	res, err := search.MergeResults(shards)
	if err != nil {
		return err
	}
	return writeJSON(*outPath, newSearchOutput(res))
}
