package main

import (
	"flag"
	"fmt"

	"calculon/internal/calibrate"
)

func cmdCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	lo := fs.Float64("lo", 0.7, "lowest matrix-efficiency scale to try")
	hi := fs.Float64("hi", 1.3, "highest matrix-efficiency scale to try")
	steps := fs.Int("steps", 25, "sweep resolution")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fit, err := calibrate.Fit(*lo, *hi, *steps)
	if err != nil {
		return err
	}
	fmt.Println("matrix-efficiency calibration against the Table 2 Selene measurements:")
	for _, p := range fit.Sweep {
		marker := ""
		if p.Factor == fit.BestFactor {
			marker = "  <- best"
		}
		fmt.Printf("  scale %.3f -> avg |err| %5.2f%%%s\n", p.Factor, 100*p.Error, marker)
	}
	fmt.Printf("shipped curves (scale 1.000): avg |err| %.2f%%\n", 100*fit.UnitError)
	fmt.Printf("fitted optimum: scale %.3f at %.2f%%\n", fit.BestFactor, 100*fit.BestError)
	return nil
}
