// Command benchdiff guards search throughput against regressions: it parses
// `go test -bench` output from stdin, extracts custom metrics (strategies/s
// and friends), and compares them against the committed baseline in
// BENCH_BASELINE.json. A metric that drops more than the tolerance below its
// baseline fails the run — this is the benchmark-smoke CI gate that keeps
// the paper's "millions of combinations in only a few minutes" property
// honest as the code evolves.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkExecutionSearch -benchtime 100x -count 3 ./internal/search |
//	    go run ./cmd/benchdiff -baseline BENCH_BASELINE.json -tolerance 0.30
//
// When a benchmark appears multiple times on stdin (-count=N), the best
// observation per metric is used — max for higher-is-better metrics, min
// for allocs/op — because machine noise is one-sided: interference makes a
// run look slower than the code is, never faster.
//
// The baselined sweep pair — BenchmarkSystemSizeSweep with the lattice
// subtree prune on, BenchmarkSystemSizeSweepNoPrune without — additionally
// pins the prune's speedup: their baselined strategies/s differ by the
// measured factor, so losing the prune's win shows up as a tolerance
// failure on the pruned arm.
//
// Pass -update to rewrite the baseline from the fresh run instead of
// comparing (do this on the reference machine after a deliberate perf
// change). Custom metrics such as strategies/s are higher-is-better;
// allocs/op — deterministic across machines, unlike ns/op — is kept and
// compared lower-is-better, so allocation regressions fail the gate too.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the on-disk schema of BENCH_BASELINE.json.
type Baseline struct {
	// Note documents where the numbers came from.
	Note string `json:"note,omitempty"`
	// Benchmarks maps a benchmark name (without the -N GOMAXPROCS suffix)
	// to its metrics, e.g. "strategies/s": 250000. Metrics are
	// higher-is-better except those listed in lowerIsBetter.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// lowerIsBetter marks the metrics where a larger fresh value is the
// regression. allocs/op is the only one tracked: it is exactly reproducible
// across machines, unlike ns/op and B/op which stay excluded as noise.
func lowerIsBetter(metric string) bool { return metric == "allocs/op" }

// Measurement is one metric observed in a `go test -bench` run.
type Measurement struct {
	Benchmark string
	Metric    string
	Value     float64
}

// parseBenchOutput extracts every metric of every benchmark line in r.
// Benchmark lines look like
//
//	BenchmarkExecutionSearch-8   3   401440493 ns/op   123456 strategies/s   2048 B/op   12 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs. The -N worker
// suffix is stripped so results compare across machines.
func parseBenchOutput(r io.Reader) ([]Measurement, error) {
	var out []Measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count — some other Benchmark-prefixed line
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			out = append(out, Measurement{Benchmark: name, Metric: fields[i+1], Value: v})
		}
	}
	return out, sc.Err()
}

// bestOf folds measurements into per-benchmark metric maps, keeping the
// best observation per metric: the max for higher-is-better metrics
// (strategies/s), the min for lower-is-better ones (allocs/op). A benchmark
// run with -count=N therefore gets a best-of-N comparison — the standard
// shield against one-sided scheduler/frequency noise, which only ever makes
// a run look slower than the code is, never faster.
func bestOf(fresh []Measurement) map[string]map[string]float64 {
	got := map[string]map[string]float64{}
	for _, m := range fresh {
		if got[m.Benchmark] == nil {
			got[m.Benchmark] = map[string]float64{}
		}
		prev, seen := got[m.Benchmark][m.Metric]
		better := !seen ||
			(lowerIsBetter(m.Metric) && m.Value < prev) ||
			(!lowerIsBetter(m.Metric) && m.Value > prev)
		if better {
			got[m.Benchmark][m.Metric] = m.Value
		}
	}
	return got
}

// compare checks every baseline metric against the fresh run. Every baseline
// entry produces a visible row — a comparison when the run measured it, an
// explicit "missing" marker when it did not — so a benchmark that silently
// disappears from the -bench filter can never fake a green gate. It returns
// the rows and an error when any metric regressed beyond the tolerance or a
// baseline entry is missing from the run.
func compare(base Baseline, fresh []Measurement, tolerance float64) ([]string, error) {
	got := bestOf(fresh)
	var rows []string
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if got[name] == nil {
			// The whole benchmark vanished: aggregate into one row instead of
			// one line per metric, and say what to check.
			row := fmt.Sprintf("%s: missing entirely from the fresh run (%d baseline metrics unchecked — renamed, deleted, or dropped from the -bench filter?)",
				name, len(base.Benchmarks[name]))
			rows = append(rows, row)
			failures = append(failures, row)
			continue
		}
		metrics := make([]string, 0, len(base.Benchmarks[name]))
		for m := range base.Benchmarks[name] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			want := base.Benchmarks[name][metric]
			have, ok := got[name][metric]
			if !ok {
				row := fmt.Sprintf("%s %s: baseline %.0f, missing from the fresh run", name, metric, want)
				rows = append(rows, row)
				failures = append(failures, row)
				continue
			}
			delta := fmt.Sprintf("%+.1f%%", 100*(have/want-1))
			if want == 0 {
				delta = fmt.Sprintf("%+.0f", have-want) // a 0 baseline has no percentage
			}
			row := fmt.Sprintf("%s %s: %.0f vs baseline %.0f (%s)", name, metric, have, want, delta)
			rows = append(rows, row)
			if lowerIsBetter(metric) {
				// Guard the zero-allocation baseline: a want of 0 still
				// tolerates a fraction of one alloc, not a fraction of zero.
				limit := want
				if limit < 1 {
					limit = 1
				}
				if have > limit*(1+tolerance) {
					failures = append(failures, row+fmt.Sprintf(" — above the %.0f%% tolerance", 100*tolerance))
				}
			} else if have < want*(1-tolerance) {
				failures = append(failures, row+fmt.Sprintf(" — below the %.0f%% tolerance", 100*tolerance))
			}
		}
	}
	if len(failures) > 0 {
		return rows, fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return rows, nil
}

// update folds the fresh measurements into the baseline, keeping the custom
// metrics and allocs/op (ns/op and B/op are machine noise for this gate;
// strategies/s is the throughput contract and allocs/op the allocation one).
// For a benchmark already in the baseline, only the metrics the baseline
// tracks are refreshed: the metric set is curated — e.g. a warm-store
// lookup reports strategies/s for humans but pins allocs only, because a
// ~20µs op's throughput is timer noise at CI tolerances — and -update must
// not silently widen it. A benchmark new to the baseline gets every metric;
// prune the noisy ones once, by hand. Baseline entries the run did not
// exercise are kept — a partial -bench filter must not erase the rest of
// the gate — but their names are returned so the caller can warn about
// entries that may be stale.
func update(base *Baseline, fresh []Measurement) (stale []string) {
	if base.Benchmarks == nil {
		base.Benchmarks = map[string]map[string]float64{}
	}
	ran := map[string]bool{}
	for name, metrics := range bestOf(fresh) {
		ran[name] = true
		curated := base.Benchmarks[name]
		for metric, v := range metrics {
			switch metric {
			case "ns/op", "B/op":
				continue
			}
			if curated != nil {
				if _, tracked := curated[metric]; !tracked {
					continue
				}
			}
			if base.Benchmarks[name] == nil {
				base.Benchmarks[name] = map[string]float64{}
			}
			base.Benchmarks[name][metric] = v
		}
	}
	for name := range base.Benchmarks {
		if !ran[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	return stale
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional drop below baseline before failing")
	doUpdate := flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	flag.Parse()

	fresh, err := parseBenchOutput(os.Stdin)
	if err != nil {
		return fmt.Errorf("parsing bench output: %w", err)
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	if *doUpdate {
		var base Baseline
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			if err := json.Unmarshal(raw, &base); err != nil {
				return fmt.Errorf("parsing %s: %w", *baselinePath, err)
			}
		}
		for _, name := range update(&base, fresh) {
			fmt.Fprintf(os.Stderr, "benchdiff: warning: baseline entry %s was not in this run; kept as-is (delete it from the baseline if the benchmark is gone)\n", name)
		}
		raw, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s\n", *baselinePath)
		return nil
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}
	rows, err := compare(base, fresh, *tolerance)
	for _, r := range rows {
		fmt.Println(r)
	}
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
