package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: calculon/internal/search
cpu: some CPU @ 2.0GHz
BenchmarkExecutionSearch-8   	       3	 401440493 ns/op	  123456 strategies/s	    2048 B/op	      12 allocs/op
BenchmarkOther/sub-case-16   	     100	    123456 ns/op
PASS
ok  	calculon/internal/search	2.345s
`

func TestParseBenchOutput(t *testing.T) {
	ms, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkExecutionSearch|ns/op":        401440493,
		"BenchmarkExecutionSearch|strategies/s": 123456,
		"BenchmarkExecutionSearch|B/op":         2048,
		"BenchmarkExecutionSearch|allocs/op":    12,
		"BenchmarkOther/sub-case|ns/op":         123456,
	}
	got := map[string]float64{}
	for _, m := range ms {
		got[m.Benchmark+"|"+m.Metric] = m.Value
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseBenchOutputStripsWorkerSuffix(t *testing.T) {
	ms, err := parseBenchOutput(strings.NewReader("BenchmarkX-128 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Benchmark != "BenchmarkX" {
		t.Fatalf("got %+v", ms)
	}
}

func baselineWith(v float64) Baseline {
	return Baseline{Benchmarks: map[string]map[string]float64{
		"BenchmarkExecutionSearch": {"strategies/s": v},
	}}
}

func TestCompareWithinTolerance(t *testing.T) {
	fresh := []Measurement{{"BenchmarkExecutionSearch", "strategies/s", 80_000}}
	rows, err := compare(baselineWith(100_000), fresh, 0.30)
	if err != nil {
		t.Fatalf("a 20%% drop must pass a 30%% tolerance: %v", err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0], "-20.0%") {
		t.Errorf("rows = %v", rows)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	fresh := []Measurement{{"BenchmarkExecutionSearch", "strategies/s", 60_000}}
	if _, err := compare(baselineWith(100_000), fresh, 0.30); err == nil {
		t.Fatal("a 40% drop must fail a 30% tolerance")
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	if _, err := compare(baselineWith(100_000), nil, 0.30); err == nil {
		t.Fatal("a baseline metric absent from the run must fail")
	}
}

func TestCompareMissingBenchmarkIsReportedInRows(t *testing.T) {
	// A benchmark that vanished from the run must show up in the printed
	// rows (not just the error) as one aggregated line naming it.
	base := Baseline{Benchmarks: map[string]map[string]float64{
		"BenchmarkExecutionSearch": {"strategies/s": 100_000, "allocs/op": 12},
		"BenchmarkSystemSizeSweep": {"strategies/s": 200_000},
	}}
	fresh := []Measurement{{"BenchmarkSystemSizeSweep", "strategies/s", 210_000}}
	rows, err := compare(base, fresh, 0.30)
	if err == nil {
		t.Fatal("a missing benchmark must fail the gate")
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want the missing benchmark plus one comparison", rows)
	}
	if !strings.Contains(rows[0], "BenchmarkExecutionSearch") ||
		!strings.Contains(rows[0], "missing entirely") ||
		!strings.Contains(rows[0], "2 baseline metrics") {
		t.Errorf("missing-benchmark row = %q", rows[0])
	}
	if !strings.Contains(err.Error(), "missing entirely") {
		t.Errorf("err = %v", err)
	}
}

func TestCompareMissingMetricIsReportedInRows(t *testing.T) {
	// The benchmark ran but stopped emitting a baselined metric: the row
	// must name the metric and its baseline value.
	base := Baseline{Benchmarks: map[string]map[string]float64{
		"BenchmarkExecutionSearch": {"strategies/s": 100_000, "allocs/op": 12},
	}}
	fresh := []Measurement{{"BenchmarkExecutionSearch", "strategies/s", 100_000}}
	rows, err := compare(base, fresh, 0.30)
	if err == nil {
		t.Fatal("a missing metric must fail the gate")
	}
	var found bool
	for _, r := range rows {
		if strings.Contains(r, "allocs/op") && strings.Contains(r, "missing from the fresh run") {
			found = true
		}
	}
	if !found {
		t.Errorf("rows = %v, want a row naming the missing allocs/op metric", rows)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	fresh := []Measurement{{"BenchmarkExecutionSearch", "strategies/s", 250_000}}
	if _, err := compare(baselineWith(100_000), fresh, 0.30); err != nil {
		t.Fatalf("improvements must pass: %v", err)
	}
}

func TestUpdateKeepsCustomMetricsAndAllocs(t *testing.T) {
	var base Baseline
	update(&base, []Measurement{
		{"BenchmarkExecutionSearch", "ns/op", 1e9},
		{"BenchmarkExecutionSearch", "B/op", 2048},
		{"BenchmarkExecutionSearch", "allocs/op", 12},
		{"BenchmarkExecutionSearch", "strategies/s", 123456},
	})
	m := base.Benchmarks["BenchmarkExecutionSearch"]
	if len(m) != 2 || m["strategies/s"] != 123456 || m["allocs/op"] != 12 {
		t.Fatalf("baseline after update: %v", m)
	}
}

func TestUpdateReportsStaleEntries(t *testing.T) {
	base := Baseline{Benchmarks: map[string]map[string]float64{
		"BenchmarkGone":            {"strategies/s": 1},
		"BenchmarkAlsoGone":        {"strategies/s": 2},
		"BenchmarkExecutionSearch": {"strategies/s": 3},
	}}
	stale := update(&base, []Measurement{{"BenchmarkExecutionSearch", "strategies/s", 4}})
	if len(stale) != 2 || stale[0] != "BenchmarkAlsoGone" || stale[1] != "BenchmarkGone" {
		t.Fatalf("stale = %v, want the two benchmarks absent from the run, sorted", stale)
	}
	if base.Benchmarks["BenchmarkGone"]["strategies/s"] != 1 {
		t.Error("stale entries must be kept, not erased, by a partial run")
	}
	if base.Benchmarks["BenchmarkExecutionSearch"]["strategies/s"] != 4 {
		t.Error("measured entries must be refreshed")
	}
}

func baselineWithAllocs(v float64) Baseline {
	return Baseline{Benchmarks: map[string]map[string]float64{
		"BenchmarkRunnerMemoized": {"allocs/op": v},
	}}
}

func TestCompareAllocsRegressionFails(t *testing.T) {
	fresh := []Measurement{{"BenchmarkRunnerMemoized", "allocs/op", 140}}
	if _, err := compare(baselineWithAllocs(100), fresh, 0.30); err == nil {
		t.Fatal("a 40% allocation increase must fail a 30% tolerance")
	}
}

func TestCompareAllocsWithinToleranceAndImprovementPass(t *testing.T) {
	for _, v := range []float64{120, 50, 0} {
		fresh := []Measurement{{"BenchmarkRunnerMemoized", "allocs/op", v}}
		if _, err := compare(baselineWithAllocs(100), fresh, 0.30); err != nil {
			t.Errorf("allocs/op %v vs baseline 100 must pass a 30%% tolerance: %v", v, err)
		}
	}
}

func TestCompareAllocsZeroBaselineGuard(t *testing.T) {
	// A zero-alloc baseline tolerates a fraction of one alloc, not of zero:
	// staying at 0 passes, gaining allocations fails.
	if _, err := compare(baselineWithAllocs(0),
		[]Measurement{{"BenchmarkRunnerMemoized", "allocs/op", 0}}, 0.30); err != nil {
		t.Fatalf("0 vs 0 must pass: %v", err)
	}
	if _, err := compare(baselineWithAllocs(0),
		[]Measurement{{"BenchmarkRunnerMemoized", "allocs/op", 2}}, 0.30); err == nil {
		t.Fatal("gaining allocations over a zero baseline must fail")
	}
}

// TestBestOfN: with -count=N the same benchmark appears N times on stdin;
// the gate compares the best observation per metric (max throughput, min
// allocs), shielding it from one-sided machine noise.
func TestBestOfN(t *testing.T) {
	fresh := []Measurement{
		{"BenchmarkExecutionSearch", "strategies/s", 60_000}, // noisy cold run
		{"BenchmarkExecutionSearch", "strategies/s", 95_000},
		{"BenchmarkExecutionSearch", "strategies/s", 80_000},
		{"BenchmarkExecutionSearch", "allocs/op", 12},
		{"BenchmarkExecutionSearch", "allocs/op", 10},
	}
	if _, err := compare(baselineWith(100_000), fresh, 0.30); err != nil {
		t.Fatalf("best of [60k,95k,80k] is within 30%% of 100k: %v", err)
	}
	var base Baseline
	update(&base, fresh)
	got := base.Benchmarks["BenchmarkExecutionSearch"]
	if got["strategies/s"] != 95_000 || got["allocs/op"] != 10 {
		t.Errorf("update kept %v, want best-of (95000 strategies/s, 10 allocs/op)", got)
	}
}

// TestUpdateRespectsCuratedMetricSet: -update refreshes only the metrics the
// baseline already tracks for an existing benchmark (the set is curated —
// noisy metrics are deliberately absent), while a brand-new benchmark gets
// every custom metric to start from.
func TestUpdateRespectsCuratedMetricSet(t *testing.T) {
	base := Baseline{Benchmarks: map[string]map[string]float64{
		"BenchmarkSearchWarmStore": {"allocs/op": 6},
	}}
	update(&base, []Measurement{
		{"BenchmarkSearchWarmStore", "allocs/op", 4},
		{"BenchmarkSearchWarmStore", "strategies/s", 3.9e8}, // deliberately unbaselined
		{"BenchmarkNew", "allocs/op", 7},
		{"BenchmarkNew", "strategies/s", 1000},
	})
	ws := base.Benchmarks["BenchmarkSearchWarmStore"]
	if len(ws) != 1 || ws["allocs/op"] != 4 {
		t.Errorf("curated entry widened or not refreshed: %v", ws)
	}
	nw := base.Benchmarks["BenchmarkNew"]
	if len(nw) != 2 || nw["allocs/op"] != 7 || nw["strategies/s"] != 1000 {
		t.Errorf("new entry should get every custom metric: %v", nw)
	}
}
