// calculonvet runs the repo's invariant analyzers (internal/lint) over the
// module: determinism of map-order-sensitive accumulation, ctx-first
// cancellation plumbing, atomic-only counter access, FMA-safe ordered float
// arithmetic, no silently dropped errors at the config/CLI/store boundary,
// and dimensionally sound quantity arithmetic over the performance model.
//
// Usage:
//
//	go run ./cmd/calculonvet [flags] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 0 when the suite is clean, 1 on findings, 2 on operational
// errors — the same contract as go vet, so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"calculon/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := lint.ByName(*analyzers)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadPackages(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calculonvet:", err)
	os.Exit(2)
}
