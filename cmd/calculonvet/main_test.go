package main

import (
	"os/exec"
	"strings"
	"testing"

	"calculon/internal/lint"
)

// TestSuiteCleanOnRepo is the self-hosting gate: the shipped tree must carry
// zero violations (every finding the suite ever raised was either fixed or
// explicitly annotated), so any diagnostic here is a regression.
func TestSuiteCleanOnRepo(t *testing.T) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	pkgs, err := lint.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages from %s; loader is dropping targets", len(pkgs), root)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo is not vet-clean: %s", d)
	}
}
