module calculon

go 1.22
