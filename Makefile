# Development entry points. CI runs `make lint` as its lint gate; the other
# targets mirror the remaining CI jobs so a local run reproduces them.

GO ?= go

.PHONY: build test lint fmt vet calculonvet staticcheck race bench bench-update e2e

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the consolidated gate: formatting, go vet, the repo's own
# invariant analyzers (see docs/LINT.md), and staticcheck when installed.
lint: fmt vet calculonvet staticcheck

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "unformatted files:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# calculonvet proves the model's determinism, cancellation, counter, and
# error-handling invariants at compile time (internal/lint).
calculonvet:
	$(GO) run ./cmd/calculonvet ./...

# staticcheck is optional tooling: the gate passes without it installed so
# offline checkouts and minimal CI images stay green.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race -short ./internal/search/... ./internal/perf/... ./internal/execution/... ./internal/experiments/... ./internal/service/... ./internal/resultstore/... ./internal/inference/... ./internal/serving/...

# e2e boots a real calculond and drives the full job lifecycle over HTTP
# (CI's service-e2e job).
e2e:
	$(GO) test -tags e2e -run TestCalculondE2E -v ./cmd/calculond

# bench runs the exact measurement procedure the BENCH_BASELINE.json note
# documents and compares against the committed baseline (what CI's
# bench-smoke job does). bench-update re-measures and rewrites the baseline
# — run it on the reference machine after a deliberate performance change.
BENCH_CMDS = \
	$(GO) test -run '^$$' -bench BenchmarkExecutionSearch -benchtime 100x -count 3 ./internal/search; \
	$(GO) test -run '^$$' -bench BenchmarkSystemSizeSweep -benchtime 1x ./internal/search; \
	$(GO) test -run '^$$' -bench BenchmarkRunner -benchtime 100x ./internal/perf; \
	$(GO) test -run '^$$' -bench BenchmarkSearchWarmStore -benchtime 100x ./internal/resultstore; \
	$(GO) test -run '^$$' -bench BenchmarkServingSearch -benchtime 20x -count 3 ./internal/serving

bench:
	@{ $(BENCH_CMDS); } | tee /dev/stderr | $(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -tolerance 0.30

bench-update:
	@{ $(BENCH_CMDS); } | tee /dev/stderr | $(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -update
