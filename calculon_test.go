package calculon_test

import (
	"context"
	"errors"
	"testing"

	"calculon"
)

// TestPublicAPIQuickstart exercises the whole public surface the way the
// examples do: run one configuration, search a system, and size a budget.
func TestPublicAPIQuickstart(t *testing.T) {
	m := calculon.MustPreset("gpt3-175B").WithBatch(64)
	sys := calculon.A100(64)
	st := calculon.Strategy{
		TP: 8, PP: 8, DP: 1, Microbatch: 1, Interleave: 1, OneFOneB: true,
		Recompute: calculon.RecomputeFull,
	}
	res, err := calculon.Run(m, sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchTime <= 0 || res.MFU <= 0 || res.Mem1.Total() <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestPublicAPISearch(t *testing.T) {
	m := calculon.MustPreset("gpt3-13B").WithBatch(32)
	sr, err := calculon.SearchExecution(context.Background(), m, calculon.A100(32), calculon.SearchOptions{
		Enum: calculon.EnumOptions{Features: calculon.FeatureSeqPar, MaxInterleave: 2},
		TopK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Found() || len(sr.Top) == 0 {
		t.Fatal("search found nothing")
	}
}

func TestPublicAPISystemSize(t *testing.T) {
	m := calculon.MustPreset("gpt3-13B").WithBatch(32)
	pts, err := calculon.SearchSystemSize(context.Background(), m,
		func(n int) calculon.System { return calculon.A100(n) },
		[]int{16, 32},
		calculon.SearchOptions{Enum: calculon.EnumOptions{Features: calculon.FeatureBaseline, MaxInterleave: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || !pts[0].Found {
		t.Fatalf("scaling points: %+v", pts)
	}
}

func TestPublicAPIErrInfeasible(t *testing.T) {
	m := calculon.MustPreset("megatron-1T").WithBatch(1)
	_, err := calculon.Run(m, calculon.A100(1), calculon.Strategy{TP: 1, PP: 1, DP: 1})
	if !errors.Is(err, calculon.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPublicAPIPresetsAndSystems(t *testing.T) {
	if len(calculon.PresetNames()) < 5 {
		t.Error("expected several LLM presets")
	}
	if _, err := calculon.Preset("nope"); err == nil {
		t.Error("unknown preset must error")
	}
	h := calculon.H100(64, 80*calculon.GiB, 512*calculon.GiB)
	if !h.Mem2.Present() {
		t.Error("H100 with DDR must have mem2")
	}
	if len(calculon.AllDesigns()) != 16 {
		t.Error("want the 16-design grid")
	}
	if !calculon.InfiniteMem2().Capacity.IsUnbounded() {
		t.Error("InfiniteMem2 must be unbounded")
	}
	if calculon.DDR5(512*calculon.GiB).Bandwidth != 100e9 {
		t.Error("DDR5 bandwidth must be 100 GB/s")
	}
}
