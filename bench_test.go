// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment via
// internal/experiments (the same code `calculon study …` runs) and reports
// the headline quantities as custom metrics, so `go test -bench=.` prints
// the reproduced numbers next to the timings. The benches run the reduced
// (ScaleSmall) studies; the paper-sized sweeps are `calculon study <x> -full`.
package calculon_test

import (
	"context"
	"testing"

	"calculon/internal/experiments"
)

// BenchmarkTable2Validation regenerates Table 2: predicted batch times
// versus the published Selene measurements for Megatron 22B/175B/530B/1T
// under full recompute and seq-par + selective recompute.
func BenchmarkTable2Validation(b *testing.B) {
	var avg, max float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Validation()
		if err != nil {
			b.Fatal(err)
		}
		avg, max = experiments.ValidationStats(rows)
	}
	b.ReportMetric(avg, "avg-err-%")
	b.ReportMetric(max, "max-err-%")
}

// BenchmarkFig3Breakdown regenerates Fig. 3: the single-configuration time
// and HBM breakdown for GPT-3 175B at (8,64,8) on 4,096 A100s.
func BenchmarkFig3Breakdown(b *testing.B) {
	var recompFrac, hbmGiB float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3Breakdown()
		if err != nil {
			b.Fatal(err)
		}
		recompFrac = float64(r.Time.Recompute) / float64(r.BatchTime)
		hbmGiB = float64(r.Mem1.Total()) / (1 << 30)
	}
	b.ReportMetric(100*recompFrac, "recompute-%")
	b.ReportMetric(hbmGiB, "HBM-GiB")
}

// BenchmarkTable1Ablation regenerates Table 1: the per-optimization effect
// directions on time, memory, and network exposure.
func BenchmarkTable1Ablation(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1Ablation()
		if err != nil {
			b.Fatal(err)
		}
		n = len(rows)
	}
	b.ReportMetric(float64(n), "optimizations")
}

// BenchmarkFig4Parallelism regenerates Fig. 4: the TP/PP/DP trade-off
// sweeps for Megatron-1T on 4,096 GPUs.
func BenchmarkFig4Parallelism(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		sweeps, err := experiments.Fig4Parallelism()
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1e18, 0.0
		for _, sw := range sweeps {
			for _, c := range sw.Cells {
				t := float64(c.Result.BatchTime)
				if t < lo {
					lo = t
				}
				if t > hi {
					hi = t
				}
			}
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "worst/best")
}

// BenchmarkFig5OptimizationGrids regenerates Fig. 5: the four t×p grids of
// best batch time under growing optimization families.
func BenchmarkFig5OptimizationGrids(b *testing.B) {
	var feasible float64
	for i := 0; i < b.N; i++ {
		feasible = 0
		for _, v := range experiments.Fig5Variants() {
			g, err := experiments.Fig5Optimizations(context.Background(), v, experiments.ScaleSmall)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range g.Cells {
				if c.Found {
					feasible++
				}
			}
		}
	}
	b.ReportMetric(feasible, "feasible-cells")
}

// BenchmarkFig6SearchSpace regenerates Fig. 6: the full execution-space
// enumeration with its feasibility count, sample-rate histogram, and
// needles-in-a-haystack statistics.
func BenchmarkFig6SearchSpace(b *testing.B) {
	var stats experiments.Fig6Stats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = experiments.Fig6SearchSpace(context.Background(), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Evaluated), "evaluated")
	b.ReportMetric(float64(stats.Feasible), "feasible")
	b.ReportMetric(float64(stats.Within10Pct), "within-10%")
}

// BenchmarkFig7ScalingNoOffload regenerates Fig. 7: best-per-size scaling
// for the three LLMs without offloading, with its efficiency cliffs.
func BenchmarkFig7ScalingNoOffload(b *testing.B) {
	var worstCliff float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.ScalingStudy(context.Background(), false, experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		worstCliff = 0
		for _, c := range curves {
			if d := c.CliffDepth(); d > worstCliff {
				worstCliff = d
			}
		}
	}
	b.ReportMetric(worstCliff, "worst-cliff-x")
}

// BenchmarkFig9Offload regenerates Fig. 9: offload bandwidth/capacity
// requirements with an infinite second tier versus the practical
// 512 GiB @ 100 GB/s tier.
func BenchmarkFig9Offload(b *testing.B) {
	var maxReqGBs float64
	for i := 0; i < b.N; i++ {
		inf, err := experiments.Fig9Offload(context.Background(), true, experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig9Offload(context.Background(), false, experiments.ScaleSmall); err != nil {
			b.Fatal(err)
		}
		maxReqGBs = 0
		for _, c := range inf.Cells {
			if c.Found && float64(c.OffloadBW)/1e9 > maxReqGBs {
				maxReqGBs = float64(c.OffloadBW) / 1e9
			}
		}
	}
	b.ReportMetric(maxReqGBs, "max-req-GB/s")
}

// BenchmarkFig10ScalingOffload regenerates Fig. 10: the scaling study with
// the 512 GiB @ 100 GB/s offload tier.
func BenchmarkFig10ScalingOffload(b *testing.B) {
	var worstCliff float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.ScalingStudy(context.Background(), true, experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		worstCliff = 0
		for _, c := range curves {
			if d := c.CliffDepth(); d > worstCliff {
				worstCliff = d
			}
		}
	}
	b.ReportMetric(worstCliff, "worst-cliff-x")
}

// BenchmarkFig11OffloadSpeedup regenerates Fig. 11: the per-size relative
// speedup from adding the offload tier.
func BenchmarkFig11OffloadSpeedup(b *testing.B) {
	var maxSpeedup float64
	for i := 0; i < b.N; i++ {
		base, err := experiments.ScalingStudy(context.Background(), false, experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		off, err := experiments.ScalingStudy(context.Background(), true, experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := experiments.OffloadSpeedup(base, off)
		if err != nil {
			b.Fatal(err)
		}
		maxSpeedup = 0
		for _, c := range sp {
			for _, v := range c.SpeedupPct {
				if v > maxSpeedup && v < 1e6 { // skip the "infinite" points
					maxSpeedup = v
				}
			}
		}
	}
	b.ReportMetric(maxSpeedup, "max-speedup-%")
}

// BenchmarkTable3BudgetSearch regenerates Table 3: the $125M budgeted
// system search across the 16 HBM3 × DDR5 designs for the three LLMs.
func BenchmarkTable3BudgetSearch(b *testing.B) {
	var designs float64
	for i := 0; i < b.N; i++ {
		evals, err := experiments.Table3Budget(context.Background(), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		designs = float64(len(evals))
	}
	b.ReportMetric(designs, "designs")
}

// BenchmarkTable4Fig12Strategies regenerates Table 4 / Fig. 12: the MFU
// ladder from the full-recompute baseline to Calculon's offload strategy.
func BenchmarkTable4Fig12Strategies(b *testing.B) {
	var firstMFU, lastMFU float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4Strategies(context.Background(), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		firstMFU = 100 * rows[0].Result.MFU
		lastMFU = 100 * rows[len(rows)-1].Result.MFU
	}
	b.ReportMetric(firstMFU, "baseline-MFU-%")
	b.ReportMetric(lastMFU, "offload-MFU-%")
}
