// Package calculon is a Go implementation of Calculon (Isaev et al.,
// SC '23): an analytical performance model and codesign search tool for
// training and serving transformer-based large language models on
// distributed accelerator systems.
//
// An analysis takes three specifications:
//
//   - an LLM (hidden size, attention heads, sequence length, block count,
//     global batch) — see Preset and the model presets;
//   - a System (matrix/vector throughput with size-dependent efficiency, a
//     two-tier memory hierarchy, and networks with collective models) — see
//     A100 and H100;
//   - a Strategy (TP/PP/DP degrees, microbatch, pipeline schedule,
//     recompute, sequence parallelism, communication overlap, optimizer
//     sharding, fused layers, tensor offloading).
//
// Run evaluates a single point in microseconds and returns the batch time
// with a full time and memory breakdown. SearchExecution exhaustively
// explores every execution strategy for a system; SearchSystemSize sweeps
// processor counts to expose efficiency cliffs; SearchBudget chooses a
// hardware design under a price budget.
package calculon

import (
	"context"

	"calculon/internal/cost"
	"calculon/internal/execution"
	"calculon/internal/inference"
	"calculon/internal/model"
	"calculon/internal/perf"
	"calculon/internal/search"
	"calculon/internal/system"
	"calculon/internal/tco"
	"calculon/internal/units"
)

// Core specification types.
type (
	// LLM is the application specification (§2.1 of the paper).
	LLM = model.LLM
	// System is the hardware specification (§2.2).
	System = system.System
	// Memory is one tier of a System's memory hierarchy.
	Memory = system.Memory
	// Network is one interconnect of a System.
	Network = system.Network
	// Strategy is the execution/software specification (§2.3, Table 1).
	Strategy = execution.Strategy
	// Result is a complete performance estimate (§2.4).
	Result = perf.Result
	// TimeBreakdown details where the batch time went.
	TimeBreakdown = perf.TimeBreakdown
	// MemBreakdown details a memory tier's consumption.
	MemBreakdown = perf.MemBreakdown
)

// Scalar quantity types.
type (
	// Bytes is a capacity or data size.
	Bytes = units.Bytes
	// Seconds is a duration.
	Seconds = units.Seconds
	// BytesPerSec is a bandwidth.
	BytesPerSec = units.BytesPerSec
)

// Execution-strategy enums and search options.
type (
	// RecomputeMode selects activation recomputation (none/attn/full).
	RecomputeMode = execution.RecomputeMode
	// TPOverlapMode selects tensor-parallel comm overlap (none/pipe/ring).
	TPOverlapMode = execution.TPOverlapMode
	// FeatureSet restricts searches to an optimization family.
	FeatureSet = execution.FeatureSet
	// EnumOptions bounds strategy enumeration.
	EnumOptions = execution.EnumOptions
	// SearchOptions configures SearchExecution.
	SearchOptions = search.Options
	// SearchProgress exposes live counters of a running search; attach one
	// via SearchOptions.Progress and Snapshot it from any goroutine.
	SearchProgress = search.Progress
	// SearchProgressSnapshot is one observation of a running search.
	SearchProgressSnapshot = search.ProgressSnapshot
	// SearchResult is the outcome of SearchExecution.
	SearchResult = search.Result
	// ScalingPoint is one system size of a SearchSystemSize sweep.
	ScalingPoint = search.ScalingPoint
	// Design is one hardware design point of SearchBudget.
	Design = cost.Design
	// BudgetOptions configures SearchBudget.
	BudgetOptions = cost.SweepOptions
	// BudgetEvaluation is one design row of a SearchBudget result.
	BudgetEvaluation = cost.Evaluation
)

// Re-exported constants.
const (
	RecomputeNone = execution.RecomputeNone
	RecomputeAttn = execution.RecomputeAttn
	RecomputeFull = execution.RecomputeFull

	TPOverlapNone = execution.TPOverlapNone
	TPOverlapPipe = execution.TPOverlapPipe
	TPOverlapRing = execution.TPOverlapRing

	FeatureBaseline = execution.FeatureBaseline
	FeatureSeqPar   = execution.FeatureSeqPar
	FeatureAll      = execution.FeatureAll

	KiB = units.KiB
	MiB = units.MiB
	GiB = units.GiB
	TiB = units.TiB
	GB  = units.GB
	TB  = units.TB
)

// ErrInfeasible tags configurations that cannot run (memory overflow,
// structural violations, missing offload tier).
var ErrInfeasible = perf.ErrInfeasible

// Run evaluates one (LLM, system, strategy) configuration.
func Run(m LLM, sys System, st Strategy) (Result, error) { return perf.Run(m, sys, st) }

// SearchExecution exhaustively evaluates every execution strategy for the
// model on the system (§5.1). Cancelling the context stops the search within
// one work chunk; the partial counters are still returned alongside
// ctx.Err(). Attach a SearchProgress through opts for live observability.
func SearchExecution(ctx context.Context, m LLM, sys System, opts SearchOptions) (SearchResult, error) {
	return search.Execution(ctx, m, sys, opts)
}

// SearchSystemSize runs a full execution search at each processor count,
// exposing the efficiency cliffs of §5.2.
func SearchSystemSize(ctx context.Context, m LLM, sysAt func(procs int) System, sizes []int, opts SearchOptions) ([]ScalingPoint, error) {
	return search.SystemSize(ctx, m, sysAt, sizes, opts)
}

// SearchBudget evaluates hardware designs under a price budget (§7).
func SearchBudget(ctx context.Context, models []LLM, designs []Design, opts BudgetOptions) ([]BudgetEvaluation, error) {
	return cost.BudgetSearch(ctx, models, designs, opts)
}

// AllDesigns returns the paper's 16 HBM×DDR design grid for SearchBudget.
func AllDesigns() []Design { return cost.AllDesigns() }

// Preset returns a named LLM configuration (e.g. "gpt3-175B",
// "turing-530B", "megatron-1T"); see PresetNames.
func Preset(name string) (LLM, error) { return model.Preset(name) }

// MustPreset is Preset for statically known names.
func MustPreset(name string) LLM { return model.MustPreset(name) }

// PresetNames lists the available LLM presets.
func PresetNames() []string { return model.PresetNames() }

// A100 returns a Selene-like A100-80GiB system of the given size.
func A100(procs int) System { return system.A100(procs) }

// H100 returns the §7 H100-based design with the given HBM3 capacity and
// optional DDR5 offload capacity (0 for none).
func H100(procs int, hbm, ddr Bytes) System { return system.H100(procs, hbm, ddr) }

// DDR5 builds the 100 GB/s secondary offload memory used in §6/§7.
func DDR5(capacity Bytes) Memory { return system.DDR5(capacity) }

// InfiniteMem2 is the §6 probing tier: unlimited offload capacity and
// bandwidth, for reading off resource requirements.
func InfiniteMem2() Memory { return system.InfiniteMem2() }

// Inference / serving estimates.
type (
	// ServingWorkload describes a request mix for EstimateInference.
	ServingWorkload = inference.Workload
	// ServingResult is a serving estimate: prefill latency, per-token
	// decode latency, throughput, and KV-cache footprint.
	ServingResult = inference.Result
)

// EstimateInference prices an LLM serving workload: a prefill pass over the
// prompt plus bandwidth-aware autoregressive decode with KV-cache
// accounting.
func EstimateInference(m LLM, sys System, st Strategy, w ServingWorkload) (ServingResult, error) {
	return inference.Estimate(m, sys, st, w)
}

// Total cost of ownership.
type (
	// TCOAssumptions price a deployment (capex, power, energy, opex).
	TCOAssumptions = tco.Assumptions
	// RunCost is the duration and dollar cost of one training run.
	RunCost = tco.RunCost
)

// DefaultTCOAssumptions are round 2023-era numbers for an A100-class
// deployment.
func DefaultTCOAssumptions() TCOAssumptions { return tco.DefaultAssumptions() }

// TrainingRunCost converts a performance estimate and a token budget into
// wall-clock time, GPU-hours, energy, and dollars (§6's TCO analysis).
func TrainingRunCost(res Result, tokens float64, a TCOAssumptions) (RunCost, error) {
	return tco.TrainingRun(res, tokens, a)
}
